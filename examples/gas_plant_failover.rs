//! Domain example: exploring failover policies on the gas plant.
//!
//! ```text
//! cargo run --release --example gas_plant_failover
//! ```
//!
//! Runs the Fig. 6b fault under three Virtual-Component policies — the
//! paper's scripted 300 s supervisory epoch, immediate (detection-limited)
//! reconfiguration, and a cold standby that needs task migration — and
//! compares how much process damage each allows. This is the experiment a
//! plant engineer would run to pick a reconfiguration policy.

use evm::core::runtime::{Engine, Scenario};
use evm::plant::ActuatorFault;
use evm::prelude::*;

fn main() {
    let horizon = SimDuration::from_secs(1000);
    let fault_at = SimTime::from_secs(300);

    let policies: Vec<(&str, Scenario)> = vec![
        ("paper-epoch-300s", Scenario::fig6b()),
        ("immediate", Scenario::fig6b_fast()),
        (
            "cold-standby",
            Scenario::builder()
                .fault_at(fault_at, ActuatorFault::paper_fault())
                .reconfig_epoch(SimDuration::ZERO)
                .cold_backup()
                .duration(horizon)
                .build(),
        ),
    ];

    println!(
        "{:<20} {:>12} {:>14} {:>16}",
        "policy", "switch [s]", "min level [%]", "ISE after fault"
    );
    for (name, scenario) in policies {
        let result = Engine::new(scenario).run();
        let switch = result
            .event_time("Ctrl-B -> Active")
            .map_or(f64::NAN, |t| t.as_secs_f64());
        let level = result.series("LTS.LiquidPct");
        let after = level.window(fault_at, SimTime::ZERO + horizon);
        let min_level = after.stats().expect("samples").min;
        let ise = result.control_cost("LTS.LiquidPct", 50.0, fault_at, SimTime::ZERO + horizon);
        println!("{name:<20} {switch:>12.2} {min_level:>14.2} {ise:>16.0}");
    }

    println!(
        "\nreading: the supervisory epoch dominates recovery; a warm replica \
         turns failover into a one-cycle mode switch, while cold standby adds \
         the task-migration time (capability check + TCB/stack/data transfer)."
    );
}
