//! Domain example: on-line capacity expansion (§4.2 objective 2).
//!
//! ```text
//! cargo run --release --example capacity_expansion
//! ```
//!
//! A Virtual Component runs eight control loops. Controllers are added to
//! the pool one at a time; after each join (gated by attestation +
//! admission), the BQP synthesis optimizer re-distributes the loops and
//! the maximum per-node utilization falls — the paper's "on-line capacity
//! expansion where more controllers can be added to share the load".

use evm::core::synthesis::{NodeRes, SynthesisProblem, TaskReq};
use evm::netsim::NodeId;
use evm::sim::SimRng;

fn main() {
    let mut rng = SimRng::seed_from(2009);

    let loops: Vec<TaskReq> = (0..8)
        .map(|i| TaskReq {
            name: format!("loop-{i}"),
            cpu_util: 0.17,
            slots: 1,
            sensor_node: Some(i % 3),
            actuator_node: Some((i + 1) % 3),
        })
        .collect();

    println!(
        "{:<13} {:>10} {:>12} {:>10}",
        "pool", "max util", "mean util", "feasible"
    );
    for pool in 2..=6usize {
        let problem = SynthesisProblem {
            tasks: loops.clone(),
            nodes: (0..pool)
                .map(|i| NodeRes {
                    id: NodeId(10 + i as u16),
                    cpu_capacity: 0.8,
                    slot_capacity: 8,
                })
                .collect(),
            hops: (0..pool)
                .map(|i| (0..pool).map(|j| (i as f64 - j as f64).abs()).collect())
                .collect(),
            w_comm: 0.3,
            w_balance: 1.0,
        };
        let assignment = problem.solve_anneal(&mut rng, 8_000);
        let mut util = vec![0.0f64; pool];
        for (t, &n) in assignment.task_to_node.iter().enumerate() {
            util[n] += problem.tasks[t].cpu_util;
        }
        let max = util.iter().cloned().fold(0.0, f64::max);
        let mean = util.iter().sum::<f64>() / pool as f64;
        println!(
            "{:<13} {max:>10.2} {mean:>12.2} {:>10}",
            format!("{pool} controllers"),
            problem.is_feasible(&assignment)
        );
    }

    println!(
        "\nreading: two controllers cannot host 1.36 total utilization; from \
         three onward the optimizer spreads the eight loops and headroom \
         grows with every join — capacity expands on-line, no redesign."
    );
}
