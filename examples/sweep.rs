//! Batch sweep over the failover scenario grid.
//!
//! Expands a (loss × detection × topology × seeds) grid, fans it across
//! all cores with the work-stealing executor, and writes the aggregated
//! report (CSV + markdown) under `target/paper_results/`. The report is
//! byte-identical at any thread count.
//!
//! ```text
//! cargo run --release --example sweep            # the full grid
//! cargo run --release --example sweep -- --smoke # tiny CI-sized grids
//! cargo run --release --example sweep -- --threads 2
//! ```

use std::path::PathBuf;
use std::time::Instant;

use evm::core::runtime::{CyclePlanMode, Layout, ReroutePolicy, Scenario, ScenarioBuilder, Tier};
use evm::netsim::NodeId;
use evm::plant::ActuatorFault;
use evm::prelude::*;
use evm::sweep::{available_threads, run_cells, StarShape, SweepGrid, SweepReport};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let threads = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .map_or_else(available_threads, |v| {
            v.parse().expect("--threads takes a number")
        });

    let grids: Vec<(SweepGrid, &str)> = if smoke {
        // CI-sized: the vcs grid (2 vcs × 2 loss × 2 seeds) exercises
        // the multi-VC scheduler + per-VC report rows; the topology grid
        // (4 layouts × 2 seeds) the multi-hop routing pass + topology
        // rows — line / grid / clustered relay flows on every push.
        let template = Scenario::builder()
            .duration(SimDuration::from_secs(60))
            .fault_at(SimTime::from_secs(15), ActuatorFault::paper_fault())
            .reconfig_epoch(SimDuration::ZERO)
            .build();
        vec![
            (
                SweepGrid::new(template.clone())
                    .over_vcs(&[1, 2])
                    .over_loss(&[0.0, 0.2])
                    .seeds_per_cell(2),
                "sweep_smoke",
            ),
            // Tier-identity smoke: the same failover scenario on every
            // VM execution tier. The report must show identical metrics
            // on every tier row (asserted below) — the tiers are a pure
            // speed knob, never a semantics knob.
            (
                SweepGrid::new(template.clone())
                    .over_tier(&[Tier::Interp, Tier::Fused, Tier::Compiled])
                    .seeds_per_cell(2),
                "sweep_smoke_tier",
            ),
            // Plan-identity smoke: the same failover scenario on the
            // epoch-compiled cycle plan and the direct per-slot oracle.
            // The report must show identical metrics on both plan rows
            // (asserted below) — the plan is a pure speed knob, never a
            // semantics knob.
            (
                SweepGrid::new(template.clone())
                    .over_plan(&[CyclePlanMode::Planned, CyclePlanMode::Direct])
                    .seeds_per_cell(2),
                "sweep_smoke_plan",
            ),
            (
                SweepGrid::new(template)
                    .over_topology(&[
                        Layout::Star,
                        Layout::Line { hops: 2 },
                        Layout::Grid { w: 2, h: 3 },
                        Layout::Clustered,
                    ])
                    .over_stars(&[StarShape {
                        sensors: 1,
                        controllers: 2,
                        actuators: 1,
                        head: true,
                    }])
                    .seeds_per_cell(2),
                "sweep_smoke_topo",
            ),
            // Reconfiguration-plane smoke: a forwarder-kill and a
            // head-kill on the redundant 2-hop line, each swept over the
            // reroute-policy axis — static starves (or loses the control
            // plane) while heartbeat reroutes/re-elects; the epochs and
            // reroute-latency columns land in the _reconfig.csv artifact.
            (
                SweepGrid::new(
                    // Ids: GW=0, S1=1, Ctrl-A=2, Ctrl-B=3, A1=4, Head=5,
                    // R1=6, RB1=7. Kill the primary forwarder R1.
                    ScenarioBuilder::star()
                        .line(2)
                        .sensors(1)
                        .controllers(2)
                        .actuators(1)
                        .head(true)
                        .backup_relays(1)
                        .crash_node_at(NodeId(6), SimTime::from_secs(15))
                        .duration(SimDuration::from_secs(60))
                        .build(),
                )
                .over_reroute(&[ReroutePolicy::Static, ReroutePolicy::Heartbeat])
                .seeds_per_cell(2),
                "sweep_smoke_fwdkill",
            ),
            (
                SweepGrid::new(
                    // Three replicas so a backup survives re-election;
                    // ids: GW=0, S1=1, Ctrl-A..C=2..4, A1=5, Head=6,
                    // R1=7, RB1=8. Kill the head, then fault the primary.
                    ScenarioBuilder::star()
                        .line(2)
                        .sensors(1)
                        .controllers(3)
                        .actuators(1)
                        .head(true)
                        .backup_relays(1)
                        .crash_node_at(NodeId(6), SimTime::from_secs(10))
                        .fault_at(SimTime::from_secs(30), ActuatorFault::paper_fault())
                        .reconfig_epoch(SimDuration::ZERO)
                        .duration(SimDuration::from_secs(60))
                        .build(),
                )
                .over_reroute(&[ReroutePolicy::Static, ReroutePolicy::Heartbeat])
                .seeds_per_cell(2),
                "sweep_smoke_headkill",
            ),
            // Capsule-migration smoke: the head-kill with the transfer
            // lane enabled, swept over image size × slot budget — the
            // Fig. 6(b) axes. Every cell must complete one attested
            // migration, and the measured transfer latency must scale
            // with image size and shrink with slot budget (asserted
            // below); the records land in the report artifacts.
            (
                SweepGrid::new(
                    ScenarioBuilder::star()
                        .line(2)
                        .sensors(1)
                        .controllers(3)
                        .actuators(1)
                        .head(true)
                        .backup_relays(1)
                        .reroute(ReroutePolicy::Heartbeat)
                        .crash_node_at(NodeId(6), SimTime::from_secs(10))
                        .reconfig_epoch(SimDuration::ZERO)
                        .duration(SimDuration::from_secs(60))
                        .build(),
                )
                .over_capsule_size(&[0, 512])
                .over_transfer_slots(&[1, 2])
                .seeds_per_cell(2),
                "sweep_smoke_migration",
            ),
        ]
    } else {
        // The statistics grid: 2 topologies × 3 loss × 2 detection × 8
        // seeds = 96 failover runs over a 300 s horizon.
        let template = Scenario::builder()
            .duration(SimDuration::from_secs(300))
            .fault_at(SimTime::from_secs(60), ActuatorFault::paper_fault())
            .reconfig_epoch(SimDuration::ZERO)
            .build();
        vec![(
            SweepGrid::new(template)
                .over_stars(&[StarShape::fig5(), StarShape::with_controllers(3)])
                .over_loss(&[0.0, 0.1, 0.2])
                .over_detection(&[(5.0, 3), (3.0, 4)])
                .seeds_per_cell(8),
            "sweep",
        )]
    };

    for (grid, stem) in grids {
        let cells = grid.expand();
        println!(
            "{stem}: {} cells on {threads} thread(s){}",
            cells.len(),
            if smoke { " [smoke]" } else { "" }
        );
        let start = Instant::now();
        let results = run_cells(&cells, threads);
        let wall = start.elapsed().as_secs_f64();
        let report = SweepReport::build(&cells, &results);

        println!(
            "{:<40} {:>5} {:>9} {:>13} {:>10} {:>10}",
            "config", "runs", "failsafe", "failover p99", "hit ratio", "ISE"
        );
        for r in &report.rows {
            println!(
                "{:<40} {:>5} {:>9} {:>13.3} {:>10.4} {:>10.1}",
                r.key, r.runs, r.fail_safe_runs, r.failover_p99_s, r.hit_ratio, r.ise_mean
            );
        }

        if stem == "sweep_smoke_tier" {
            // Every tier row must carry identical metrics — only the
            // key's tier suffix may differ between rows.
            let csv = report.to_csv();
            let metrics: Vec<&str> = csv
                .lines()
                .skip(1)
                .map(|line| line.split_once(',').expect("keyed row").1)
                .collect();
            assert_eq!(metrics.len(), 3, "one row per tier");
            assert!(
                metrics.windows(2).all(|w| w[0] == w[1]),
                "tier rows diverged: {metrics:#?}"
            );
            // And the report must be byte-identical serial vs parallel.
            let serial = SweepReport::build(&cells, &run_cells(&cells, 1));
            assert_eq!(
                serial.to_csv(),
                report.to_csv(),
                "tier sweep report depends on thread count"
            );
            println!("tier rows metric-identical; serial/parallel reports byte-identical");
        }

        if stem == "sweep_smoke_plan" {
            // Both plan rows must carry identical metrics — only the
            // key's `|direct` suffix may differ between rows.
            let csv = report.to_csv();
            let metrics: Vec<&str> = csv
                .lines()
                .skip(1)
                .map(|line| line.split_once(',').expect("keyed row").1)
                .collect();
            assert_eq!(metrics.len(), 2, "one row per plan mode");
            assert!(
                metrics.windows(2).all(|w| w[0] == w[1]),
                "plan rows diverged: {metrics:#?}"
            );
            // And the report must be byte-identical serial vs parallel.
            let serial = SweepReport::build(&cells, &run_cells(&cells, 1));
            assert_eq!(
                serial.to_csv(),
                report.to_csv(),
                "plan sweep report depends on thread count"
            );
            println!("plan rows metric-identical; serial/parallel reports byte-identical");
        }

        if stem == "sweep_smoke_migration" {
            // Every heartbeat head-kill cell ships exactly one capsule,
            // and the measured latency is a function of image size ×
            // slot budget: bigger images cost more, wider lanes cost
            // less.
            let mean_latency = |pad: usize, slots: usize| -> f64 {
                let runs: Vec<f64> = cells
                    .iter()
                    .zip(&results)
                    .filter(|(c, _)| {
                        c.config.capsule_pad == pad && c.config.transfer_slots == slots
                    })
                    .map(|(c, r)| {
                        assert_eq!(
                            r.migrations.len(),
                            1,
                            "cell {} completed no migration",
                            c.id
                        );
                        r.migrations[0].latency.as_secs_f64()
                    })
                    .collect();
                assert!(!runs.is_empty(), "no cells at cap{pad}/xfer{slots}");
                runs.iter().sum::<f64>() / runs.len() as f64
            };
            let (small, big) = (mean_latency(0, 1), mean_latency(512, 1));
            let wide = mean_latency(512, 2);
            assert!(big > small, "512 B image not slower: {big} vs {small}");
            assert!(wide < big, "2 slots not faster: {wide} vs {big}");
            println!(
                "migration latency: {small:.3} s (0 B x1) -> {big:.3} s (512 B x1) \
                 -> {wide:.3} s (512 B x2)"
            );
        }

        let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("target/paper_results");
        for path in report.write(&dir, stem) {
            println!("-> wrote {}", path.display());
        }
        println!(
            "done: {} runs in {wall:.2} s ({:.0} simulated seconds per wall second)",
            cells.len(),
            cells
                .iter()
                .map(|c| c.scenario.duration.as_secs_f64())
                .sum::<f64>()
                / wall
        );
    }
}
