//! Batch sweep over the failover scenario grid.
//!
//! Expands a (loss × detection × topology × seeds) grid, fans it across
//! all cores with the work-stealing executor, and writes the aggregated
//! report (CSV + markdown) under `target/paper_results/`. The report is
//! byte-identical at any thread count.
//!
//! ```text
//! cargo run --release --example sweep            # the full grid
//! cargo run --release --example sweep -- --smoke # tiny CI-sized grid
//! cargo run --release --example sweep -- --threads 2
//! ```

use std::path::PathBuf;
use std::time::Instant;

use evm::core::runtime::Scenario;
use evm::plant::ActuatorFault;
use evm::prelude::*;
use evm::sweep::{available_threads, run_cells, StarShape, SweepGrid, SweepReport};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let threads = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .map_or_else(available_threads, |v| {
            v.parse().expect("--threads takes a number")
        });

    let (grid, stem) = if smoke {
        // CI-sized: 2 vcs × 2 loss × 2 seeds = 8 cells, 60 s horizon. The
        // 2-VC cells exercise the multi-VC scheduler + per-VC report rows
        // on every push.
        let template = Scenario::builder()
            .duration(SimDuration::from_secs(60))
            .fault_at(SimTime::from_secs(15), ActuatorFault::paper_fault())
            .reconfig_epoch(SimDuration::ZERO)
            .build();
        (
            SweepGrid::new(template)
                .over_vcs(&[1, 2])
                .over_loss(&[0.0, 0.2])
                .seeds_per_cell(2),
            "sweep_smoke",
        )
    } else {
        // The statistics grid: 2 topologies × 3 loss × 2 detection × 8
        // seeds = 96 failover runs over a 300 s horizon.
        let template = Scenario::builder()
            .duration(SimDuration::from_secs(300))
            .fault_at(SimTime::from_secs(60), ActuatorFault::paper_fault())
            .reconfig_epoch(SimDuration::ZERO)
            .build();
        (
            SweepGrid::new(template)
                .over_stars(&[StarShape::fig5(), StarShape::with_controllers(3)])
                .over_loss(&[0.0, 0.1, 0.2])
                .over_detection(&[(5.0, 3), (3.0, 4)])
                .seeds_per_cell(8),
            "sweep",
        )
    };

    let cells = grid.expand();
    println!(
        "sweep: {} cells on {threads} thread(s){}",
        cells.len(),
        if smoke { " [smoke]" } else { "" }
    );
    let start = Instant::now();
    let results = run_cells(&cells, threads);
    let wall = start.elapsed().as_secs_f64();
    let report = SweepReport::build(&cells, &results);

    println!(
        "{:<28} {:>5} {:>9} {:>13} {:>10} {:>10}",
        "config", "runs", "failsafe", "failover p99", "hit ratio", "ISE"
    );
    for r in &report.rows {
        println!(
            "{:<28} {:>5} {:>9} {:>13.3} {:>10.4} {:>10.1}",
            r.key, r.runs, r.fail_safe_runs, r.failover_p99_s, r.hit_ratio, r.ise_mean
        );
    }

    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("target/paper_results");
    for path in report.write(&dir, stem) {
        println!("-> wrote {}", path.display());
    }
    println!(
        "done: {} runs in {wall:.2} s ({:.0} simulated seconds per wall second)",
        cells.len(),
        cells
            .iter()
            .map(|c| c.scenario.duration.as_secs_f64())
            .sum::<f64>()
            / wall
    );
}
