//! Domain example: the paper's assembly-line motivation (§1).
//!
//! ```text
//! cargo run --release --example assembly_line_retooling
//! ```
//!
//! "With re-programmable WSAC, the assembly line stations can adapt to a
//! schedule where every 3 Camrys are interleaved with 2 Prius' with
//! synchronized changes in operation modes." Each station is a nano-RK
//! kernel; the retool is a gated task-set change, and the fixed-priority
//! executor proves no Camry operation misses its deadline through the
//! switch.

use evm::rtos::{Executor, Kernel, TaskImage, TaskSpec};
use evm::sim::{SimDuration, SimTime};

fn ms(v: u64) -> SimDuration {
    SimDuration::from_millis(v)
}

fn station(name: &str) -> Kernel {
    let mut k = Kernel::new(name);
    k.admit(
        TaskSpec::new("camry-weld", ms(30), ms(100)),
        TaskImage::typical_control_task(),
        None,
    )
    .expect("base mode fits");
    k.admit(
        TaskSpec::new("camry-inspect", ms(10), ms(200)),
        TaskImage::typical_control_task(),
        None,
    )
    .expect("base mode fits");
    k
}

fn main() {
    let mut stations: Vec<Kernel> = (1..=3).map(|i| station(&format!("station-{i}"))).collect();

    println!("camry-only mode:");
    for s in &stations {
        println!(
            "  {:<10} util {:.2}  schedulable: {}",
            s.name(),
            s.utilization(),
            s.verdict().schedulable
        );
    }

    // The retool: interleave Prius operations at every station, gated by
    // each kernel's schedulability test.
    println!("\nretooling to 3 Camry : 2 Prius...");
    for s in &mut stations {
        s.admit(
            TaskSpec::new("prius-battery", ms(40), ms(250)),
            TaskImage::typical_control_task(),
            None,
        )
        .expect("retool must pass the gate");
    }
    for s in &stations {
        println!(
            "  {:<10} util {:.2}  schedulable: {}",
            s.name(),
            s.utilization(),
            s.verdict().schedulable
        );
    }

    // Prove the mixed mode holds its deadlines over 2 s of line time.
    let set = stations[0].active_set();
    let log = Executor::new(SimTime::from_secs(2)).run(&set);
    println!(
        "\nsimulated mixed mode on {}: {} completions, {} deadline misses",
        stations[0].name(),
        (0..set.len()).map(|t| log.completions(t)).sum::<usize>(),
        log.misses.len()
    );
    assert!(log.misses.is_empty());

    // And show the gate refusing an unsafe retool.
    let err = stations[0].admit(
        TaskSpec::new("prius-paint", ms(80), ms(200)),
        TaskImage::typical_control_task(),
        None,
    );
    println!(
        "\nunsafe retool (+40% util) refused: {}",
        err.expect_err("must be refused")
    );
    println!(
        "running mode untouched: util {:.2}",
        stations[0].utilization()
    );
}
