//! Library example: writing your own EVM capsule.
//!
//! ```text
//! cargo run --release --example custom_capsule
//! ```
//!
//! The EVM is not limited to compiled PID laws: capsules are written in a
//! small FORTH-flavored assembly, packaged with integrity/attestation
//! metadata, and the instruction set can be **extended at runtime** (§3.1)
//! — here a deployed node learns a `deadband` word after install, without
//! reflashing.

use evm::core::attest::{attest_capsule, capsule_digest, AttestationKey};
use evm::core::bytecode::{assemble, disassemble, Capability, Capsule, CapsuleId, NullEnv, Vm};

fn main() {
    // A hand-written capsule: bang-bang control with hysteresis on var 0.
    // Sensor port 0 = level; actuator port 0 = pump command.
    let source = r"
        ; bang-bang level control with hysteresis
        ; var0 = pump state (0/1)
            rdsens 0
            dup
            push 60
            gt              ; level > 60 ?
            jz check_low
            push 1
            store 0         ; pump on
        check_low:
            push 40
            lt              ; level < 40 ?
            jz apply
            push 0
            store 0         ; pump off
        apply:
            load 0
            wract 0
            load 0
            halt
    ";
    let program = assemble(source).expect("valid assembly");
    println!(
        "assembled {} instructions:\n{}",
        program.len(),
        disassemble(&program)
    );

    // Package and attest it like any mobile code.
    let capsule = Capsule::new(
        CapsuleId(42),
        1,
        program,
        64,
        vec![Capability::SensorPort(0), Capability::ActuatorPort(0)],
    );
    let key = AttestationKey(0xFEED_C0DE);
    let digest = capsule_digest(&capsule, key);
    assert!(attest_capsule(&capsule, digest, key).passed());
    println!(
        "capsule {}: {} bytes on the wire, CRC {:08x}, attested OK\n",
        capsule.id,
        capsule.code_size_bytes(),
        capsule.crc()
    );

    // Run it across a level sweep.
    let mut vm = Vm::new(capsule.gas_budget);
    println!("level  pump");
    for level in [30.0, 45.0, 65.0, 55.0, 39.0, 50.0] {
        let mut env = NullEnv {
            sensor_value: level,
            ..NullEnv::default()
        };
        let pump = vm.run(&capsule.program, &mut env).expect("runs");
        println!("{level:>5}  {pump:>4}");
    }

    // Runtime ISA extension: teach the node a `deadband` word (ext 1):
    // ( x lo hi -- x-clamped-to-zero-inside-band )
    let deadband = assemble(
        r"
            ; stack: x lo hi
            store 30        ; hi
            store 31        ; lo
            dup
            load 31
            ge              ; x >= lo ?
            jz keep
            dup
            load 30
            le              ; x <= hi ?
            jz keep
            drop
            push 0
        keep:
            ret
        ",
    )
    .expect("valid word");
    vm.register_extension(1, deadband);

    let with_deadband = assemble(
        r"
            rdsens 0
            push -2
            push 2
            ext 1           ; runtime-defined word
            halt
        ",
    )
    .expect("valid program");
    println!("\nafter runtime ISA extension (deadband ±2):");
    for x in [-5.0, -1.0, 0.5, 3.0] {
        let mut env = NullEnv {
            sensor_value: x,
            ..NullEnv::default()
        };
        let y = vm.run(&with_deadband, &mut env).expect("runs");
        println!("  f({x:>4}) = {y}");
    }
}
