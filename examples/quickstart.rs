//! Quickstart: run the paper's failover scenario in ~20 lines.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds the Fig. 5 testbed (gas plant + ModBus gateway + RT-Link TDMA +
//! EVM controller nodes), injects the Fig. 6b fault (primary controller
//! stuck at 75 % instead of 11.48 % at t = 300 s), and prints the failover
//! timeline plus the recovery of the LTS level.

use evm::core::runtime::{Engine, Scenario};
use evm::prelude::*;

fn main() {
    // The paper's scenario, fully scripted: fault at 300 s, head commits
    // the failover at the 600 s epoch, primary Dormant at 800 s.
    let result = Engine::new(Scenario::fig6b()).run();

    println!("failover timeline:");
    for needle in [
        "inject",
        "confirmed deviation",
        "head commits failover",
        "Ctrl-B -> Active",
        "Ctrl-A -> Dormant",
    ] {
        if let Some(t) = result.event_time(needle) {
            println!("  {:>8.2} s  {needle}", t.as_secs_f64());
        }
    }

    let level = result.series("LTS.LiquidPct");
    println!("\nLTS liquid level:");
    for ts in [0u64, 299, 450, 600, 800, 999] {
        let v = level.value_at(SimTime::from_secs(ts)).unwrap_or(f64::NAN);
        println!("  t = {ts:>4} s  level = {v:>6.2} %");
    }

    println!(
        "\nend-to-end latency p99 = {} (deadline: 1/3 of the 250 ms cycle)",
        result.e2e_quantile(0.99).expect("latencies recorded")
    );
    println!(
        "deadline hit ratio     = {:.4}",
        result.deadline_hit_ratio()
    );
}
