//! Umbrella crate for the EVM reproduction.
//!
//! Re-exports every workspace crate under one roof so that examples,
//! integration tests and downstream users can write `use evm::core::...`.
//!
//! The paper reproduced here is:
//!
//! > R. Mangharam and M. Pajic, *Embedded Virtual Machines for Robust
//! > Wireless Control Systems*, Proc. 29th IEEE ICDCS Workshops, 2009.
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-vs-measured record.

#![forbid(unsafe_code)]

pub use evm_core as core;
pub use evm_mac as mac;
pub use evm_netsim as netsim;
pub use evm_plant as plant;
pub use evm_rtos as rtos;
pub use evm_sim as sim;
pub use evm_sweep as sweep;

/// Commonly used items, for `use evm::prelude::*`.
pub mod prelude {
    pub use evm_sim::{EventQueue, SimDuration, SimRng, SimTime, TimeSeries, Trace};
}
