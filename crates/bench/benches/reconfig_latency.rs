//! E17 — reconfiguration latency: detect → reroute → first delivered
//! frame after a forwarder dies, across multi-hop layout families.
//!
//! For each family (2-hop line with a backup chain, 3×3 grid, 3-hop
//! cluster with a backup chain) the bench finds a dedicated relay that
//! actually carries forwarding jobs on the routed flows, crashes it
//! mid-run under `ReroutePolicy::Heartbeat`, and reports in RT-Link
//! cycles:
//!
//! * **detect** — crash to the heartbeat-silence down-mark
//!   (`heartbeat_cycles` plus the per-cycle scan),
//! * **commit** — down-mark to the recomputed epoch's cycle-boundary
//!   swap,
//! * **recover** — down-mark to the first actuation delivered over the
//!   new routes (the `reroute_latency` column of the sweep reports).
//!
//! Asserted: every family detects within the silence bound, commits
//! within two cycles, resumes delivery within four, and re-regulates.
//! On the chain topologies (line, clustered) the static twin freezes
//! delivery for the rest of the run — the reroute is what keeps the
//! loop alive. The grid is different by construction: its controller
//! forwards the HIL downlink and consumes the PV en route, so the loop
//! survives the relay kill even statically — there the epoch swap
//! restores the severed sensor-publish path without ever dropping
//! delivery, and the bench asserts delivery never degrades.

use evm_bench::{banner, f, row, write_result};
use evm_core::runtime::{Engine, Layout, ReroutePolicy, Role, Scenario, ScenarioBuilder};
use evm_netsim::{NodeCrash, NodeId};
use evm_sim::{SimDuration, SimTime};
use evm_sweep::{available_threads, run_indexed};

const CRASH_S: u64 = 30;
const HORIZON_S: u64 = 120;

fn scenario(layout: Layout) -> Scenario {
    let b = ScenarioBuilder::star()
        .reroute(ReroutePolicy::Heartbeat)
        .duration(SimDuration::from_secs(HORIZON_S));
    match layout {
        Layout::Line { hops } => b
            .line(hops)
            .sensors(1)
            .controllers(2)
            .actuators(1)
            .head(true)
            .backup_relays(1)
            .build(),
        // 9 cells: 5 roles + 3 relays + the far-corner sensor — the
        // lattice's own redundancy replaces a backup chain.
        Layout::Grid { w, h } => b
            .grid(w, h)
            .sensors(1)
            .controllers(1)
            .actuators(1)
            .head(true)
            .slots_per_cycle(33)
            .build(),
        Layout::Clustered => b
            .clustered(1)
            .sensors(1)
            .controllers(2)
            .actuators(1)
            .head(true)
            .backup_relays(1)
            .slots_per_cycle(33)
            .build(),
        Layout::Star => unreachable!("single-hop stars have no forwarders"),
    }
}

/// The victim: the first dedicated relay that carries forwarding jobs in
/// the engine's own epoch-0 routes (a relay off the chosen routes would
/// be a no-op kill). Read from a built engine, so the bench can never
/// diverge from the connectivity the run actually uses.
fn loaded_relay(s: &Scenario) -> NodeId {
    let carriers = Engine::new(s.clone()).forwarding_nodes();
    s.topology
        .nodes
        .iter()
        .find(|n| matches!(n.role, Role::Relay(_)) && carriers.contains(&n.id))
        .map(|n| n.id)
        .expect("a dedicated relay carries jobs")
}

fn main() {
    banner(
        "E17",
        "reconfiguration latency: detect -> reroute -> first delivered frame",
    );
    let layouts = [
        Layout::Line { hops: 2 },
        Layout::Grid { w: 3, h: 3 },
        Layout::Clustered,
    ];
    let outcomes = run_indexed(&layouts, available_threads(), |_, &layout| {
        let mut s = scenario(layout);
        let victim = loaded_relay(&s);
        s.fault_plan
            .add_crash(NodeCrash::permanent(victim, SimTime::from_secs(CRASH_S)));
        let cycle = s.rtlink.cycle_duration();
        let hb = s.heartbeat_cycles;
        let label = s
            .topology
            .nodes
            .iter()
            .find(|n| n.id == victim)
            .expect("victim deployed")
            .label
            .clone();
        // The static twin: same crash, frozen routes.
        let mut frozen = s.clone();
        frozen.reroute = ReroutePolicy::Static;
        (
            label,
            cycle,
            hb,
            Engine::new(s).run(),
            Engine::new(frozen).run(),
        )
    });

    println!(
        "{}",
        row(&[
            "topology".into(),
            "victim".into(),
            "detect [cyc]".into(),
            "commit [cyc]".into(),
            "recover [cyc]".into(),
            "acts".into(),
            "static acts".into(),
        ])
    );
    let mut csv = String::from(
        "topology,victim,detect_cycles,commit_cycles,recover_cycles,actuations,static_actuations\n",
    );
    for (&layout, (victim, cycle, hb, r, frozen)) in layouts.iter().zip(&outcomes) {
        let crash = SimTime::from_secs(CRASH_S);
        let cyc = |d: SimDuration| d.as_secs_f64() / cycle.as_secs_f64();
        let down = r.event_time("missed heartbeats").expect("detection");
        let committed = r.event_time("epoch 1 committed").expect("commit");
        let detect = cyc(down.saturating_since(crash));
        let commit = cyc(committed.saturating_since(down));
        let recover = cyc(r.reroute_latency.expect("delivery resumed"));
        println!(
            "{}",
            row(&[
                layout.label(),
                victim.clone(),
                f(detect),
                f(commit),
                f(recover),
                format!("{}", r.actuations),
                format!("{}", frozen.actuations),
            ])
        );
        csv.push_str(&format!(
            "{},{victim},{detect:.2},{commit:.2},{recover:.2},{},{}\n",
            layout.label(),
            r.actuations,
            frozen.actuations,
        ));

        assert_eq!(r.epochs, 1, "{}: one recomputed epoch", layout.label());
        assert_eq!(frozen.epochs, 0);
        // Detection is silence-bounded; commit and recovery take cycles.
        assert!(
            detect <= (hb + 3) as f64,
            "{}: detect {detect} cycles",
            layout.label()
        );
        assert!(commit <= 2.0, "{}: commit {commit} cycles", layout.label());
        assert!(
            recover <= 4.0,
            "{}: recovery {recover} cycles",
            layout.label()
        );
        // Chain topologies starve statically — the reroute is what keeps
        // the loop alive. The grid's en-route PV consumption keeps it
        // delivering either way; the swap must at least never hurt.
        if matches!(layout, Layout::Grid { .. }) {
            assert!(
                r.actuations >= frozen.actuations,
                "{}: rerouted {} vs frozen {}",
                layout.label(),
                r.actuations,
                frozen.actuations
            );
        } else {
            assert!(
                r.actuations > 2 * frozen.actuations,
                "{}: rerouted {} vs frozen {}",
                layout.label(),
                r.actuations,
                frozen.actuations
            );
        }
        let err = r.series("Err.LC-LTS").last_value().expect("sampled");
        assert!(err.abs() < 0.5, "{}: late error {err}", layout.label());
    }
    write_result("reconfig_latency.csv", &csv);
    println!(
        "\nOK: all three multi-hop families detect a dead forwarder within the \
         heartbeat bound and resume delivery within a few cycles of the epoch swap"
    );
}
