//! E14 — §4.2 objective 4: fault tolerance vs link quality.
//!
//! Sweeps an extra per-link loss probability across full failover runs
//! (fault at 100 s, immediate-epoch head) and reports detection time,
//! switchover latency, deadline hit ratio and control cost. The point of
//! the consecutive-anomaly detector is visible here: loss delays
//! detection (observations are missed) but does not cause spurious
//! failovers.
//!
//! Ported onto the batch sweep runner: instead of one trajectory per loss
//! point, the grid pools seed replicates per point and fans the cells
//! across cores; the aggregated rows carry the same columns the single
//! runs used to print, now as statistics.

use evm_bench::{banner, f, row, write_result};
use evm_core::runtime::Scenario;
use evm_plant::ActuatorFault;
use evm_sim::{SimDuration, SimTime};
use evm_sweep::{available_threads, run_cells, SweepGrid, SweepReport};

fn main() {
    banner(
        "E14",
        "failover under link loss (fault @100 s, fast epoch, 4 seeds/point)",
    );
    let template = Scenario::builder()
        .seed(14)
        .duration(SimDuration::from_secs(600))
        .fault_at(SimTime::from_secs(100), ActuatorFault::paper_fault())
        .reconfig_epoch(SimDuration::ZERO)
        .build();
    let cells = SweepGrid::new(template)
        .over_loss(&[0.0, 0.1, 0.2, 0.4])
        .seeds_per_cell(4)
        .expand();
    let threads = available_threads();
    let results = run_cells(&cells, threads);
    let report = SweepReport::build(&cells, &results);

    println!(
        "{}",
        row(&[
            "loss".into(),
            "detect [s]".into(),
            "failover [s]".into(),
            "hit ratio".into(),
            "ISE(level)".into(),
        ])
    );
    // Per-trajectory invariants, every replicate: no spurious detection
    // before the fault, and the commit never precedes its detection.
    for (config, stats) in &report.cells {
        let detect = stats.detect_s.expect("every replicate detects");
        assert!(
            detect >= 100.0,
            "loss {}: false positive at {detect:.3} s (seed {})",
            config.loss,
            config.seed
        );
        let failover = stats.failover_s.expect("every replicate commits");
        assert!(
            failover >= 0.0,
            "loss {}: commit precedes detection by {failover:.3} s (seed {})",
            config.loss,
            config.seed
        );
        assert!(!stats.fail_safe, "a backup always survives");
    }
    let mut prev_detect = 0.0;
    for r in &report.rows {
        println!(
            "{}",
            row(&[
                format!("{:.1}", r.config.loss),
                f(r.detect_mean_s),
                f(r.failover_mean_s),
                f(r.hit_ratio),
                f(r.ise_mean),
            ])
        );
        // Every replicate detected the fault; none fell back to fail-safe.
        assert_eq!(r.detected_runs, r.runs, "loss must not defeat detection");
        assert_eq!(r.fail_safe_runs, 0, "a backup always survives");
        assert!(
            r.detect_mean_s >= prev_detect - 2.0,
            "loss should not speed detection up"
        );
        prev_detect = r.detect_mean_s;
    }
    write_result("loss_sweep.csv", &report.to_csv());
    println!(
        "\nOK: failover survives 40% loss across {} runs on {} threads; \
         detection degrades gracefully, never falsely",
        cells.len(),
        threads
    );
}
