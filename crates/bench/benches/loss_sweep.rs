//! E14 — §4.2 objective 4: fault tolerance vs link quality.
//!
//! Sweeps an extra per-link loss probability across full failover runs
//! (fault at 100 s, immediate-epoch head) and reports detection time,
//! switchover time, deadline hit ratio and control cost. The point of the
//! consecutive-anomaly detector is visible here: loss delays detection
//! (observations are missed) but does not cause spurious failovers.

use evm_bench::{banner, f, row, write_result};
use evm_core::runtime::{Engine, Scenario};
use evm_plant::ActuatorFault;
use evm_sim::{SimDuration, SimTime};

fn main() {
    banner("E14", "failover under link loss (fault @100 s, fast epoch)");
    println!(
        "{}",
        row(&[
            "loss".into(),
            "detect [s]".into(),
            "switch [s]".into(),
            "hit ratio".into(),
            "ISE(level)".into(),
        ])
    );
    let mut csv = String::from("loss,detect_s,switch_s,hit_ratio,ise\n");
    let mut prev_detect = 0.0;
    for loss in [0.0, 0.1, 0.2, 0.4] {
        let scenario = Scenario::builder()
            .seed(14)
            .duration(SimDuration::from_secs(600))
            .fault_at(SimTime::from_secs(100), ActuatorFault::paper_fault())
            .reconfig_epoch(SimDuration::ZERO)
            .extra_loss(loss)
            .build();
        let r = Engine::new(scenario).run();
        let detect = r
            .event_time("confirmed deviation")
            .map_or(f64::NAN, |t| t.as_secs_f64());
        let switch = r
            .event_time("Ctrl-B -> Active")
            .map_or(f64::NAN, |t| t.as_secs_f64());
        let ise = r.control_cost(
            "LTS.LiquidPct",
            50.0,
            SimTime::from_secs(100),
            SimTime::from_secs(600),
        );
        println!(
            "{}",
            row(&[
                format!("{loss:.1}"),
                f(detect),
                f(switch),
                f(r.deadline_hit_ratio()),
                f(ise),
            ])
        );
        csv.push_str(&format!(
            "{loss},{detect:.3},{switch:.3},{:.4},{ise:.1}\n",
            r.deadline_hit_ratio()
        ));
        // No spurious failover before the fault; detection only delayed.
        assert!(detect >= 100.0, "no false positives before the fault");
        assert!(switch >= detect, "switch follows detection");
        assert!(
            detect >= prev_detect - 2.0,
            "loss should not speed detection up"
        );
        prev_detect = detect;
    }
    write_result("loss_sweep.csv", &csv);
    println!("\nOK: failover survives 40% loss; detection degrades gracefully, never falsely");
}
