//! E2/E3 — Fig. 6(b): process outputs during primary-controller failure,
//! recovery and backup activation.
//!
//! Regenerates the paper's headline figure: the four series
//! (LTS-Liquid Percent Level, SepLiq / LTSLiq / TowerFeed molar flows)
//! over 0–1000 s with the scripted fault at T1 = 300 s (Ctrl-A outputs
//! 75 % instead of 11.48 %), backup activation at T2 = 600 s, and Ctrl-A
//! Dormant at T3 = 800 s — plus the detection/arbitration micro-timeline
//! (E3).

use evm_bench::{banner, f, row, write_result};
use evm_core::runtime::{Engine, Scenario};
use evm_sim::{merged_csv, SimTime};
use evm_sweep::{available_threads, run_indexed};

fn main() {
    banner("E2 / Fig.6b", "failover scenario time series");
    // Both epoch variants run concurrently on the sweep executor; the
    // figure reads the paper-scripted one, E3's ablation bench covers the
    // fast-epoch contrast in depth.
    let scenarios = [Scenario::fig6b(), Scenario::fig6b_fast()];
    let mut results = run_indexed(&scenarios, available_threads(), |_, s| {
        Engine::new(s.clone()).run()
    });
    let fast = results.pop().expect("fast variant ran");
    let result = results.pop().expect("paper variant ran");
    assert!(
        fast.event_time("Ctrl-B -> Active").expect("fast failover")
            < result.event_time("Ctrl-B -> Active").expect("failover"),
        "immediate epoch must switch earlier than the 300 s epoch"
    );

    // The four series of the figure, decimated to every 10 s for print.
    let tags = [
        "LTS.LiquidPct",
        "SepLiq.MolarFlow",
        "LTSLiq.MolarFlow",
        "TowerFeed.MolarFlow",
    ];
    println!(
        "{}",
        row(&[
            "t [s]".into(),
            "LTS-Level%".into(),
            "SepLiq".into(),
            "LTSLiq".into(),
            "TowerFeed".into(),
        ])
    );
    for ts in (0..=1000).step_by(50) {
        let at = SimTime::from_secs(ts);
        let mut cells = vec![format!("{ts}")];
        for tag in &tags {
            cells.push(f(result.series(tag).value_at(at).unwrap_or(f64::NAN)));
        }
        println!("{}", row(&cells));
    }

    let series: Vec<&evm_sim::TimeSeries> = tags.iter().map(|t| result.series(t)).collect();
    write_result("fig6b_series.csv", &merged_csv(&series));

    // E3: the failover micro-timeline.
    banner("E3", "failover event timeline (paper-scripted epochs)");
    for needle in [
        "inject",
        "confirmed deviation",
        "head received alert",
        "head commits failover",
        "Ctrl-B -> Active",
        "Ctrl-A -> Backup",
        "Ctrl-A -> Dormant",
    ] {
        match result.event_time(needle) {
            Some(t) => println!("  {:>10.3} s  {needle}", t.as_secs_f64()),
            None => println!("       (none)  {needle}"),
        }
    }

    let t1 = result.event_time("inject").expect("T1");
    let t2 = result.event_time("Ctrl-B -> Active").expect("T2");
    let t3 = result.event_time("Ctrl-A -> Dormant").expect("T3");
    println!(
        "\n  paper:    T1=300   T2=600   T3=800 (s)\n  measured: T1={:<5.0} T2={:<5.0} T3={:<5.0}",
        t1.as_secs_f64(),
        t2.as_secs_f64(),
        t3.as_secs_f64()
    );

    // Shape assertions.
    let level = result.series("LTS.LiquidPct");
    let pre = level.window(SimTime::from_secs(100), SimTime::from_secs(300));
    let collapse = level.window(SimTime::from_secs(500), SimTime::from_secs(600));
    let recovery = level.window(SimTime::from_secs(900), SimTime::from_secs(1000));
    assert!(pre.stats().unwrap().mean > 45.0, "stable before the fault");
    assert!(collapse.stats().unwrap().max < 20.0, "rapid drop after T1");
    assert!(
        recovery.stats().unwrap().mean > collapse.stats().unwrap().mean + 5.0,
        "slow recovery after T2"
    );
    println!(
        "\nOK: drop at T1, collapse by T2, recovery after activation — Fig. 6b shape reproduced"
    );
}
