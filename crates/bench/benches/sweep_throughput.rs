//! Sweep throughput — core scaling of the batch runner.
//!
//! Runs the same failover-bearing grid serially and on all cores, checks
//! the two reports render byte-identically (the executor's determinism
//! contract), and reports the speedup. Cells are independent engines with
//! no shared state, so scaling should be near-linear in cores; on 4+
//! cores the bench asserts at least 3×.

use std::time::Instant;

use evm_bench::{banner, f, row, write_result};
use evm_core::runtime::Scenario;
use evm_plant::ActuatorFault;
use evm_sim::{SimDuration, SimTime};
use evm_sweep::{available_threads, run_cells, SweepGrid, SweepReport};

const HORIZON_S: u64 = 120;

fn main() {
    banner(
        "E16",
        "batch sweep runner: core scaling vs the serial baseline",
    );
    let threads = available_threads();

    let template = Scenario::builder()
        .seed(16)
        .duration(SimDuration::from_secs(HORIZON_S))
        .fault_at(SimTime::from_secs(60), ActuatorFault::paper_fault())
        .reconfig_epoch(SimDuration::ZERO)
        .build();
    // Enough cells that the pool stays saturated on wide machines.
    let seeds = 16.max(4 * threads as u32);
    let cells = SweepGrid::new(template)
        .over_loss(&[0.0, 0.15])
        .seeds_per_cell(seeds)
        .expand();

    // Warmup (page-in, allocator) on a slice of the grid.
    let _ = run_cells(&cells[..threads.min(cells.len())], threads);

    let t0 = Instant::now();
    let serial = run_cells(&cells, 1);
    let serial_s = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    let parallel = run_cells(&cells, threads);
    let parallel_s = t1.elapsed().as_secs_f64();

    // Determinism across thread counts: every cell result equal, reports
    // byte-identical.
    assert_eq!(serial, parallel, "thread count must not change results");
    let report_1 = SweepReport::build(&cells, &serial);
    let report_n = SweepReport::build(&cells, &parallel);
    assert_eq!(report_1.to_csv(), report_n.to_csv());
    assert_eq!(report_1.cells_csv(), report_n.cells_csv());
    assert_eq!(report_1.to_markdown(), report_n.to_markdown());

    let speedup = serial_s / parallel_s;
    let sim_rate = cells.len() as f64 * HORIZON_S as f64 / parallel_s;
    println!(
        "  {}",
        row(&[
            "cells".into(),
            "threads".into(),
            "serial [s]".into(),
            "parallel [s]".into(),
            "speedup".into(),
            "sim-s/s".into(),
        ])
    );
    println!(
        "  {}",
        row(&[
            cells.len().to_string(),
            threads.to_string(),
            f(serial_s),
            f(parallel_s),
            f(speedup),
            f(sim_rate),
        ])
    );
    let csv = format!(
        "cells,threads,serial_s,parallel_s,speedup,sim_s_per_s\n{},{},{:.4},{:.4},{:.3},{:.1}\n",
        cells.len(),
        threads,
        serial_s,
        parallel_s,
        speedup,
        sim_rate
    );
    write_result("sweep_throughput.csv", &csv);

    if threads >= 4 {
        assert!(
            speedup >= 3.0,
            "expected ≥3x on {threads} cores, measured {speedup:.2}x"
        );
        println!("\nOK: {speedup:.2}x on {threads} cores; reports byte-identical at 1 and {threads} threads");
    } else {
        println!(
            "\nOK: reports byte-identical at 1 and {threads} thread(s); \
             {threads} core(s) is too few to claim a scaling ratio"
        );
    }
}
