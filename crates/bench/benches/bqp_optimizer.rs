//! E10 — §3.1.1 op 7: the BQP runtime optimizer.
//!
//! Compares the three assignment solvers on random task→node mapping
//! instances: exact enumeration (ground truth on small instances), greedy,
//! and simulated annealing on the BQP encoding. Reports cost ratios and
//! solve times — the data behind choosing SA for on-node runtime
//! optimization.

use std::time::Instant;

use evm_bench::{banner, f, row, write_result};
use evm_core::synthesis::{NodeRes, SynthesisProblem, TaskReq};
use evm_netsim::NodeId;
use evm_sim::SimRng;

fn random_problem(rng: &mut SimRng, n_tasks: usize, n_nodes: usize) -> SynthesisProblem {
    let tasks = (0..n_tasks)
        .map(|i| TaskReq {
            name: format!("t{i}"),
            cpu_util: rng.range(0.05, 0.3),
            slots: 1,
            sensor_node: Some(rng.index(n_nodes)),
            actuator_node: Some(rng.index(n_nodes)),
        })
        .collect();
    let nodes = (0..n_nodes)
        .map(|i| NodeRes {
            id: NodeId(i as u16),
            cpu_capacity: 0.8,
            slot_capacity: 8,
        })
        .collect();
    // Random but metric-ish hop matrix from a line arrangement.
    let hops = (0..n_nodes)
        .map(|i| (0..n_nodes).map(|j| (i as f64 - j as f64).abs()).collect())
        .collect();
    SynthesisProblem {
        tasks,
        nodes,
        hops,
        w_comm: 1.0,
        w_balance: 0.5,
    }
}

fn main() {
    banner(
        "E10",
        "BQP assignment: exact vs greedy vs annealing (30 instances)",
    );
    let mut rng = SimRng::seed_from(10);
    let instances = 30;

    println!(
        "{}",
        row(&[
            "size".into(),
            "greedy/opt".into(),
            "SA/opt".into(),
            "exact [ms]".into(),
            "SA [ms]".into(),
        ])
    );
    let mut csv = String::from("tasks,nodes,greedy_ratio,sa_ratio,exact_ms,sa_ms\n");
    for (n_tasks, n_nodes) in [(4, 3), (6, 4), (8, 4)] {
        let mut greedy_ratio = 0.0;
        let mut sa_ratio = 0.0;
        let mut exact_ms = 0.0;
        let mut sa_ms = 0.0;
        for _ in 0..instances {
            let p = random_problem(&mut rng, n_tasks, n_nodes);
            let t0 = Instant::now();
            let exact = p.cost(&p.solve_exhaustive());
            exact_ms += t0.elapsed().as_secs_f64() * 1e3;
            let greedy = p.cost(&p.solve_greedy());
            let t1 = Instant::now();
            let sa = p.cost(&p.solve_anneal(&mut rng, 4_000));
            sa_ms += t1.elapsed().as_secs_f64() * 1e3;
            greedy_ratio += greedy / exact;
            sa_ratio += sa / exact;
            assert!(
                greedy >= exact - 1e-9 && sa >= exact - 1e-9,
                "exact is a lower bound"
            );
        }
        let k = f64::from(instances);
        println!(
            "{}",
            row(&[
                format!("{n_tasks}x{n_nodes}"),
                f(greedy_ratio / k),
                f(sa_ratio / k),
                f(exact_ms / k),
                f(sa_ms / k),
            ])
        );
        csv.push_str(&format!(
            "{n_tasks},{n_nodes},{:.4},{:.4},{:.3},{:.3}\n",
            greedy_ratio / k,
            sa_ratio / k,
            exact_ms / k,
            sa_ms / k
        ));
        assert!(
            sa_ratio / k <= greedy_ratio / k + 0.02,
            "SA at least matches greedy"
        );
        assert!(sa_ratio / k < 1.10, "SA within 10% of optimum");
    }
    write_result("bqp_optimizer.csv", &csv);
    println!("\nOK: SA tracks the exact optimum within 10% at a fraction of enumeration cost");
}
