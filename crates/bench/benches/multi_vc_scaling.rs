//! E15 — multi-VC scaling: loops hosted vs. cycle length vs. failover
//! latency.
//!
//! The runtime counterpart of the `capacity_expansion` optimizer bench
//! (§4.2 objectives 2–3): instead of *planning* a bigger controller pool,
//! the engine actually *hosts* 1–4 Virtual Components on one shared
//! RT-Link cycle, crashes VC 0's primary mid-run, and reports per pool
//! size:
//!
//! * the schedule's effective cycle length (highest slot used),
//! * VC 0's crash-to-promotion failover latency,
//! * every VC's actuation count, deadline hit ratio and regulation cost.
//!
//! Asserted: the shared cycle closes every hosted loop (all VCs meet
//! deadlines and regulate), and VC 0's failover latency stays flat as
//! the pool grows — hosting more loops does not slow the fault plane.

use std::time::Instant;

use evm_bench::{banner, f, row, write_result};
use evm_core::bytecode::Tier;
use evm_core::runtime::{Engine, Scenario, ScenarioBuilder};
use evm_sim::{SimDuration, SimTime};
use evm_sweep::{available_threads, run_indexed};

const CRASH_S: u64 = 30;

fn scenario(vcs: usize) -> Scenario {
    // 1 sensor + 2 controllers + 1 actuator + head per VC: six flows per
    // chain, so four VCs exactly fill the default 24 data slots.
    ScenarioBuilder::star()
        .vcs(vcs)
        .sensors(1)
        .controllers(2)
        .actuators(1)
        .head(true)
        .crash_vc_primary_at(0, SimTime::from_secs(CRASH_S))
        .reconfig_epoch(SimDuration::ZERO)
        .duration(SimDuration::from_secs(120))
        .build()
}

fn main() {
    banner(
        "E15",
        "multi-VC scaling: loops hosted vs cycle length vs failover latency",
    );
    let pool: Vec<usize> = (1..=4).collect();
    // One engine per pool size on the sweep executor; the cycle length is
    // read off the schedule before the run.
    let outcomes = run_indexed(&pool, available_threads(), |_, &vcs| {
        let engine = Engine::new(scenario(vcs));
        let cycle_slots = engine.schedule().max_slot().expect("scheduled") + 1;
        (cycle_slots, engine.run())
    });

    println!(
        "{}",
        row(&[
            "vcs".into(),
            "nodes".into(),
            "cycle slots".into(),
            "failover [s]".into(),
            "min hit ratio".into(),
            "max rel err".into(),
        ])
    );
    let mut csv = String::from("vcs,nodes,cycle_slots,failover_s,min_hit_ratio,max_rel_err\n");
    let mut vc_csv = String::from("vcs,vc,loop,actuations,hit_ratio,ise\n");
    let mut failovers = Vec::new();
    for (&vcs, (cycle_slots, r)) in pool.iter().zip(&outcomes) {
        // Anchor the needle to VC 0: "Ctrl-B -> Active" is a substring of
        // the Vk.-prefixed promotions, so substring search alone could
        // pick up another VC's failover.
        let promoted = r
            .trace
            .entries()
            .iter()
            .find(|e| e.message == "Ctrl-B -> Active")
            .expect("VC 0 must fail over")
            .at
            .as_secs_f64();
        let failover = promoted - CRASH_S as f64;
        let min_hit = r
            .vc_stats
            .iter()
            .map(evm_core::VcRunStats::deadline_hit_ratio)
            .fold(1.0, f64::min);
        // Worst late regulation error across VCs, relative to each loop's
        // setpoint scale (after the failover settles).
        let spec = scenario(vcs);
        let max_err = (0..vcs)
            .map(|k| {
                let name = &r.vc_stats[k].loop_name;
                let scale = spec.vc_loop(k as evm_core::VcId).setpoint.abs().max(1.0);
                r.series(&format!("Err.{name}"))
                    .window(SimTime::from_secs(100), SimTime::from_secs(120))
                    .stats()
                    .map_or(f64::NAN, |s| s.max.abs().max(s.min.abs()) / scale)
            })
            .fold(0.0, f64::max);
        println!(
            "{}",
            row(&[
                format!("{vcs}"),
                format!("{}", r.meta.nodes),
                format!("{cycle_slots}"),
                f(failover),
                f(min_hit),
                f(max_err),
            ])
        );
        csv.push_str(&format!(
            "{vcs},{},{cycle_slots},{failover:.3},{min_hit:.4},{max_err:.4}\n",
            r.meta.nodes
        ));
        for (k, vs) in r.vc_stats.iter().enumerate() {
            vc_csv.push_str(&format!(
                "{vcs},{k},{},{},{:.4},{:.2}\n",
                vs.loop_name,
                vs.actuations,
                vs.deadline_hit_ratio(),
                r.series(&format!("Err.{}", vs.loop_name))
                    .window(SimTime::from_secs(CRASH_S), SimTime::from_secs(120))
                    .integral_squared_error(0.0),
            ));
        }

        // Every hosted loop closes within the shared cycle.
        assert!(min_hit > 0.99, "vcs={vcs}: hit ratio {min_hit}");
        for vs in &r.vc_stats {
            assert!(
                vs.actuations > 150,
                "vcs={vcs}: {} starved ({} actuations)",
                vs.loop_name,
                vs.actuations
            );
        }
        // Every VC settles back within 5 % of its setpoint.
        assert!(max_err < 0.05, "vcs={vcs}: late relative err {max_err}");
        failovers.push(failover);
    }
    write_result("multi_vc_scaling.csv", &csv);
    write_result("multi_vc_scaling_vcs.csv", &vc_csv);

    // The fault plane does not slow down as the pool grows: VC 0's
    // heartbeat window dominates, so latency stays within one cycle of
    // the single-VC case.
    let base = failovers[0];
    for (vcs, &fo) in pool.iter().zip(&failovers) {
        assert!(
            (fo - base).abs() < 0.5,
            "vcs={vcs}: failover latency drifted {base} -> {fo}"
        );
    }

    // End-to-end tier comparison: the full 4-VC engine run on each
    // execution tier. The runs must be *identical* — same RunResult bit
    // for bit — and the optimized tiers only change wall-clock time.
    println!();
    println!(
        "{}",
        row(&["tier".into(), "engine run [ms]".into(), "speedup".into()])
    );
    let mut tier_csv = String::from("tier,engine_run_ms,speedup_vs_interp\n");
    let mut oracle = None;
    let mut interp_ms = 0.0;
    for tier in Tier::ALL {
        let s = scenario(4);
        let start = Instant::now();
        let r = Engine::new(Scenario { tier, ..s }).run();
        let ms = start.elapsed().as_secs_f64() * 1e3;
        match &oracle {
            None => {
                interp_ms = ms;
                oracle = Some(r);
            }
            Some(o) => assert!(
                r == *o,
                "tier {} diverged from the interp oracle end-to-end",
                tier.label()
            ),
        }
        let speedup = interp_ms / ms;
        println!(
            "{}",
            row(&[tier.label().into(), f(ms), format!("{speedup:.2}x")])
        );
        tier_csv.push_str(&format!("{},{ms:.2},{speedup:.3}\n", tier.label()));
    }
    write_result("multi_vc_scaling_tiers.csv", &tier_csv);

    println!("\nOK: 1-4 VCs close every loop on one cycle; VC 0 failover latency flat; tiers byte-identical end-to-end");
}
