//! E6 — §2.1 claim: lifetime and latency vs event rate at 5 % duty.
//!
//! The second half of the RT-Link comparison claim: the ordering must hold
//! "across all … event rates". B-MAC's preamble cost makes it collapse as
//! traffic grows; S-MAC pays idle listening regardless; RT-Link pays only
//! actual airtime.

use evm_bench::{banner, f, row, write_result};
use evm_mac::{BMac, DutyCycledMac, RtLink, SMac, Workload};
use evm_netsim::Battery;

fn main() {
    banner("E6", "lifetime & latency vs event rate (5% duty, 32 B)");
    let battery = Battery::two_aa();
    let rt = RtLink::default();
    let bm = BMac::default();
    let sm = SMac::default();

    println!(
        "{}",
        row(&[
            "rate [/min]".into(),
            "rt-link [y]".into(),
            "b-mac [y]".into(),
            "s-mac [y]".into(),
            "rt lat [ms]".into(),
            "bm lat [ms]".into(),
            "sm lat [ms]".into(),
        ])
    );
    let mut csv = String::from(
        "rate_per_min,rtlink_years,bmac_years,smac_years,rt_lat_ms,bm_lat_ms,sm_lat_ms\n",
    );
    let mut rt_wins = true;
    for rate in [0.5, 1.0, 2.0, 5.0, 10.0, 30.0, 60.0, 120.0] {
        let wl = Workload::periodic(rate, 32, 6);
        let d = 0.05;
        let life = [
            rt.metrics(d, &wl, &battery).lifetime_years,
            bm.metrics(d, &wl, &battery).lifetime_years,
            sm.metrics(d, &wl, &battery).lifetime_years,
        ];
        let lat = [
            rt.delivery_latency(d, &wl).as_secs_f64() * 1e3,
            bm.delivery_latency(d, &wl).as_secs_f64() * 1e3,
            sm.delivery_latency(d, &wl).as_secs_f64() * 1e3,
        ];
        println!(
            "{}",
            row(&[
                format!("{rate}"),
                f(life[0]),
                f(life[1]),
                f(life[2]),
                f(lat[0]),
                f(lat[1]),
                f(lat[2]),
            ])
        );
        csv.push_str(&format!(
            "{rate},{:.4},{:.4},{:.4},{:.2},{:.2},{:.2}\n",
            life[0], life[1], life[2], lat[0], lat[1], lat[2]
        ));
        if life[0] <= life[1] || life[0] <= life[2] {
            rt_wins = false;
        }
    }
    write_result("mac_event_rate.csv", &csv);
    assert!(rt_wins, "RT-Link must win across all event rates");
    println!("\nOK: RT-Link dominates lifetime at every event rate");
}
