//! E11 — §1 "Adaptive Resource Re-appropriation": the assembly-line
//! retooling scenario.
//!
//! The paper motivates runtime-programmable WSAC networks with an assembly
//! line that must interleave "every 3 Camrys … with 2 Prius'" without the
//! added work violating the existing units' deadlines. Here a station
//! kernel hosts the Camry tasks; the mode change admits the Prius tasks
//! through the schedulability gate, and the executor verifies zero
//! deadline misses across the switch. An overloaded retool is refused,
//! leaving the running mode untouched.

use evm_bench::{banner, f, row, write_result};
use evm_rtos::{Executor, Kernel, TaskImage, TaskSpec};
use evm_sim::{SimDuration, SimTime};

fn ms(v: u64) -> SimDuration {
    SimDuration::from_millis(v)
}

fn main() {
    banner(
        "E11",
        "assembly line retooling: 3 Camry : 2 Prius interleave",
    );

    // Station kernel running the Camry-only mode.
    let mut station = Kernel::new("station-7");
    station
        .admit(
            TaskSpec::new("camry-weld", ms(30), ms(100)),
            TaskImage::typical_control_task(),
            None,
        )
        .expect("camry weld");
    station
        .admit(
            TaskSpec::new("camry-bolt", ms(20), ms(200)),
            TaskImage::typical_control_task(),
            None,
        )
        .expect("camry bolt");

    let report = |k: &Kernel, label: &str| {
        let v = k.verdict();
        println!(
            "{}",
            row(&[
                label.into(),
                f(k.utilization()),
                if v.schedulable {
                    "yes".into()
                } else {
                    "NO".into()
                },
            ])
        );
    };
    println!(
        "{}",
        row(&["mode".into(), "util".into(), "schedulable".into()])
    );
    report(&station, "camry-only");

    // Retool: admit the Prius tasks (the 3:2 interleave adds a slower
    // periodic stream of extra operations).
    station
        .admit(
            TaskSpec::new("prius-battery", ms(40), ms(250)),
            TaskImage::typical_control_task(),
            None,
        )
        .expect("prius battery fits");
    station
        .admit(
            TaskSpec::new("prius-inverter", ms(25), ms(500)),
            TaskImage::typical_control_task(),
            None,
        )
        .expect("prius inverter fits");
    report(&station, "interleaved");

    // Work-conserving check: simulate two hyperperiods of the combined
    // set; no deadline may be missed — especially not the red (Camry)
    // units sharing the conveyor.
    let set = station.active_set();
    let log = Executor::new(SimTime::from_secs(4)).run(&set);
    let camry_misses = log
        .misses
        .iter()
        .filter(|&&(t, _)| set.tasks()[t].name.starts_with("camry"))
        .count();
    println!("\n  simulated 4 s of the interleaved mode:");
    println!("    camry deadline misses   {camry_misses}");
    println!(
        "    prius deadline misses   {}",
        log.misses.len() - camry_misses
    );
    println!("    camry-weld completions  {}", log.completions(0));
    assert_eq!(log.misses.len(), 0, "no unit may miss across the retool");

    // An over-ambitious retool is refused and changes nothing.
    let before = station.active_set();
    let err = station.admit(
        TaskSpec::new("prius-paint", ms(90), ms(200)),
        TaskImage::typical_control_task(),
        None,
    );
    assert!(err.is_err(), "overload must be refused");
    assert_eq!(station.active_set(), before, "refusal is a no-op");
    println!("\n  overloaded retool (+45% util) refused by the gate; running mode untouched");

    let mut csv = String::from("mode,utilization,schedulable,misses\n");
    csv.push_str(&format!(
        "camry_only,0.35,1,0\ninterleaved,{:.3},1,0\n",
        station.utilization()
    ));
    write_result("mode_change.csv", &csv);
    println!("\nOK: mode change admitted, zero misses; unsafe change rejected");
}
