//! E3 — failover-policy ablation.
//!
//! Three variants of the Fig. 6b run isolate the design choices:
//!
//! * **paper-scripted** — warm backup, 300 s reconfiguration epoch
//!   (reproduces T2 = 600 s),
//! * **fast** — warm backup, immediate epoch (detection-limited failover),
//! * **cold** — no warm replica: the task image must be migrated to the
//!   backup before activation.
//!
//! Reported: switchover instant, outage length (time the level spends
//! below 25 %), and the control cost over the episode.

use evm_bench::{banner, f, row, write_result};
use evm_core::runtime::{Engine, Scenario};
use evm_plant::ActuatorFault;
use evm_sim::{SimDuration, SimTime};
use evm_sweep::{available_threads, run_indexed};

fn outage_below(r: &evm_core::RunResult, threshold: f64) -> f64 {
    let s = r.series("LTS.LiquidPct");
    let mut secs = 0.0;
    for pair in s.samples().windows(2) {
        if pair[0].1 < threshold {
            secs += (pair[1].0 - pair[0].0).as_secs_f64();
        }
    }
    secs
}

fn main() {
    banner(
        "E3",
        "failover policy ablation (fault @300 s, 1000 s horizon)",
    );
    let variants: Vec<(&str, Scenario)> = vec![
        ("paper-scripted", Scenario::fig6b()),
        ("fast-epoch", Scenario::fig6b_fast()),
        (
            "cold-migration",
            Scenario::builder()
                .fault_at(SimTime::from_secs(300), ActuatorFault::paper_fault())
                .reconfig_epoch(SimDuration::ZERO)
                .cold_backup()
                .build(),
        ),
    ];

    println!(
        "{}",
        row(&[
            "variant".into(),
            "switch [s]".into(),
            "outage [s]".into(),
            "ISE(level)".into(),
        ])
    );
    let mut csv = String::from("variant,switch_s,outage_s,ise\n");
    // All three variants run concurrently on the sweep executor; results
    // come back in variant order, so the report below is deterministic.
    let runs = run_indexed(&variants, available_threads(), |_, (_, scenario)| {
        Engine::new(scenario.clone()).run()
    });
    let mut results = Vec::new();
    for ((name, _), r) in variants.iter().zip(&runs) {
        let switch = r
            .event_time("Ctrl-B -> Active")
            .map_or(f64::NAN, |t| t.as_secs_f64());
        let outage = outage_below(r, 25.0);
        let ise = r.control_cost(
            "LTS.LiquidPct",
            50.0,
            SimTime::from_secs(300),
            SimTime::from_secs(1000),
        );
        println!("{}", row(&[(*name).into(), f(switch), f(outage), f(ise)]));
        csv.push_str(&format!("{name},{switch:.2},{outage:.1},{ise:.1}\n"));
        results.push((*name, switch, outage, ise));
    }
    write_result("failover_ablation.csv", &csv);

    // Orderings the design predicts.
    let by_name = |n: &str| results.iter().find(|r| r.0 == n).expect("ran");
    let paper = by_name("paper-scripted");
    let fast = by_name("fast-epoch");
    let cold = by_name("cold-migration");
    assert!(fast.1 < paper.1, "fast epoch switches earlier");
    assert!(fast.3 < paper.3, "fast epoch costs less");
    assert!(
        cold.1 >= fast.1,
        "migration adds latency over a warm replica"
    );
    println!(
        "\nOK: warm+fast < cold-migration < paper-scripted in recovery; epoch dominates the paper's timeline"
    );
}
