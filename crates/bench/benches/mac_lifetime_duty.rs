//! E5 — §2.1 claim: battery lifetime vs duty cycle for RT-Link, B-MAC and
//! S-MAC.
//!
//! "RT-Link outperforms asynchronous protocols such as B-MAC and loosely
//! synchronous protocols such as S-MAC across all duty cycles and event
//! rates", with "an effective battery lifetime of 1.8 years with a 5 %
//! duty cycle". Absolute years depend on battery assumptions; the *shape*
//! — RT-Link above both baselines at every duty cycle — is the claim.

use evm_bench::{banner, f, row, write_result};
use evm_mac::{BMac, DutyCycledMac, RtLink, SMac, Workload};
use evm_netsim::Battery;

fn main() {
    banner("E5", "lifetime vs duty cycle (2 pkt/min, 16 B payload)");
    let wl = Workload::periodic(2.0, 16, 6);
    let battery = Battery::two_aa();
    let protocols: Vec<Box<dyn DutyCycledMac>> = vec![
        Box::new(RtLink::default()),
        Box::new(BMac::default()),
        Box::new(SMac::default()),
    ];

    println!(
        "{}",
        row(&[
            "duty [%]".into(),
            "rt-link [y]".into(),
            "b-mac [y]".into(),
            "s-mac [y]".into(),
        ])
    );
    let duties = [0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0];
    let mut csv = String::from("duty_pct,rtlink_years,bmac_years,smac_years\n");
    let mut rtlink_always_wins = true;
    for duty_pct in duties {
        let d = duty_pct / 100.0;
        let lifetimes: Vec<f64> = protocols
            .iter()
            .map(|p| p.metrics(d, &wl, &battery).lifetime_years)
            .collect();
        println!(
            "{}",
            row(&[
                format!("{duty_pct}"),
                f(lifetimes[0]),
                f(lifetimes[1]),
                f(lifetimes[2]),
            ])
        );
        csv.push_str(&format!(
            "{duty_pct},{:.4},{:.4},{:.4}\n",
            lifetimes[0], lifetimes[1], lifetimes[2]
        ));
        if lifetimes[0] <= lifetimes[1] || lifetimes[0] <= lifetimes[2] {
            rtlink_always_wins = false;
        }
    }
    write_result("mac_lifetime_duty.csv", &csv);

    let at5 = RtLink::default().metrics(0.05, &wl, &battery);
    println!(
        "\n  paper:    RT-Link ~1.8 y at 5% duty\n  measured: RT-Link {:.2} y at 5% duty ({:.3} mA avg)",
        at5.lifetime_years, at5.avg_current_ma
    );
    assert!(
        rtlink_always_wins,
        "RT-Link must win across all duty cycles"
    );
    assert!(at5.lifetime_years > 1.0 && at5.lifetime_years < 4.0);
    println!(
        "\nOK: RT-Link dominates at every duty cycle; 5% operating point in the paper's range"
    );
}
