//! E4 — Fig. 5 + objective 5: end-to-end latency over the HIL testbed.
//!
//! The paper's objective 5 requires a control cycle of 1/4 s or less with
//! latency ≤ 1/3 of the cycle. This bench runs the 7-node testbed for
//! 5 minutes and reports the sensor→actuator latency distribution and the
//! deadline hit ratio.

use evm_bench::{banner, write_result};
use evm_core::runtime::{Engine, Scenario};
use evm_sim::SimDuration;

fn main() {
    banner("E4 / Fig.5", "hardware-in-loop end-to-end latency");
    let scenario = Scenario::builder()
        .duration(SimDuration::from_secs(300))
        .build();
    let cycle = scenario.rtlink.cycle_duration();
    let result = Engine::new(scenario).run();

    println!("  control cycle        {cycle}");
    println!("  actuations           {}", result.actuations);
    for (label, q) in [("p50", 0.5), ("p90", 0.9), ("p99", 0.99), ("max", 1.0)] {
        let v = result.e2e_quantile(q).expect("latencies recorded");
        println!("  latency {label:<12} {v}");
    }
    let deadline = cycle / 3;
    println!("  deadline (cycle/3)   {deadline}");
    println!("  deadline hit ratio   {:.4}", result.deadline_hit_ratio());

    let mut csv = String::from("quantile,latency_us\n");
    for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0] {
        let v = result.e2e_quantile(q).expect("latencies");
        csv.push_str(&format!("{q},{}\n", v.as_micros()));
    }
    write_result("fig5_hil_latency.csv", &csv);

    // Per-node radio energy over the run (the testbed's energy budget).
    println!("\n  per-node radio energy:");
    println!(
        "    {:<8} {:>10} {:>12} {:>12}",
        "node", "duty [%]", "avg [mA]", "life [y]"
    );
    let mut names: Vec<&String> = result.node_energy.keys().collect();
    names.sort();
    let mut ecsv = String::from("node,radio_duty,avg_ma,lifetime_years\n");
    for name in names {
        let e = &result.node_energy[name];
        println!(
            "    {:<8} {:>10.2} {:>12.4} {:>12.2}",
            name,
            e.radio_duty * 100.0,
            e.avg_current_ma,
            e.lifetime_years
        );
        ecsv.push_str(&format!(
            "{name},{:.5},{:.5},{:.3}\n",
            e.radio_duty, e.avg_current_ma, e.lifetime_years
        ));
    }
    write_result("fig5_node_energy.csv", &ecsv);

    assert!(cycle <= SimDuration::from_millis(250), "objective 5: cycle");
    assert!(
        result.e2e_quantile(0.99).unwrap() <= deadline,
        "objective 5: latency <= 1/3 cycle"
    );
    println!("\nOK: cycle <= 250 ms and p99 latency within 1/3 cycle (objective 5 holds)");
}
