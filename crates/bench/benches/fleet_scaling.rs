//! E18 — fleet scaling: one engine process hosting 1 → 10 000 Virtual
//! Components.
//!
//! The fleet deployment ([`ScenarioBuilder::fleet`]) puts `n` VCs on a
//! serial RT-Link schedule with 8× slot headroom, and this bench times
//! whole engine runs at each fleet size, reporting simulated slots per
//! wall-clock second. At every size up to 1k VCs the legacy per-slot
//! event stream is timed on the identical scenario, so the table
//! carries the event-driven cursor's speedup directly; at 10k only the
//! cursor runs (the per-slot driver is the reason this bench exists).
//! A second row family stretches the same fleet to a 1024× headroom
//! (≈ 0.1 % duty cycle — low-power TDMA territory), where idle slots
//! dominate the legacy driver's wall time and the cursor's batch-skip
//! pays in full.
//!
//! A third row family compares the occupied-slot execution strategies
//! on the dense fleet: the epoch-compiled cycle plan
//! ([`CyclePlanMode::Planned`], the default) against the direct
//! per-slot oracle, both on the event-driven cursor — the dense rows
//! are bounded by exactly the per-occupied-slot work the plan
//! pre-resolves.
//!
//! Asserted: the 10k-VC run completes; the cursor's slots/sec is at
//! least 10× legacy at 1k VCs on the sparse schedule; the compiled
//! plan's slots/sec is at least 1.5× the direct oracle at 1k VCs on
//! the dense schedule; and at 100 VCs both steppings and both plan
//! modes produce **equal** [`evm_core::RunResult`]s — speed is the
//! only difference.
//!
//! Every row's baseline column holds the retired strategy it is
//! measured against: legacy stepping for the dense/sparse stepping
//! rows, the direct oracle for the plan rows.
//!
//! Writes `fleet_scaling.csv` and `fleet_scaling.json`. Pass `--smoke`
//! for the CI-sized run (1 / 100 / 1000 VCs, same files).

use std::time::Instant;

use evm_bench::{banner, f, row, write_result};
use evm_core::runtime::{CyclePlanMode, Engine, Scenario, SlotStepping};
use evm_core::RunResult;

/// Fleet scenario sized for benching: enough cycles for a stable
/// measurement at small `n`, two cycles at 10k (≈ 480k slots).
fn scenario(n: usize, stepping: SlotStepping) -> Scenario {
    let mut s = Scenario::builder().fleet(n).stepping(stepping).build();
    let spc = s.rtlink.slots_per_cycle as u64;
    let cycles = (200_000 / spc).clamp(2, 100);
    s.duration = s.rtlink.cycle_duration() * cycles;
    s
}

/// The dense fleet under an explicit occupied-slot execution strategy
/// (event-driven cursor on both sides — the plan axis is orthogonal to
/// stepping).
fn plan_scenario(n: usize, plan: CyclePlanMode) -> Scenario {
    let mut s = scenario(n, SlotStepping::EventDriven);
    s.plan = plan;
    s
}

/// The ultra-sparse variant: the same fleet, stretched to a 1024×
/// slot-count headroom (≈ 0.1 % duty cycle — low-power TDMA territory,
/// where a node transmits for milliseconds and sleeps for minutes).
/// The serial schedule packs the same occupied slots at the front of
/// the cycle; everything added is idle air the cursor never visits and
/// the legacy driver pays one queue event for.
fn sparse_scenario(n: usize, stepping: SlotStepping) -> Scenario {
    let mut s = Scenario::builder().fleet(n).stepping(stepping).build();
    s.rtlink.slots_per_cycle = 1024 * (3 * n + 1);
    let cycle = s.rtlink.cycle_duration();
    s.sample_every = cycle / 4;
    // Engine throughput is the quantity under test, not plant fidelity:
    // integrate the (unconditionally stable) plant at cycle/64 so the
    // physics cost stays constant as the cycle stretches.
    s.plant_dt = s.plant_dt.max(cycle / 64);
    s.duration = cycle * 2;
    s
}

/// Runs a pre-built scenario `reps` times, returning the best wall
/// time, the slot count and one result. Engine construction stays
/// outside the timed region — setup cost is not what this bench
/// measures — and best-of-`reps` suppresses first-run jitter (cold
/// caches, frequency ramp) on the rows whose ratio is asserted.
fn timed(s: Scenario, reps: usize) -> (f64, u64, RunResult) {
    let slots = s.duration / s.rtlink.slot_duration;
    let mut best = f64::INFINITY;
    let mut result = None;
    for _ in 0..reps.max(1) {
        let engine = Engine::new(s.clone());
        let start = Instant::now();
        let r = engine.run();
        best = best.min(start.elapsed().as_secs_f64());
        result = Some(r);
    }
    (best, slots, result.expect("at least one reps"))
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    banner(
        "E18",
        if smoke {
            "fleet scaling: slots/sec, 1 -> 1k VCs (smoke)"
        } else {
            "fleet scaling: slots/sec, 1 -> 10k VCs"
        },
    );
    let sizes: &[usize] = if smoke {
        &[1, 100, 1_000]
    } else {
        &[1, 10, 100, 1_000, 10_000]
    };

    // Differential spot checks: at 100 VCs both steppings and both
    // plan modes produce the same result, byte for byte.
    {
        let legacy = Engine::new(scenario(100, SlotStepping::Legacy)).run();
        let event = Engine::new(scenario(100, SlotStepping::EventDriven)).run();
        assert!(legacy.actuations > 0, "fleet run must actuate");
        assert!(event == legacy, "steppings diverged at 100 VCs");
        let direct = Engine::new(plan_scenario(100, CyclePlanMode::Direct)).run();
        assert!(event == direct, "plan modes diverged at 100 VCs");
    }

    println!(
        "{}",
        row(&[
            "vcs".into(),
            "nodes".into(),
            "slots".into(),
            "wall [s]".into(),
            "slots/s".into(),
            "baseline slots/s".into(),
            "speedup".into(),
        ])
    );
    let mut csv =
        String::from("schedule,vcs,nodes,slots,wall_s,slots_per_s,baseline_slots_per_s,speedup\n");
    let mut json_rows = Vec::new();
    let mut speedup_at_1k = f64::NAN;
    let mut run_row =
        |kind: &str, n: usize, reps: usize, primary: Scenario, baseline: Option<Scenario>| {
            let (wall, slots, r) = timed(primary, reps);
            assert!(r.actuations > 0, "{kind} fleet of {n} must actuate");
            let rate = slots as f64 / wall;
            let baseline_rate = baseline.map(|s| {
                let (baseline_wall, _, br) = timed(s, reps);
                assert!(
                    br.actuations > 0,
                    "baseline {kind} fleet of {n} must actuate"
                );
                slots as f64 / baseline_wall
            });
            let speedup = baseline_rate.map(|b| rate / b);
            println!(
                "{}",
                row(&[
                    format!("{kind}/{n}"),
                    format!("{}", r.meta.nodes),
                    format!("{slots}"),
                    f(wall),
                    f(rate),
                    baseline_rate.map_or_else(|| "-".into(), f),
                    speedup.map_or_else(|| "-".into(), f),
                ])
            );
            csv.push_str(&format!(
                "{kind},{n},{},{slots},{wall:.4},{rate:.1},{},{}\n",
                r.meta.nodes,
                baseline_rate.map_or_else(String::new, |v| format!("{v:.1}")),
                speedup.map_or_else(String::new, |v| format!("{v:.2}")),
            ));
            json_rows.push((
                kind.to_string(),
                n,
                r.meta.nodes,
                slots,
                wall,
                rate,
                speedup,
            ));
            speedup
        };

    // Dense rows: the default fleet shape (8× headroom) at every size.
    // The legacy driver pays one queue event per slot; at 10k VCs (240k
    // slots/cycle) that is the regime this PR retires, so the baseline
    // is only timed up to 1k.
    for &n in sizes {
        let legacy = (n <= 1_000).then(|| scenario(n, SlotStepping::Legacy));
        run_row(
            "dense",
            n,
            1,
            scenario(n, SlotStepping::EventDriven),
            legacy,
        );
    }

    // Sparse rows: the 1024× headroom shape, where idle air dominates
    // and the cursor's batch-skip is the whole game. This is the
    // headline speedup — the dense rows share their wall time between
    // slot advancement and per-cycle node work, which no stepping
    // strategy can skip.
    for &n in &[100usize, 1_000] {
        let s = run_row(
            "sparse",
            n,
            3,
            sparse_scenario(n, SlotStepping::EventDriven),
            Some(sparse_scenario(n, SlotStepping::Legacy)),
        );
        if n == 1_000 {
            speedup_at_1k = s.expect("legacy timed at 1k");
        }
    }

    assert!(
        speedup_at_1k >= 10.0,
        "event-driven cursor must be >= 10x legacy at 1k VCs on the \
         sparse schedule (got {speedup_at_1k:.2}x)"
    );

    // Plan rows: the epoch-compiled cycle plan vs the direct per-slot
    // oracle on the dense fleet. Dense schedules are bounded by
    // occupied-slot dispatch — the floor the plan flattens — so this is
    // where the win must show.
    let mut plan_speedup_at_1k = f64::NAN;
    let plan_sizes: &[usize] = if smoke { &[1_000] } else { &[1_000, 10_000] };
    for &n in plan_sizes {
        let s = run_row(
            "plan",
            n,
            3,
            plan_scenario(n, CyclePlanMode::Planned),
            Some(plan_scenario(n, CyclePlanMode::Direct)),
        );
        if n == 1_000 {
            plan_speedup_at_1k = s.expect("direct oracle timed at 1k");
        }
    }
    assert!(
        plan_speedup_at_1k >= 1.5,
        "compiled cycle plan must be >= 1.5x the direct oracle at 1k VCs \
         on the dense schedule (got {plan_speedup_at_1k:.2}x)"
    );

    write_result("fleet_scaling.csv", &csv);
    let mut out = String::from("{\n  \"bench\": \"fleet_scaling\",\n");
    out.push_str(&format!("  \"smoke\": {smoke},\n  \"rows\": [\n"));
    for (i, (kind, n, nodes, slots, wall, rate, speedup)) in json_rows.iter().enumerate() {
        let comma = if i + 1 == json_rows.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"schedule\": \"{kind}\", \"vcs\": {n}, \"nodes\": {nodes}, \
             \"slots\": {slots}, \"wall_s\": {wall:.4}, \
             \"slots_per_s\": {rate:.1}, \"speedup_vs_baseline\": {}}}{comma}\n",
            speedup.map_or_else(|| "null".into(), |v| format!("{v:.2}")),
        ));
    }
    out.push_str(&format!(
        "  ],\n  \"speedup_at_1k_sparse\": {speedup_at_1k:.2},\n  \
         \"plan_speedup_at_1k\": {plan_speedup_at_1k:.2}\n}}\n"
    ));
    write_result("fleet_scaling.json", &out);
}
