//! E8 — §3.1.1 op 1 / §4: task-migration latency.
//!
//! Sweeps the migrated image size (TCB + stack + data + metadata) and the
//! link loss rate, reporting the analytic loss-free plan and the sampled
//! lossy execution (mean over 200 runs, per-chunk ARQ).

use evm_bench::{banner, f, row, write_result};
use evm_core::migration::{execute_migration, MigrationPlan};
use evm_rtos::TaskImage;
use evm_sim::{SimDuration, SimRng};

fn main() {
    banner("E8", "task migration latency vs image size and loss");
    let cycle = SimDuration::from_millis(250);
    let mut rng = SimRng::seed_from(8);

    println!(
        "{}",
        row(&[
            "image [B]".into(),
            "frames".into(),
            "plan [s]".into(),
            "p=0.1 [s]".into(),
            "p=0.3 [s]".into(),
            "p=0.5 [s]".into(),
        ])
    );
    let mut csv = String::from("image_bytes,frames,plan_s,loss10_s,loss30_s,loss50_s\n");
    let images = [
        ("minimal", TaskImage::with_sizes(32, 64, 16, 16)),
        ("typical", TaskImage::typical_control_task()),
        ("stateful", TaskImage::with_sizes(32, 1024, 512, 64)),
        ("heavy", TaskImage::with_sizes(32, 4096, 2048, 128)),
    ];
    for (_, image) in &images {
        let plan = MigrationPlan::new(image, 1, cycle);
        let mut cells = vec![
            format!("{}", plan.image_bytes),
            format!("{}", plan.frames),
            f(plan.duration.as_secs_f64()),
        ];
        let mut csv_row = format!(
            "{},{},{:.3}",
            plan.image_bytes,
            plan.frames,
            plan.duration.as_secs_f64()
        );
        for loss in [0.1, 0.3, 0.5] {
            let runs = 200;
            let mean: f64 = (0..runs)
                .map(|_| {
                    execute_migration(&plan, loss, 10_000, &mut rng)
                        .expect("bounded loss converges")
                        .duration
                        .as_secs_f64()
                })
                .sum::<f64>()
                / f64::from(runs);
            cells.push(f(mean));
            csv_row.push_str(&format!(",{mean:.3}"));
        }
        println!("{}", row(&cells));
        csv.push_str(&csv_row);
        csv.push('\n');
    }
    write_result("migration_latency.csv", &csv);

    // Shape: latency grows with image size and with loss.
    let small = MigrationPlan::new(&images[0].1, 1, cycle);
    let big = MigrationPlan::new(&images[3].1, 1, cycle);
    assert!(big.duration > small.duration);
    println!(
        "\nOK: migration cost scales with state size; ARQ absorbs loss at bounded latency cost"
    );
}
