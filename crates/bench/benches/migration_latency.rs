//! E8 — §3.1.1 op 1 / §4: live capsule-migration latency.
//!
//! End-to-end in the runtime: a head-kill under `ReroutePolicy::Heartbeat`
//! triggers a re-election, and the reconfiguration plane ships the
//! primary's capsule image to the new head over the epoch's scheduled
//! transfer slots (stop-and-wait, per-chunk ack). The bench sweeps the
//! image size (synthetic padding) × the per-cycle transfer-slot budget
//! and reports the *measured* transfer latency from each run's migration
//! record — the Fig. 6(b) failover-latency machinery as a function of
//! capsule size and slot bandwidth.

use evm_bench::{banner, f, row, write_result};
use evm_core::runtime::{Engine, ReroutePolicy, ScenarioBuilder};
use evm_netsim::NodeId;
use evm_sim::{SimDuration, SimTime};

/// Head-kill scenario with the migration lane enabled: killing the head
/// re-elects a backup controller, which triggers the capsule transfer.
fn scenario(pad_bytes: usize, slots: usize) -> evm_core::runtime::Scenario {
    ScenarioBuilder::star()
        .line(2)
        .sensors(1)
        .controllers(3)
        .actuators(1)
        .head(true)
        .backup_relays(1)
        .reroute(ReroutePolicy::Heartbeat)
        .crash_node_at(NodeId(6), SimTime::from_secs(10))
        .reconfig_epoch(SimDuration::ZERO)
        .duration(SimDuration::from_secs(60))
        .capsule_pad_bytes(pad_bytes)
        .transfer_slots(slots)
        .build()
}

fn main() {
    banner(
        "E8",
        "live capsule-migration latency vs image size and slot budget",
    );

    let pads = [0usize, 256, 1024, 4096];
    let budgets = [1usize, 2, 4];

    println!(
        "{}",
        row(&[
            "pad [B]".into(),
            "image [B]".into(),
            "frames".into(),
            "x1 [s]".into(),
            "x2 [s]".into(),
            "x4 [s]".into(),
        ])
    );
    let mut csv = String::from("pad_bytes,image_bytes,frames,slots,frames_sent,latency_s\n");
    // latencies[pad index][budget index]
    let mut latencies = vec![vec![0.0f64; budgets.len()]; pads.len()];
    let mut table: Vec<Vec<String>> = Vec::new();
    for (pi, &pad) in pads.iter().enumerate() {
        let mut cells: Vec<String> = vec![format!("{pad}")];
        for (bi, &slots) in budgets.iter().enumerate() {
            let r = Engine::new(scenario(pad, slots)).run();
            assert_eq!(r.migrations.len(), 1, "head-kill must migrate exactly once");
            let m = &r.migrations[0];
            let lat = m.latency.as_secs_f64();
            latencies[pi][bi] = lat;
            if bi == 0 {
                cells.push(format!("{}", m.image_bytes));
                cells.push(format!("{}", m.frames));
            }
            cells.push(f(lat));
            csv.push_str(&format!(
                "{pad},{},{},{slots},{},{lat:.3}\n",
                m.image_bytes, m.frames, m.frames_sent
            ));
        }
        table.push(cells);
    }
    for cells in &table {
        println!("{}", row(cells));
    }
    write_result("migration_latency.csv", &csv);

    // Shape: at a fixed slot budget the measured latency grows with the
    // image size; at a fixed (large) image it shrinks as the lane widens.
    for bi in 0..budgets.len() {
        for pi in 1..pads.len() {
            assert!(
                latencies[pi][bi] >= latencies[pi - 1][bi],
                "latency not monotone in image size at x{}: {} B {} s vs {} B {} s",
                budgets[bi],
                pads[pi],
                latencies[pi][bi],
                pads[pi - 1],
                latencies[pi - 1][bi],
            );
        }
    }
    let heavy = pads.len() - 1;
    for bi in 1..budgets.len() {
        assert!(
            latencies[heavy][bi] <= latencies[heavy][bi - 1],
            "latency not monotone in slot budget: x{} {} s vs x{} {} s",
            budgets[bi],
            latencies[heavy][bi],
            budgets[bi - 1],
            latencies[heavy][bi - 1],
        );
    }
    // And the big-image, narrow-lane corner is strictly separated from
    // the small-image one — the latency really is a function of
    // size × bandwidth, not a constant failover overhead.
    assert!(latencies[heavy][0] > latencies[0][0] * 2.0);
    println!(
        "\nOK: measured transfer latency scales with capsule size and \
         inversely with the slot budget"
    );
}
