//! Scenario diversity — end-to-end engine throughput across builder-made
//! topologies of increasing node count.
//!
//! Times a fixed 120 s simulated horizon on three deployments the
//! `ScenarioBuilder` DSL can express (the degenerate 3-node loop, the
//! paper's 7-node Fig. 5 star, and a wide 11-node star) and reports
//! wall-clock per run plus the achieved simulated-seconds-per-second —
//! the capacity headroom for batch sweeps.

use std::time::Instant;

use evm_bench::{banner, f, row, write_result};
use evm_core::runtime::{Engine, ScenarioBuilder};
use evm_sim::SimDuration;

const HORIZON_S: u64 = 120;

fn main() {
    banner("E15", "engine throughput across topology sizes");

    let cases: Vec<(&str, ScenarioBuilder)> = vec![
        ("minimal-3", ScenarioBuilder::minimal()),
        ("fig5-7", ScenarioBuilder::star()),
        (
            "wide-11",
            ScenarioBuilder::star()
                .sensors(4)
                .controllers(4)
                .actuators(1)
                .head(true),
        ),
    ];

    println!(
        "  {}",
        row(&[
            "topology".into(),
            "nodes".into(),
            "wall ms".into(),
            "sim-s/s".into(),
            "actuations".into(),
        ])
    );
    let mut csv = String::from("topology,nodes,wall_ms,sim_speedup,actuations\n");
    for (name, builder) in cases {
        let scenario = builder.duration(SimDuration::from_secs(HORIZON_S)).build();
        let nodes = scenario.topology.nodes.len();
        // Warmup run (page-in, allocator), then the timed run.
        let _ = Engine::new(scenario.clone()).run();
        let start = Instant::now();
        let result = Engine::new(scenario).run();
        let wall = start.elapsed();
        let wall_ms = wall.as_secs_f64() * 1e3;
        let speedup = HORIZON_S as f64 / wall.as_secs_f64();
        assert!(
            result.deadline_hit_ratio() > 0.99,
            "{name}: deadline ratio {}",
            result.deadline_hit_ratio()
        );
        println!(
            "  {}",
            row(&[
                name.into(),
                nodes.to_string(),
                f(wall_ms),
                f(speedup),
                result.actuations.to_string(),
            ])
        );
        csv.push_str(&format!(
            "{name},{nodes},{wall_ms:.3},{speedup:.1},{}\n",
            result.actuations
        ));
    }
    write_result("scenario_diversity.csv", &csv);
}
