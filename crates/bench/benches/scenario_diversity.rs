//! Scenario diversity — end-to-end engine throughput across builder-made
//! topologies of increasing node count.
//!
//! Times a fixed 120 s simulated horizon on three deployments expressed
//! as one sweep-grid star axis (the degenerate 3-node loop, the paper's
//! 7-node Fig. 5 star, and a wide 11-node star) and reports wall-clock
//! per run plus the achieved simulated-seconds-per-second — the capacity
//! headroom for batch sweeps. A final section runs the whole grid through
//! the work-stealing executor to show the batch path end to end.

use std::time::Instant;

use evm_bench::{banner, f, row, write_result};
use evm_core::runtime::{Engine, Scenario};
use evm_sim::SimDuration;
use evm_sweep::{available_threads, run_cells, StarShape, SweepGrid, SweepReport};

const HORIZON_S: u64 = 120;

fn main() {
    banner("E15", "engine throughput across topology sizes");

    let mut template = Scenario::baseline();
    template.duration = SimDuration::from_secs(HORIZON_S);
    let shapes = [
        (
            "minimal-3",
            StarShape {
                sensors: 1,
                controllers: 1,
                actuators: 0,
                head: false,
            },
        ),
        ("fig5-7", StarShape::fig5()),
        (
            "wide-11",
            StarShape {
                sensors: 4,
                controllers: 4,
                actuators: 1,
                head: true,
            },
        ),
    ];
    let grid = SweepGrid::new(template).over_stars(&shapes.map(|(_, s)| s));
    let cells = grid.expand();

    println!(
        "  {}",
        row(&[
            "topology".into(),
            "nodes".into(),
            "wall ms".into(),
            "sim-s/s".into(),
            "actuations".into(),
        ])
    );
    let mut csv = String::from("topology,nodes,wall_ms,sim_speedup,actuations\n");
    for ((name, _), cell) in shapes.iter().zip(&cells) {
        let nodes = cell.scenario.topology.nodes.len();
        // Warmup run (page-in, allocator), then the timed run.
        let _ = Engine::new(cell.scenario.clone()).run();
        let start = Instant::now();
        let result = Engine::new(cell.scenario.clone()).run();
        let wall = start.elapsed();
        let wall_ms = wall.as_secs_f64() * 1e3;
        let speedup = HORIZON_S as f64 / wall.as_secs_f64();
        assert!(
            result.deadline_hit_ratio() > 0.99,
            "{name}: deadline ratio {}",
            result.deadline_hit_ratio()
        );
        println!(
            "  {}",
            row(&[
                (*name).into(),
                nodes.to_string(),
                f(wall_ms),
                f(speedup),
                result.actuations.to_string(),
            ])
        );
        csv.push_str(&format!(
            "{name},{nodes},{wall_ms:.3},{speedup:.1},{}\n",
            result.actuations
        ));
    }
    write_result("scenario_diversity.csv", &csv);

    // The batch path: the same grid through the executor + aggregator.
    let threads = available_threads();
    let start = Instant::now();
    let results = run_cells(&cells, threads);
    let batch_ms = start.elapsed().as_secs_f64() * 1e3;
    let report = SweepReport::build(&cells, &results);
    assert_eq!(report.rows.len(), shapes.len());
    println!(
        "  batch: {} cells on {threads} thread(s) in {batch_ms:.1} ms \
         ({:.1} simulated seconds per wall second)",
        cells.len(),
        cells.len() as f64 * HORIZON_S as f64 / (batch_ms / 1e3)
    );
}
