//! E1 — Fig. 4: natural-gas plant steady-state stream table.
//!
//! Regenerates the UniSim "workbook" view of the flowsheet: every major
//! stream with flow, temperature, pressure and vapor fraction, plus the
//! product-spec row (bottoms propane content). The paper shows the
//! flowsheet; this is its operating point under the 8 standard loops.

use evm_bench::{banner, f, row, write_result};
use evm_plant::{standard_loops, GasPlant, LocalController, Plant};

fn main() {
    banner("E1 / Fig.4", "natural gas plant steady state");

    // Run the closed-loop plant to steady state (30 simulated minutes).
    let mut plant = GasPlant::default();
    let mut loops: Vec<LocalController> = standard_loops()
        .into_iter()
        .map(LocalController::new)
        .collect();
    let dt = 0.25;
    let mut t = 0.0;
    for _ in 0..(1800.0 / dt) as usize {
        for c in &mut loops {
            let _ = c.poll(&mut plant, t);
        }
        plant.step(dt);
        t += dt;
    }

    let get = |tag: &str| plant.read_tag(tag).unwrap_or(f64::NAN);
    println!(
        "{}",
        row(&[
            "stream".into(),
            "kmol/h".into(),
            "T [K]".into(),
            "P [kPa]".into(),
        ])
    );
    let feed = plant.config().feed_kmolh;
    let rows: Vec<(&str, f64, f64, f64)> = vec![
        (
            "RawFeed",
            feed,
            plant.config().feed_t_k,
            plant.config().feed_p_kpa,
        ),
        (
            "SepLiq",
            get("SepLiq.MolarFlow"),
            plant.config().feed_t_k,
            plant.config().feed_p_kpa,
        ),
        (
            "ChillerOut",
            feed - get("SepLiq.MolarFlow"),
            get("Chiller.OutletTempK"),
            plant.config().lts_p_kpa,
        ),
        (
            "SalesGas",
            get("SalesGas.MolarFlow"),
            get("SalesGas.TempK"),
            plant.config().lts_p_kpa,
        ),
        (
            "LTSLiq",
            get("LTSLiq.MolarFlow"),
            get("Chiller.OutletTempK"),
            plant.config().lts_p_kpa,
        ),
        (
            "TowerFeed",
            get("TowerFeed.MolarFlow"),
            get("Chiller.OutletTempK"),
            plant.config().column_p_kpa,
        ),
        (
            "Bottoms",
            get("Bottoms.MolarFlow"),
            360.0,
            get("Column.PressureKPa"),
        ),
        (
            "Distillate",
            get("Distillate.MolarFlow"),
            310.0,
            get("Column.PressureKPa"),
        ),
    ];
    let mut csv = String::from("stream,kmol_h,t_k,p_kpa\n");
    for (name, flow, tk, pk) in &rows {
        println!("{}", row(&[(*name).into(), f(*flow), f(*tk), f(*pk)]));
        csv.push_str(&format!("{name},{flow:.3},{tk:.2},{pk:.1}\n"));
    }

    println!();
    println!("operating point:");
    println!(
        "  LTS level            {:>8.2} %  (SP 50)",
        get("LTS.LiquidPct")
    );
    println!(
        "  LTS liquid valve     {:>8.2} %  (paper: 11.48)",
        get("LTSLiqValve.OpeningPct")
    );
    println!(
        "  bottoms C3 fraction  {:>8.4}    (low-propane spec)",
        get("Column.BottomsC3Frac")
    );
    println!(
        "  column pressure      {:>8.1} kPa (SP 1400)",
        get("Column.PressureKPa")
    );
    csv.push_str(&format!(
        "#lts_level,{:.3}\n#lts_valve_pct,{:.3}\n#bottoms_c3,{:.5}\n",
        get("LTS.LiquidPct"),
        get("LTSLiqValve.OpeningPct"),
        get("Column.BottomsC3Frac")
    ));
    write_result("fig4_steady_state.csv", &csv);

    // Shape assertions: the bench itself validates the reproduction.
    assert!(
        (get("LTS.LiquidPct") - 50.0).abs() < 3.0,
        "LTS level regulated"
    );
    assert!(
        (get("TowerFeed.MolarFlow") - get("SepLiq.MolarFlow") - get("LTSLiq.MolarFlow")).abs()
            < 1.0,
        "mixer balance"
    );
    println!("\nOK: level regulated, mass balance closed");
}
