//! E13 — interpreter microbenchmarks, per execution tier.
//!
//! Measures the EVM's execution machinery across the three capsule
//! tiers (stack oracle / superinstruction-fused / compiled closure
//! chain): raw dispatch throughput on the countdown loop, the compiled
//! PID capsule against the native controller, capsule I/O through the
//! inline-caching ModBus environment, and capsule encode/decode (the
//! migration serialization path). Self-timed with a warmup pass and
//! median-of-runs reporting, like the other figure benches.
//!
//! Writes `vm_dispatch.csv` plus a machine-readable `vm_dispatch.json`
//! carrying the tier speedups the paper claims (compiled vs interp on
//! the arith loop and the PID capsule). Pass `--smoke` for a fast CI
//! run with reduced iteration counts — same rows, same files.

use std::hint::black_box;
use std::time::Instant;

use evm_bench::{banner, f, row, write_result};
use evm_core::bytecode::{
    compile_control_law, control_law_gas_budget, ControlLawSpec, ModbusBatchEnv, ModbusCachedEnv,
    NullEnv, Op, Program, Tier, Vm,
};
use evm_plant::{lts_level_loop, GasPlant, LocalController, PlantConfig, RegisterMap};

/// Times `iters` calls of `op` and returns nanoseconds per call, taking the
/// median of `runs` timed repetitions after one warmup run.
fn time_ns_per_iter(iters: u32, runs: usize, mut op: impl FnMut()) -> f64 {
    let mut samples = Vec::with_capacity(runs);
    for r in 0..=runs {
        let start = Instant::now();
        for _ in 0..iters {
            op();
        }
        let elapsed = start.elapsed();
        if r > 0 {
            samples.push(elapsed.as_nanos() as f64 / f64::from(iters));
        }
    }
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn arith_loop_program(iters: u32) -> Program {
    // var0 = iters; while (var0) { var0 -= 1 }
    Program::new(vec![
        Op::Push(f64::from(iters)),
        Op::Store(0),
        Op::Load(0),
        Op::Jz(6),
        Op::Load(0),
        Op::Push(1.0),
        Op::Sub,
        Op::Store(0),
        Op::Jmp(-6),
        Op::Load(0),
        Op::Halt,
    ])
}

/// Row name suffix per tier: the interp rows keep their historical
/// bare names so existing tooling keeps parsing them.
fn tier_suffix(tier: Tier) -> &'static str {
    match tier {
        Tier::Interp => "",
        Tier::Fused => "_fused",
        Tier::Compiled => "_compiled",
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    banner(
        "E13",
        if smoke {
            "interpreter microbenchmarks (smoke)"
        } else {
            "interpreter microbenchmarks"
        },
    );
    // Smoke mode shrinks the timed work ~50x but keeps every row and
    // both output files, so CI exercises the full reporting path.
    let scale = if smoke { 50 } else { 1 };
    let runs = if smoke { 3 } else { 7 };

    let mut rows = vec![row(&[
        "bench".into(),
        "ns/iter".into(),
        "ops/iter".into(),
        "ns/op".into(),
    ])];
    let mut csv = String::from("bench,ns_per_iter,ops_per_iter,ns_per_op\n");
    let mut json = Vec::new();
    let mut record = |name: &str, ns: f64, ops: f64| {
        rows.push(row(&[name.into(), f(ns), f(ops), f(ns / ops)]));
        csv.push_str(&format!("{name},{ns:.3},{ops},{:.3}\n", ns / ops));
        json.push((name.to_string(), ns));
    };

    // Raw dispatch: ~5k executed ops per run of the countdown loop, at
    // each tier. The fused tier collapses the 6-op loop body into two
    // dispatches; the compiled tier runs it as a single closure.
    let program = arith_loop_program(1_000);
    for tier in Tier::ALL {
        let mut vm = Vm::with_tier(1_000_000, tier);
        let mut env = NullEnv::default();
        let ns = time_ns_per_iter(500 / scale, runs, || {
            let r = vm.run(black_box(&program), &mut env).unwrap();
            black_box(r);
        });
        record(
            &format!("vm_dispatch_5k_ops{}", tier_suffix(tier)),
            ns,
            5_000.0,
        );
    }

    // Compiled PID capsule vs the native controller, at each tier.
    let spec = ControlLawSpec::from_loop(&lts_level_loop());
    let pid = compile_control_law(&spec);
    for tier in Tier::ALL {
        let mut vm = Vm::with_tier(control_law_gas_budget(&pid), tier);
        let mut env = NullEnv {
            sensor_value: 48.7,
            ..NullEnv::default()
        };
        let ns = time_ns_per_iter(10_000 / scale, runs, || {
            env.writes.clear();
            env.emissions.clear();
            let r = vm.run(black_box(&pid), &mut env).unwrap();
            black_box(r);
        });
        record(
            &format!("pid_capsule{}", tier_suffix(tier)),
            ns,
            pid.len() as f64,
        );
    }

    let mut native = LocalController::new(lts_level_loop());
    let ns = time_ns_per_iter(100_000 / scale, runs, || {
        black_box(native.compute(black_box(48.7), 0.25));
    });
    record("pid_native", ns, 1.0);

    // Capsule I/O through the inline-caching ModBus environment: the
    // full sensor-read/actuate/emit path against the gas plant's
    // register map, on the compiled tier. The tag→register scan is
    // memoized per port, so steady state is pure register traffic.
    let mut plant = GasPlant::new(PlantConfig::default());
    let regmap = RegisterMap::gas_plant_standard();
    let mut env = ModbusCachedEnv::new(
        &mut plant,
        &regmap,
        &["LTS.LiquidPct"],
        &["LTSLiqValve.Cmd"],
    );
    let mut vm = Vm::with_tier(control_law_gas_budget(&pid), Tier::Compiled);
    let ns = time_ns_per_iter(10_000 / scale, runs, || {
        env.emissions.clear();
        let r = vm.run(black_box(&pid), &mut env).unwrap();
        black_box(r);
    });
    record("pid_capsule_modbus_compiled", ns, pid.len() as f64);
    println!(
        "  (modbus inline cache: {} slow-path lookups)",
        env.lookups()
    );

    // Batched ModBus environment: ports resolved to bound registers at
    // construction, inputs polled in one pass per run, writes through
    // the bound holdings — zero address lookups in steady state.
    let mut plant = GasPlant::new(PlantConfig::default());
    let mut env = ModbusBatchEnv::new(
        &mut plant,
        &regmap,
        &["LTS.LiquidPct"],
        &["LTSLiqValve.Cmd"],
    );
    let mut vm = Vm::with_tier(control_law_gas_budget(&pid), Tier::Compiled);
    let ns = time_ns_per_iter(10_000 / scale, runs, || {
        env.begin_run();
        env.emissions.clear();
        let r = vm.run(black_box(&pid), &mut env).unwrap();
        black_box(r);
    });
    record("pid_capsule_modbus_batched", ns, pid.len() as f64);

    // Capsule encode/decode: the migration serialization path
    // (tier-independent — programs migrate as stack bytecode).
    let bytes = pid.encode();
    let ns = time_ns_per_iter(100_000 / scale, runs, || {
        black_box(black_box(&pid).encode());
    });
    record("capsule_encode", ns, 1.0);
    let ns = time_ns_per_iter(100_000 / scale, runs, || {
        black_box(Program::decode(black_box(&bytes)).unwrap());
    });
    record("capsule_decode", ns, 1.0);

    for r in &rows {
        println!("  {r}");
    }
    write_result("vm_dispatch.csv", &csv);

    // Machine-readable results: every row's ns/iter plus the headline
    // tier speedups (interp ns / tier ns on the same workload).
    let ns_of = |name: &str| {
        json.iter()
            .find(|(n, _)| n == name)
            .map(|(_, ns)| *ns)
            .expect("row recorded")
    };
    let speedup = |base: &str, tiered: &str| ns_of(base) / ns_of(tiered);
    let mut out = String::from("{\n  \"bench\": \"vm_dispatch\",\n");
    out.push_str(&format!("  \"smoke\": {smoke},\n  \"rows\": {{\n"));
    for (i, (name, ns)) in json.iter().enumerate() {
        let comma = if i + 1 == json.len() { "" } else { "," };
        out.push_str(&format!(
            "    \"{name}\": {{\"ns_per_iter\": {ns:.3}}}{comma}\n"
        ));
    }
    out.push_str("  },\n  \"speedups\": {\n");
    out.push_str(&format!(
        "    \"arith_fused_vs_interp\": {:.3},\n",
        speedup("vm_dispatch_5k_ops", "vm_dispatch_5k_ops_fused")
    ));
    out.push_str(&format!(
        "    \"arith_compiled_vs_interp\": {:.3},\n",
        speedup("vm_dispatch_5k_ops", "vm_dispatch_5k_ops_compiled")
    ));
    out.push_str(&format!(
        "    \"pid_fused_vs_interp\": {:.3},\n",
        speedup("pid_capsule", "pid_capsule_fused")
    ));
    out.push_str(&format!(
        "    \"pid_compiled_vs_interp\": {:.3},\n",
        speedup("pid_capsule", "pid_capsule_compiled")
    ));
    out.push_str(&format!(
        "    \"modbus_batched_vs_cached\": {:.3}\n",
        speedup("pid_capsule_modbus_compiled", "pid_capsule_modbus_batched")
    ));
    out.push_str("  }\n}\n");
    write_result("vm_dispatch.json", &out);
}
