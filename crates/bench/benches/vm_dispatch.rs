//! E13 — interpreter microbenchmarks (criterion).
//!
//! Measures the EVM's execution machinery: raw dispatch throughput, the
//! compiled PID capsule against the native controller, gas-metering
//! overhead, and capsule encode/decode (the migration serialization path).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use evm_core::bytecode::{
    compile_control_law, control_law_gas_budget, ControlLawSpec, NullEnv, Op, Program, Vm,
};
use evm_plant::{lts_level_loop, LocalController};

fn arith_loop_program(iters: u32) -> Program {
    // var0 = iters; while (var0) { var0 -= 1 }
    Program::new(vec![
        Op::Push(f64::from(iters)),
        Op::Store(0),
        Op::Load(0),
        Op::Jz(6),
        Op::Load(0),
        Op::Push(1.0),
        Op::Sub,
        Op::Store(0),
        Op::Jmp(-6),
        Op::Load(0),
        Op::Halt,
    ])
}

fn bench_dispatch(c: &mut Criterion) {
    let program = arith_loop_program(1_000);
    let mut vm = Vm::new(1_000_000);
    let mut env = NullEnv::default();
    c.bench_function("vm_dispatch_5k_ops", |b| {
        b.iter(|| {
            let r = vm.run(black_box(&program), &mut env).unwrap();
            black_box(r)
        });
    });
}

fn bench_pid_capsule_vs_native(c: &mut Criterion) {
    let spec = ControlLawSpec::from_loop(&lts_level_loop());
    let program = compile_control_law(&spec);
    let mut vm = Vm::new(control_law_gas_budget(&program));
    let mut env = NullEnv {
        sensor_value: 48.7,
        ..NullEnv::default()
    };
    c.bench_function("pid_capsule", |b| {
        b.iter(|| {
            env.writes.clear();
            env.emissions.clear();
            let r = vm.run(black_box(&program), &mut env).unwrap();
            black_box(r)
        });
    });

    let mut native = LocalController::new(lts_level_loop());
    c.bench_function("pid_native", |b| {
        b.iter(|| black_box(native.compute(black_box(48.7), 0.25)));
    });
}

fn bench_capsule_roundtrip(c: &mut Criterion) {
    let spec = ControlLawSpec::from_loop(&lts_level_loop());
    let program = compile_control_law(&spec);
    let bytes = program.encode();
    c.bench_function("capsule_encode", |b| {
        b.iter(|| black_box(black_box(&program).encode()));
    });
    c.bench_function("capsule_decode", |b| {
        b.iter(|| black_box(Program::decode(black_box(&bytes)).unwrap()));
    });
}

criterion_group!(
    benches,
    bench_dispatch,
    bench_pid_capsule_vs_native,
    bench_capsule_roundtrip
);
criterion_main!(benches);
