//! E13 — interpreter microbenchmarks.
//!
//! Measures the EVM's execution machinery: raw dispatch throughput, the
//! compiled PID capsule against the native controller, and capsule
//! encode/decode (the migration serialization path). Self-timed with a
//! warmup pass and median-of-runs reporting, like the other figure benches.

use std::hint::black_box;
use std::time::Instant;

use evm_bench::{banner, f, row, write_result};
use evm_core::bytecode::{
    compile_control_law, control_law_gas_budget, ControlLawSpec, NullEnv, Op, Program, Vm,
};
use evm_plant::{lts_level_loop, LocalController};

/// Times `iters` calls of `op` and returns nanoseconds per call, taking the
/// median of `runs` timed repetitions after one warmup run.
fn time_ns_per_iter(iters: u32, runs: usize, mut op: impl FnMut()) -> f64 {
    let mut samples = Vec::with_capacity(runs);
    for r in 0..=runs {
        let start = Instant::now();
        for _ in 0..iters {
            op();
        }
        let elapsed = start.elapsed();
        if r > 0 {
            samples.push(elapsed.as_nanos() as f64 / f64::from(iters));
        }
    }
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn arith_loop_program(iters: u32) -> Program {
    // var0 = iters; while (var0) { var0 -= 1 }
    Program::new(vec![
        Op::Push(f64::from(iters)),
        Op::Store(0),
        Op::Load(0),
        Op::Jz(6),
        Op::Load(0),
        Op::Push(1.0),
        Op::Sub,
        Op::Store(0),
        Op::Jmp(-6),
        Op::Load(0),
        Op::Halt,
    ])
}

fn main() {
    banner("E13", "interpreter microbenchmarks");

    let mut rows = vec![row(&[
        "bench".into(),
        "ns/iter".into(),
        "ops/iter".into(),
        "ns/op".into(),
    ])];
    let mut csv = String::from("bench,ns_per_iter,ops_per_iter,ns_per_op\n");
    let mut record = |name: &str, ns: f64, ops: f64| {
        rows.push(row(&[name.into(), f(ns), f(ops), f(ns / ops)]));
        csv.push_str(&format!("{name},{ns:.3},{ops},{:.3}\n", ns / ops));
    };

    // Raw dispatch: ~5k executed ops per run of the countdown loop.
    let program = arith_loop_program(1_000);
    let mut vm = Vm::new(1_000_000);
    let mut env = NullEnv::default();
    let ns = time_ns_per_iter(500, 7, || {
        let r = vm.run(black_box(&program), &mut env).unwrap();
        black_box(r);
    });
    record("vm_dispatch_5k_ops", ns, 5_000.0);

    // Compiled PID capsule vs the native controller.
    let spec = ControlLawSpec::from_loop(&lts_level_loop());
    let pid = compile_control_law(&spec);
    let mut vm = Vm::new(control_law_gas_budget(&pid));
    let mut env = NullEnv {
        sensor_value: 48.7,
        ..NullEnv::default()
    };
    let ns = time_ns_per_iter(10_000, 7, || {
        env.writes.clear();
        env.emissions.clear();
        let r = vm.run(black_box(&pid), &mut env).unwrap();
        black_box(r);
    });
    record("pid_capsule", ns, pid.len() as f64);

    let mut native = LocalController::new(lts_level_loop());
    let ns = time_ns_per_iter(100_000, 7, || {
        black_box(native.compute(black_box(48.7), 0.25));
    });
    record("pid_native", ns, 1.0);

    // Capsule encode/decode: the migration serialization path.
    let bytes = pid.encode();
    let ns = time_ns_per_iter(100_000, 7, || {
        black_box(black_box(&pid).encode());
    });
    record("capsule_encode", ns, 1.0);
    let ns = time_ns_per_iter(100_000, 7, || {
        black_box(Program::decode(black_box(&bytes)).unwrap());
    });
    record("capsule_decode", ns, 1.0);

    for r in &rows {
        println!("  {r}");
    }
    write_result("vm_dispatch.csv", &csv);
}
