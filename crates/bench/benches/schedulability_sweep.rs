//! E9 — §3.1.1 op 3: the schedulability gate.
//!
//! Compares the three admission tests an EVM node can run — Liu–Layland
//! bound, hyperbolic bound, exact response-time analysis — on random task
//! sets: acceptance ratio as a function of total utilization, and the
//! analysis cost. RTA is exact; the bounds are safe but pessimistic —
//! the plot shows how much capacity each test leaves on the table.

use std::time::Instant;

use evm_bench::{banner, f, row, write_result};
use evm_rtos::{assign_rate_monotonic, hyperbolic_test, response_time_analysis, TaskSet, TaskSpec};
use evm_sim::{SimDuration, SimRng};

/// Random task set with n tasks scaled to total utilization u (UUniFast).
fn random_set(rng: &mut SimRng, n: usize, u: f64) -> TaskSet {
    let mut sum_u = u;
    let mut utils = Vec::with_capacity(n);
    for i in 1..n {
        let next = sum_u * rng.uniform().powf(1.0 / (n - i) as f64);
        utils.push(sum_u - next);
        sum_u = next;
    }
    utils.push(sum_u);
    let mut set = TaskSet::new();
    for (i, ui) in utils.iter().enumerate() {
        let period_ms = [10u64, 20, 40, 50, 100, 200][rng.index(6)];
        let period = SimDuration::from_millis(period_ms);
        let wcet =
            SimDuration::from_micros(((period.as_micros() as f64 * ui).round() as u64).max(1));
        if wcet > period {
            continue;
        }
        set.push(TaskSpec::new(format!("t{i}"), wcet, period));
    }
    assign_rate_monotonic(&mut set);
    set
}

fn main() {
    banner(
        "E9",
        "admission tests: acceptance vs utilization (n=6, 500 sets/point)",
    );
    let mut rng = SimRng::seed_from(9);
    let trials = 500;

    println!(
        "{}",
        row(&[
            "U".into(),
            "liu-layland".into(),
            "hyperbolic".into(),
            "exact RTA".into(),
        ])
    );
    let mut csv = String::from("utilization,ll_accept,hyp_accept,rta_accept\n");
    let mut ll_time = 0.0f64;
    let mut rta_time = 0.0f64;
    for u10 in 5..=10 {
        let u = u10 as f64 / 10.0;
        let mut acc = [0usize; 3];
        for _ in 0..trials {
            let set = random_set(&mut rng, 6, u);
            let t0 = Instant::now();
            let ll = evm_rtos::liu_layland_bound(set.len()) >= set.total_utilization();
            ll_time += t0.elapsed().as_secs_f64();
            let hyp = hyperbolic_test(&set).schedulable;
            let t1 = Instant::now();
            let rta = response_time_analysis(&set).schedulable;
            rta_time += t1.elapsed().as_secs_f64();
            acc[0] += usize::from(ll);
            acc[1] += usize::from(hyp);
            acc[2] += usize::from(rta);
        }
        let r = |k: usize| acc[k] as f64 / trials as f64;
        println!("{}", row(&[f(u), f(r(0)), f(r(1)), f(r(2))]));
        csv.push_str(&format!("{u},{},{},{}\n", r(0), r(1), r(2)));
        // Soundness: the sufficient bounds never accept what RTA rejects.
        assert!(acc[0] <= acc[2] && acc[1] <= acc[2], "bounds must be safe");
        assert!(acc[0] <= acc[1], "hyperbolic dominates LL");
    }
    write_result("schedulability_sweep.csv", &csv);
    println!(
        "\n  analysis cost over the sweep: LL {:.1} us/set, RTA {:.1} us/set",
        ll_time / (6.0 * trials as f64) * 1e6,
        rta_time / (6.0 * trials as f64) * 1e6
    );
    println!("\nOK: RTA ⊇ hyperbolic ⊇ Liu–Layland at every utilization (safe, ordered tests)");
}
