//! E9 — §3.1.1 op 3: the schedulability gate.
//!
//! Compares the three admission tests an EVM node can run — Liu–Layland
//! bound, hyperbolic bound, exact response-time analysis — on random task
//! sets: acceptance ratio as a function of total utilization, and the
//! analysis cost. RTA is exact; the bounds are safe but pessimistic —
//! the plot shows how much capacity each test leaves on the table.
//!
//! Ported onto the sweep executor: each utilization point is one job with
//! its own RNG derived purely from the base seed and the point index
//! ([`derive_seed`]), so the acceptance ratios are identical no matter
//! how many workers run the sweep or in which order points finish.

use std::time::Instant;

use evm_bench::{banner, f, row, write_result};
use evm_rtos::{assign_rate_monotonic, hyperbolic_test, response_time_analysis, TaskSet, TaskSpec};
use evm_sim::{derive_seed, SimDuration, SimRng};
use evm_sweep::{available_threads, run_indexed};

/// Random task set with n tasks scaled to total utilization u (UUniFast).
fn random_set(rng: &mut SimRng, n: usize, u: f64) -> TaskSet {
    let mut sum_u = u;
    let mut utils = Vec::with_capacity(n);
    for i in 1..n {
        let next = sum_u * rng.uniform().powf(1.0 / (n - i) as f64);
        utils.push(sum_u - next);
        sum_u = next;
    }
    utils.push(sum_u);
    let mut set = TaskSet::new();
    for (i, ui) in utils.iter().enumerate() {
        let period_ms = [10u64, 20, 40, 50, 100, 200][rng.index(6)];
        let period = SimDuration::from_millis(period_ms);
        let wcet =
            SimDuration::from_micros(((period.as_micros() as f64 * ui).round() as u64).max(1));
        if wcet > period {
            continue;
        }
        set.push(TaskSpec::new(format!("t{i}"), wcet, period));
    }
    assign_rate_monotonic(&mut set);
    set
}

/// One sweep point: acceptance counts and analysis cost at utilization u.
struct PointResult {
    u: f64,
    acc: [usize; 3],
    ll_time: f64,
    rta_time: f64,
}

const BASE_SEED: u64 = 9;
const TRIALS: usize = 500;

fn main() {
    banner(
        "E9",
        "admission tests: acceptance vs utilization (n=6, 500 sets/point)",
    );
    let points: Vec<f64> = (5..=10).map(|u10| u10 as f64 / 10.0).collect();
    let threads = available_threads();
    let results: Vec<PointResult> = run_indexed(&points, threads, |idx, &u| {
        // Point-local RNG: stable whatever thread picks this point up.
        let mut rng = SimRng::seed_from(derive_seed(BASE_SEED, idx as u64));
        let mut acc = [0usize; 3];
        let mut ll_time = 0.0f64;
        let mut rta_time = 0.0f64;
        for _ in 0..TRIALS {
            let set = random_set(&mut rng, 6, u);
            let t0 = Instant::now();
            let ll = evm_rtos::liu_layland_bound(set.len()) >= set.total_utilization();
            ll_time += t0.elapsed().as_secs_f64();
            let hyp = hyperbolic_test(&set).schedulable;
            let t1 = Instant::now();
            let rta = response_time_analysis(&set).schedulable;
            rta_time += t1.elapsed().as_secs_f64();
            acc[0] += usize::from(ll);
            acc[1] += usize::from(hyp);
            acc[2] += usize::from(rta);
        }
        PointResult {
            u,
            acc,
            ll_time,
            rta_time,
        }
    });

    println!(
        "{}",
        row(&[
            "U".into(),
            "liu-layland".into(),
            "hyperbolic".into(),
            "exact RTA".into(),
        ])
    );
    let mut csv = String::from("utilization,ll_accept,hyp_accept,rta_accept\n");
    let mut ll_time = 0.0f64;
    let mut rta_time = 0.0f64;
    for p in &results {
        let r = |k: usize| p.acc[k] as f64 / TRIALS as f64;
        println!("{}", row(&[f(p.u), f(r(0)), f(r(1)), f(r(2))]));
        csv.push_str(&format!("{},{},{},{}\n", p.u, r(0), r(1), r(2)));
        // Soundness: the sufficient bounds never accept what RTA rejects.
        assert!(
            p.acc[0] <= p.acc[2] && p.acc[1] <= p.acc[2],
            "bounds must be safe"
        );
        assert!(p.acc[0] <= p.acc[1], "hyperbolic dominates LL");
        ll_time += p.ll_time;
        rta_time += p.rta_time;
    }
    write_result("schedulability_sweep.csv", &csv);
    println!(
        "\n  analysis cost over the sweep: LL {:.1} us/set, RTA {:.1} us/set ({threads} threads)",
        ll_time / (6.0 * TRIALS as f64) * 1e6,
        rta_time / (6.0 * TRIALS as f64) * 1e6
    );
    println!("\nOK: RTA ⊇ hyperbolic ⊇ Liu–Layland at every utilization (safe, ordered tests)");
}
