//! E7 — §2.1 claim: sub-150 µs time-synchronization jitter.
//!
//! Samples the AM-carrier sync model over 100 000 resync cycles and
//! reports the distribution of the pairwise slot misalignment between two
//! nodes — the quantity RT-Link's guard interval must absorb.

use evm_bench::{banner, write_result};
use evm_mac::timesync::{sample_pairwise_error, SyncConfig, TimeSync};
use evm_sim::{SimRng, SimTime};

fn main() {
    banner("E7", "time-sync jitter distribution (100k cycles)");
    let mut rng = SimRng::seed_from(20_090_601);
    let cfg = SyncConfig::default();
    let mut a = TimeSync::new(cfg.clone(), &mut rng);
    let mut b = TimeSync::new(cfg.clone(), &mut rng);

    let n = 100_000;
    let mut errors: Vec<f64> = Vec::with_capacity(n);
    let mut t = SimTime::ZERO;
    for _ in 0..n {
        a.resync(t, &mut rng);
        b.resync(t, &mut rng);
        errors.push(sample_pairwise_error(&a, &b, a.resync_interval(), &mut rng));
        t += cfg.resync_interval;
    }
    errors.sort_by(|x, y| x.partial_cmp(y).expect("finite"));
    let q = |p: f64| errors[((errors.len() - 1) as f64 * p) as usize];

    println!("  samples              {n}");
    println!("  p50                  {:>8.1} us", q(0.50));
    println!("  p95                  {:>8.1} us", q(0.95));
    println!("  p99                  {:>8.1} us", q(0.99));
    println!("  p99.9                {:>8.1} us", q(0.999));
    println!("  max                  {:>8.1} us", q(1.0));
    println!(
        "\n  paper:    sub-150 us jitter\n  measured: max {:.1} us",
        q(1.0)
    );

    let mut csv = String::from("quantile,error_us\n");
    for p in [0.5, 0.9, 0.95, 0.99, 0.999, 1.0] {
        csv.push_str(&format!("{p},{:.2}\n", q(p)));
    }
    write_result("sync_jitter.csv", &csv);

    assert!(q(1.0) < 150.0, "sub-150us claim");
    println!("\nOK: worst observed pairwise error under 150 us");
}
