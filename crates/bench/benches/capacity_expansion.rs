//! E12 — §4.2 objectives 2–3: on-line capacity expansion and algorithm
//! replication.
//!
//! Part 1: adding controllers to the pool re-distributes a fixed 8-task
//! control load (the paper's "more controllers can be added to share the
//! load"); reported as max per-node utilization vs pool size.
//!
//! Part 2: replication degree vs control-loop availability under node
//! failures — both the analytic `1 − p^k` and a sampled estimate.

use evm_bench::{banner, f, row, write_result};
use evm_core::synthesis::{NodeRes, SynthesisProblem, TaskReq};
use evm_netsim::NodeId;
use evm_sim::{derive_seed, SimRng};
use evm_sweep::{available_threads, run_indexed};

fn main() {
    banner(
        "E12a",
        "capacity expansion: max node utilization vs pool size",
    );
    let tasks: Vec<TaskReq> = (0..8)
        .map(|i| TaskReq {
            name: format!("loop{i}"),
            cpu_util: 0.18,
            slots: 1,
            sensor_node: None,
            actuator_node: None,
        })
        .collect();

    println!(
        "{}",
        row(&["controllers".into(), "max util".into(), "feasible".into()])
    );
    let mut csv = String::from("controllers,max_util,feasible\n");
    // One anneal per pool size, fanned across cores on the sweep
    // executor; each point draws from its own derived RNG stream, so the
    // batch result is independent of worker scheduling.
    let pool_sizes: Vec<usize> = (2..=6).collect();
    let points = run_indexed(&pool_sizes, available_threads(), |i, &n_nodes| {
        let mut rng = SimRng::seed_from(derive_seed(12, i as u64));
        let p = SynthesisProblem {
            tasks: tasks.clone(),
            nodes: (0..n_nodes)
                .map(|i| NodeRes {
                    id: NodeId(i as u16),
                    cpu_capacity: 0.8,
                    slot_capacity: 8,
                })
                .collect(),
            hops: vec![vec![1.0; n_nodes]; n_nodes],
            w_comm: 0.0,
            w_balance: 1.0,
        };
        let a = p.solve_anneal(&mut rng, 6_000);
        let mut per_node = vec![0.0f64; n_nodes];
        for (t, &n) in a.task_to_node.iter().enumerate() {
            per_node[n] += p.tasks[t].cpu_util;
        }
        let max_util = per_node.iter().copied().fold(0.0, f64::max);
        (n_nodes, max_util, p.is_feasible(&a))
    });
    let mut prev_max = f64::INFINITY;
    for (n_nodes, max_util, feasible) in points {
        println!(
            "{}",
            row(&[
                format!("{n_nodes}"),
                f(max_util),
                if feasible { "yes".into() } else { "no".into() },
            ])
        );
        csv.push_str(&format!("{n_nodes},{max_util:.3},{}\n", u8::from(feasible)));
        assert!(
            max_util <= prev_max + 1e-9,
            "more nodes must not raise the max"
        );
        prev_max = max_util;
    }

    banner(
        "E12b",
        "replication degree vs loop availability (p = node failure prob)",
    );
    println!(
        "{}",
        row(&[
            "replicas".into(),
            "p=0.05".into(),
            "p=0.10".into(),
            "p=0.20".into(),
            "sampled p=0.10".into(),
        ])
    );
    csv.push_str("replicas,avail_p05,avail_p10,avail_p20,sampled_p10\n");
    // One replication degree per worker, each with its own derived
    // stream (the Monte Carlo estimates do not share an RNG).
    let degrees: Vec<u32> = (1..=4).collect();
    let sampled_points = run_indexed(&degrees, available_threads(), |i, &k| {
        let mut rng = SimRng::seed_from(derive_seed(13, i as u64));
        let trials = 100_000;
        let up = (0..trials)
            .filter(|_| (0..k).any(|_| !rng.chance(0.10)))
            .count();
        up as f64 / f64::from(trials)
    });
    for (&k, &sampled) in degrees.iter().zip(&sampled_points) {
        let analytic = |p: f64| 1.0 - p.powi(k as i32);
        println!(
            "{}",
            row(&[
                format!("{k}"),
                f(analytic(0.05)),
                f(analytic(0.10)),
                f(analytic(0.20)),
                f(sampled),
            ])
        );
        csv.push_str(&format!(
            "{k},{:.5},{:.5},{:.5},{:.5}\n",
            analytic(0.05),
            analytic(0.10),
            analytic(0.20),
            sampled
        ));
        assert!((sampled - analytic(0.10)).abs() < 0.01, "sampling agrees");
    }
    write_result("capacity_expansion.csv", &csv);
    println!("\nOK: load spreads with pool size; availability gains saturate by 3 replicas");
}
