//! E12 — §4.2 objectives 2–3: on-line capacity expansion and algorithm
//! replication.
//!
//! Part 1: adding controllers to the pool re-distributes a fixed 8-task
//! control load (the paper's "more controllers can be added to share the
//! load"); reported as max per-node utilization vs pool size.
//!
//! Part 2: replication degree vs control-loop availability under node
//! failures — both the analytic `1 − p^k` and a sampled estimate.

use evm_bench::{banner, f, row, write_result};
use evm_core::synthesis::{NodeRes, SynthesisProblem, TaskReq};
use evm_netsim::NodeId;
use evm_sim::SimRng;

fn main() {
    banner(
        "E12a",
        "capacity expansion: max node utilization vs pool size",
    );
    let mut rng = SimRng::seed_from(12);
    let tasks: Vec<TaskReq> = (0..8)
        .map(|i| TaskReq {
            name: format!("loop{i}"),
            cpu_util: 0.18,
            slots: 1,
            sensor_node: None,
            actuator_node: None,
        })
        .collect();

    println!(
        "{}",
        row(&["controllers".into(), "max util".into(), "feasible".into()])
    );
    let mut csv = String::from("controllers,max_util,feasible\n");
    let mut prev_max = f64::INFINITY;
    for n_nodes in 2..=6 {
        let p = SynthesisProblem {
            tasks: tasks.clone(),
            nodes: (0..n_nodes)
                .map(|i| NodeRes {
                    id: NodeId(i as u16),
                    cpu_capacity: 0.8,
                    slot_capacity: 8,
                })
                .collect(),
            hops: vec![vec![1.0; n_nodes]; n_nodes],
            w_comm: 0.0,
            w_balance: 1.0,
        };
        let a = p.solve_anneal(&mut rng, 6_000);
        let mut per_node = vec![0.0f64; n_nodes];
        for (t, &n) in a.task_to_node.iter().enumerate() {
            per_node[n] += p.tasks[t].cpu_util;
        }
        let max_util = per_node.iter().cloned().fold(0.0, f64::max);
        let feasible = p.is_feasible(&a);
        println!(
            "{}",
            row(&[
                format!("{n_nodes}"),
                f(max_util),
                if feasible { "yes".into() } else { "no".into() },
            ])
        );
        csv.push_str(&format!("{n_nodes},{max_util:.3},{}\n", u8::from(feasible)));
        assert!(
            max_util <= prev_max + 1e-9,
            "more nodes must not raise the max"
        );
        prev_max = max_util;
    }

    banner(
        "E12b",
        "replication degree vs loop availability (p = node failure prob)",
    );
    println!(
        "{}",
        row(&[
            "replicas".into(),
            "p=0.05".into(),
            "p=0.10".into(),
            "p=0.20".into(),
            "sampled p=0.10".into(),
        ])
    );
    csv.push_str("replicas,avail_p05,avail_p10,avail_p20,sampled_p10\n");
    for k in 1..=4u32 {
        let analytic = |p: f64| 1.0 - p.powi(k as i32);
        // Sampled: loop is up if any of k replicas survives.
        let trials = 100_000;
        let up = (0..trials)
            .filter(|_| (0..k).any(|_| !rng.chance(0.10)))
            .count();
        let sampled = up as f64 / f64::from(trials);
        println!(
            "{}",
            row(&[
                format!("{k}"),
                f(analytic(0.05)),
                f(analytic(0.10)),
                f(analytic(0.20)),
                f(sampled),
            ])
        );
        csv.push_str(&format!(
            "{k},{:.5},{:.5},{:.5},{:.5}\n",
            analytic(0.05),
            analytic(0.10),
            analytic(0.20),
            sampled
        ));
        assert!((sampled - analytic(0.10)).abs() < 0.01, "sampling agrees");
    }
    write_result("capacity_expansion.csv", &csv);
    println!("\nOK: load spreads with pool size; availability gains saturate by 3 replicas");
}
