//! E16 — topology diversity: cycle length and failover latency across
//! layout families at equal node counts.
//!
//! Runs the same 8-node deployment budget through all four layout
//! families — star (single-hop), 2-hop line, 2×4 grid, 3-hop cluster —
//! injects the paper's stuck-output fault on the primary mid-run, and
//! reports per family:
//!
//! * the schedule's effective cycle length (highest slot used) — the
//!   price of relay hops,
//! * fault-to-promotion failover latency — deviation detection and the
//!   reconfiguration plane over multi-hop routes,
//! * actuation count, deadline hit ratio and late regulation error.
//!
//! A second section pins the spatial-reuse win: the clustered 2-VC
//! deployment's reused schedule vs its serialized equivalent.
//!
//! Asserted: every family closes the loop, detects the deviation and
//! promotes the backup within seconds regardless of hop count, and
//! clustered reuse is strictly shorter than serialization.
//!
//! (The fault is a *misbehaving* primary, not a crashed node: a crashed
//! node would also take down the forwarding hops it hosts — static
//! routes are the documented trade-off of the routing pass.)

use evm_bench::{banner, f, row, write_result};
use evm_core::runtime::{Engine, Layout, Scenario, ScenarioBuilder};
use evm_sim::{SimDuration, SimTime};
use evm_sweep::{available_threads, run_indexed};

const FAULT_S: u64 = 30;

/// All four layouts at exactly 8 nodes (gateway included).
fn scenario(layout: Layout) -> Scenario {
    let b = ScenarioBuilder::star()
        .fault_at(
            SimTime::from_secs(FAULT_S),
            evm_plant::ActuatorFault::paper_fault(),
        )
        .reconfig_epoch(SimDuration::ZERO)
        .duration(SimDuration::from_secs(120));
    let b = match layout {
        // GW + 3 sensors + 2 controllers + actuator + head.
        Layout::Star => b.sensors(3).controllers(2).actuators(1).head(true),
        // GW + 2 sensors + 2 controllers + actuator + head + 1 relay.
        Layout::Line { hops } => b
            .line(hops)
            .sensors(2)
            .controllers(2)
            .actuators(1)
            .head(true),
        // 8 cells: 6 roles + 2 relays.
        Layout::Grid { w, h } => b
            .grid(w, h)
            .sensors(1)
            .controllers(2)
            .actuators(1)
            .head(true),
        // GW + 5 cluster members + 2 chain relays.
        Layout::Clustered => b
            .clustered(1)
            .sensors(1)
            .controllers(2)
            .actuators(1)
            .head(true),
    };
    b.build()
}

fn main() {
    banner(
        "E16",
        "topology diversity: cycle length + failover latency across layout families",
    );
    let layouts = [
        Layout::Star,
        Layout::Line { hops: 2 },
        Layout::Grid { w: 2, h: 4 },
        Layout::Clustered,
    ];
    let outcomes = run_indexed(&layouts, available_threads(), |_, &layout| {
        let engine = Engine::new(scenario(layout));
        let cycle_slots = engine.schedule().max_slot().expect("scheduled") + 1;
        (cycle_slots, engine.run())
    });

    println!(
        "{}",
        row(&[
            "topology".into(),
            "nodes".into(),
            "cycle slots".into(),
            "failover [s]".into(),
            "hit ratio".into(),
            "|err| late".into(),
        ])
    );
    let mut csv = String::from("topology,nodes,cycle_slots,failover_s,hit_ratio,late_abs_err\n");
    let mut failovers = Vec::new();
    for (&layout, (cycle_slots, r)) in layouts.iter().zip(&outcomes) {
        let promoted = r
            .trace
            .entries()
            .iter()
            .find(|e| e.message == "Ctrl-B -> Active")
            .unwrap_or_else(|| panic!("{}: no failover", layout.label()))
            .at
            .as_secs_f64();
        let failover = promoted - FAULT_S as f64;
        let hit = r.deadline_hit_ratio();
        let late_err = r
            .series("Err.LC-LTS")
            .window(SimTime::from_secs(100), SimTime::from_secs(120))
            .stats()
            .map_or(f64::NAN, |s| s.max.abs().max(s.min.abs()));
        println!(
            "{}",
            row(&[
                layout.label(),
                format!("{}", r.meta.nodes),
                format!("{cycle_slots}"),
                f(failover),
                f(hit),
                f(late_err),
            ])
        );
        csv.push_str(&format!(
            "{},{},{cycle_slots},{failover:.3},{hit:.4},{late_err:.4}\n",
            layout.label(),
            r.meta.nodes,
        ));

        // Equal node budget across families.
        assert_eq!(r.meta.nodes, 8, "{}: node budget", layout.label());
        // Every family closes the loop and recovers.
        assert!(hit > 0.99, "{}: hit ratio {hit}", layout.label());
        assert!(
            r.actuations > 400,
            "{}: starved ({} actuations)",
            layout.label(),
            r.actuations
        );
        assert!(late_err < 1.0, "{}: late error {late_err}", layout.label());
        // Failover latency is detection-dominated (a few consecutive
        // deviating cycles), not hop-count-dominated.
        assert!(
            failover > 0.0 && failover < 5.0,
            "{}: failover latency {failover}",
            layout.label()
        );
        failovers.push(failover);
    }
    write_result("topology_diversity.csv", &csv);

    // --- spatial reuse: clustered 2-VC, reused vs serialized ----------
    let clustered2 = |serial: bool| {
        ScenarioBuilder::star()
            .clustered(2)
            .sensors(1)
            .controllers(2)
            .actuators(1)
            .head(true)
            .slots_per_cycle(33)
            .serial_schedule(serial)
            .duration(SimDuration::from_secs(1))
            .build()
    };
    let reused = Engine::new(clustered2(false))
        .schedule()
        .max_slot()
        .expect("scheduled");
    let serialized = Engine::new(clustered2(true))
        .schedule()
        .max_slot()
        .expect("scheduled");
    println!(
        "\nclustered 2-VC cycle: {reused} slots reused vs {serialized} serialized \
         ({:.0}% shorter)",
        100.0 * (1.0 - reused as f64 / serialized as f64)
    );
    assert!(
        reused < serialized,
        "spatial reuse must shorten the clustered cycle"
    );
    write_result(
        "topology_diversity_reuse.csv",
        &format!("schedule,slots\nreused,{reused}\nserialized,{serialized}\n"),
    );

    let spread = failovers.iter().cloned().fold(f64::NAN, f64::max)
        - failovers.iter().cloned().fold(f64::NAN, f64::min);
    println!(
        "\nOK: all four layout families close the loop and fail over within \
         seconds of the fault (spread {spread:.2} s)"
    );
}
