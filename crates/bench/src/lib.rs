//! Shared harness utilities for the figure-regeneration benches.
//!
//! Every `[[bench]]` target in this crate regenerates one of the paper's
//! figures or quantified claims (see `DESIGN.md` §4 for the experiment
//! index). Each prints the rows/series the paper reports and writes a CSV
//! under `target/paper_results/` for plotting.

use std::fs;
use std::path::PathBuf;

/// Where result CSVs are written.
///
/// # Panics
///
/// Panics if the directory cannot be created.
#[must_use]
pub fn results_dir() -> PathBuf {
    // Anchor at the workspace root regardless of the bench's cwd.
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .join("target/paper_results");
    fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// Writes a result file and reports its path on stdout.
///
/// # Panics
///
/// Panics on I/O errors — a bench without its output is a failed bench.
pub fn write_result(name: &str, content: &str) {
    let path = results_dir().join(name);
    fs::write(&path, content).expect("write result file");
    println!("  -> wrote {}", path.display());
}

/// Prints a bench header.
pub fn banner(id: &str, title: &str) {
    println!("\n=== {id}: {title} ===");
}

/// Formats a row of columns with fixed width for table output.
#[must_use]
pub fn row(cells: &[String]) -> String {
    cells
        .iter()
        .map(|c| format!("{c:>14}"))
        .collect::<Vec<_>>()
        .join(" ")
}

/// Convenience: `f64` cell with 3 decimals.
#[must_use]
pub fn f(v: f64) -> String {
    format!("{v:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_is_aligned() {
        let r = row(&[f(1.0), f(2.5)]);
        assert!(r.contains("1.000") && r.contains("2.500"));
        assert_eq!(r.len(), 29);
    }
}
