//! The co-simulation runtime: plant ↔ gateway ↔ RT-Link ↔ EVM nodes.
//!
//! Reproduces the Fig. 5 hardware-in-the-loop arrangement: the gas plant
//! (UniSim's stand-in) is bridged through a ModBus register map by the
//! gateway node; sensor, controller and actuator nodes exchange frames in
//! RT-Link TDMA slots; controller nodes run control capsules on the EVM
//! interpreter under nano-RK-style admission; the Virtual Component's
//! health-assessment, arbitration and mode-change machinery drives
//! failover.

mod engine;
mod scenario;

pub use engine::{nodes, Engine, Message};
pub use scenario::{Scenario, ScenarioBuilder};
