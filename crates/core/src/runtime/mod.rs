//! The co-simulation runtime: plant ↔ gateway ↔ RT-Link ↔ EVM nodes.
//!
//! Reproduces the paper's hardware-in-the-loop arrangement over *any*
//! role-complete topology: the gas plant (UniSim's stand-in) is bridged
//! through a ModBus register map by the gateway node; sensor, controller
//! and actuator nodes exchange frames in RT-Link TDMA slots; controller
//! nodes run control capsules on the EVM interpreter under nano-RK-style
//! admission; the Virtual Component's health-assessment, arbitration and
//! mode-change machinery drives failover.
//!
//! Layering (see `ARCHITECTURE.md` for the diagram):
//!
//! * [`scenario`](Scenario) — run configuration plus the
//!   [`ScenarioBuilder`] topology DSL,
//! * [`topo`] — role-based topology specs, the [`RoleMap`], and RT-Link
//!   flow synthesis,
//! * [`behavior`] — the [`NodeBehavior`] trait and its driver-side
//!   contract,
//! * [`behaviors`] — one implementation per role (gateway, sensor,
//!   controller, actuator, head),
//! * [`registry`] — behaviors keyed by [`evm_netsim::NodeId`],
//! * [`reconfig`] — the epoch-based reconfiguration plane (the
//!   [`Reconfigurator`] pipeline plus the driver's liveness triggers),
//! * `xfer` — the live capsule-transfer plane: chunked, acked capsule
//!   shipment over the epoch's dedicated transfer slots,
//! * `driver` — the deterministic slot-pipeline [`Engine`].

pub mod behavior;
pub mod behaviors;
mod driver;
mod failover;
mod messages;
mod plan;
pub mod reconfig;
pub mod registry;
mod scenario;
mod setup;
pub mod topo;
mod xfer;

pub use crate::bytecode::Tier;
pub use behavior::{Effect, NodeBehavior, NodeCtx, Timer};
pub use driver::Engine;
pub use messages::Message;
pub use reconfig::{Epoch, ReconfigError, Reconfigurator, ReroutePolicy};
pub use scenario::Layout;
pub use scenario::{CyclePlanMode, Scenario, ScenarioBuilder, SlotStepping};
pub use topo::{
    monitor_register, route_flows, synth_flows, FlowKind, NodeSpec, RelayJob, Role, RoleMap,
    RouteError, RoutedFlows, TopologyError, TopologySpec, VcId, VcMap, CLUSTER_HOP_M,
    CLUSTER_RING_M, GRID_SPACING_M, LINE_SPACING_M, MAX_VCS,
};

/// Well-known node ids of the paper's Fig. 5 testbed.
///
/// These are **scenario constants**, kept for scripting convenience (e.g.
/// crashing `S1` in a fault plan): the runtime itself resolves every
/// address through the scenario's [`RoleMap`] and never consults them.
pub mod nodes {
    use evm_netsim::NodeId;
    /// Gateway (ModBus bridge).
    pub const GW: NodeId = NodeId(0);
    /// LTS level sensor.
    pub const S1: NodeId = NodeId(1);
    /// Primary controller.
    pub const CTRL_A: NodeId = NodeId(2);
    /// Backup controller.
    pub const CTRL_B: NodeId = NodeId(3);
    /// LTS valve actuator.
    pub const ACT: NodeId = NodeId(4);
    /// Tower-feed sensor.
    pub const S2: NodeId = NodeId(5);
    /// Virtual-component head.
    pub const HEAD: NodeId = NodeId(6);
}
