//! The epoch-compiled cycle plan.
//!
//! An RT-Link cycle is a static program per epoch: which slot carries
//! which flow, who transmits, who listens, and at what cost never change
//! between epoch commits. The direct slot body nevertheless re-resolves
//! all of it every slot — dense-index lookups, `topology.distance` per
//! listener per delivery, the O-QPSK BER series per delivery, airtime
//! arithmetic per frame, two full-registry scans per cycle boundary and a
//! string-keyed plant-tag read per VC per cycle. [`CyclePlan`] applies
//! the same compile-don't-interpret move the capsule tiers applied to
//! bytecode one layer down: at setup and at every epoch commit the
//! [`super::driver::SlotTable`] is lowered into flat records with every
//! slot-invariant term pre-resolved, and the hot path is reduced to the
//! RNG draws.
//!
//! **The RNG-draw-order invariant.** The planned path must consume the
//! engine and channel RNG streams draw-for-draw like the direct path:
//! per delivered listener, the channel PER chance, the link's burst
//! process, then the engine's `extra_loss` chance — in listener order.
//! Plan compilation itself draws nothing (it is built unconditionally in
//! both modes). Links with log-normal shadowing enabled get no
//! [`LinkBudget`] — their shadowing realization is drawn lazily from the
//! channel RNG on first use, so pre-resolving it would reorder draws;
//! those listeners fall back to the unbudgeted sampler per delivery.
//!
//! **The rebuild rule.** The plan is rebuilt exactly where the slot
//! table is: at engine setup and at epoch commit (`apply_epoch`), both
//! strictly at cycle boundaries. One previous generation is kept so a
//! folded broadcast pushed in the last slots before a commit can still
//! resolve its listener set; deliveries land within their own slot
//! (guard + airtime < slot), so one generation is strictly enough.

use std::mem;

use evm_netsim::{BurstSlot, LinkBudget, NodeId};
use evm_plant::BoundTag;
use evm_sim::SimDuration;

use crate::runtime::driver::Engine;
use crate::runtime::reconfig::ReroutePolicy;
use crate::runtime::topo::FlowKind;

/// One pre-resolved listener of a scheduled transmission.
#[derive(Debug)]
pub(super) struct PlanListener {
    /// The listening node.
    pub(super) id: NodeId,
    /// Its dense topology index (meters / relay cores).
    pub(super) ix: u32,
    /// Fixed owner→listener distance, meters.
    pub(super) distance: f64,
    /// Precomputed deterministic channel terms; `None` when shadowing is
    /// enabled (fall back to the unbudgeted sampler — see module docs).
    pub(super) budget: Option<LinkBudget>,
    /// Interned handle to the link's burst-process state, so the budgeted
    /// sampler skips the per-delivery link-pair hash. Interning draws no
    /// RNG and creates exactly the state lazy first use would.
    pub(super) burst: BurstSlot,
}

/// One scheduled transmission with its slot-invariant terms resolved.
#[derive(Debug)]
pub(super) struct PlanEntry {
    /// The transmitting node.
    pub(super) owner: NodeId,
    /// Its dense topology index.
    pub(super) owner_ix: u32,
    /// The flow semantic served, if any.
    pub(super) kind: Option<FlowKind>,
    /// `true` if an empty slot is keepalive-filled (heartbeat reroute
    /// policy and a relay / control-plane flow).
    pub(super) keepalive_eligible: bool,
    /// Listener range in [`CyclePlan::listeners`].
    pub(super) lo: u32,
    /// Exclusive end of the listener range.
    pub(super) hi: u32,
}

/// The compiled cycle: everything slot-invariant, resolved once per
/// epoch. See the module docs for the invariants.
#[derive(Debug, Default)]
pub(super) struct CyclePlan {
    /// [`CyclePlan::entries`] range per slot.
    pub(super) per_slot: Vec<(u32, u32)>,
    pub(super) entries: Vec<PlanEntry>,
    pub(super) listeners: Vec<PlanListener>,
    /// Listener cost of an empty occupied slot: guard + PHY-header
    /// airtime.
    pub(super) detect: SimDuration,
    /// `true` under the heartbeat reroute policy: transmissions stamp
    /// the liveness ledger and eligible empty slots are keepalive-filled.
    pub(super) keepalives: bool,
    /// Dense indices (ascending) of nodes whose `on_cycle_start` hook
    /// does work — the others are provably no-ops and skipped.
    pub(super) hooks: Vec<u32>,
    /// Pre-bound plant-tag handle per `err_series` row (`None` when the
    /// tag is unpublished, mirroring the direct path's silent skip).
    pub(super) err_tags: Vec<Option<BoundTag>>,
    /// Monotone plan identity; folded broadcasts carry it so delivery
    /// resolves against the generation that scheduled the transmission.
    pub(super) generation: u64,
}

impl Engine {
    /// Lowers the current slot table (plus the cycle-boundary state) into
    /// a fresh [`CyclePlan`], retiring the previous plan to
    /// `plan_prev`. Draws no RNG; called at setup and at epoch commit in
    /// both plan modes so engine state stays uniform.
    pub(super) fn rebuild_plan(&mut self) {
        let generation = self.plan.generation + 1;
        let keepalives = self.scenario.reroute == ReroutePolicy::Heartbeat;
        // Lift the table out so the channel can be borrowed mutably while
        // walking it; nothing below touches the table's owner.
        let table = mem::take(&mut self.slot_table);
        let mut entries = Vec::with_capacity(table.entries.len());
        let mut listeners = Vec::new();
        for e in &table.entries {
            let owner_ix = self.dense_ix(e.owner).expect("scheduled owner is deployed");
            let lo = u32::try_from(listeners.len()).expect("listener count fits u32");
            for &l in &e.listeners {
                let ix = self.dense_ix(l).expect("scheduled listener is deployed");
                let distance = self.topology.distance(e.owner, l);
                listeners.push(PlanListener {
                    id: l,
                    ix: u32::try_from(ix).expect("dense index fits u32"),
                    distance,
                    budget: self.channel.link_budget((e.owner, l), distance),
                    burst: self.channel.burst_slot((e.owner, l)),
                });
            }
            let hi = u32::try_from(listeners.len()).expect("listener count fits u32");
            entries.push(PlanEntry {
                owner: e.owner,
                owner_ix: u32::try_from(owner_ix).expect("dense index fits u32"),
                kind: e.kind,
                keepalive_eligible: keepalives
                    && matches!(
                        e.kind,
                        Some(FlowKind::Relay { .. } | FlowKind::ControlPlane { .. })
                    ),
                lo,
                hi,
            });
        }
        let per_slot = table.per_slot.clone();
        self.slot_table = table;
        let hooks = self
            .node_ids
            .iter()
            .enumerate()
            .filter(|&(_, &id)| self.registry.get(id).is_some_and(|b| b.has_cycle_hook()))
            .map(|(ix, _)| u32::try_from(ix).expect("dense index fits u32"))
            .collect();
        let err_tags = self
            .err_series
            .iter()
            .map(|(tag, _, _)| self.plant.bind_tag(tag))
            .collect();
        let detect = self.scenario.rtlink.guard
            + evm_netsim::frame::airtime_for_bytes(evm_netsim::PHY_HEADER_BYTES);
        let plan = CyclePlan {
            per_slot,
            entries,
            listeners,
            detect,
            keepalives,
            hooks,
            err_tags,
            generation,
        };
        self.plan_prev = mem::replace(&mut self.plan, plan);
    }
}
