//! The fault plane: injections, head-side arbitration, migration and
//! failover commits — all keyed by Virtual Component.
//!
//! Backups compute the same capsule on the same PV stream and feed
//! deviation detectors with (active output, own output) pairs; a confirmed
//! run of anomalies raises an alert to the VC's head, which arbitrates
//! over that VC's surviving replicas — with a global view standing in for
//! the members' health publications — and commits the reconfiguration at
//! its epoch boundary: the paper's Fig. 6(b) machinery, over arbitrary
//! topologies and any number of concurrent VCs. A failover in one VC
//! never touches another VC's records, detectors or actuation gates.

use evm_netsim::NodeId;

use crate::arbitration::{select_master, Candidate};
use crate::migration::{execute_migration, MigrationPlan};
use crate::roles::ControllerMode;
use crate::runtime::driver::{Engine, Ev};
use crate::runtime::topo::VcId;
use crate::runtime::Message;

impl Engine {
    pub(super) fn on_inject_fault(&mut self) {
        if let Some((_, fault)) = self.scenario.fault {
            let primary = self.vcs.vc(0).primary();
            if let Some(c) = self.registry.controller_mut(primary) {
                c.fault = Some((self.now, fault));
            }
            let label = self.label_of(primary);
            self.trace
                .log(self.now, "fault", format!("inject {fault:?} on {label}"));
        }
    }

    pub(super) fn on_inject_backup_fault(&mut self) {
        let Some(&backup) = self.vcs.vc(0).controllers.get(1) else {
            return;
        };
        if let Some((_, fault)) = self.scenario.backup_fault {
            if let Some(c) = self.registry.controller_mut(backup) {
                c.fault = Some((self.now, fault));
            }
            let label = self.label_of(backup);
            self.trace
                .log(self.now, "fault", format!("inject {fault:?} on {label}"));
        }
    }

    pub(super) fn on_crash_primary(&mut self, vc: VcId) {
        let primary = self.vcs.vc(vc).primary();
        self.scenario
            .fault_plan
            .add_crash(evm_netsim::NodeCrash::permanent(primary, self.now));
        let label = self.label_of(primary);
        self.trace
            .log(self.now, "fault", format!("{label} crashed"));
    }

    /// Head-side alert handling for the suspect's VC: schedule the
    /// reconfiguration decision at the next epoch boundary.
    pub(super) fn head_on_alert(&mut self, suspect: NodeId, observer: NodeId) {
        let Some(vc) = self.vcs.vc_of_controller(suspect) else {
            return;
        };
        let Some(head) = self.vcs.vc(vc).head else {
            return;
        };
        let Some(plane) = self.registry.head_plane_mut(head) else {
            return;
        };
        if plane.decision_pending {
            return;
        }
        // Only the controller its component believes is Active can be the
        // subject of a failover (stale alerts from the switchover window
        // are dropped here).
        if self.components[vc as usize].active_controller() != Some(suspect) {
            return;
        }
        if let Some(plane) = self.registry.head_plane_mut(head) {
            plane.decision_pending = true;
        }
        let epoch = self.scenario.reconfig_epoch;
        let decide_at = if epoch.is_zero() {
            self.now + self.scenario.rtlink.slot_duration
        } else {
            self.now.ceil_to(epoch)
        };
        self.trace.log(
            self.now,
            "vc",
            format!("head received alert from {observer} on {suspect}; deciding at {decide_at}"),
        );
        self.queue.push(decide_at, Ev::HeadDecision { suspect });
    }

    pub(super) fn on_head_decision(&mut self, suspect: NodeId) {
        let Some(vc) = self.vcs.vc_of_controller(suspect) else {
            return;
        };
        let Some(head) = self.vcs.vc(vc).head else {
            return;
        };
        let suspected = {
            let Some(plane) = self.registry.head_plane_mut(head) else {
                return;
            };
            if !plane.suspected.contains(&suspect) {
                plane.suspected.push(suspect);
            }
            plane.suspected.clone()
        };
        // Arbitration over the VC's surviving, unsuspected controller
        // replicas (deterministic order: the role map's precedence).
        let candidates: Vec<Candidate> = self
            .vcs
            .vc(vc)
            .controllers
            .iter()
            .filter(|&&id| id != suspect && !suspected.contains(&id))
            .map(|&id| {
                let c = self.registry.controller(id).expect("controller registered");
                Candidate {
                    node: id,
                    eligible: self.alive(id),
                    battery: self.battery_fitness(id),
                    cpu_headroom: 1.0 - c.kernel.utilization(),
                    link_quality: 1.0,
                    warm_replica: c.has_task,
                }
            })
            .collect();
        let Some(target) = select_master(&candidates) else {
            // §3.1.2 health-assessment response: LocalFailSafe. Demote the
            // suspect and drive the VC's actuator to its safe position.
            self.trace
                .log(self.now, "vc", "no viable master; engaging fail-safe");
            let _ = self.components[vc as usize].set_mode(suspect, ControllerMode::Indicator);
            let fail_safe = self.scenario.fail_safe_value;
            if let Some(plane) = self.registry.head_plane_mut(head) {
                plane.push_cmd(Message::Reconfig {
                    vc,
                    promote: None,
                    demote: Some((suspect, ControllerMode::Indicator)),
                });
                plane.push_cmd(Message::FailSafe {
                    vc,
                    value: fail_safe,
                });
                plane.decision_pending = false;
            }
            return;
        };
        let warm = self
            .registry
            .controller(target)
            .expect("controller registered")
            .has_task;
        if warm {
            self.commit_failover(target, suspect);
        } else {
            // Cold standby: migrate the task image first. A bad slot
            // budget is a configuration error to surface in the trace,
            // not a reason to abort the run mid-flight.
            let plan = match MigrationPlan::try_new(
                &evm_rtos::TaskImage::typical_control_task(),
                1,
                self.rtlink.config().cycle_duration(),
            ) {
                Ok(plan) => plan,
                Err(e) => {
                    self.trace
                        .log(self.now, "migration", format!("failed: {e}"));
                    if let Some(plane) = self.registry.head_plane_mut(head) {
                        plane.decision_pending = false;
                    }
                    return;
                }
            };
            let outcome = execute_migration(&plan, self.scenario.extra_loss, 100, &mut self.rng);
            match outcome {
                Ok(out) => {
                    self.trace.log(
                        self.now,
                        "migration",
                        format!(
                            "image {} B in {} frames ({} retries), {}",
                            plan.image_bytes, out.frames_sent, out.retries, out.duration
                        ),
                    );
                    self.queue.push(
                        self.now + out.duration,
                        Ev::MigrationDone { target, suspect },
                    );
                }
                Err(e) => {
                    self.trace
                        .log(self.now, "migration", format!("failed: {e}"));
                    if let Some(plane) = self.registry.head_plane_mut(head) {
                        plane.decision_pending = false;
                    }
                }
            }
        }
    }

    pub(super) fn on_migration_done(&mut self, target: NodeId, suspect: NodeId) {
        // Admission gate on the target before activation.
        let admitted = self
            .registry
            .controller_mut(target)
            .expect("target registered")
            .admit_focus_task();
        if !admitted {
            self.trace
                .log(self.now, "migration", format!("{target} refused admission"));
            let head = self
                .vcs
                .vc_of_controller(target)
                .and_then(|vc| self.vcs.vc(vc).head);
            if let Some(head) = head {
                if let Some(plane) = self.registry.head_plane_mut(head) {
                    plane.decision_pending = false;
                }
            }
            return;
        }
        // Warm-start the migrated integrator from the suspect's snapshot
        // (the data section of the migrated TCB).
        if let Some(suspect_core) = self.registry.controller(suspect) {
            let snapshot = suspect_core.snapshot_vars();
            self.registry
                .controller_mut(target)
                .expect("target registered")
                .restore_vars(snapshot);
        }
        self.trace
            .log(self.now, "migration", format!("task activated on {target}"));
        self.commit_failover(target, suspect);
    }

    pub(super) fn commit_failover(&mut self, target: NodeId, suspect: NodeId) {
        let Some(vc) = self.vcs.vc_of_controller(target) else {
            return;
        };
        // The VC head's authoritative view: demote first, then promote.
        let record = &mut self.components[vc as usize];
        let _ = record.set_mode(suspect, ControllerMode::Backup);
        let _ = record.set_mode(target, ControllerMode::Active);
        let Some(head) = self.vcs.vc(vc).head else {
            return;
        };
        if let Some(plane) = self.registry.head_plane_mut(head) {
            plane.push_cmd(Message::Reconfig {
                vc,
                promote: Some(target),
                demote: Some((suspect, ControllerMode::Backup)),
            });
            plane.decision_pending = false;
        }
        // The head applies its own commit immediately (it never hears its
        // own broadcast): the monitor re-aims at the new Active.
        let now = self.now;
        let head_label = self.label_of(head);
        if let Some(monitor) = self.registry.controller_mut(head) {
            monitor.apply_reconfig(
                Some(target),
                Some((suspect, ControllerMode::Backup)),
                now,
                &head_label,
                &mut self.trace,
            );
        }
        self.queue.push(
            self.now + self.scenario.demote_dormant_after,
            Ev::DormantDemote { target: suspect },
        );
        self.trace.log(
            self.now,
            "vc",
            format!("head commits failover {suspect} -> {target}"),
        );
    }

    pub(super) fn on_dormant_demote(&mut self, target: NodeId) {
        let Some(vc) = self.vcs.vc_of_controller(target) else {
            return;
        };
        let _ = self.components[vc as usize].set_mode(target, ControllerMode::Dormant);
        if let Some(head) = self.vcs.vc(vc).head {
            if let Some(plane) = self.registry.head_plane_mut(head) {
                plane.push_cmd(Message::Reconfig {
                    vc,
                    promote: None,
                    demote: Some((target, ControllerMode::Dormant)),
                });
            }
        }
    }
}
