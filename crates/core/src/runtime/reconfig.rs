//! The epoch-based reconfiguration plane.
//!
//! PR 1–4 froze a deployment's routes, slot schedule and head assignment
//! at construction: one immutable program per run. This module makes the
//! whole setup-time pipeline (`synth_flows` → `route_flows` →
//! `SlotSchedule::place_flows` → relay-job programming) re-invokable
//! mid-run through the [`Reconfigurator`], which produces an [`Epoch`] —
//! routes, flow semantics, schedule and forwarding jobs — that the driver
//! swaps in **atomically at an RT-Link cycle boundary** while every piece
//! of long-lived state (plant, PID integrators, component records,
//! failover detectors, energy meters) carries over untouched.
//!
//! Two triggers drive recomputation, both built on transmission-liveness
//! bookkeeping ([`crate::membership::HeartbeatLedger`], stamped by the
//! driver for every frame actually put on the air):
//!
//! 1. **Dead forwarder** — any node carrying forwarding jobs (a
//!    dedicated relay, or a role node lending a hop) that misses more
//!    than `heartbeat_cycles` consecutive cycles is marked down; routes
//!    re-run over the surviving [`Topology`] view
//!    ([`Topology::without_nodes`]) — flows whose endpoints died are
//!    pruned or retargeted to surviving listeners — and starved hops
//!    resume through whatever connectivity remains (e.g. a backup relay
//!    chain).
//! 2. **Head crash** — a silent head is replaced by
//!    [`crate::membership::elect_head`] over the VC's surviving backup
//!    replicas (fittest battery, lowest id on ties); the winner's
//!    behavior is rehydrated from a controller into a head (keeping its
//!    replica state), the component record re-seats the head, and the
//!    control plane (arbitration, failover commits) resumes on the new
//!    node.
//!
//! Everything here is gated on [`ReroutePolicy::Heartbeat`]; under the
//! default [`ReroutePolicy::Static`] the runtime behaves exactly as
//! before — no keepalives, no ledger, no epochs — so all pre-existing
//! flow, schedule and plant-trace goldens stay byte-identical.

use std::collections::{BTreeMap, HashMap};
use std::mem;

use evm_mac::rtlink::{Flow, RtLinkConfig, ScheduleError, SlotSchedule};
use evm_netsim::{NodeId, Topology};
use evm_sim::{SimDuration, SimTime};

use crate::membership::{elect_head, HeadCandidate, HeartbeatLedger};
use crate::roles::ControllerMode;
use crate::runtime::behaviors::{HeadNode, RelayCore};
use crate::runtime::driver::{Engine, SlotTable};
use crate::runtime::topo::{route_flows, synth_flows, FlowKind, RelayJob, RouteError, VcId, VcMap};

/// When (and whether) the runtime re-routes around failures mid-run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReroutePolicy {
    /// Routes, schedule and head are frozen at setup — the pre-epoch
    /// behavior, and the default. A crashed forwarder permanently starves
    /// every hop routed through it.
    Static,
    /// Forwarders and heads transmit keepalives in otherwise-empty owned
    /// slots; a node silent for more than `heartbeat_cycles` cycles is
    /// marked down, triggering re-routing (and head re-election) at the
    /// next cycle boundary.
    Heartbeat,
}

impl ReroutePolicy {
    /// Stable label for report keys and CSV cells.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ReroutePolicy::Static => "static",
            ReroutePolicy::Heartbeat => "heartbeat",
        }
    }
}

/// One configuration epoch: everything the driver swaps when the network
/// is re-programmed mid-run. Produced by [`Reconfigurator::compute`];
/// epoch 0 is the setup-time configuration.
#[derive(Debug)]
pub struct Epoch {
    /// Monotone epoch sequence number (tags the schedule).
    pub seq: u64,
    /// The recomputed slot timetable.
    pub schedule: SlotSchedule,
    /// `(slot, owner) → flow semantic` for every scheduled flow.
    pub flow_kinds: HashMap<(usize, NodeId), FlowKind>,
    /// Forwarding jobs per node, in emission order.
    pub jobs: BTreeMap<NodeId, Vec<RelayJob>>,
}

/// Why an epoch could not be computed. A failed recompute leaves the
/// previous epoch in force (the run degrades exactly as a static run
/// would) — it never aborts the simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReconfigError {
    /// A logical flow has no path over the surviving topology.
    Unroutable(RouteError),
    /// The re-routed flow set does not fit the RT-Link cycle.
    Unschedulable(ScheduleError),
}

impl std::fmt::Display for ReconfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReconfigError::Unroutable(e) => write!(f, "unroutable: {e}"),
            ReconfigError::Unschedulable(e) => write!(f, "unschedulable: {e}"),
        }
    }
}

impl std::error::Error for ReconfigError {}

/// The reusable setup pipeline: role maps in, epoch out. Stateless — the
/// same inputs always produce the same epoch, which is what makes a
/// no-op reconfiguration (nothing died) indistinguishable from the
/// static run.
pub struct Reconfigurator;

impl Reconfigurator {
    /// Synthesizes the flow pipeline for `vcs`, routes it over `topology`
    /// minus the `down` nodes, and places it on a fresh schedule tagged
    /// with `seq`.
    ///
    /// The `down` view is derived from the already-sampled connectivity
    /// graph ([`Topology::without_nodes`]), so recomputation never draws
    /// from the channel's RNG stream — a reconfigured run stays exactly
    /// reproducible.
    ///
    /// With `transfer_slots > 0`, every VC whose (surviving) primary
    /// controller has at least one surviving peer additionally gets that
    /// many dedicated [`FlowKind::Transfer`] slots appended after the
    /// control pipeline — the bulk lane a live capsule migration ships
    /// its fragments over. `transfer_slots == 0` reproduces the previous
    /// schedules byte for byte.
    ///
    /// # Errors
    ///
    /// [`ReconfigError`] when a flow cannot be routed over the surviving
    /// connectivity or the routed set (plus any transfer reservation)
    /// cannot be scheduled.
    pub fn compute(
        seq: u64,
        topology: &Topology,
        down: &[NodeId],
        vcs: &VcMap,
        rtlink: &RtLinkConfig,
        serial_schedule: bool,
        transfer_slots: usize,
    ) -> Result<Epoch, ReconfigError> {
        let view = topology.without_nodes(down);
        let logical = prune_down_flows(synth_flows(vcs), down);
        let routed = route_flows(&view, &logical).map_err(ReconfigError::Unroutable)?;
        let flows: Vec<_> = routed.flows.iter().map(|(f, _)| f.clone()).collect();
        let (mut schedule, placed) = if serial_schedule {
            SlotSchedule::place_flows_serial(rtlink, &flows)
        } else {
            SlotSchedule::place_flows(rtlink, &view, &flows)
        }
        .map_err(ReconfigError::Unschedulable)?;
        let mut flow_kinds: HashMap<(usize, NodeId), FlowKind> = routed
            .flows
            .iter()
            .zip(&placed)
            .map(|((flow, kind), &slot)| ((slot, flow.src), *kind))
            .collect();
        if transfer_slots > 0 {
            for vc in 0..vcs.n_vcs() as VcId {
                let roles = vcs.vc(vc);
                // The transfer lane's owner is the VC's primary replica —
                // the node holding the authoritative capsule state a
                // migration ships. A down primary has nothing to ship.
                let Some(&src) = roles.controllers.first() else {
                    continue;
                };
                if down.contains(&src) {
                    continue;
                }
                let mut listeners: Vec<NodeId> = roles
                    .head
                    .into_iter()
                    .chain(roles.controllers.iter().copied())
                    .filter(|&n| n != src && !down.contains(&n))
                    .collect();
                listeners.sort_unstable();
                listeners.dedup();
                if listeners.is_empty() {
                    continue;
                }
                let reserved = schedule
                    .reserve_transfer_slots(src, &listeners, transfer_slots)
                    .map_err(ReconfigError::Unschedulable)?;
                for slot in reserved {
                    flow_kinds.insert((slot, src), FlowKind::Transfer { vc });
                }
            }
        }
        Ok(Epoch {
            seq,
            schedule: schedule.with_epoch(seq),
            flow_kinds,
            jobs: routed.jobs,
        })
    }
}

/// Rewrites the logical flow list for a set of down nodes, so recompute
/// succeeds even when a dead node was a flow *endpoint* (a role node
/// lending a hop, a crashed primary) and not just a forwarder:
///
/// * a flow whose **source** is down is dropped (nothing transmits),
/// * a flow whose **destination** is down retargets to its first
///   surviving extra listener (a publish keeps serving its subscribers
///   when the primary receiver dies) or is dropped when none survives,
/// * down nodes are stripped from listener lists,
/// * `after` edges re-chain through dropped flows (a dropped flow's
///   dependents inherit its own dependency), keeping the precedence
///   graph valid for `route_flows`.
///
/// With no down nodes the list passes through untouched — the no-op
/// identity the atomicity tests pin.
fn prune_down_flows(logical: Vec<(Flow, FlowKind)>, down: &[NodeId]) -> Vec<(Flow, FlowKind)> {
    if down.is_empty() {
        return logical;
    }
    // Per original index: the kept flow's new index, or — for dropped
    // flows — the dependency its dependents should inherit.
    let mut new_idx: Vec<Option<usize>> = Vec::with_capacity(logical.len());
    let mut inherited: Vec<Option<usize>> = Vec::with_capacity(logical.len());
    let mut kept: Vec<(Flow, FlowKind)> = Vec::new();
    for (flow, kind) in logical {
        let after = flow.after.and_then(|a| new_idx[a].or(inherited[a]));
        let mut listeners: Vec<NodeId> = flow
            .extra_listeners
            .iter()
            .copied()
            .filter(|l| !down.contains(l))
            .collect();
        let dst = if down.contains(&flow.dst) {
            if listeners.is_empty() {
                None
            } else {
                Some(listeners.remove(0))
            }
        } else {
            Some(flow.dst)
        };
        match (down.contains(&flow.src), dst) {
            (false, Some(dst)) => {
                let mut f = Flow::new(flow.src, dst).with_listeners(listeners);
                if let Some(a) = after {
                    f = f.after(a);
                }
                new_idx.push(Some(kept.len()));
                inherited.push(None);
                kept.push((f, kind));
            }
            _ => {
                new_idx.push(None);
                inherited.push(after);
            }
        }
    }
    kept
}

/// The driver's half of the reconfiguration plane: liveness ledger,
/// committed/staged epochs, and the detect→commit→recover timestamps the
/// reports read off.
#[derive(Debug, Default)]
pub(super) struct ReconfigState {
    /// Transmission liveness per node, in cycle counts.
    pub ledger: HeartbeatLedger,
    /// The committed epoch (0 = the setup-time configuration).
    pub epoch: u64,
    /// A recomputed epoch staged for the next cycle boundary.
    pub pending: Option<Epoch>,
    /// When the first node was marked down.
    pub detect_at: Option<SimTime>,
    /// When the most recent epoch was committed.
    pub last_commit_at: Option<SimTime>,
    /// A down-triggered recompute staged successfully and its recovery
    /// has not been observed yet. Gates the reroute clock: a *failed*
    /// recompute (starvation persists) must never let an unrelated later
    /// commit report a recovery that did not happen.
    pub awaiting_recovery: bool,
    /// Detect → first delivered actuation after a post-detection commit.
    pub reroute_latency: Option<SimDuration>,
}

impl Engine {
    /// Reconfiguration housekeeping at every cycle boundary: commit a
    /// staged epoch, then (under [`ReroutePolicy::Heartbeat`]) scan the
    /// watched nodes for heartbeat silence and stage a recomputed epoch
    /// when someone died.
    ///
    /// The watch set is exactly the nodes with *active duties* in the
    /// committed epoch: heads, plus any node carrying forwarding jobs (a
    /// dedicated relay, or a controller/actuator lending a hop). A node
    /// without duties — e.g. an idle backup-chain relay — is deliberately
    /// unwatched: it owns no slots, so silence carries no information
    /// and would false-mark a live node down (sticky!) the moment a
    /// route change strips its jobs. Its silence clock starts when an
    /// epoch first presses it into service ([`Engine::apply_epoch`]'s
    /// commit-time stamp).
    pub(super) fn reconfig_on_cycle_start(&mut self) {
        if let Some(epoch) = self.reconfig.pending.take() {
            self.apply_epoch(epoch);
        }
        if self.scenario.reroute != ReroutePolicy::Heartbeat {
            return;
        }
        let (cycle, _) = self.rtlink.slot_at(self.now);
        // The scan runs every cycle on every heartbeat deployment, so its
        // two working lists live in reusable engine scratch.
        let mut watch = mem::take(&mut self.scratch_watch);
        watch.clear();
        watch.extend(self.vcs.vcs.iter().filter_map(|r| r.head));
        watch.extend_from_slice(&self.forwarders);
        // Sorted + deduped: down-marks must trace deterministically.
        watch.sort_unstable();
        watch.dedup();
        let mut newly_down = mem::take(&mut self.scratch_down);
        newly_down.clear();
        for &node in &watch {
            if !self.reconfig.ledger.is_down(node)
                && self
                    .reconfig
                    .ledger
                    .silent(node, cycle, self.scenario.heartbeat_cycles)
            {
                self.reconfig.ledger.mark_down(node);
                newly_down.push(node);
            }
        }
        self.scratch_watch = watch;
        if newly_down.is_empty() {
            self.scratch_down = newly_down;
            return;
        }
        if self.reconfig.detect_at.is_none() {
            self.reconfig.detect_at = Some(self.now);
        }
        for &node in &newly_down {
            let label = self.label_of(node);
            self.trace.log(
                self.now,
                "reconfig",
                format!("{label} missed heartbeats; marked down"),
            );
            self.on_node_down(node);
        }
        self.scratch_down = newly_down;
        if self.stage_recompute() {
            self.reconfig.awaiting_recovery = true;
        }
    }

    /// Membership consequences of a node marked down: dedicated relays
    /// leave their VC's record; a dead head triggers re-election.
    fn on_node_down(&mut self, node: NodeId) {
        for vc in 0..self.vcs.n_vcs() as VcId {
            if self.vcs.vc(vc).head == Some(node) {
                self.reelect_head(vc, node);
            } else if self.vcs.vc(vc).relays.contains(&node) {
                self.vcs.vcs[vc as usize].relays.retain(|&r| r != node);
                self.components[vc as usize].remove_member(node);
            }
        }
    }

    /// Re-elects VC `vc`'s head after `dead` went silent: deterministic
    /// election over the surviving backup replicas, behavior rehydration
    /// (the winner's [`super::behaviors::ControllerNode`] becomes a
    /// [`HeadNode`] around the *same* replica core — detectors, VM state
    /// and kernel carry over), role-map and component-record updates.
    fn reelect_head(&mut self, vc: VcId, dead: NodeId) {
        let candidates: Vec<HeadCandidate> = self
            .vcs
            .vc(vc)
            .controllers
            .iter()
            .map(|&id| {
                let mode = self.components[vc as usize].member(id).and_then(|m| m.mode);
                HeadCandidate {
                    node: id,
                    eligible: mode == Some(ControllerMode::Backup)
                        && self.alive(id)
                        && !self.reconfig.ledger.is_down(id),
                    fitness: self.battery_fitness(id),
                }
            })
            .collect();
        let Some(new_head) = elect_head(&candidates) else {
            self.trace.log(
                self.now,
                "reconfig",
                "head lost and no backup survives; control plane stays down",
            );
            self.components[vc as usize].remove_member(dead);
            self.vcs.vcs[vc as usize].head = None;
            return;
        };
        // Rehydrate: the winner keeps its replica core (mode, detectors,
        // integrator state) but gains the head's control plane.
        if self.registry.controller(new_head).is_some() {
            let old = self
                .registry
                .take(new_head)
                .expect("elected head is registered");
            let core = old
                .into_controller_core()
                .expect("elected head hosts a replica core");
            self.registry
                .put_back(new_head, Box::new(HeadNode::new(core)));
        }
        {
            let roles = &mut self.vcs.vcs[vc as usize];
            roles.head = Some(new_head);
            roles.controllers.retain(|&c| c != new_head);
        }
        let record = &mut self.components[vc as usize];
        record.remove_member(dead);
        record.set_head(new_head);
        let (dead_label, new_label) = (self.label_of(dead), self.label_of(new_head));
        self.trace.log(
            self.now,
            "reconfig",
            format!("head {dead_label} lost; {new_label} re-elected head"),
        );
        // With a transfer lane reserved, a head re-election doesn't just
        // re-point roles — it *ships the capsule*: the primary serializes
        // its versioned capsule plus interpreter state and streams it to
        // the new head over the dedicated transfer slots (see
        // `super::xfer`). Without transfer slots this is a no-op, which
        // keeps the pre-migration goldens byte-identical.
        self.start_capsule_transfer(vc, new_head);
    }

    /// Recomputes the epoch over the surviving topology and stages it for
    /// the next cycle boundary; returns whether staging succeeded. A
    /// failed recompute (no alternate path, cycle too short) leaves the
    /// current epoch in force.
    pub(super) fn stage_recompute(&mut self) -> bool {
        let seq = self.reconfig.epoch + 1;
        let down = self.reconfig.ledger.down_nodes();
        match Reconfigurator::compute(
            seq,
            &self.topology,
            &down,
            &self.vcs,
            &self.scenario.rtlink,
            self.scenario.serial_schedule,
            self.scenario.transfer_slots,
        ) {
            Ok(epoch) => {
                self.trace.log(
                    self.now,
                    "reconfig",
                    format!(
                        "epoch {seq} staged: {} scheduled flows over {} slots",
                        epoch.flow_kinds.len(),
                        epoch.schedule.max_slot().map_or(0, |s| s + 1),
                    ),
                );
                self.reconfig.pending = Some(epoch);
                true
            }
            Err(e) => {
                self.trace
                    .log(self.now, "reconfig", format!("reroute failed: {e}"));
                false
            }
        }
    }

    /// Commits a staged epoch: swaps schedule, flow semantics and relay
    /// programs in one step. Pending frames of forwarding jobs that
    /// survive into the new epoch migrate with it, so a no-op swap is
    /// invisible to the data plane.
    fn apply_epoch(&mut self, epoch: Epoch) {
        let mut cores: Vec<Option<RelayCore>> = (0..self.node_ids.len()).map(|_| None).collect();
        let mut forwarders: Vec<NodeId> = Vec::with_capacity(epoch.jobs.len());
        for (id, jobs) in epoch.jobs {
            let mut core = RelayCore::new(jobs);
            let ix = self.dense_ix(id).expect("forwarder is a topology node");
            if let Some(old) = self.relay_cores[ix].as_mut() {
                core.migrate_from(old);
            }
            cores[ix] = Some(core);
            forwarders.push(id);
        }
        self.relay_cores = cores;
        self.forwarders = forwarders;
        self.schedule = epoch.schedule;
        self.flow_kinds = epoch.flow_kinds;
        // The hot loop reads the flattened occupancy table, not the
        // schedule maps — rebuild it with every commit.
        self.slot_table = SlotTable::build(
            self.scenario.rtlink.slots_per_cycle,
            &self.schedule,
            &self.flow_kinds,
        );
        // ... and the compiled cycle plan is lowered from the table:
        // same commit, same boundary (see `super::plan`).
        self.rebuild_plan();
        self.reconfig.epoch = epoch.seq;
        self.reconfig.last_commit_at = Some(self.now);
        // Start the silence clock for every forwarder of the new epoch:
        // a node first pressed into service here may never have
        // transmitted (an idle backup chain), and never-heard nodes are
        // exempt from silence detection — without a commit-time stamp, a
        // backup that died *before* gaining jobs could starve the new
        // routes forever undetected. (Stamps are max-monotone, so this
        // never rolls a live node's liveness back.)
        if self.scenario.reroute == ReroutePolicy::Heartbeat {
            let (cycle, _) = self.rtlink.slot_at(self.now);
            for i in 0..self.forwarders.len() {
                let node = self.forwarders[i];
                self.reconfig.ledger.heard(node, cycle);
            }
        }
        self.trace.log(
            self.now,
            "reconfig",
            format!("epoch {} committed", epoch.seq),
        );
    }

    /// A scripted reconfiguration request (`force_reconfig_at`): stage a
    /// recompute with the current down set — possibly empty, the no-op
    /// case the atomicity tests pin — to commit at the next boundary.
    pub(super) fn on_forced_reconfig(&mut self) {
        let _ = self.stage_recompute();
    }

    /// Actuation hook for the recovery clock: the first delivery after
    /// the *detection-triggered* epoch commit closes the
    /// detect→reroute→delivery interval reported as the reroute latency.
    /// Gated on `awaiting_recovery` so a failed reroute (starvation
    /// persists) never lets an unrelated later commit claim a recovery.
    pub(super) fn note_actuation_for_reroute_clock(&mut self) {
        if !self.reconfig.awaiting_recovery || self.reconfig.reroute_latency.is_some() {
            return;
        }
        let (Some(detect), Some(commit)) = (self.reconfig.detect_at, self.reconfig.last_commit_at)
        else {
            return;
        };
        if commit >= detect {
            self.reconfig.reroute_latency = Some(self.now.saturating_since(detect));
            self.reconfig.awaiting_recovery = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::topo::TopologySpec;
    use evm_netsim::{Channel, ChannelConfig};
    use evm_sim::SimRng;

    fn fig5_parts() -> (Topology, VcMap) {
        let mut ch = Channel::new(ChannelConfig::default(), SimRng::seed_from(1));
        TopologySpec::fig5().resolve(&mut ch)
    }

    /// An empty down set is the identity: epoch 0 from the
    /// Reconfigurator equals the plain setup pipeline, flow for flow.
    #[test]
    fn empty_down_set_reproduces_the_setup_epoch() {
        let (topology, vcs) = fig5_parts();
        let cfg = evm_mac::RtLinkConfig::default();
        let epoch = Reconfigurator::compute(0, &topology, &[], &vcs, &cfg, false, 0).unwrap();
        let routed = route_flows(&topology, &synth_flows(&vcs)).unwrap();
        assert_eq!(epoch.seq, 0);
        assert_eq!(epoch.flow_kinds.len(), routed.flows.len());
        assert_eq!(epoch.jobs, routed.jobs);
        assert_eq!(epoch.schedule.epoch(), 0);
    }

    /// Pruning a down endpoint: flows sourced at the dead node drop,
    /// flows addressed to it retarget to their first surviving listener,
    /// and the `after` chain stays valid (routable + schedulable).
    #[test]
    fn prune_retargets_publishes_when_the_primary_receiver_dies() {
        let (topology, vcs) = fig5_parts();
        let cfg = evm_mac::RtLinkConfig::default();
        // Fig. 5: Ctrl-A = node 2 is the primary — the PV publish's dst
        // and a ControlPublish source.
        let primary = vcs.vc(0).primary();
        let epoch =
            Reconfigurator::compute(1, &topology, &[primary], &vcs, &cfg, false, 0).unwrap();
        assert_eq!(epoch.schedule.epoch(), 1);
        for (&(_, owner), kind) in &epoch.flow_kinds {
            assert_ne!(owner, primary, "dead node still owns a slot: {kind:?}");
        }
        // The PV publish survives, retargeted at the first backup.
        let publish_slots = epoch
            .flow_kinds
            .values()
            .filter(|k| matches!(k, FlowKind::SensorPublish { vc: 0, tag: 0 }))
            .count();
        assert_eq!(publish_slots, 1, "PV publish retargeted, not dropped");
        // One ControlPublish (the backup's) remains of the original two.
        let outputs = epoch
            .flow_kinds
            .values()
            .filter(|k| matches!(k, FlowKind::ControlPublish { vc: 0 }))
            .count();
        assert_eq!(outputs, 1);
    }

    /// `transfer_slots > 0` appends a per-VC bulk lane after the control
    /// pipeline: slots owned by the primary, tagged
    /// [`FlowKind::Transfer`], listened to by the head and peers; with 0
    /// the epoch is unchanged.
    #[test]
    fn transfer_slots_are_reserved_per_vc() {
        let (topology, vcs) = fig5_parts();
        let cfg = evm_mac::RtLinkConfig::default();
        let plain = Reconfigurator::compute(0, &topology, &[], &vcs, &cfg, false, 0).unwrap();
        let with_lane = Reconfigurator::compute(0, &topology, &[], &vcs, &cfg, false, 2).unwrap();
        let transfers: Vec<_> = with_lane
            .flow_kinds
            .iter()
            .filter(|(_, k)| matches!(k, FlowKind::Transfer { .. }))
            .collect();
        assert_eq!(transfers.len(), 2 * vcs.n_vcs(), "2 slots per VC");
        let pipeline_end = plain.schedule.max_slot().unwrap();
        let primary = vcs.vc(0).primary();
        for (&(slot, owner), _) in &transfers {
            assert!(slot > pipeline_end, "transfer lane follows the pipeline");
            assert_eq!(owner, primary, "primary owns the lane (single VC)");
            let asg = &with_lane.schedule.in_slot(slot)[0];
            assert!(
                asg.listeners.contains(&vcs.vc(0).head.unwrap()),
                "head listens on the transfer lane"
            );
        }
        // The control pipeline itself is untouched by the reservation.
        assert_eq!(plain.flow_kinds.len() + 2, with_lane.flow_kinds.len());
        for (key, kind) in &plain.flow_kinds {
            assert_eq!(with_lane.flow_kinds.get(key), Some(kind));
        }
    }

    /// A down node nobody else can reach around fails recompute with a
    /// typed error instead of panicking (the driver then keeps the old
    /// epoch).
    #[test]
    fn unroutable_survivors_report_instead_of_panicking() {
        let mut ch = Channel::new(ChannelConfig::default(), SimRng::seed_from(1));
        let spec = TopologySpec::line(2, 1, 1, 1, false, crate::runtime::topo::LINE_SPACING_M);
        let (topology, vcs) = spec.resolve(&mut ch);
        let cfg = evm_mac::RtLinkConfig::default();
        // R1 (node 4) is the only bridge to the sensor: no backup chain.
        let err =
            Reconfigurator::compute(1, &topology, &[NodeId(4)], &vcs, &cfg, false, 0).unwrap_err();
        assert!(matches!(err, ReconfigError::Unroutable(_)), "{err}");
        assert!(format!("{err}").contains("unroutable"));
    }
}
