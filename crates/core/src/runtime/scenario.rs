//! Scenario configuration and the topology-aware builder DSL.

use evm_mac::RtLinkConfig;
use evm_netsim::{ChannelConfig, FaultPlan};
use evm_plant::{ActuatorFault, ControlLoopSpec};
use evm_sim::{SimDuration, SimTime};

use crate::bytecode::Tier;
use crate::runtime::reconfig::ReroutePolicy;
use crate::runtime::topo::{
    TopologySpec, VcId, CLUSTER_HOP_M, CLUSTER_RING_M, GRID_SPACING_M, LINE_SPACING_M, MAX_VCS,
};

/// The physical layout family the builder materializes (and the
/// `over_topology` sweep axis in `evm-sweep`). Star is the Fig. 5
/// single-hop family; the other three exercise the multi-hop relay
/// pipeline end to end.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Layout {
    /// Single-hop ring around the gateway ([`TopologySpec::multi_star`]).
    Star,
    /// Sensor `hops` hops left of the gateway behind relays, control pod
    /// on the right ([`TopologySpec::line`]). Single-VC.
    Line {
        /// Radio hops from the focus sensor to the gateway (≥ 1).
        hops: usize,
    },
    /// `w × h` lattice, gateway and sensor in opposite corners
    /// ([`TopologySpec::grid`]). Single-VC.
    Grid {
        /// Lattice width (cells).
        w: usize,
        /// Lattice height (cells).
        h: usize,
    },
    /// One tight cluster per VC, each behind a two-relay chain from the
    /// shared gateway ([`TopologySpec::clustered`]).
    Clustered,
}

impl Layout {
    /// Stable label for report keys and CSV cells, e.g. `star`, `line2`,
    /// `grid2x3`, `clustered`.
    #[must_use]
    pub fn label(self) -> String {
        match self {
            Layout::Star => "star".to_string(),
            Layout::Line { hops } => format!("line{hops}"),
            Layout::Grid { w, h } => format!("grid{w}x{h}"),
            Layout::Clustered => "clustered".to_string(),
        }
    }
}

/// How the engine advances RT-Link slots.
///
/// Both modes share the same per-slot body and produce byte-identical
/// [`crate::metrics::RunResult`]s (pinned by the stepping differential
/// suite); they differ only in how the next slot is reached.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SlotStepping {
    /// Push an `Ev::Slot` event every slot, occupied or not — the
    /// pre-fleet behavior, kept as the differential baseline. Idle slots
    /// cost a heap push/pop each, which dominates at fleet scale.
    Legacy,
    /// Advance a virtual slot cursor over the epoch's occupancy table,
    /// batch-skipping empty slots (reserving their event sequence
    /// numbers so ordering stays exactly as if each had fired).
    #[default]
    EventDriven,
}

impl SlotStepping {
    /// Stable label for report keys and CSV cells.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            SlotStepping::Legacy => "legacy",
            SlotStepping::EventDriven => "event",
        }
    }
}

/// How the engine executes an occupied slot (and the cycle boundary).
///
/// Both modes produce byte-identical [`crate::metrics::RunResult`]s
/// (pinned by the plan differential suite); they differ only in how much
/// slot-invariant work is resolved ahead of time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CyclePlanMode {
    /// Execute from the epoch-compiled `CyclePlan`: dense indices,
    /// per-link distances and channel budgets, airtime constants, the
    /// cycle-start hook list and bound plant tags are all pre-resolved at
    /// epoch commit, so the hot path is reduced to the RNG draws.
    #[default]
    Planned,
    /// Re-resolve everything per slot from the live structures — the
    /// pre-plan behavior, kept as the differential oracle.
    Direct,
}

impl CyclePlanMode {
    /// Stable label for report keys and CSV cells.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            CyclePlanMode::Planned => "planned",
            CyclePlanMode::Direct => "direct",
        }
    }
}

/// A fully specified co-simulation run.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// RNG seed — two runs with the same scenario are identical.
    pub seed: u64,
    /// Simulated duration.
    pub duration: SimDuration,
    /// Plant integration step.
    pub plant_dt: SimDuration,
    /// Tag-sampling period for the output series.
    pub sample_every: SimDuration,
    /// The deployment: node roles, positions and sensor registers.
    pub topology: TopologySpec,
    /// RT-Link cycle parameters.
    pub rtlink: RtLinkConfig,
    /// Radio channel parameters.
    pub channel: ChannelConfig,
    /// The focus control loop hosted on VC 0's EVM nodes.
    pub focus_loop: ControlLoopSpec,
    /// Loops hosted by VCs `1..` (empty for a single-VC deployment). The
    /// count must match the topology's VC count; `[focus_loop] +
    /// extra_vc_loops` is the full hosting manifest, indexed by `VcId`.
    pub extra_vc_loops: Vec<ControlLoopSpec>,
    /// Deviation-detector threshold (output units).
    pub detect_threshold: f64,
    /// Consecutive anomalies to confirm a fault.
    pub detect_consecutive: u32,
    /// The head commits reconfigurations only at multiples of this epoch
    /// (the paper's conservative supervisory cadence; zero = immediate).
    pub reconfig_epoch: SimDuration,
    /// Delay from demotion (Backup) to Dormant — the paper's T3 − T2.
    pub demote_dormant_after: SimDuration,
    /// `true`: backup controllers hold warm replicas (Fig. 6b). `false`:
    /// the task must be migrated to a backup before promotion.
    pub warm_backup: bool,
    /// Heartbeat silence threshold in RT-Link cycles. Must be large enough
    /// that a burst of frame losses is not mistaken for a crash: at loss
    /// rate p the false-alarm rate per cycle is p^n.
    pub heartbeat_cycles: u64,
    /// Runtime re-routing policy: `Static` (default) freezes routes,
    /// schedule and head at setup; `Heartbeat` re-routes around dead
    /// forwarders and re-elects a crashed head mid-run (the epoch-based
    /// reconfiguration plane).
    pub reroute: ReroutePolicy,
    /// Execution tier every controller VM runs capsules on. `Interp`
    /// (the oracle, default) keeps every golden byte-identical; the
    /// other tiers are bit-identical by contract and only faster.
    pub tier: Tier,
    /// Slot-advancement strategy. `EventDriven` (default) skips empty
    /// slots via the occupancy-table cursor; `Legacy` fires an event per
    /// slot. Byte-identical results by contract.
    pub stepping: SlotStepping,
    /// Occupied-slot execution strategy. `Planned` (default) runs from
    /// the epoch-compiled cycle plan; `Direct` re-resolves everything per
    /// slot. Byte-identical results by contract.
    pub plan: CyclePlanMode,
    /// Scripted reconfiguration requests: at each instant the engine
    /// recomputes the epoch (with whatever down set it has, possibly
    /// empty) and commits it at the next cycle boundary. Test/bench knob
    /// for epoch atomicity and no-op-swap identity.
    pub force_reconfig: Vec<SimTime>,
    /// Scripted controller fault on VC 0's primary.
    pub fault: Option<(SimTime, ActuatorFault)>,
    /// Scripted controller fault on VC 0's *first backup* (double-fault
    /// runs).
    pub backup_fault: Option<(SimTime, ActuatorFault)>,
    /// Actuator value driven when no viable master remains (the
    /// `LocalFailSafe` response; fail-closed for the LTS valve).
    pub fail_safe_value: f64,
    /// Scripted primary-node crashes, per targeted VC (alternative
    /// failure mode).
    pub primary_crashes: Vec<(VcId, SimTime)>,
    /// Disable spatial slot reuse: every flow gets its own slot
    /// (`SlotSchedule::place_flows_serial`). The serialized baseline a
    /// reused schedule's cycle length — and byte-identical plant traces —
    /// are pinned against.
    pub serial_schedule: bool,
    /// Extra Bernoulli loss applied to every link (E14 sweeps this).
    pub extra_loss: f64,
    /// Gaussian measurement noise added at the gateway's sensor reads
    /// (engineering units of the focus PV).
    pub sensor_noise_std: f64,
    /// Dedicated capsule-transfer slots appended to each VC's epoch
    /// schedule. 0 (the default) disables live capsule migration — the
    /// schedule, RNG stream and every golden stay byte-identical. With
    /// `n > 0` under [`ReroutePolicy::Heartbeat`], a head re-election
    /// ships the active capsule + interpreter state to the new head over
    /// these slots, chunk by chunk with per-frame ack/retransmit.
    pub transfer_slots: usize,
    /// Extra bytes padded onto every shipped capsule image (checkpoint
    /// blobs, logs) — the sweepable image-size knob behind Fig. 6b's
    /// size × slot-budget failover latency.
    pub capsule_pad_bytes: usize,
    /// Per-chunk retransmission budget of a live capsule transfer (the
    /// initial transmission is free).
    pub migration_max_retries: usize,
    /// Fault-injection knob: the chunk with this sequence number arrives
    /// corrupted (one bit flipped in flight) exactly once; the receiver
    /// must drop it and the sender retransmit.
    pub corrupt_transfer_chunk: Option<usize>,
    /// Fault-injection knob: the sender's gas budget is tampered *after*
    /// the digest is computed — arrival attestation must reject the
    /// capsule.
    pub tamper_gas_budget: bool,
    /// Node/link fault script.
    pub fault_plan: FaultPlan,
    /// Plant tags to sample into the result series.
    pub sampled_tags: Vec<String>,
}

impl Scenario {
    /// Starts a builder from the baseline (no-fault) configuration.
    #[must_use]
    pub fn builder() -> ScenarioBuilder {
        ScenarioBuilder {
            inner: Scenario::baseline(),
            star: StarParams::fig5(),
            explicit_topology: false,
        }
    }

    /// The no-fault baseline: Fig. 5 topology, LTS loop on the EVM nodes,
    /// paper timing parameters, 1000 s horizon.
    #[must_use]
    pub fn baseline() -> Self {
        Scenario {
            seed: 42,
            duration: SimDuration::from_secs(1000),
            plant_dt: SimDuration::from_millis(100),
            sample_every: SimDuration::from_secs(1),
            topology: TopologySpec::fig5(),
            rtlink: RtLinkConfig::default(),
            channel: ChannelConfig::default(),
            focus_loop: evm_plant::lts_level_loop(),
            extra_vc_loops: Vec::new(),
            detect_threshold: 5.0,
            detect_consecutive: 3,
            reconfig_epoch: SimDuration::from_secs(300),
            demote_dormant_after: SimDuration::from_secs(200),
            warm_backup: true,
            heartbeat_cycles: 16,
            reroute: ReroutePolicy::Static,
            tier: Tier::Interp,
            stepping: SlotStepping::EventDriven,
            plan: CyclePlanMode::Planned,
            force_reconfig: Vec::new(),
            fault: None,
            backup_fault: None,
            fail_safe_value: 0.0,
            primary_crashes: Vec::new(),
            serial_schedule: false,
            extra_loss: 0.0,
            sensor_noise_std: 0.0,
            transfer_slots: 0,
            capsule_pad_bytes: 0,
            migration_max_retries: 8,
            corrupt_transfer_chunk: None,
            tamper_gas_budget: false,
            fault_plan: FaultPlan::none(),
            sampled_tags: vec![
                "LTS.LiquidPct".into(),
                "SepLiq.MolarFlow".into(),
                "LTSLiq.MolarFlow".into(),
                "TowerFeed.MolarFlow".into(),
                "LTSLiqValve.OpeningPct".into(),
            ],
        }
    }

    /// The paper's Fig. 5 testbed, unmodified — an alias of
    /// [`Scenario::baseline`] that names the topology it reproduces.
    #[must_use]
    pub fn fig5() -> Self {
        Scenario::baseline()
    }

    /// Number of Virtual Components this scenario hosts.
    #[must_use]
    pub fn n_vcs(&self) -> usize {
        1 + self.extra_vc_loops.len()
    }

    /// The loop hosted by VC `vc` (0 = the focus loop).
    ///
    /// # Panics
    ///
    /// Panics if `vc` is out of range.
    #[must_use]
    pub fn vc_loop(&self, vc: VcId) -> &ControlLoopSpec {
        if vc == 0 {
            &self.focus_loop
        } else {
            &self.extra_vc_loops[vc as usize - 1]
        }
    }

    /// Re-derives the hosting manifest for an `n`-VC deployment: VC 0
    /// keeps [`Scenario::focus_loop`]; VCs `1..n` take the next loops of
    /// the canonical [`evm_plant::vc_host_loops`] order (skipping the
    /// focus loop), and every hosted PV tag is added to
    /// [`Scenario::sampled_tags`]. Re-hosting owns the extra loops' PV
    /// tags: tags the outgoing manifest added are dropped first, so
    /// shrinking the pool leaves no phantom series behind — and scripted
    /// primary crashes targeting VCs the new pool no longer hosts are
    /// dropped with them (a fault can only apply where its VC exists, so
    /// a `vcs` sweep axis never builds a cell that would abort
    /// mid-batch). Does **not** touch the topology — the builder and the
    /// sweep grid pair this with [`TopologySpec::multi_star`].
    ///
    /// # Panics
    ///
    /// Panics if `n` is outside `1..=MAX_VCS`.
    pub fn host_vcs(&mut self, n: usize) {
        assert!(
            (1..=MAX_VCS).contains(&n),
            "vc count out of 1..={MAX_VCS}: {n}"
        );
        let outgoing: Vec<String> = self
            .extra_vc_loops
            .iter()
            .map(|l| l.pv_tag.clone())
            .collect();
        self.sampled_tags.retain(|t| !outgoing.contains(t));
        self.extra_vc_loops = evm_plant::vc_host_loops()
            .into_iter()
            .filter(|l| l.name != self.focus_loop.name)
            .take(n - 1)
            .collect();
        for vc in 0..n {
            let tag = self.vc_loop(vc as VcId).pv_tag.clone();
            if !self.sampled_tags.contains(&tag) {
                self.sampled_tags.push(tag);
            }
        }
        self.primary_crashes.retain(|&(vc, _)| (vc as usize) < n);
    }

    /// Re-derives the hosting manifest for an `n`-VC **fleet**
    /// deployment ([`TopologySpec::fleet`]): VC `k` hosts canonical loop
    /// `k % MAX_VCS`, with instance-suffixed names (`LC-LTS#1`, …) past
    /// the first eight so every `Err.<loop>` series key stays unique.
    /// The first eight VCs carry the unsuffixed canonical loops, so the
    /// plant's local-control subtraction works exactly as in
    /// [`Scenario::host_vcs`]. Every hosted PV tag (at most the eight
    /// canonical ones) is added to [`Scenario::sampled_tags`].
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn host_fleet(&mut self, n: usize) {
        assert!(n >= 1, "a fleet hosts at least one VC");
        let outgoing: Vec<String> = self
            .extra_vc_loops
            .iter()
            .map(|l| l.pv_tag.clone())
            .collect();
        self.sampled_tags.retain(|t| !outgoing.contains(t));
        let canon = evm_plant::vc_host_loops();
        self.focus_loop = canon[0].clone();
        self.extra_vc_loops = (1..n)
            .map(|k| {
                let mut l = canon[k % MAX_VCS].clone();
                if k >= MAX_VCS {
                    l.name = format!("{}#{}", l.name, k / MAX_VCS);
                }
                l
            })
            .collect();
        for l in canon.iter().take(n) {
            if !self.sampled_tags.contains(&l.pv_tag) {
                self.sampled_tags.push(l.pv_tag.clone());
            }
        }
        self.primary_crashes.retain(|&(vc, _)| (vc as usize) < n);
    }

    /// The paper's Fig. 6b scenario: the primary sticks at 75 % at
    /// T1 = 300 s; the head commits the failover at the next 300 s epoch
    /// (T2 = 600 s); the primary goes Dormant 200 s later (T3 = 800 s).
    #[must_use]
    pub fn fig6b() -> Self {
        Scenario::builder()
            .fault_at(SimTime::from_secs(300), ActuatorFault::paper_fault())
            .build()
    }

    /// Fig. 6b with immediate reconfiguration — the E3 ablation showing
    /// what detection-limited failover looks like.
    #[must_use]
    pub fn fig6b_fast() -> Self {
        Scenario::builder()
            .fault_at(SimTime::from_secs(300), ActuatorFault::paper_fault())
            .reconfig_epoch(SimDuration::ZERO)
            .build()
    }
}

/// Topology knobs accumulated by the builder DSL: a layout family plus
/// the per-VC role counts every family shares.
#[derive(Debug, Clone)]
struct StarParams {
    layout: Layout,
    vcs: usize,
    sensors: usize,
    controllers: usize,
    actuators: usize,
    head: bool,
    radius_m: f64,
    backup_relays: usize,
}

impl StarParams {
    /// The Fig. 5 parameter set.
    fn fig5() -> Self {
        StarParams {
            layout: Layout::Star,
            vcs: 1,
            sensors: 2,
            controllers: 2,
            actuators: 1,
            head: true,
            radius_m: 15.0,
            backup_relays: 0,
        }
    }
}

/// Fluent builder over [`Scenario::baseline`], including the topology DSL:
///
/// ```
/// use evm_core::runtime::ScenarioBuilder;
/// let wide = ScenarioBuilder::star()
///     .sensors(2)
///     .controllers(3)
///     .head(true)
///     .build();
/// assert_eq!(wide.topology.nodes.len(), 8);
/// ```
#[derive(Debug, Clone)]
pub struct ScenarioBuilder {
    inner: Scenario,
    star: StarParams,
    explicit_topology: bool,
}

impl ScenarioBuilder {
    /// Starts a star-topology builder (the default layout; an alias of
    /// [`Scenario::builder`] that reads well with the role-count methods).
    #[must_use]
    pub fn star() -> Self {
        Scenario::builder()
    }

    /// Starts from the degenerate three-node Virtual Component: gateway,
    /// one sensor, one controller, no actuator node, no head.
    #[must_use]
    pub fn minimal() -> Self {
        Scenario::builder()
            .sensors(1)
            .controllers(1)
            .actuators(0)
            .head(false)
    }

    /// Sets the number of Virtual Components hosted on the shared cycle
    /// (1..=8). Each VC gets the full star role set (`sensors`,
    /// `controllers`, …); VC 0 hosts the focus loop and VCs `1..` host
    /// the next loops of the canonical [`evm_plant::vc_host_loops`]
    /// order.
    ///
    /// # Panics
    ///
    /// Panics if `n` is outside `1..=MAX_VCS`.
    #[must_use]
    pub fn vcs(mut self, n: usize) -> Self {
        assert!(
            (1..=MAX_VCS).contains(&n),
            "vc count out of 1..={MAX_VCS}: {n}"
        );
        self.star.vcs = n;
        self
    }

    /// Sets the number of sensor nodes per VC (≥ 1; sensor 1 carries the
    /// focus PV, the rest publish monitoring flows).
    #[must_use]
    pub fn sensors(mut self, n: usize) -> Self {
        self.star.sensors = n;
        self
    }

    /// Sets the number of controller replicas (≥ 1; the first is the
    /// initial primary).
    #[must_use]
    pub fn controllers(mut self, n: usize) -> Self {
        self.star.controllers = n;
        self
    }

    /// Sets the number of actuator nodes: 0 routes actuation through the
    /// gateway, 1 is a dedicated actuator node. More than one is rejected
    /// at build time (controller outputs address a single actuation
    /// endpoint for now).
    #[must_use]
    pub fn actuators(mut self, n: usize) -> Self {
        self.star.actuators = n;
        self
    }

    /// Includes (or removes) the Virtual Component head. Without a head
    /// there is no arbitration and no failover — the minimal data plane.
    #[must_use]
    pub fn head(mut self, present: bool) -> Self {
        self.star.head = present;
        self
    }

    /// Sets the star ring radius in meters.
    #[must_use]
    pub fn radius_m(mut self, radius: f64) -> Self {
        self.star.radius_m = radius;
        self
    }

    /// Switches to the multi-hop line layout: the focus sensor `hops`
    /// radio hops left of the gateway behind `hops - 1` relays, the
    /// control pod one hop right and the actuator beyond it
    /// ([`TopologySpec::line`]). Role-count knobs (`sensors`,
    /// `controllers`, `actuators`, `head`) apply as usual; `line(2)` with
    /// one sensor/controller/actuator is the paper-style
    /// `sensor—relay—gateway—controller—actuator` chain. Single-VC:
    /// `vcs(n > 1)` is rejected at build time.
    ///
    /// # Panics
    ///
    /// Panics unless `hops >= 1`.
    #[must_use]
    pub fn line(mut self, hops: usize) -> Self {
        assert!(hops >= 1, "a line needs at least one hop");
        self.star.layout = Layout::Line { hops };
        self
    }

    /// Switches to the `w × h` lattice layout: gateway and focus sensor
    /// in opposite corners, roles filling cells row-major, leftover cells
    /// becoming relays ([`TopologySpec::grid`]). Single-VC: `vcs(n > 1)`
    /// is rejected at build time.
    ///
    /// # Panics
    ///
    /// Panics unless the lattice is non-degenerate.
    #[must_use]
    pub fn grid(mut self, w: usize, h: usize) -> Self {
        assert!(w >= 1 && h >= 1, "degenerate lattice");
        self.star.layout = Layout::Grid { w, h };
        self
    }

    /// Switches to the clustered layout *and* hosts `k` Virtual
    /// Components, one tight cluster per VC behind a two-relay chain from
    /// the shared gateway ([`TopologySpec::clustered`]) — the layout
    /// whose intra-cluster slots the scheduler reuses across clusters.
    ///
    /// # Panics
    ///
    /// Panics if `k` is outside `1..=MAX_VCS`.
    #[must_use]
    pub fn clustered(mut self, k: usize) -> Self {
        assert!(
            (1..=MAX_VCS).contains(&k),
            "vc count out of 1..={MAX_VCS}: {k}"
        );
        self.star.layout = Layout::Clustered;
        self.star.vcs = k;
        self
    }

    /// Adds `n` redundant relay chains beside the primary one (line and
    /// clustered layouts): geometrically parallel forwarders the routing
    /// pass ignores while the primary chain lives — BFS tie-breaks prefer
    /// the lower-id primaries — but which runtime re-routing
    /// ([`ScenarioBuilder::reroute`]) falls back to when a primary relay
    /// dies. Rejected at build time for layouts without a dedicated
    /// chain (star, grid).
    #[must_use]
    pub fn backup_relays(mut self, n: usize) -> Self {
        self.star.backup_relays = n;
        self
    }

    /// Sets the runtime re-routing policy ([`Scenario::reroute`]).
    #[must_use]
    pub fn reroute(mut self, policy: ReroutePolicy) -> Self {
        self.inner.reroute = policy;
        self
    }

    /// Sets the VM execution tier ([`Scenario::tier`]).
    #[must_use]
    pub fn tier(mut self, tier: Tier) -> Self {
        self.inner.tier = tier;
        self
    }

    /// Sets the slot-advancement strategy ([`Scenario::stepping`]).
    #[must_use]
    pub fn stepping(mut self, stepping: SlotStepping) -> Self {
        self.inner.stepping = stepping;
        self
    }

    /// Sets the occupied-slot execution strategy ([`Scenario::plan`]).
    #[must_use]
    pub fn plan(mut self, plan: CyclePlanMode) -> Self {
        self.inner.plan = plan;
        self
    }

    /// Switches to an `n`-VC fleet deployment: the explicit
    /// [`TopologySpec::fleet`] topology, the cycled hosting manifest
    /// ([`Scenario::host_fleet`]), a serial (sparse) schedule with an
    /// 8× slot-count headroom — the deliberately idle-slot-heavy shape
    /// the event-driven cursor exploits — and sampling + plant
    /// integration periods scaled to the (now very long) cycle, so
    /// result memory and plant-physics cost stay bounded at 10k VCs.
    /// The plant step is capped at 10 s: the discretizations are
    /// unconditionally stable, and no fleet loop samples faster than a
    /// quarter cycle, so sub-second integration buys nothing there.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= n <= 32000`.
    #[must_use]
    pub fn fleet(mut self, n: usize) -> Self {
        self.inner.topology = TopologySpec::fleet(n);
        self.explicit_topology = true;
        self.inner.serial_schedule = true;
        let spc = (8 * (3 * n + 1)).max(25);
        self.inner.rtlink.slots_per_cycle = spc;
        let cycle = self.inner.rtlink.slot_duration * spc as u64;
        self.inner.sample_every = cycle / 4;
        self.inner.plant_dt = self
            .inner
            .plant_dt
            .max((cycle / 64).min(SimDuration::from_secs(10)));
        self.inner.host_fleet(n);
        self
    }

    /// Scripts a reconfiguration request at `at` (commits at the next
    /// cycle boundary) — the epoch-atomicity test/bench knob.
    #[must_use]
    pub fn force_reconfig_at(mut self, at: SimTime) -> Self {
        self.inner.force_reconfig.push(at);
        self
    }

    /// Disables spatial slot reuse: the engine places every flow in its
    /// own slot ([`Scenario::serial_schedule`]). Pinning knob for the
    /// reuse-vs-serialized comparisons.
    #[must_use]
    pub fn serial_schedule(mut self, serial: bool) -> Self {
        self.inner.serial_schedule = serial;
        self
    }

    /// Sets the RT-Link cycle length in slots (slot 0 is the sync slot).
    /// Multi-hop layouts expand flows into per-hop slots, so relay-heavy
    /// deployments need a longer cycle than the default 25.
    ///
    /// # Panics
    ///
    /// Panics unless `n >= 2`.
    #[must_use]
    pub fn slots_per_cycle(mut self, n: usize) -> Self {
        assert!(n >= 2, "a cycle needs the sync slot plus a data slot");
        self.inner.rtlink.slots_per_cycle = n;
        self
    }

    /// Uses an explicit topology instead of the star DSL. Once set, the
    /// explicit spec wins: the star knobs (`sensors`, `controllers`,
    /// `actuators`, `head`, `radius_m`) are ignored regardless of call
    /// order.
    #[must_use]
    pub fn topology(mut self, spec: TopologySpec) -> Self {
        self.inner.topology = spec;
        self.explicit_topology = true;
        self
    }

    /// Sets the RNG seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.inner.seed = seed;
        self
    }

    /// Sets the run duration.
    #[must_use]
    pub fn duration(mut self, d: SimDuration) -> Self {
        self.inner.duration = d;
        self
    }

    /// Injects a controller fault on the primary at `at`.
    #[must_use]
    pub fn fault_at(mut self, at: SimTime, fault: ActuatorFault) -> Self {
        self.inner.fault = Some((at, fault));
        self
    }

    /// Crashes VC 0's primary node at `at`.
    #[must_use]
    pub fn crash_primary_at(self, at: SimTime) -> Self {
        self.crash_vc_primary_at(0, at)
    }

    /// Crashes VC `vc`'s primary node at `at` (per-VC fault injection).
    #[must_use]
    pub fn crash_vc_primary_at(mut self, vc: VcId, at: SimTime) -> Self {
        self.inner.primary_crashes.push((vc, at));
        self
    }

    /// Injects a controller fault on the first backup at `at`
    /// (double-fault scenarios exercising the fail-safe path).
    #[must_use]
    pub fn backup_fault_at(mut self, at: SimTime, fault: ActuatorFault) -> Self {
        self.inner.backup_fault = Some((at, fault));
        self
    }

    /// Sets the head's reconfiguration epoch (zero = immediate).
    #[must_use]
    pub fn reconfig_epoch(mut self, epoch: SimDuration) -> Self {
        self.inner.reconfig_epoch = epoch;
        self
    }

    /// Chooses cold-standby mode: backups must receive the task by
    /// migration before activation.
    #[must_use]
    pub fn cold_backup(mut self) -> Self {
        self.inner.warm_backup = false;
        self
    }

    /// Adds uniform extra link loss (E14).
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    #[must_use]
    pub fn extra_loss(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "loss out of [0,1]");
        self.inner.extra_loss = p;
        self
    }

    /// Crashes an arbitrary node at `at` (sensors, actuators, the head).
    #[must_use]
    pub fn crash_node_at(mut self, node: evm_netsim::NodeId, at: SimTime) -> Self {
        self.inner
            .fault_plan
            .add_crash(evm_netsim::NodeCrash::permanent(node, at));
        self
    }

    /// Adds Gaussian measurement noise at the sensor interface.
    ///
    /// # Panics
    ///
    /// Panics if `std` is negative.
    #[must_use]
    pub fn sensor_noise(mut self, std: f64) -> Self {
        assert!(std >= 0.0, "noise std must be non-negative");
        self.inner.sensor_noise_std = std;
        self
    }

    /// Reserves `n` dedicated capsule-transfer slots per VC in every
    /// epoch schedule, enabling live capsule migration on head
    /// re-election (0 = disabled, the default).
    #[must_use]
    pub fn transfer_slots(mut self, n: usize) -> Self {
        self.inner.transfer_slots = n;
        self
    }

    /// Pads every shipped capsule image with `bytes` extra bytes — the
    /// image-size axis of the failover-latency sweep.
    #[must_use]
    pub fn capsule_pad_bytes(mut self, bytes: usize) -> Self {
        self.inner.capsule_pad_bytes = bytes;
        self
    }

    /// Sets the per-chunk retransmission budget of live capsule
    /// transfers.
    #[must_use]
    pub fn migration_max_retries(mut self, n: usize) -> Self {
        self.inner.migration_max_retries = n;
        self
    }

    /// Fault injection: corrupts chunk `seq` of the next live transfer
    /// exactly once in flight (the receiver must drop it and the sender
    /// retransmit).
    #[must_use]
    pub fn corrupt_transfer_chunk(mut self, seq: usize) -> Self {
        self.inner.corrupt_transfer_chunk = Some(seq);
        self
    }

    /// Fault injection: tampers the shipped capsule's gas budget after
    /// its digest is advertised, so arrival attestation must reject it.
    #[must_use]
    pub fn tamper_gas_budget(mut self) -> Self {
        self.inner.tamper_gas_budget = true;
        self
    }

    /// Sets the fault-detection parameters.
    #[must_use]
    pub fn detection(mut self, threshold: f64, consecutive: u32) -> Self {
        self.inner.detect_threshold = threshold;
        self.inner.detect_consecutive = consecutive;
        self
    }

    /// Finishes the scenario, materializing the layout (star unless a
    /// `line`/`grid`/`clustered` knob switched it) unless an explicit
    /// topology was set. `.vcs(n)` / `.clustered(n)` with `n > 1` also
    /// derives the hosting manifest ([`Scenario::host_vcs`]).
    ///
    /// # Panics
    ///
    /// Panics if the role parameters are degenerate (no sensor or no
    /// controller), a scripted crash targets a VC the layout does not
    /// host, or a single-VC layout (line, grid) was combined with
    /// `.vcs(n > 1)`.
    #[must_use]
    pub fn build(mut self) -> Scenario {
        if !self.explicit_topology {
            let p = &self.star;
            for &(vc, at) in &self.inner.primary_crashes {
                assert!(
                    (vc as usize) < p.vcs,
                    "crash at {at} targets VC {vc}, but the layout hosts only {} VC(s)",
                    p.vcs,
                );
            }
            self.inner.topology = match p.layout {
                Layout::Star => {
                    assert!(
                        p.backup_relays == 0,
                        "backup relays apply to line/clustered layouts"
                    );
                    TopologySpec::multi_star(
                        p.vcs,
                        p.sensors,
                        p.controllers,
                        p.actuators,
                        p.head,
                        p.radius_m,
                    )
                }
                Layout::Line { hops } => {
                    assert!(p.vcs == 1, "line layouts host a single VC");
                    TopologySpec::line_with_backups(
                        hops,
                        p.sensors,
                        p.controllers,
                        p.actuators,
                        p.head,
                        LINE_SPACING_M,
                        p.backup_relays,
                    )
                }
                Layout::Grid { w, h } => {
                    assert!(p.vcs == 1, "grid layouts host a single VC");
                    assert!(
                        p.backup_relays == 0,
                        "backup relays apply to line/clustered layouts"
                    );
                    TopologySpec::grid(
                        w,
                        h,
                        p.sensors,
                        p.controllers,
                        p.actuators,
                        p.head,
                        GRID_SPACING_M,
                    )
                }
                Layout::Clustered => TopologySpec::clustered_with_backups(
                    p.vcs,
                    p.sensors,
                    p.controllers,
                    p.actuators,
                    p.head,
                    CLUSTER_HOP_M,
                    CLUSTER_RING_M,
                    p.backup_relays,
                ),
            };
            if self.star.vcs != self.inner.n_vcs() {
                self.inner.host_vcs(self.star.vcs);
            }
        }
        self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::topo::Role;

    #[test]
    fn fig6b_matches_paper_timings() {
        let s = Scenario::fig6b();
        let (at, fault) = s.fault.expect("fault scripted");
        assert_eq!(at, SimTime::from_secs(300));
        assert_eq!(fault, ActuatorFault::StuckOutput(75.0));
        assert_eq!(s.reconfig_epoch, SimDuration::from_secs(300));
        assert_eq!(s.demote_dormant_after, SimDuration::from_secs(200));
        assert!(s.warm_backup);
    }

    #[test]
    fn builder_flows() {
        let s = Scenario::builder()
            .seed(7)
            .duration(SimDuration::from_secs(100))
            .extra_loss(0.25)
            .detection(2.0, 5)
            .cold_backup()
            .build();
        assert_eq!(s.seed, 7);
        assert_eq!(s.extra_loss, 0.25);
        assert_eq!(s.detect_consecutive, 5);
        assert!(!s.warm_backup);
    }

    #[test]
    #[should_panic(expected = "loss out of")]
    fn bad_loss_rejected() {
        let _ = Scenario::builder().extra_loss(1.5);
    }

    #[test]
    fn default_build_is_fig5() {
        let s = Scenario::builder().build();
        assert_eq!(s.topology, TopologySpec::fig5());
        assert_eq!(Scenario::fig5().topology, TopologySpec::fig5());
    }

    #[test]
    fn star_dsl_expands_roles() {
        let s = ScenarioBuilder::star()
            .sensors(2)
            .controllers(3)
            .head(true)
            .build();
        // GW + 2 sensors + 3 controllers + 1 actuator + head.
        assert_eq!(s.topology.nodes.len(), 8);
        let ctrls = s
            .topology
            .nodes
            .iter()
            .filter(|n| matches!(n.role, Role::Controller(_)))
            .count();
        assert_eq!(ctrls, 3);
    }

    #[test]
    fn minimal_dsl_is_three_nodes() {
        let s = ScenarioBuilder::minimal().build();
        assert_eq!(s.topology.nodes.len(), 3);
        assert!(s.topology.nodes.iter().all(|n| n.role != Role::Head));
    }

    #[test]
    fn vcs_builder_hosts_canonical_loops() {
        let s = ScenarioBuilder::star().vcs(3).build();
        assert_eq!(s.n_vcs(), 3);
        assert_eq!(s.vc_loop(0).name, "LC-LTS");
        assert_eq!(s.vc_loop(1).name, "LC-InletSep");
        assert_eq!(s.vc_loop(2).name, "TC-Chiller");
        assert_eq!(s.topology.n_vcs(), 3);
        assert!(s.sampled_tags.contains(&"Chiller.OutletTempK".to_string()));
        // Single-VC builds stay manifest-free.
        let solo = ScenarioBuilder::star().build();
        assert_eq!(solo.n_vcs(), 1);
        assert!(solo.extra_vc_loops.is_empty());
    }

    /// The topo-layer focus-register table agrees with the ModBus map for
    /// every loop of the canonical hosting order (the cross-check engine
    /// construction enforces per deployment).
    #[test]
    fn vc_focus_registers_match_the_canonical_loops() {
        use crate::runtime::topo::VC_FOCUS_REGISTERS;
        let regmap = evm_plant::RegisterMap::gas_plant_standard();
        for (k, l) in evm_plant::vc_host_loops().iter().enumerate() {
            assert_eq!(
                regmap.input_register_of(&l.pv_tag),
                Some(VC_FOCUS_REGISTERS[k]),
                "{}",
                l.name
            );
            assert!(
                regmap.holding_register_of(&l.op_tag).is_some(),
                "{}",
                l.name
            );
        }
    }

    #[test]
    #[should_panic(expected = "vc count out of")]
    fn bad_vc_count_rejected() {
        let _ = Scenario::builder().vcs(9);
    }

    /// Re-hosting a smaller pool drops the outgoing loops' PV tags, so a
    /// `vcs` sweep axis over a multi-VC template records no phantom
    /// series and cells stay comparable across template shapes.
    #[test]
    fn rehosting_smaller_pool_drops_phantom_tags() {
        let mut s = ScenarioBuilder::star().vcs(4).build();
        assert!(s.sampled_tags.contains(&"SalesGas.MolarFlow".to_string()));
        s.host_vcs(2);
        assert_eq!(s.n_vcs(), 2);
        assert!(s.sampled_tags.contains(&"InletSep.LevelPct".to_string()));
        assert!(!s.sampled_tags.contains(&"SalesGas.MolarFlow".to_string()));
        assert!(!s.sampled_tags.contains(&"Chiller.OutletTempK".to_string()));
        // The baseline tags survive untouched.
        assert!(s.sampled_tags.contains(&"LTS.LiquidPct".to_string()));
        assert!(s.sampled_tags.contains(&"TowerFeed.MolarFlow".to_string()));
    }

    /// Scripted crashes follow the pool: shrinking below a crash's
    /// target VC drops the crash, so a `vcs` sweep axis over a faulted
    /// multi-VC template never builds a cell that would abort mid-run.
    #[test]
    fn rehosting_drops_crashes_on_unhosted_vcs() {
        let mut s = Scenario::builder()
            .vcs(2)
            .crash_vc_primary_at(1, SimTime::from_secs(50))
            .crash_vc_primary_at(0, SimTime::from_secs(60))
            .build();
        assert_eq!(s.primary_crashes.len(), 2);
        s.host_vcs(1);
        assert_eq!(s.primary_crashes, vec![(0, SimTime::from_secs(60))]);
    }

    #[test]
    fn explicit_topology_wins() {
        let spec = TopologySpec::minimal(22.0);
        let s = Scenario::builder().topology(spec.clone()).build();
        assert_eq!(s.topology, spec);
        // ...even when star knobs are touched afterwards.
        let s = Scenario::builder()
            .topology(spec.clone())
            .radius_m(99.0)
            .controllers(4)
            .build();
        assert_eq!(s.topology, spec);
    }
}
