//! The live capsule-transfer plane.
//!
//! When a head re-election fires under
//! [`super::reconfig::ReroutePolicy::Heartbeat`] and the scenario
//! reserved transfer slots, the VC's primary serializes its capsule plus
//! the interpreter's resumable variable state into a
//! [`CapsuleImage`], fragments it into
//! [`Message::CapsuleChunk`] frames, and ships one fragment per
//! dedicated [`crate::runtime::topo::FlowKind::Transfer`] slot with
//! stop-and-wait acknowledgment and retransmission. When the final
//! fragment verifies, the receiver runs the arrival gate
//! ([`admit_arrival`]: attestation, version monotonicity, capability
//! check), passes kernel admission if the task is not yet resident, and
//! resumes the interpreter from the transferred variable file — so
//! failover latency becomes a measured function of image size ×
//! transfer-slot budget (the Fig. 6b axis).
//!
//! With `transfer_slots == 0` (the default) none of this code runs: no
//! slots carry [`crate::runtime::topo::FlowKind::Transfer`], no frames
//! are emitted, no RNG draws happen — every pre-existing golden stays
//! byte-identical.

use evm_netsim::NodeId;
use evm_sim::SimTime;

use crate::attest::{capsule_digest, AttestationKey};
use crate::bytecode::{Capability, N_VARS};
use crate::error::EvmError;
use crate::metrics::MigrationRecord;
use crate::migration::{admit_arrival, chunk_capacity, CapsuleImage};
use crate::runtime::driver::Engine;
use crate::runtime::topo::VcId;
use crate::runtime::Message;

/// One capsule shipment in flight: a stop-and-wait state machine over
/// the epoch's transfer lane. Sender and receiver sides share this
/// record (the engine owns both ends of the simulated link).
#[derive(Debug)]
pub(super) struct ActiveTransfer {
    /// The migrating Virtual Component.
    pub vc: VcId,
    /// Shipping node (owns the transfer slots).
    pub src: NodeId,
    /// Receiving node (the newly elected head).
    pub dst: NodeId,
    /// The serialized capsule + interpreter state.
    pub image: CapsuleImage,
    /// Total fragments the image splits into.
    pub total: usize,
    /// Next fragment the receiver expects (== fragments verified).
    pub next_chunk: usize,
    /// The current fragment was transmitted and awaits its ack.
    pub awaiting_ack: bool,
    /// Retransmissions already spent on the current fragment.
    pub retries_this_chunk: usize,
    /// Frames put on the air so far, retransmissions included.
    pub frames_sent: usize,
    /// Retransmissions across the whole shipment.
    pub retries: usize,
    /// When the shipment started (for the failover-latency record).
    pub started_at: SimTime,
    /// Scripted one-shot in-flight corruption still pending (fragment
    /// sequence number).
    pub corrupt_pending: Option<usize>,
}

/// What a delivered fragment did to the transfer state machine.
enum ChunkOutcome {
    /// Not addressed to this transfer (overheard, stale, duplicate).
    Ignore,
    /// Scripted corruption consumed the fragment; no ack goes back.
    Corrupted(usize),
    /// Fragment verified but the ack was lost; the sender will re-send.
    AckLost(usize),
    /// Fragment verified and acked; more to come.
    Advance,
    /// The final fragment verified — run the arrival gate.
    Complete,
}

impl Engine {
    /// Starts a live capsule shipment for `vc` toward `dst` (the newly
    /// elected head): validates the component's transfer relationships,
    /// bumps the authoritative capsule version (receivers only accept
    /// upgrades), snapshots the primary's interpreter state and computes
    /// the advertised digest the receiver will attest against. A no-op
    /// when the scenario reserved no transfer slots.
    pub(super) fn start_capsule_transfer(&mut self, vc: VcId, dst: NodeId) {
        if self.scenario.transfer_slots == 0 {
            return;
        }
        if self.xfer.is_some() {
            self.trace.log(
                self.now,
                "migrate",
                "transfer lane busy; capsule migration skipped",
            );
            return;
        }
        let Some(&src) = self.vcs.vc(vc).controllers.first() else {
            return;
        };
        if src == dst || !self.alive(src) {
            return;
        }
        // The Virtual Component is *defined* by its object-transfer
        // relationships: a shipment the records do not permit never
        // starts.
        let permitted = self.components[vc as usize]
            .transfers()
            .iter()
            .any(|t| t.permits(src, dst, self.now, true));
        let (src_label, dst_label) = (self.label_of(src), self.label_of(dst));
        if !permitted {
            self.trace.log(
                self.now,
                "migrate",
                format!("no transfer relationship {src_label} -> {dst_label}; migration refused"),
            );
            return;
        }
        let Some(vars) = self.registry.controller(src).map(|c| c.snapshot_vars()) else {
            return;
        };
        // Receivers only accept strict upgrades, so every shipment is a
        // new version of the authoritative capsule.
        self.capsules[vc as usize].version += 1;
        let mut shipped = self.capsules[vc as usize].clone();
        let advertised_digest = capsule_digest(&shipped, AttestationKey::for_vc(vc));
        if self.scenario.tamper_gas_budget {
            // Scripted attack: inflate the WCET budget *after* the digest
            // was advertised — arrival attestation must catch this.
            shipped.gas_budget = shipped.gas_budget.saturating_mul(16).max(1);
        }
        let image = CapsuleImage {
            capsule: shipped,
            vars: vars.to_vec(),
            advertised_digest,
            pad_bytes: self.scenario.capsule_pad_bytes,
        };
        let total = image.frames();
        self.trace.log(
            self.now,
            "migrate",
            format!(
                "capsule v{} ({} B, {total} frames) {src_label} -> {dst_label}: transfer started",
                image.capsule.version,
                image.size_bytes(),
            ),
        );
        self.xfer = Some(ActiveTransfer {
            vc,
            src,
            dst,
            image,
            total,
            next_chunk: 0,
            awaiting_ack: false,
            retries_this_chunk: 0,
            frames_sent: 0,
            retries: 0,
            started_at: self.now,
            corrupt_pending: self.scenario.corrupt_transfer_chunk,
        });
    }

    /// What `owner` transmits in a [`FlowKind::Transfer`] slot for `vc`:
    /// the current fragment of the in-flight shipment (a retransmission
    /// if the previous copy went unacked), or nothing when the lane is
    /// idle. A fragment that exhausts its retransmission budget abandons
    /// the whole shipment with a [`EvmError::MigrationTimeout`] trace —
    /// the budget is checked *before* booking another retry, so a
    /// shipment with budget `n` sends each fragment at most `n + 1`
    /// times.
    ///
    /// [`FlowKind::Transfer`]: crate::runtime::topo::FlowKind::Transfer
    pub(super) fn take_transfer_chunk(&mut self, vc: VcId, owner: NodeId) -> Option<Message> {
        let give_up = {
            let xfer = self.xfer.as_mut()?;
            if xfer.vc != vc || xfer.src != owner || xfer.next_chunk >= xfer.total {
                return None;
            }
            if xfer.awaiting_ack {
                if xfer.retries_this_chunk >= self.scenario.migration_max_retries {
                    true
                } else {
                    xfer.retries_this_chunk += 1;
                    xfer.retries += 1;
                    false
                }
            } else {
                false
            }
        };
        if give_up {
            let xfer = self.xfer.take().expect("transfer checked in flight");
            let (src_label, dst_label) = (self.label_of(xfer.src), self.label_of(xfer.dst));
            let err = EvmError::MigrationTimeout {
                frames_remaining: xfer.total - xfer.next_chunk,
                retries: xfer.retries,
            };
            self.trace.log(
                self.now,
                "migrate",
                format!("transfer {src_label} -> {dst_label} abandoned: {err}"),
            );
            return None;
        }
        let xfer = self.xfer.as_mut().expect("transfer checked in flight");
        let seq = xfer.next_chunk;
        let len = (xfer.image.size_bytes() - seq * chunk_capacity()).min(chunk_capacity());
        xfer.awaiting_ack = true;
        xfer.frames_sent += 1;
        Some(Message::CapsuleChunk {
            vc,
            seq: u16::try_from(seq).expect("fragment count fits u16"),
            total: u16::try_from(xfer.total).expect("fragment count fits u16"),
            len: u8::try_from(len).expect("chunk capacity fits u8"),
        })
    }

    /// A [`Message::CapsuleChunk`] landed on `to`: advance the
    /// stop-and-wait machine. Only the addressed receiver's copy of the
    /// expected fragment counts — every other listener overhears and
    /// drops it. The ack back to the sender crosses the same lossy
    /// medium, so it is subject to the scenario's extra loss too; a lost
    /// ack leaves the fragment unacknowledged and the sender re-sends it
    /// (the receiver-side duplicate is then ignored by the `seq` check).
    pub(super) fn on_chunk_delivered(&mut self, to: NodeId, from: NodeId, vc: VcId, seq: u16) {
        let outcome = {
            let Some(xfer) = self.xfer.as_mut() else {
                return;
            };
            let seq = usize::from(seq);
            if xfer.vc != vc || xfer.src != from || xfer.dst != to || seq != xfer.next_chunk {
                ChunkOutcome::Ignore
            } else if xfer.corrupt_pending == Some(seq) {
                xfer.corrupt_pending = None;
                ChunkOutcome::Corrupted(seq)
            } else if self.rng.chance(self.scenario.extra_loss) {
                ChunkOutcome::AckLost(seq)
            } else {
                xfer.next_chunk += 1;
                xfer.awaiting_ack = false;
                xfer.retries_this_chunk = 0;
                if xfer.next_chunk == xfer.total {
                    ChunkOutcome::Complete
                } else {
                    ChunkOutcome::Advance
                }
            }
        };
        match outcome {
            ChunkOutcome::Ignore | ChunkOutcome::Advance => {}
            ChunkOutcome::Corrupted(seq) => {
                // The fragment CRC fails on a corrupted copy, so the
                // receiver drops it without acking — the sender's
                // retransmission, not this copy, gets activated.
                let dst_label = self.label_of(to);
                self.trace.log(
                    self.now,
                    "migrate",
                    format!("chunk {seq} corrupted in flight; {dst_label} dropped it unacked"),
                );
            }
            ChunkOutcome::AckLost(seq) => {
                self.trace.log(
                    self.now,
                    "migrate",
                    format!("chunk {seq} ack lost; sender will retransmit"),
                );
            }
            ChunkOutcome::Complete => self.finish_transfer(),
        }
    }

    /// All fragments verified: run the arrival gate (attestation →
    /// version monotonicity → capability check), then kernel admission
    /// for hosts without the resident task, then resume the interpreter
    /// from the transferred variable file. A rejection at any gate
    /// leaves the receiver's resident state untouched.
    fn finish_transfer(&mut self) {
        let xfer = self.xfer.take().expect("transfer just completed");
        let resident = self
            .registry
            .controller(xfer.dst)
            .and_then(|c| c.capsule_version);
        // What a replica host provides: it computes the law and publishes
        // on the data plane.
        let host_caps = [Capability::ControllerRole, Capability::DataPlane];
        let dst_label = self.label_of(xfer.dst);
        if let Err(e) = admit_arrival(
            &xfer.image.capsule,
            xfer.image.advertised_digest,
            resident,
            &host_caps,
            xfer.dst,
            AttestationKey::for_vc(xfer.vc),
        ) {
            self.trace.log(
                self.now,
                "migrate",
                format!(
                    "{dst_label} rejected capsule v{}: {e}",
                    xfer.image.capsule.version
                ),
            );
            return;
        }
        let Some(core) = self.registry.controller_mut(xfer.dst) else {
            self.trace.log(
                self.now,
                "migrate",
                format!("{dst_label} hosts no replica core; capsule dropped"),
            );
            return;
        };
        if !core.has_task && !core.admit_focus_task() {
            self.trace.log(
                self.now,
                "migrate",
                format!("{dst_label} kernel refused the migrated task (admission)"),
            );
            return;
        }
        let mut vars = [0.0f64; N_VARS];
        for (slot, v) in vars.iter_mut().zip(&xfer.image.vars) {
            *slot = *v;
        }
        core.restore_vars(vars);
        core.capsule_version = Some(xfer.image.capsule.version);
        let latency = self.now.saturating_since(xfer.started_at);
        self.trace.log(
            self.now,
            "migrate",
            format!(
                "capsule v{} attested and activated on {dst_label} \
                 ({} B in {} frames, {} retries, {:.3} s)",
                xfer.image.capsule.version,
                xfer.image.size_bytes(),
                xfer.frames_sent,
                xfer.retries,
                latency.as_secs_f64(),
            ),
        );
        self.migrations.push(MigrationRecord {
            vc: xfer.vc,
            from: xfer.src,
            to: xfer.dst,
            image_bytes: xfer.image.size_bytes(),
            frames: xfer.total,
            frames_sent: xfer.frames_sent,
            retries: xfer.retries,
            latency,
        });
    }
}
