//! Engine construction: resolve the topology, synthesize the shared
//! schedule, and instantiate one behavior per role — per Virtual
//! Component.

use std::collections::HashMap;

use evm_mac::rtlink::RtLink;
use evm_netsim::{Channel, EnergyMeter, RadioPowerModel};
use evm_plant::{GasPlant, LocalController, RegisterMap};
use evm_sim::{EventQueue, SimDuration, SimRng, SimTime, TimeSeries, Trace};

use crate::bytecode::{compile_control_law, control_law_gas_budget, ControlLawSpec, Program};
use crate::component::{MemberInfo, VirtualComponent};
use crate::metrics::VcRunStats;
use crate::roles::ControllerMode;
use crate::runtime::behavior::NodeBehavior;
use crate::runtime::behaviors::{
    ActuationGate, ActuatorNode, ControllerCore, ControllerNode, GatewayNode, HeadNode, RelayCore,
    RelayNode, ReplicaParams, SensorNode,
};
use crate::runtime::driver::{Engine, Ev};
use crate::runtime::reconfig::{ReconfigError, ReconfigState, Reconfigurator};
use crate::runtime::registry::NodeRegistry;
use crate::runtime::topo::VcId;
use crate::runtime::Scenario;

/// Everything VC-specific the node loop below needs, prepared once per VC.
struct VcPlan {
    program: Program,
    gas: u64,
    params: ReplicaParams,
    primary: evm_netsim::NodeId,
    act_register: u16,
    pv_tag: String,
    setpoint: f64,
    loop_name: String,
}

impl Engine {
    /// Builds the deployment described by the scenario's topology.
    ///
    /// # Panics
    ///
    /// Panics if the topology is malformed, its hosting manifest does not
    /// match the topology's VC count, a scripted fault targets a VC the
    /// deployment does not host, or its flow pipeline cannot be scheduled
    /// within one RT-Link cycle — configuration errors, not runtime
    /// conditions.
    #[must_use]
    pub fn new(scenario: Scenario) -> Self {
        match Engine::try_new(scenario) {
            Ok(engine) => engine,
            Err(e) => panic!("malformed topology spec: {e}"),
        }
    }

    /// Like [`Engine::new`], but reports a malformed topology spec as a
    /// typed [`crate::runtime::TopologyError`] instead of panicking —
    /// the path batch runners use so one bad cell fails alone instead of
    /// aborting the whole sweep.
    ///
    /// # Errors
    ///
    /// Any [`crate::runtime::TopologyError`] from resolving the spec.
    ///
    /// # Panics
    ///
    /// Scenario-level configuration errors (manifest/VC-count mismatch,
    /// fault targeting an unhosted VC, unschedulable flow pipeline) still
    /// panic.
    pub fn try_new(scenario: Scenario) -> Result<Self, crate::runtime::TopologyError> {
        let mut rng = SimRng::seed_from(scenario.seed);
        let mut channel = Channel::new(scenario.channel.clone(), rng.fork(1));
        let (topology, vcs) = scenario.topology.try_resolve(&mut channel)?;
        assert_eq!(
            vcs.n_vcs(),
            scenario.n_vcs(),
            "topology hosts {} VC(s) but the scenario's manifest names {} \
             loop(s); pair `.vcs(n)` / `multi_star` with `Scenario::host_vcs`",
            vcs.n_vcs(),
            scenario.n_vcs(),
        );
        for &(vc, at) in &scenario.primary_crashes {
            assert!(
                (vc as usize) < vcs.n_vcs(),
                "crash at {at} targets VC {vc}, but the deployment hosts \
                 only {} VC(s)",
                vcs.n_vcs(),
            );
        }

        // --- Epoch 0 from the role-derived flow pipeline ---------------
        // The same Reconfigurator the runtime re-invokes mid-run builds
        // the setup-time configuration: logical single-hop flows, the
        // multi-hop routing pass (on a fully-connected star the routed
        // list is byte-identical to the logical one; elsewhere flows
        // expand into relay hop chains), then slot placement.
        let epoch0 = match Reconfigurator::compute(
            0,
            &topology,
            &[],
            &vcs,
            &scenario.rtlink,
            scenario.serial_schedule,
        ) {
            Ok(epoch) => epoch,
            Err(ReconfigError::Unroutable(e)) => panic!("topology flows must route: {e}"),
            Err(ReconfigError::Unschedulable(e)) => panic!("topology flows must schedule: {e}"),
        };
        let schedule = epoch0.schedule;
        let flow_kinds = epoch0.flow_kinds;
        let relay_cores: HashMap<evm_netsim::NodeId, RelayCore> = epoch0
            .jobs
            .into_iter()
            .map(|(id, jobs)| (id, RelayCore::new(jobs)))
            .collect();

        let regmap = RegisterMap::gas_plant_standard();

        // --- Per-VC plans: compiled law, task params, registers --------
        let plans: Vec<VcPlan> = (0..vcs.n_vcs())
            .map(|k| {
                let vc = k as VcId;
                let spec = scenario.vc_loop(vc);
                let law = ControlLawSpec::from_loop(spec);
                let program = compile_control_law(&law);
                let gas = control_law_gas_budget(&program);
                // The focus sensor's downlink register must agree with the
                // loop the VC hosts — a misconfigured manifest is caught
                // here rather than silently regulating the wrong PV.
                let pv_register = regmap
                    .input_register_of(&spec.pv_tag)
                    .unwrap_or_else(|| panic!("no input register for {}", spec.pv_tag));
                assert_eq!(
                    vcs.vc(vc).sensor_registers[0],
                    pv_register,
                    "VC {vc}'s focus sensor register does not match the {} loop",
                    spec.name
                );
                let act_register = regmap
                    .holding_register_of(&spec.op_tag)
                    .unwrap_or_else(|| panic!("no holding register for {}", spec.op_tag));
                VcPlan {
                    program,
                    gas,
                    params: ReplicaParams {
                        detect_threshold: scenario.detect_threshold,
                        detect_consecutive: scenario.detect_consecutive,
                        hb_timeout: scenario.rtlink.cycle_duration() * scenario.heartbeat_cycles,
                        period: SimDuration::from_secs_f64(spec.period_s),
                        primary: vcs.vc(vc).primary(),
                        tier: scenario.tier,
                    },
                    primary: vcs.vc(vc).primary(),
                    act_register,
                    pv_tag: spec.pv_tag.clone(),
                    setpoint: spec.setpoint,
                    loop_name: spec.name.clone(),
                }
            })
            .collect();

        // --- Plant + local (wired) loops for the unhosted loops --------
        let plant = GasPlant::default();
        let hosted: Vec<String> = plans.iter().map(|p| p.loop_name.clone()).collect();
        let local_loops: Vec<LocalController> = evm_plant::standard_loops()
            .into_iter()
            .filter(|l| !hosted.contains(&l.name))
            .map(LocalController::new)
            .collect();

        // --- Node behaviors --------------------------------------------
        let b_mode = if scenario.warm_backup {
            ControllerMode::Backup
        } else {
            ControllerMode::Dormant
        };
        let mut registry = NodeRegistry::new();
        for info in topology.nodes() {
            let id = info.id;
            let behavior: Box<dyn NodeBehavior> = if id == vcs.gateway {
                // One gate per VC without an actuator node: the gateway is
                // then that VC's actuation endpoint.
                let gates = vcs
                    .vcs
                    .iter()
                    .map(|r| {
                        r.actuators
                            .is_empty()
                            .then(|| ActuationGate::new(r.primary()))
                    })
                    .collect();
                let act_registers = plans.iter().map(|p| p.act_register).collect();
                Box::new(GatewayNode::new(
                    scenario.sensor_noise_std,
                    act_registers,
                    gates,
                ))
            } else if let Some(vc) = vcs.vc_of_head(id) {
                // A head always runs a monitor replica of its VC's law: it
                // observes the data plane and can detect output deviations
                // itself, which is what makes cold-standby deployments
                // (no warm backup computing) still fail over.
                let p = &plans[vc as usize];
                Box::new(HeadNode::new(ControllerCore::new(
                    id,
                    vc,
                    ControllerMode::Backup,
                    true,
                    &p.program,
                    p.gas,
                    &p.params,
                )))
            } else if let Some((vc, tag)) = vcs.sensor_of(id) {
                Box::new(SensorNode::new(vc, tag))
            } else if vcs.vc_of_relay(id).is_some() {
                // Dedicated forwarders: their duties live in the routed
                // relay cores, not the behavior.
                Box::new(RelayNode)
            } else if let Some(vc) = vcs.vc_of_controller(id) {
                let p = &plans[vc as usize];
                let (mode, hosts_task) = if id == p.primary {
                    (ControllerMode::Active, true)
                } else {
                    (b_mode, scenario.warm_backup)
                };
                Box::new(ControllerNode::new(ControllerCore::new(
                    id, vc, mode, hosts_task, &p.program, p.gas, &p.params,
                )))
            } else {
                let vc = vcs
                    .vc_of_actuator(id)
                    .expect("node must hold a role in some VC");
                Box::new(ActuatorNode::new(vc, plans[vc as usize].primary))
            };
            registry.insert(id, behavior);
        }

        // --- Virtual components (one record per hosted loop) -----------
        let components: Vec<VirtualComponent> = vcs
            .vcs
            .iter()
            .map(|roles| {
                let vc = roles.vc;
                let mut record = VirtualComponent::new(plans[vc as usize].loop_name.clone());
                for n in topology.nodes() {
                    let in_vc = n.id == vcs.gateway
                        || roles.head == Some(n.id)
                        || roles.sensors.contains(&n.id)
                        || roles.controllers.contains(&n.id)
                        || roles.actuators.contains(&n.id)
                        || roles.relays.contains(&n.id);
                    if !in_vc {
                        continue;
                    }
                    let mode = if n.id == roles.primary() {
                        Some(ControllerMode::Active)
                    } else if roles.is_controller(n.id) {
                        Some(b_mode)
                    } else {
                        None
                    };
                    record.add_member(MemberInfo {
                        node: n.id,
                        kind: n.kind,
                        mode,
                        capsules: vec![],
                    });
                }
                if let Some(head) = roles.head {
                    record.set_head(head);
                }
                record
            })
            .collect();

        let series = scenario
            .sampled_tags
            .iter()
            .map(|t| (t.clone(), TimeSeries::new(t.clone())))
            .collect();
        let mode_series = vcs
            .all_controllers()
            .map(|(_, n)| {
                let label = topology.node(n).expect("member").label.clone();
                (n, TimeSeries::new(format!("Mode.{label}")))
            })
            .collect();
        let err_series = plans
            .iter()
            .map(|p| {
                (
                    p.pv_tag.clone(),
                    p.setpoint,
                    TimeSeries::new(format!("Err.{}", p.loop_name)),
                )
            })
            .collect();
        let vc_stats = plans
            .iter()
            .map(|p| VcRunStats {
                loop_name: p.loop_name.clone(),
                ..VcRunStats::default()
            })
            .collect();
        let meters = topology
            .nodes()
            .iter()
            .map(|n| (n.id, EnergyMeter::new(RadioPowerModel::cc2420())))
            .collect();

        let mut engine = Engine {
            plant,
            regmap,
            local_loops,
            channel,
            topology,
            vcs,
            rtlink: RtLink::new(scenario.rtlink.clone()),
            schedule,
            flow_kinds,
            relay_cores,
            components,
            rng,
            trace: Trace::new(),
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            registry,
            series,
            mode_series,
            err_series,
            meters,
            vc_stats,
            reconfig: ReconfigState::default(),
            scenario,
        };

        // Surface monitoring sensors whose register the plant map does
        // not back (possible past the 11-entry monitor table, where
        // registers are synthetic-but-unique): their downlinks will stay
        // empty, which should be visible in the trace, not silent.
        for roles in &engine.vcs.vcs {
            for (tag, &reg) in roles.sensor_registers.iter().enumerate().skip(1) {
                if engine.regmap.tag_of(reg).is_none() {
                    let label = engine.label_of(roles.sensors[tag]);
                    engine.trace.log(
                        SimTime::ZERO,
                        "config",
                        format!("monitor {label} reads unmapped register {reg}; flow stays empty"),
                    );
                }
            }
        }

        // Seed events.
        engine.queue.push(SimTime::ZERO, Ev::PlantStep);
        engine.queue.push(
            SimTime::ZERO + engine.scenario.rtlink.slot_duration,
            Ev::Slot,
        );
        engine.queue.push(SimTime::ZERO, Ev::Sample);
        if let Some((at, _)) = engine.scenario.fault {
            engine.queue.push(at, Ev::InjectFault);
        }
        if let Some((at, _)) = engine.scenario.backup_fault {
            engine.queue.push(at, Ev::InjectBackupFault);
        }
        for &(vc, at) in &engine.scenario.primary_crashes {
            engine.queue.push(at, Ev::CrashPrimary { vc });
        }
        for &at in &engine.scenario.force_reconfig {
            engine.queue.push(at, Ev::Reconfigure);
        }
        Ok(engine)
    }
}
