//! Engine construction: resolve the topology, synthesize the schedule,
//! and instantiate one behavior per role.

use std::collections::HashMap;

use evm_mac::rtlink::{RtLink, SlotSchedule};
use evm_netsim::{Channel, EnergyMeter, RadioPowerModel};
use evm_plant::{GasPlant, LocalController, RegisterMap};
use evm_sim::{EventQueue, SimDuration, SimRng, SimTime, TimeSeries, Trace};

use crate::bytecode::{compile_control_law, control_law_gas_budget, ControlLawSpec};
use crate::component::{MemberInfo, VirtualComponent};
use crate::roles::ControllerMode;
use crate::runtime::behavior::NodeBehavior;
use crate::runtime::behaviors::{
    ActuationGate, ActuatorNode, ControllerCore, ControllerNode, GatewayNode, HeadNode,
    ReplicaParams, SensorNode,
};
use crate::runtime::driver::{Engine, Ev};
use crate::runtime::registry::NodeRegistry;
use crate::runtime::topo::{synth_flows, FlowKind};
use crate::runtime::Scenario;

/// The focus loop's actuation holding register (the LTS liquid valve
/// command in the standard gas-plant map).
const FOCUS_ACT_REGISTER: u16 = 40002;

impl Engine {
    /// Builds the deployment described by the scenario's topology.
    ///
    /// # Panics
    ///
    /// Panics if the topology is malformed or its flow pipeline cannot be
    /// scheduled within one RT-Link cycle — configuration errors, not
    /// runtime conditions.
    #[must_use]
    pub fn new(scenario: Scenario) -> Self {
        let mut rng = SimRng::seed_from(scenario.seed);
        let mut channel = Channel::new(scenario.channel.clone(), rng.fork(1));
        let (topology, roles) = scenario.topology.resolve(&mut channel);

        // --- Schedule synthesis from the role-derived flow pipeline ----
        let flow_specs = synth_flows(&roles);
        let flows: Vec<_> = flow_specs.iter().map(|(f, _)| f.clone()).collect();
        let (schedule, placed) = SlotSchedule::place_flows(&scenario.rtlink, &topology, &flows)
            .expect("topology flows must schedule");
        let flow_kinds: HashMap<(usize, evm_netsim::NodeId), FlowKind> = flow_specs
            .iter()
            .zip(&placed)
            .map(|((flow, kind), &slot)| ((slot, flow.src), *kind))
            .collect();

        // --- Plant + local (wired) loops for the non-focus loops -------
        let plant = GasPlant::default();
        let focus_name = scenario.focus_loop.name.clone();
        let local_loops: Vec<LocalController> = evm_plant::standard_loops()
            .into_iter()
            .filter(|l| l.name != focus_name)
            .map(LocalController::new)
            .collect();

        // --- Node behaviors --------------------------------------------
        let law = ControlLawSpec::from_loop(&scenario.focus_loop);
        let program = compile_control_law(&law);
        let gas = control_law_gas_budget(&program);
        let params = ReplicaParams {
            detect_threshold: scenario.detect_threshold,
            detect_consecutive: scenario.detect_consecutive,
            hb_timeout: scenario.rtlink.cycle_duration() * scenario.heartbeat_cycles,
            period: SimDuration::from_secs_f64(scenario.focus_loop.period_s),
        };
        let primary = roles.primary();
        let b_mode = if scenario.warm_backup {
            ControllerMode::Backup
        } else {
            ControllerMode::Dormant
        };

        let mut registry = NodeRegistry::new();
        for info in topology.nodes() {
            let id = info.id;
            let behavior: Box<dyn NodeBehavior> = if id == roles.gateway {
                let gate = roles
                    .actuators
                    .is_empty()
                    .then(|| ActuationGate::new(primary));
                Box::new(GatewayNode::new(
                    scenario.sensor_noise_std,
                    FOCUS_ACT_REGISTER,
                    gate,
                ))
            } else if Some(id) == roles.head {
                // The head always runs a monitor replica of the law: it
                // observes the data plane and can detect output deviations
                // itself, which is what makes cold-standby deployments
                // (no warm backup computing) still fail over.
                Box::new(HeadNode::new(ControllerCore::new(
                    id,
                    ControllerMode::Backup,
                    true,
                    &program,
                    gas,
                    primary,
                    &params,
                )))
            } else if let Some(tag) = roles.sensor_tag(id) {
                Box::new(SensorNode::new(tag))
            } else if roles.is_controller(id) {
                let (mode, hosts_task) = if id == primary {
                    (ControllerMode::Active, true)
                } else {
                    (b_mode, scenario.warm_backup)
                };
                Box::new(ControllerNode::new(ControllerCore::new(
                    id, mode, hosts_task, &program, gas, primary, &params,
                )))
            } else {
                Box::new(ActuatorNode::new(primary))
            };
            registry.insert(id, behavior);
        }

        // --- Virtual component -----------------------------------------
        let mut vc = VirtualComponent::new("lts-loop");
        for n in topology.nodes() {
            let mode = if n.id == primary {
                Some(ControllerMode::Active)
            } else if roles.is_controller(n.id) {
                Some(b_mode)
            } else {
                None
            };
            vc.add_member(MemberInfo {
                node: n.id,
                kind: n.kind,
                mode,
                capsules: vec![],
            });
        }
        if let Some(head) = roles.head {
            vc.set_head(head);
        }

        let series = scenario
            .sampled_tags
            .iter()
            .map(|t| (t.clone(), TimeSeries::new(t.clone())))
            .collect();
        let mode_series = roles
            .controllers
            .iter()
            .map(|&n| {
                let label = topology.node(n).expect("member").label.clone();
                (n, TimeSeries::new(format!("Mode.{label}")))
            })
            .collect();
        let meters = topology
            .nodes()
            .iter()
            .map(|n| (n.id, EnergyMeter::new(RadioPowerModel::cc2420())))
            .collect();

        let mut engine = Engine {
            plant,
            regmap: RegisterMap::gas_plant_standard(),
            local_loops,
            channel,
            topology,
            roles,
            rtlink: RtLink::new(scenario.rtlink.clone()),
            schedule,
            flow_kinds,
            vc,
            rng,
            trace: Trace::new(),
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            registry,
            series,
            mode_series,
            meters,
            e2e: Vec::new(),
            deadline_misses: 0,
            actuations: 0,
            scenario,
        };

        // Seed events.
        engine.queue.push(SimTime::ZERO, Ev::PlantStep);
        engine.queue.push(
            SimTime::ZERO + engine.scenario.rtlink.slot_duration,
            Ev::Slot,
        );
        engine.queue.push(SimTime::ZERO, Ev::Sample);
        if let Some((at, _)) = engine.scenario.fault {
            engine.queue.push(at, Ev::InjectFault);
        }
        if let Some((at, _)) = engine.scenario.backup_fault {
            engine.queue.push(at, Ev::InjectBackupFault);
        }
        if let Some(at) = engine.scenario.primary_crash {
            engine.queue.push(at, Ev::CrashPrimary);
        }
        engine
    }
}
