//! Engine construction: resolve the topology, synthesize the shared
//! schedule, and instantiate one behavior per role — per Virtual
//! Component.
//!
//! Construction is fleet-aware: role lookups go through a node→duty
//! index built once (instead of per-node scans over every VC), identical
//! control laws compile once and are shared, and the hot-loop state the
//! driver reads every slot (meters, relay cores, labels, slot occupancy)
//! is laid out in dense topology-indexed tables.

use std::collections::HashMap;

use evm_mac::rtlink::RtLink;
use evm_netsim::{Channel, EnergyMeter, NodeId, RadioPowerModel};
use evm_plant::{GasPlant, LocalController, RegisterMap};
use evm_sim::{EventQueue, SimDuration, SimRng, SimTime, TimeSeries, Trace};

use crate::bytecode::{
    compile_control_law, control_law_gas_budget, Capability, Capsule, CapsuleId, ControlLawSpec,
    Program,
};
use crate::component::{MemberInfo, VirtualComponent};
use crate::metrics::VcRunStats;
use crate::roles::ControllerMode;
use crate::runtime::behavior::NodeBehavior;
use crate::runtime::behaviors::{
    ActuationGate, ActuatorNode, ControllerCore, ControllerNode, GatewayNode, HeadNode, RelayCore,
    RelayNode, ReplicaParams, SensorNode,
};
use crate::runtime::driver::{Engine, Ev, SlotTable, NO_NODE};
use crate::runtime::plan::CyclePlan;
use crate::runtime::reconfig::{ReconfigError, ReconfigState, Reconfigurator};
use crate::runtime::registry::NodeRegistry;
use crate::runtime::scenario::SlotStepping;
use crate::runtime::topo::VcId;
use crate::runtime::Scenario;
use crate::transfers::ObjectTransfer;

/// Everything VC-specific the node loop below needs, prepared once per VC.
struct VcPlan {
    program: Program,
    gas: u64,
    params: ReplicaParams,
    primary: NodeId,
    act_register: u16,
    pv_tag: String,
    setpoint: f64,
    loop_name: String,
}

/// The single wireless duty a non-gateway node holds (roles are disjoint
/// across VCs by construction — every [`crate::runtime::NodeSpec`] names
/// exactly one role). Indexing duties once replaces the per-node
/// role-map scans, which are quadratic in fleet deployments.
#[derive(Clone, Copy)]
enum Duty {
    Head(VcId),
    Sensor(VcId, u8),
    Relay,
    Controller(VcId),
    Actuator(VcId),
}

impl Engine {
    /// Builds the deployment described by the scenario's topology.
    ///
    /// # Panics
    ///
    /// Panics if the topology is malformed, its hosting manifest does not
    /// match the topology's VC count, a scripted fault targets a VC the
    /// deployment does not host, or its flow pipeline cannot be scheduled
    /// within one RT-Link cycle — configuration errors, not runtime
    /// conditions.
    #[must_use]
    pub fn new(scenario: Scenario) -> Self {
        match Engine::try_new(scenario) {
            Ok(engine) => engine,
            Err(e) => panic!("malformed topology spec: {e}"),
        }
    }

    /// Like [`Engine::new`], but reports a malformed topology spec as a
    /// typed [`crate::runtime::TopologyError`] instead of panicking —
    /// the path batch runners use so one bad cell fails alone instead of
    /// aborting the whole sweep.
    ///
    /// # Errors
    ///
    /// Any [`crate::runtime::TopologyError`] from resolving the spec.
    ///
    /// # Panics
    ///
    /// Scenario-level configuration errors (manifest/VC-count mismatch,
    /// fault targeting an unhosted VC, unschedulable flow pipeline) still
    /// panic.
    #[allow(clippy::too_many_lines)]
    pub fn try_new(scenario: Scenario) -> Result<Self, crate::runtime::TopologyError> {
        let mut rng = SimRng::seed_from(scenario.seed);
        let mut channel = Channel::new(scenario.channel.clone(), rng.fork(1));
        let (topology, vcs) = scenario.topology.try_resolve(&mut channel)?;
        assert_eq!(
            vcs.n_vcs(),
            scenario.n_vcs(),
            "topology hosts {} VC(s) but the scenario's manifest names {} \
             loop(s); pair `.vcs(n)` / `multi_star` with `Scenario::host_vcs`",
            vcs.n_vcs(),
            scenario.n_vcs(),
        );
        for &(vc, at) in &scenario.primary_crashes {
            assert!(
                (vc as usize) < vcs.n_vcs(),
                "crash at {at} targets VC {vc}, but the deployment hosts \
                 only {} VC(s)",
                vcs.n_vcs(),
            );
        }

        // --- Dense node tables (the driver's hot-loop index space) -----
        let node_ids: Vec<NodeId> = topology.nodes().iter().map(|n| n.id).collect();
        let max_raw = node_ids
            .iter()
            .map(|id| id.raw() as usize)
            .max()
            .unwrap_or(0);
        let mut node_index = vec![NO_NODE; max_raw + 1];
        for (ix, id) in node_ids.iter().enumerate() {
            node_index[id.raw() as usize] = u32::try_from(ix).expect("node count fits u32");
        }
        let labels: Vec<String> = topology.nodes().iter().map(|n| n.label.clone()).collect();

        // --- Epoch 0 from the role-derived flow pipeline ---------------
        // The same Reconfigurator the runtime re-invokes mid-run builds
        // the setup-time configuration: logical single-hop flows, the
        // multi-hop routing pass (on a fully-connected star the routed
        // list is byte-identical to the logical one; elsewhere flows
        // expand into relay hop chains), then slot placement.
        let epoch0 = match Reconfigurator::compute(
            0,
            &topology,
            &[],
            &vcs,
            &scenario.rtlink,
            scenario.serial_schedule,
            scenario.transfer_slots,
        ) {
            Ok(epoch) => epoch,
            Err(ReconfigError::Unroutable(e)) => panic!("topology flows must route: {e}"),
            Err(ReconfigError::Unschedulable(e)) => panic!("topology flows must schedule: {e}"),
        };
        let schedule = epoch0.schedule;
        let flow_kinds = epoch0.flow_kinds;
        let mut relay_cores: Vec<Option<RelayCore>> = (0..node_ids.len()).map(|_| None).collect();
        let mut forwarders: Vec<NodeId> = Vec::with_capacity(epoch0.jobs.len());
        for (id, jobs) in epoch0.jobs {
            let ix = node_index[id.raw() as usize] as usize;
            relay_cores[ix] = Some(RelayCore::new(jobs));
            forwarders.push(id);
        }
        let slot_table = SlotTable::build(scenario.rtlink.slots_per_cycle, &schedule, &flow_kinds);

        let regmap = RegisterMap::gas_plant_standard();

        // --- Per-VC plans: compiled law, task params, registers --------
        // Identical laws (fleet deployments host clones of the standard
        // loops) compile once; [`Program`] clones share their original's
        // cache id, so downstream prepared-artifact caches also hit.
        let mut law_cache: Vec<(ControlLawSpec, Program, u64)> = Vec::new();
        let plans: Vec<VcPlan> = (0..vcs.n_vcs())
            .map(|k| {
                let vc = k as VcId;
                let spec = scenario.vc_loop(vc);
                let law = ControlLawSpec::from_loop(spec);
                let (program, gas) = match law_cache.iter().find(|(l, _, _)| *l == law) {
                    Some((_, p, g)) => (p.clone(), *g),
                    None => {
                        let program = compile_control_law(&law);
                        let gas = control_law_gas_budget(&program);
                        law_cache.push((law, program.clone(), gas));
                        (program, gas)
                    }
                };
                // The focus sensor's downlink register must agree with the
                // loop the VC hosts — a misconfigured manifest is caught
                // here rather than silently regulating the wrong PV.
                let pv_register = regmap
                    .input_register_of(&spec.pv_tag)
                    .unwrap_or_else(|| panic!("no input register for {}", spec.pv_tag));
                assert_eq!(
                    vcs.vc(vc).sensor_registers[0],
                    pv_register,
                    "VC {vc}'s focus sensor register does not match the {} loop",
                    spec.name
                );
                let act_register = regmap
                    .holding_register_of(&spec.op_tag)
                    .unwrap_or_else(|| panic!("no holding register for {}", spec.op_tag));
                VcPlan {
                    program,
                    gas,
                    params: ReplicaParams {
                        detect_threshold: scenario.detect_threshold,
                        detect_consecutive: scenario.detect_consecutive,
                        hb_timeout: scenario.rtlink.cycle_duration() * scenario.heartbeat_cycles,
                        period: SimDuration::from_secs_f64(spec.period_s),
                        primary: vcs.vc(vc).primary(),
                        tier: scenario.tier,
                    },
                    primary: vcs.vc(vc).primary(),
                    act_register,
                    pv_tag: spec.pv_tag.clone(),
                    setpoint: spec.setpoint,
                    loop_name: spec.name.clone(),
                }
            })
            .collect();

        // --- Plant + local (wired) loops for the unhosted loops --------
        let plant = GasPlant::default();
        let hosted: Vec<String> = plans.iter().map(|p| p.loop_name.clone()).collect();
        let local_loops: Vec<LocalController> = evm_plant::standard_loops()
            .into_iter()
            .filter(|l| !hosted.contains(&l.name))
            .map(LocalController::new)
            .collect();

        // --- Node → duty index (roles are disjoint across VCs) ---------
        let mut duty: HashMap<NodeId, Duty> = HashMap::new();
        for r in &vcs.vcs {
            if let Some(h) = r.head {
                duty.insert(h, Duty::Head(r.vc));
            }
            for (tag, &s) in r.sensors.iter().enumerate() {
                duty.insert(
                    s,
                    Duty::Sensor(r.vc, u8::try_from(tag).expect("tag fits u8")),
                );
            }
            for &c in &r.controllers {
                duty.insert(c, Duty::Controller(r.vc));
            }
            for &a in &r.actuators {
                duty.insert(a, Duty::Actuator(r.vc));
            }
            for &rl in &r.relays {
                duty.insert(rl, Duty::Relay);
            }
        }

        // --- Node behaviors --------------------------------------------
        let b_mode = if scenario.warm_backup {
            ControllerMode::Backup
        } else {
            ControllerMode::Dormant
        };
        let mut registry = NodeRegistry::new();
        for info in topology.nodes() {
            let id = info.id;
            let behavior: Box<dyn NodeBehavior> = if id == vcs.gateway {
                // One gate per VC without an actuator node: the gateway is
                // then that VC's actuation endpoint.
                let gates = vcs
                    .vcs
                    .iter()
                    .map(|r| {
                        r.actuators
                            .is_empty()
                            .then(|| ActuationGate::new(r.primary()))
                    })
                    .collect();
                let act_registers = plans.iter().map(|p| p.act_register).collect();
                Box::new(GatewayNode::new(
                    scenario.sensor_noise_std,
                    act_registers,
                    gates,
                ))
            } else {
                match duty.get(&id).copied() {
                    // A head always runs a monitor replica of its VC's
                    // law: it observes the data plane and can detect
                    // output deviations itself, which is what makes
                    // cold-standby deployments (no warm backup computing)
                    // still fail over.
                    Some(Duty::Head(vc)) => {
                        let p = &plans[vc as usize];
                        Box::new(HeadNode::new(ControllerCore::new(
                            id,
                            vc,
                            ControllerMode::Backup,
                            true,
                            &p.program,
                            p.gas,
                            &p.params,
                        )))
                    }
                    Some(Duty::Sensor(vc, tag)) => Box::new(SensorNode::new(vc, tag)),
                    // Dedicated forwarders: their duties live in the
                    // routed relay cores, not the behavior.
                    Some(Duty::Relay) => Box::new(RelayNode),
                    Some(Duty::Controller(vc)) => {
                        let p = &plans[vc as usize];
                        let (mode, hosts_task) = if id == p.primary {
                            (ControllerMode::Active, true)
                        } else {
                            (b_mode, scenario.warm_backup)
                        };
                        Box::new(ControllerNode::new(ControllerCore::new(
                            id, vc, mode, hosts_task, &p.program, p.gas, &p.params,
                        )))
                    }
                    Some(Duty::Actuator(vc)) => {
                        Box::new(ActuatorNode::new(vc, plans[vc as usize].primary))
                    }
                    None => panic!("node must hold a role in some VC"),
                }
            };
            registry.insert(id, behavior);
        }

        // --- Virtual components (one record per hosted loop) -----------
        // Built by a single pass over the topology (members land in
        // topology order within each record, exactly as the per-VC scans
        // produced).
        let mut components: Vec<VirtualComponent> = vcs
            .vcs
            .iter()
            .map(|roles| VirtualComponent::new(plans[roles.vc as usize].loop_name.clone()))
            .collect();
        for n in topology.nodes() {
            if n.id == vcs.gateway {
                for record in &mut components {
                    record.add_member(MemberInfo {
                        node: n.id,
                        kind: n.kind,
                        mode: None,
                        capsules: vec![],
                    });
                }
                continue;
            }
            let Some(&d) = duty.get(&n.id) else { continue };
            let (vc, mode) = match d {
                Duty::Controller(vc) => {
                    let mode = if n.id == vcs.vc(vc).primary() {
                        ControllerMode::Active
                    } else {
                        b_mode
                    };
                    (vc, Some(mode))
                }
                Duty::Head(vc) | Duty::Sensor(vc, _) | Duty::Actuator(vc) => (vc, None),
                Duty::Relay => {
                    let vc = vcs
                        .vc_of_relay(n.id)
                        .expect("relay duty implies relay role");
                    (vc, None)
                }
            };
            components[vc as usize].add_member(MemberInfo {
                node: n.id,
                kind: n.kind,
                mode,
                capsules: vec![],
            });
        }
        for roles in &vcs.vcs {
            if let Some(head) = roles.head {
                components[roles.vc as usize].set_head(head);
            }
            // Capsule-migration relationships: the primary may ship its
            // capsule to any replica peer (head included). The transfer
            // plane consults these records before starting a migration.
            let primary = roles.primary();
            for peer in roles.controllers.iter().copied().chain(roles.head) {
                if peer != primary {
                    components[roles.vc as usize].add_transfer(ObjectTransfer::Directional {
                        from: primary,
                        to: peer,
                    });
                }
            }
        }

        // The authoritative capsule each VC would ship on a live
        // migration: the compiled law wrapped with its budget and the
        // capabilities a computing replica needs, version 1 at boot.
        let capsules: Vec<Capsule> = plans
            .iter()
            .enumerate()
            .map(|(vc, p)| {
                Capsule::new(
                    CapsuleId(u32::try_from(vc).expect("vc fits u32")),
                    1,
                    p.program.clone(),
                    p.gas,
                    vec![Capability::ControllerRole, Capability::DataPlane],
                )
            })
            .collect();

        let series = scenario
            .sampled_tags
            .iter()
            .map(|t| (t.clone(), TimeSeries::new(t.clone())))
            .collect();
        let mode_series = vcs
            .all_controllers()
            .map(|(_, n)| {
                let label = topology.node(n).expect("member").label.clone();
                (n, TimeSeries::new(format!("Mode.{label}")))
            })
            .collect();
        let err_series = plans
            .iter()
            .map(|p| {
                (
                    p.pv_tag.clone(),
                    p.setpoint,
                    TimeSeries::new(format!("Err.{}", p.loop_name)),
                )
            })
            .collect();
        let vc_stats = plans
            .iter()
            .map(|p| VcRunStats {
                loop_name: p.loop_name.clone(),
                ..VcRunStats::default()
            })
            .collect();
        let meters = node_ids
            .iter()
            .map(|_| EnergyMeter::new(RadioPowerModel::cc2420()))
            .collect();

        let mut engine = Engine {
            plant,
            regmap,
            local_loops,
            channel,
            topology,
            vcs,
            rtlink: RtLink::new(scenario.rtlink.clone()),
            schedule,
            flow_kinds,
            relay_cores,
            forwarders,
            components,
            rng,
            trace: Trace::new(),
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            registry,
            series,
            mode_series,
            err_series,
            meters,
            node_ids,
            node_index,
            labels,
            slot_table,
            plan: CyclePlan::default(),
            plan_prev: CyclePlan::default(),
            fx_effects: Vec::with_capacity(8),
            fx_timers: Vec::with_capacity(8),
            scratch_watch: Vec::new(),
            scratch_down: Vec::new(),
            vslot_k: 1,
            vslot_time: SimTime::ZERO + scenario.rtlink.slot_duration,
            vslot_seq: 0,
            vc_stats,
            reconfig: ReconfigState::default(),
            capsules,
            xfer: None,
            migrations: Vec::new(),
            scenario,
        };

        // Surface monitoring sensors whose register the plant map does
        // not back (possible past the 11-entry monitor table, where
        // registers are synthetic-but-unique): their downlinks will stay
        // empty, which should be visible in the trace, not silent.
        for roles in &engine.vcs.vcs {
            for (tag, &reg) in roles.sensor_registers.iter().enumerate().skip(1) {
                if engine.regmap.tag_of(reg).is_none() {
                    let label = engine.label_of(roles.sensors[tag]);
                    engine.trace.log(
                        SimTime::ZERO,
                        "config",
                        format!("monitor {label} reads unmapped register {reg}; flow stays empty"),
                    );
                }
            }
        }

        // Capacity reservations: once warmed, the steady-state hot loop
        // never touches the allocator (pinned by the alloc-count test).
        let duration = engine.scenario.duration;
        let samples = usize::try_from(duration / engine.scenario.sample_every + 2)
            .expect("sample count fits usize");
        for s in engine.series.values_mut() {
            s.reserve(samples);
        }
        for (_, s) in &mut engine.mode_series {
            s.reserve(samples);
        }
        let cycles = usize::try_from(duration / engine.scenario.rtlink.cycle_duration() + 2)
            .expect("cycle count fits usize");
        for (_, _, s) in &mut engine.err_series {
            s.reserve(cycles);
        }
        for st in &mut engine.vc_stats {
            st.e2e_latencies.reserve(cycles);
        }
        engine.queue.reserve(64 + 4 * engine.node_ids.len());

        // Compile the setup epoch's cycle plan (draws no RNG; built in
        // both plan modes so engine state stays uniform).
        engine.rebuild_plan();

        // Seed events. Under event-driven stepping the slot chain is a
        // cursor, not queue traffic: reserve the sequence number the
        // legacy `Ev::Slot` push would have taken so same-instant
        // orderings match the legacy driver exactly.
        engine.queue.push(SimTime::ZERO, Ev::PlantStep);
        match engine.scenario.stepping {
            SlotStepping::Legacy => engine.queue.push(engine.vslot_time, Ev::Slot),
            SlotStepping::EventDriven => engine.vslot_seq = engine.queue.skip_seq(),
        }
        engine.queue.push(SimTime::ZERO, Ev::Sample);
        if let Some((at, _)) = engine.scenario.fault {
            engine.queue.push(at, Ev::InjectFault);
        }
        if let Some((at, _)) = engine.scenario.backup_fault {
            engine.queue.push(at, Ev::InjectBackupFault);
        }
        for &(vc, at) in &engine.scenario.primary_crashes {
            engine.queue.push(at, Ev::CrashPrimary { vc });
        }
        for &at in &engine.scenario.force_reconfig {
            engine.queue.push(at, Ev::Reconfigure);
        }
        Ok(engine)
    }
}
