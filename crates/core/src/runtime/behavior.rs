//! The node-behavior abstraction.
//!
//! Each node in the deployment is a [`NodeBehavior`]: the slot-pipeline
//! driver owns the shared world (plant, channel, schedule, energy meters,
//! event queue) and calls into behaviors with a [`NodeCtx`] when the node
//! transmits, receives, or a cycle boundary passes. Behaviors communicate
//! back through returned messages, scheduled [`Timer`]s, and [`Effect`]s —
//! never by reaching into another node's state, which is what keeps the
//! runtime topology-generic.

use evm_netsim::NodeId;
use evm_plant::{GasPlant, RegisterMap};
use evm_sim::{SimRng, SimTime, Trace};

use crate::runtime::behaviors::{ControllerCore, HeadPlane};
use crate::runtime::topo::{FlowKind, VcId, VcMap};
use crate::runtime::Message;

/// A deferred, node-local event (delivered back to the same node).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Timer {
    /// The node's focus-task execution completed (WCET elapsed).
    TaskDone,
}

/// A cross-node side effect a behavior hands back to the driver.
#[derive(Debug, Clone, PartialEq)]
pub enum Effect {
    /// A confirmed fault report for the head's arbitration (either an
    /// in-band `FaultAlert` frame arriving at the head, or the head's own
    /// monitor short-circuiting the radio hop).
    Alert {
        /// The node suspected faulty.
        suspect: NodeId,
        /// The node reporting it.
        observer: NodeId,
    },
    /// An actuation reached the plant (drives latency/QoS accounting).
    Actuated {
        /// The actuating Virtual Component.
        vc: VcId,
        /// Timestamp of the PV this actuation responds to.
        pv_sampled_at: SimTime,
    },
}

/// The slice of the world a behavior may touch during one callback.
pub struct NodeCtx<'a> {
    /// Current simulation time.
    pub now: SimTime,
    /// The node being driven.
    pub id: NodeId,
    /// The node's display label (trace messages, series names).
    pub label: &'a str,
    /// Role-resolved addressing for every hosted Virtual Component.
    pub vcs: &'a VcMap,
    /// The scenario RNG (single stream — call order is deterministic).
    pub rng: &'a mut SimRng,
    /// The structured event log.
    pub trace: &'a mut Trace,
    /// The plant (only the gateway bridges to it).
    pub plant: &'a mut GasPlant,
    /// The ModBus register map.
    pub regmap: &'a RegisterMap,
    /// Side effects for the driver to apply after the callback.
    pub effects: &'a mut Vec<Effect>,
    /// Timers to schedule for this node: `(fire_at, timer)`.
    pub timers: &'a mut Vec<(SimTime, Timer)>,
}

/// Per-role node logic. The driver is the only caller.
pub trait NodeBehavior {
    /// Called at the start of every RT-Link cycle (slot 0), before any
    /// transmissions — heartbeat silence checks live here.
    fn on_cycle_start(&mut self, _ctx: &mut NodeCtx<'_>) {}

    /// `true` if this behavior's [`NodeBehavior::on_cycle_start`] does
    /// anything. The cycle plan only dispatches the hook to behaviors
    /// that return `true` here; the default no-op hook is skipped. Must
    /// be invariant for the life of the behavior (rehydration may swap
    /// the behavior type, which rebuilds nothing — controller ↔ head
    /// both return `true`, so membership is stable across re-election).
    fn has_cycle_hook(&self) -> bool {
        false
    }

    /// What this node transmits in a slot scheduled for `kind`, if
    /// anything. Returning `None` leaves the slot empty (listeners still
    /// pay the detect window).
    fn take_outgoing(&mut self, kind: FlowKind, ctx: &mut NodeCtx<'_>) -> Option<Message>;

    /// A frame addressed to (or subscribed by) this node arrived.
    fn on_deliver(&mut self, msg: &Message, ctx: &mut NodeCtx<'_>);

    /// A timer scheduled by this node fired.
    fn on_timer(&mut self, _timer: Timer, _ctx: &mut NodeCtx<'_>) {}

    /// The controller replica state, for nodes that host one (controller
    /// nodes and the head's monitor). Used by the driver for mode
    /// sampling, arbitration candidates and migration.
    fn controller_core(&self) -> Option<&ControllerCore> {
        None
    }

    /// Mutable access to the controller replica state.
    fn controller_core_mut(&mut self) -> Option<&mut ControllerCore> {
        None
    }

    /// Consumes the behavior, yielding its controller replica if it hosts
    /// one. The reconfiguration plane uses this to *rehydrate* a node
    /// after head re-election: a surviving backup's core (detectors, VM
    /// state, kernel) is lifted out of its `ControllerNode` and wrapped
    /// in a `HeadNode` — same replica, new duties. Callers must check
    /// [`NodeBehavior::controller_core`] first: the default drops the
    /// behavior and returns `None`.
    fn into_controller_core(self: Box<Self>) -> Option<ControllerCore> {
        None
    }

    /// The head's control plane, for the head node.
    fn head_plane_mut(&mut self) -> Option<&mut HeadPlane> {
        None
    }
}
