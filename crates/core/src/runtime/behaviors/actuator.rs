//! Actuator nodes and the actuation gate they share with the gateway.

use evm_netsim::NodeId;
use evm_sim::SimTime;

use crate::runtime::behavior::{NodeBehavior, NodeCtx};
use crate::runtime::topo::{FlowKind, VcId};
use crate::runtime::Message;

/// Master-acceptance state of an actuation endpoint: which controller's
/// outputs are honored, and the fail-safe lock. Shared by [`ActuatorNode`]
/// and by the gateway for VCs without an actuator node.
#[derive(Debug, Clone)]
pub struct ActuationGate {
    active_ctrl: NodeId,
    failsafe: bool,
}

impl ActuationGate {
    /// A gate initially accepting `primary`.
    #[must_use]
    pub fn new(primary: NodeId) -> Self {
        ActuationGate {
            active_ctrl: primary,
            failsafe: false,
        }
    }

    /// Accepts or rejects a controller output. `Some(value)` if the output
    /// should drive the valve.
    #[must_use]
    pub fn accept(&self, from: NodeId, value: f64) -> Option<f64> {
        (from == self.active_ctrl && !self.failsafe).then_some(value)
    }

    /// Engages the fail-safe lock (controller outputs ignored until a
    /// promotion arrives). Returns `false` if already engaged.
    pub fn engage_failsafe(&mut self) -> bool {
        if self.failsafe {
            return false;
        }
        self.failsafe = true;
        true
    }

    /// Applies a reconfiguration: switching masters (the OS-1 operation
    /// switch) also releases the fail-safe lock.
    pub fn on_reconfig(&mut self, promote: Option<NodeId>) {
        if let Some(p) = promote {
            self.active_ctrl = p;
            self.failsafe = false;
        }
    }
}

/// An actuator node: gates its VC's controller outputs and forwards
/// accepted commands to the gateway in its own slot.
pub struct ActuatorNode {
    vc: VcId,
    gate: ActuationGate,
    /// Accepted command awaiting this node's TX slot.
    pending: Option<(f64, SimTime)>,
}

impl ActuatorNode {
    /// VC `vc`'s actuator, initially mastered by `primary`.
    #[must_use]
    pub fn new(vc: VcId, primary: NodeId) -> Self {
        ActuatorNode {
            vc,
            gate: ActuationGate::new(primary),
            pending: None,
        }
    }
}

impl NodeBehavior for ActuatorNode {
    fn take_outgoing(&mut self, kind: FlowKind, _ctx: &mut NodeCtx<'_>) -> Option<Message> {
        match kind {
            FlowKind::ActuateForward { vc } if vc == self.vc => {
                let (value, pv_ts) = self.pending.take()?;
                Some(Message::ActuateFwd {
                    vc,
                    value,
                    pv_sampled_at: pv_ts,
                })
            }
            _ => None,
        }
    }

    fn on_deliver(&mut self, msg: &Message, ctx: &mut NodeCtx<'_>) {
        match *msg {
            Message::ControlOutput {
                vc,
                from,
                value,
                pv_sampled_at,
            } if vc == self.vc => {
                if let Some(v) = self.gate.accept(from, value) {
                    self.pending = Some((v, pv_sampled_at));
                }
            }
            Message::FailSafe { vc, value } if vc == self.vc && self.gate.engage_failsafe() => {
                self.pending = Some((value, ctx.now));
                ctx.trace
                    .log(ctx.now, "vc", format!("actuator fail-safe at {value}%"));
            }
            Message::Reconfig { vc, promote, .. } if vc == self.vc => {
                self.gate.on_reconfig(promote);
            }
            _ => {}
        }
    }
}
