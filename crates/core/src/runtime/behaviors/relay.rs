//! Store-and-forward relaying.
//!
//! Forwarding is a node *capability*, not a role: the routing pass
//! ([`crate::runtime::route_flows`]) assigns [`RelayJob`]s to whatever
//! node sits on a multi-hop route — a dedicated relay, the gateway, or a
//! controller lending a hop — and the driver keeps one [`RelayCore`] per
//! forwarding node beside its behavior. A job captures the latest frame
//! arriving from its upstream transmitter that matches the relayed flow's
//! semantic, and retransmits it in the slot scheduled for the matching
//! [`FlowKind::Relay`] entry. The [`RelayNode`] behavior is what a
//! dedicated [`crate::runtime::Role::Relay`] node runs: nothing — its
//! whole existence is its `RelayCore`.

use evm_netsim::NodeId;

use crate::runtime::behavior::{NodeBehavior, NodeCtx};
use crate::runtime::topo::{FlowKind, RelayJob};
use crate::runtime::Message;

/// One node's forwarding state: the latest captured frame per job.
///
/// Later frames overwrite earlier ones (freshest-data forwarding, the
/// same last-write-wins rule the actuation gate applies), and a taken
/// frame leaves the slot empty until the next capture — a dead upstream
/// starves the hop instead of replaying stale frames forever.
#[derive(Debug)]
pub struct RelayCore {
    jobs: Vec<RelayJob>,
    pending: Vec<Option<Message>>,
}

impl RelayCore {
    /// Builds the core from the node's routed job list.
    #[must_use]
    pub fn new(jobs: Vec<RelayJob>) -> Self {
        let pending = vec![None; jobs.len()];
        RelayCore { jobs, pending }
    }

    /// Offers a delivered frame: every job whose upstream transmitted it
    /// and whose relayed semantic matches captures a copy. (Two jobs can
    /// legitimately share one frame when two logical flows ride the same
    /// hop.)
    pub fn offer(&mut self, from: NodeId, msg: &Message) {
        for (job, slot) in self.jobs.iter().zip(&mut self.pending) {
            if job.upstream == from && job_matches(job, msg) {
                *slot = Some(msg.clone());
            }
        }
    }

    /// Takes the pending frame of job `job`, if any (the driver calls
    /// this in the slot scheduled for the matching [`FlowKind::Relay`]).
    pub fn take(&mut self, job: usize) -> Option<Message> {
        self.pending.get_mut(job)?.take()
    }

    /// The node's job list (inspection/tests).
    #[must_use]
    pub fn jobs(&self) -> &[RelayJob] {
        &self.jobs
    }

    /// Carries pending frames over from a previous epoch's core: every
    /// job that survives into this core (same upstream, origin and
    /// semantic) inherits its captured-but-unsent frame. This is what
    /// makes a no-op epoch swap invisible to the data plane — nothing in
    /// flight is dropped by reprogramming the forwarders.
    pub fn migrate_from(&mut self, old: &mut RelayCore) {
        for (job, slot) in self.jobs.iter().zip(&mut self.pending) {
            if slot.is_none() {
                if let Some(i) = old.jobs.iter().position(|j| j == job) {
                    *slot = old.pending[i].take();
                }
            }
        }
    }
}

/// `true` if `msg` is a frame of the logical flow `job` forwards. The
/// flow's semantic plus its origin disambiguate flows that share a frame
/// shape — e.g. several controllers' `ControlPublish` streams crossing
/// one forwarder.
fn job_matches(job: &RelayJob, msg: &Message) -> bool {
    match (job.kind, msg) {
        (
            FlowKind::HilDownlink { vc, tag } | FlowKind::SensorPublish { vc, tag },
            Message::SensorValue {
                vc: mvc, tag: mtag, ..
            },
        ) => vc == *mvc && tag == *mtag,
        (FlowKind::ControlPublish { vc }, Message::ControlOutput { vc: mvc, from, .. }) => {
            vc == *mvc && *from == job.origin
        }
        // A starved replica's keepalive and a backup's confirmed-fault
        // report ride the same publish slot; both must cross the hops.
        (FlowKind::ControlPublish { .. }, Message::Heartbeat { from }) => *from == job.origin,
        (FlowKind::ControlPublish { .. }, Message::FaultAlert { observer, .. }) => {
            *observer == job.origin
        }
        (FlowKind::ActuateForward { vc }, Message::ActuateFwd { vc: mvc, .. }) => vc == *mvc,
        (
            FlowKind::ControlPlane { vc },
            Message::Reconfig { vc: mvc, .. } | Message::FailSafe { vc: mvc, .. },
        ) => vc == *mvc,
        _ => false,
    }
}

/// A dedicated relay node: no sensing, no computing, no gating — its
/// forwarding duties live entirely in the driver-held [`RelayCore`].
pub struct RelayNode;

impl NodeBehavior for RelayNode {
    fn take_outgoing(&mut self, _kind: FlowKind, _ctx: &mut NodeCtx<'_>) -> Option<Message> {
        None
    }

    fn on_deliver(&mut self, _msg: &Message, _ctx: &mut NodeCtx<'_>) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use evm_sim::SimTime;

    fn job(upstream: u16, origin: u16, kind: FlowKind) -> RelayJob {
        RelayJob {
            upstream: NodeId(upstream),
            origin: NodeId(origin),
            kind,
        }
    }

    #[test]
    fn capture_is_keyed_by_upstream_and_semantic() {
        let mut core = RelayCore::new(vec![
            job(0, 0, FlowKind::HilDownlink { vc: 0, tag: 0 }),
            job(1, 1, FlowKind::SensorPublish { vc: 0, tag: 0 }),
        ]);
        let pv = Message::SensorValue {
            vc: 0,
            tag: 0,
            value: 42.0,
            sampled_at: SimTime::ZERO,
        };
        // Same frame shape, different upstream: only the matching
        // direction captures.
        core.offer(NodeId(0), &pv);
        assert_eq!(core.take(0), Some(pv.clone()));
        assert_eq!(core.take(1), None);
        core.offer(NodeId(1), &pv);
        assert_eq!(core.take(0), None);
        assert_eq!(core.take(1), Some(pv.clone()));
        // Wrong VC: ignored.
        let other = Message::SensorValue {
            vc: 1,
            tag: 0,
            value: 1.0,
            sampled_at: SimTime::ZERO,
        };
        core.offer(NodeId(0), &other);
        assert_eq!(core.take(0), None);
    }

    #[test]
    fn control_publish_jobs_discriminate_by_origin() {
        let mut core = RelayCore::new(vec![
            job(5, 2, FlowKind::ControlPublish { vc: 0 }),
            job(5, 3, FlowKind::ControlPublish { vc: 0 }),
        ]);
        let out = |from: u16| Message::ControlOutput {
            vc: 0,
            from: NodeId(from),
            value: 50.0,
            pv_sampled_at: SimTime::ZERO,
        };
        core.offer(NodeId(5), &out(2));
        assert!(core.take(0).is_some());
        assert!(core.take(1).is_none());
        // Keepalives and alerts ride the same job.
        core.offer(NodeId(5), &Message::Heartbeat { from: NodeId(3) });
        assert_eq!(core.take(1), Some(Message::Heartbeat { from: NodeId(3) }));
        core.offer(
            NodeId(5),
            &Message::FaultAlert {
                suspect: NodeId(2),
                observer: NodeId(3),
            },
        );
        assert!(core.take(1).is_some());
    }

    #[test]
    fn epoch_migration_carries_surviving_jobs_pendings() {
        let dl = FlowKind::HilDownlink { vc: 0, tag: 0 };
        let pb = FlowKind::SensorPublish { vc: 0, tag: 0 };
        let mut old = RelayCore::new(vec![job(0, 0, dl), job(1, 1, pb)]);
        let frame = Message::SensorValue {
            vc: 0,
            tag: 0,
            value: 7.0,
            sampled_at: SimTime::ZERO,
        };
        old.offer(NodeId(0), &frame);
        old.offer(NodeId(1), &frame);
        // The new epoch keeps the publish job, drops the downlink one and
        // adds a fresh job: only the survivor inherits its pending frame.
        let mut new = RelayCore::new(vec![job(1, 1, pb), job(9, 9, dl)]);
        new.migrate_from(&mut old);
        assert_eq!(new.take(0), Some(frame));
        assert_eq!(new.take(1), None);
        assert_eq!(old.take(1), None, "migrated frames move, not copy");
        assert!(old.take(0).is_some(), "dropped jobs keep theirs behind");
    }

    #[test]
    fn taken_frames_do_not_replay() {
        let mut core = RelayCore::new(vec![job(0, 0, FlowKind::ControlPlane { vc: 1 })]);
        let cmd = Message::FailSafe { vc: 1, value: 0.0 };
        core.offer(NodeId(0), &cmd);
        assert_eq!(core.take(0), Some(cmd));
        assert_eq!(core.take(0), None, "a hop forwards each capture once");
    }
}
