//! Controller replicas: the EVM nodes hosting the focus control capsule.

use evm_netsim::NodeId;
use evm_rtos::Kernel;
use evm_sim::{SimDuration, SimRng, SimTime, Trace};

use crate::bytecode::{Program, Tier, Vm, VmEnv, VmError};
use crate::health::{DeviationDetector, HeartbeatMonitor};
use crate::roles::ControllerMode;
use crate::runtime::behavior::{NodeBehavior, NodeCtx, Timer};
use crate::runtime::topo::{FlowKind, VcId};
use crate::runtime::Message;

/// Detection and task parameters shared by every replica of the focus
/// capsule (derived from the scenario at engine construction).
#[derive(Debug, Clone)]
pub struct ReplicaParams {
    /// Deviation-detector threshold (output units).
    pub detect_threshold: f64,
    /// Consecutive anomalies to confirm a fault.
    pub detect_consecutive: u32,
    /// Heartbeat silence timeout.
    pub hb_timeout: SimDuration,
    /// Focus-task period.
    pub period: SimDuration,
    /// The VC's initial primary (who every replica watches at start).
    pub primary: NodeId,
    /// Execution tier for the replica's VM.
    pub tier: Tier,
}

/// The state of one replica of the focus control capsule: VM, kernel,
/// detectors, and the node's view of who is currently Active. Hosted by
/// [`ControllerNode`]s and by the head's monitor.
#[derive(Debug)]
pub struct ControllerCore {
    /// The hosting node.
    pub id: NodeId,
    /// The Virtual Component this replica serves.
    pub vc: VcId,
    /// Current controller mode.
    pub mode: ControllerMode,
    vm: Vm,
    program: Program,
    /// The node's nano-RK-style kernel (admission, utilization).
    pub kernel: Kernel,
    /// `true` once the focus task image is resident and admitted.
    pub has_task: bool,
    /// Version of the resident focus capsule (`None` until one is
    /// resident). The arrival gate only accepts strict upgrades over it.
    pub capsule_version: Option<u16>,
    latest_pv: Option<(f64, SimTime)>,
    computing: bool,
    /// Computed output awaiting this node's TX slot.
    pending_output: Option<(f64, SimTime)>,
    /// Last own output (for deviation checks).
    last_own_output: Option<f64>,
    detector: DeviationDetector,
    heartbeat: HeartbeatMonitor,
    /// Confirmed-fault report awaiting this node's TX slot.
    pub pending_alert: Option<NodeId>,
    /// Scripted controller fault applied to published outputs.
    pub fault: Option<(SimTime, evm_plant::ActuatorFault)>,
    /// Who this replica believes is Active (updated from received
    /// `Reconfig` frames; the initial primary until then).
    believed_active: NodeId,
    params: ReplicaParams,
}

impl ControllerCore {
    /// Builds a replica. `hosts_task` admits the focus task onto the
    /// kernel immediately (warm replica); otherwise the task must arrive
    /// by migration.
    ///
    /// # Panics
    ///
    /// Panics if the focus task fails admission on an empty kernel — a
    /// configuration error.
    #[must_use]
    pub fn new(
        id: NodeId,
        vc: VcId,
        mode: ControllerMode,
        hosts_task: bool,
        program: &Program,
        gas: u64,
        params: &ReplicaParams,
    ) -> Self {
        let primary = params.primary;
        let mut kernel = Kernel::new(format!("{id}"));
        let mut has_task = false;
        if hosts_task {
            kernel
                .admit(
                    evm_rtos::TaskSpec::new("focus", kernel.instr_cost() * gas, params.period),
                    evm_rtos::TaskImage::typical_control_task(),
                    None,
                )
                .expect("focus task admits on an empty kernel");
            has_task = true;
        }
        ControllerCore {
            id,
            vc,
            mode,
            vm: Vm::with_tier(gas, params.tier),
            program: program.clone(),
            kernel,
            has_task,
            capsule_version: if has_task { Some(1) } else { None },
            latest_pv: None,
            computing: false,
            pending_output: None,
            last_own_output: None,
            detector: DeviationDetector::new(
                id,
                primary,
                params.detect_threshold,
                params.detect_consecutive,
            ),
            heartbeat: HeartbeatMonitor::new(primary, params.hb_timeout),
            pending_alert: None,
            fault: None,
            believed_active: primary,
            params: params.clone(),
        }
    }

    /// The replica's current belief of the Active controller.
    #[must_use]
    pub fn believed_active(&self) -> NodeId {
        self.believed_active
    }

    /// Worst-case execution time of one capsule run.
    #[must_use]
    pub fn wcet(&self) -> SimDuration {
        self.kernel.instr_cost() * self.vm.gas_limit()
    }

    /// A fresh focus PV arrived; starts a capsule execution if this
    /// replica computes. Returns the completion delay to schedule.
    pub fn on_pv(&mut self, value: f64, sampled_at: SimTime) -> Option<SimDuration> {
        self.latest_pv = Some((value, sampled_at));
        if self.mode.computes() && self.has_task && !self.computing {
            self.computing = true;
            return Some(self.wcet());
        }
        None
    }

    /// Records a liveness signal from `from` if it is the watched node.
    pub fn heard_from(&mut self, from: NodeId, at: SimTime) {
        if from == self.heartbeat.watched() {
            self.heartbeat.heard(at);
        }
    }

    /// `true` if the watched node has been silent past the timeout.
    #[must_use]
    pub fn watched_silent(&self, now: SimTime) -> bool {
        self.heartbeat.is_silent(now)
    }

    /// The node this replica's heartbeat monitor watches.
    #[must_use]
    pub fn watched(&self) -> NodeId {
        self.heartbeat.watched()
    }

    /// Observes a peer controller's published output against our own;
    /// returns the mean deviation when a fault is *newly confirmed*.
    pub fn observe_peer_output(&mut self, from: NodeId, value: f64, now: SimTime) -> Option<f64> {
        if self.mode != ControllerMode::Backup || from != self.believed_active {
            return None;
        }
        let own = self.last_own_output?;
        let ev = self.detector.observe(value, own, now)?;
        Some(ev.mean_deviation)
    }

    /// The capsule run completed: execute the VM against the latest PV and
    /// stage the (possibly fault-corrupted) output for the next TX slot.
    pub fn run_capsule(&mut self, now: SimTime, rng: &mut SimRng, trace: &mut Trace) {
        self.computing = false;
        if !self.mode.computes() {
            return;
        }
        let Some((pv, pv_ts)) = self.latest_pv else {
            return;
        };
        struct Env {
            pv: f64,
            out: Option<f64>,
            now_s: f64,
            role: f64,
        }
        impl VmEnv for Env {
            fn read_sensor(&mut self, _p: u8) -> Result<f64, VmError> {
                Ok(self.pv)
            }
            fn write_actuator(&mut self, _p: u8, v: f64) -> Result<(), VmError> {
                self.out = Some(v);
                Ok(())
            }
            fn emit(&mut self, _ch: u8, _v: f64) {}
            fn clock_s(&self) -> f64 {
                self.now_s
            }
            fn role_code(&self) -> f64 {
                self.role
            }
        }
        let mut env = Env {
            pv,
            out: None,
            now_s: now.as_secs_f64(),
            role: self.mode.as_f64(),
        };
        if self.vm.run(&self.program, &mut env).is_err() {
            trace.log(now, "vm", format!("{} capsule trapped", self.id));
            return;
        }
        let correct = env.out.unwrap_or(0.0);
        self.last_own_output = Some(correct);
        // Apply the scripted controller fault to the *published* output.
        let published = match self.fault {
            Some((since, fault)) => {
                let elapsed = now.saturating_since(since).as_secs_f64();
                fault.apply(correct, elapsed, rng)
            }
            None => correct,
        };
        self.pending_output = Some((published, pv_ts));
    }

    /// What this replica transmits in its `ControlPublish` slot: alerts
    /// preempt outputs (fault plane over data plane); a starved computing
    /// replica sends a keepalive.
    pub fn take_publish(&mut self) -> Option<Message> {
        if !self.mode.computes() {
            return None;
        }
        if let Some(suspect) = self.pending_alert.take() {
            return Some(Message::FaultAlert {
                suspect,
                observer: self.id,
            });
        }
        if let Some((value, pv_ts)) = self.pending_output.take() {
            return Some(Message::ControlOutput {
                vc: self.vc,
                from: self.id,
                value,
                pv_sampled_at: pv_ts,
            });
        }
        Some(Message::Heartbeat { from: self.id })
    }

    /// Applies a received (or self-committed, for the head's monitor)
    /// reconfiguration: mode change for this node, belief/detector updates
    /// for everyone.
    pub fn apply_reconfig(
        &mut self,
        promote: Option<NodeId>,
        demote: Option<(NodeId, ControllerMode)>,
        now: SimTime,
        label: &str,
        trace: &mut Trace,
    ) {
        // A reconfiguration starts a fresh observation epoch.
        self.detector.reset();
        self.pending_alert = None;
        // Demote first so the single-active invariant holds through the
        // transition.
        if let Some((target, mode)) = demote {
            if target == self.id && self.mode != mode {
                self.mode = mode;
                if mode == ControllerMode::Dormant {
                    self.pending_output = None;
                    self.computing = false;
                }
                trace.log(now, "vc", format!("{label} -> {mode}"));
            }
        }
        if let Some(target) = promote {
            if target == self.id && self.mode != ControllerMode::Active {
                self.mode = ControllerMode::Active;
                trace.log(now, "vc", format!("{label} -> Active"));
            }
            // Every replica re-aims its observation at the new Active.
            self.believed_active = target;
            self.detector = DeviationDetector::new(
                self.id,
                target,
                self.params.detect_threshold,
                self.params.detect_consecutive,
            );
            if target != self.id {
                // Fresh monitor, deliberately unstamped: a replica that is
                // not subscribed to the new Active's slot never hears it,
                // and a never-heard node is not considered silent — so
                // only actual subscribers resume crash detection.
                self.heartbeat = HeartbeatMonitor::new(target, self.params.hb_timeout);
            }
        }
    }

    /// Admission gate for a migrated focus task. Returns `false` if the
    /// kernel refuses it.
    pub fn admit_focus_task(&mut self) -> bool {
        let gas = self.vm.gas_limit();
        let admitted = self
            .kernel
            .admit(
                evm_rtos::TaskSpec::new(
                    "focus",
                    self.kernel.instr_cost() * gas,
                    self.params.period,
                ),
                evm_rtos::TaskImage::typical_control_task(),
                None,
            )
            .is_ok();
        if admitted {
            self.has_task = true;
        }
        admitted
    }

    /// Snapshot of the VM data section (the migrated integrator state).
    #[must_use]
    pub fn snapshot_vars(&self) -> [f64; crate::bytecode::N_VARS] {
        self.vm.snapshot_vars()
    }

    /// Warm-starts the VM from a migrated snapshot.
    pub fn restore_vars(&mut self, vars: [f64; crate::bytecode::N_VARS]) {
        self.vm.restore_vars(vars);
    }
}

/// A controller node: a [`ControllerCore`] on the radio.
pub struct ControllerNode {
    core: ControllerCore,
}

impl ControllerNode {
    /// Wraps a replica as a network node behavior.
    #[must_use]
    pub fn new(core: ControllerCore) -> Self {
        ControllerNode { core }
    }
}

impl NodeBehavior for ControllerNode {
    fn has_cycle_hook(&self) -> bool {
        true
    }

    fn on_cycle_start(&mut self, ctx: &mut NodeCtx<'_>) {
        // Backups raise heartbeat-timeout alerts; the Active replica has
        // no one to watch (its own silence is what others detect).
        if self.core.mode == ControllerMode::Backup
            && self.core.watched_silent(ctx.now)
            && self.core.pending_alert.is_none()
        {
            let suspect = self.core.watched();
            self.core.pending_alert = Some(suspect);
            ctx.trace.log(
                ctx.now,
                "health",
                format!("{} heartbeat timeout on {suspect}", ctx.id),
            );
        }
    }

    fn take_outgoing(&mut self, kind: FlowKind, _ctx: &mut NodeCtx<'_>) -> Option<Message> {
        match kind {
            FlowKind::ControlPublish { vc } if vc == self.core.vc => self.core.take_publish(),
            _ => None,
        }
    }

    fn on_deliver(&mut self, msg: &Message, ctx: &mut NodeCtx<'_>) {
        match *msg {
            Message::SensorValue {
                vc,
                tag,
                value,
                sampled_at,
            } => {
                // Controllers only act on their own VC's focus PV.
                if vc != self.core.vc || tag != 0 {
                    return;
                }
                if let Some(wcet) = self.core.on_pv(value, sampled_at) {
                    ctx.timers.push((ctx.now + wcet, Timer::TaskDone));
                }
            }
            Message::Heartbeat { from } => self.core.heard_from(from, ctx.now),
            Message::ControlOutput {
                vc, from, value, ..
            } => {
                if vc != self.core.vc {
                    return;
                }
                self.core.heard_from(from, ctx.now);
                if let Some(mean_dev) = self.core.observe_peer_output(from, value, ctx.now) {
                    if self.core.pending_alert.is_none() {
                        self.core.pending_alert = Some(from);
                        ctx.trace.log(
                            ctx.now,
                            "health",
                            format!(
                                "{} confirmed deviation on {from} (mean {mean_dev:.1})",
                                ctx.id
                            ),
                        );
                    }
                }
            }
            Message::Reconfig {
                vc,
                promote,
                demote,
            } => {
                if vc == self.core.vc {
                    self.core
                        .apply_reconfig(promote, demote, ctx.now, ctx.label, ctx.trace);
                }
            }
            // Capsule fragments are reassembled by the engine's transfer
            // plane, not by the behavior layer.
            Message::FaultAlert { .. }
            | Message::FailSafe { .. }
            | Message::ActuateFwd { .. }
            | Message::CapsuleChunk { .. } => {}
        }
    }

    fn on_timer(&mut self, timer: Timer, ctx: &mut NodeCtx<'_>) {
        match timer {
            Timer::TaskDone => self.core.run_capsule(ctx.now, ctx.rng, ctx.trace),
        }
    }

    fn controller_core(&self) -> Option<&ControllerCore> {
        Some(&self.core)
    }

    fn controller_core_mut(&mut self) -> Option<&mut ControllerCore> {
        Some(&mut self.core)
    }

    fn into_controller_core(self: Box<Self>) -> Option<ControllerCore> {
        Some(self.core)
    }
}
