//! Per-role node behaviors.
//!
//! One module per role; each implements
//! [`NodeBehavior`](crate::runtime::behavior::NodeBehavior) over its own
//! state only. Cross-node concerns (arbitration, migration, energy,
//! delivery) live in the driver.

mod actuator;
mod controller;
mod gateway;
mod head;
mod relay;
mod sensor;

pub use actuator::{ActuationGate, ActuatorNode};
pub use controller::{ControllerCore, ControllerNode, ReplicaParams};
pub use gateway::GatewayNode;
pub use head::{HeadNode, HeadPlane, CONTROL_PLANE_REPEATS};
pub use relay::{RelayCore, RelayNode};
pub use sensor::SensorNode;
