//! Sensor nodes: receive HIL downlinks, publish timestamped PVs.

use crate::runtime::behavior::{NodeBehavior, NodeCtx};
use crate::runtime::topo::{FlowKind, VcId};
use crate::runtime::Message;

/// A sensor node publishing one plant signal of one Virtual Component.
pub struct SensorNode {
    vc: VcId,
    tag: u8,
    latest: Option<f64>,
}

impl SensorNode {
    /// A sensor for signal `tag` of VC `vc` (tag 0 is the VC's focus PV).
    #[must_use]
    pub fn new(vc: VcId, tag: u8) -> Self {
        SensorNode {
            vc,
            tag,
            latest: None,
        }
    }
}

impl NodeBehavior for SensorNode {
    fn take_outgoing(&mut self, kind: FlowKind, ctx: &mut NodeCtx<'_>) -> Option<Message> {
        match kind {
            FlowKind::SensorPublish { vc, tag } if vc == self.vc && tag == self.tag => {
                // Freshness stamp: the sensor publishes "now" (on hardware
                // it samples right before its slot).
                Some(Message::SensorValue {
                    vc,
                    tag,
                    value: self.latest?,
                    sampled_at: ctx.now,
                })
            }
            _ => None,
        }
    }

    fn on_deliver(&mut self, msg: &Message, _ctx: &mut NodeCtx<'_>) {
        if let Message::SensorValue { vc, tag, value, .. } = *msg {
            if vc == self.vc && tag == self.tag {
                self.latest = Some(value);
            }
        }
    }
}
