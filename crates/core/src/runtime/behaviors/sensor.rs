//! Sensor nodes: receive HIL downlinks, publish timestamped PVs.

use crate::runtime::behavior::{NodeBehavior, NodeCtx};
use crate::runtime::topo::FlowKind;
use crate::runtime::Message;

/// A sensor node publishing one plant signal.
pub struct SensorNode {
    tag: u8,
    latest: Option<f64>,
}

impl SensorNode {
    /// A sensor for signal `tag` (0 is the focus PV).
    #[must_use]
    pub fn new(tag: u8) -> Self {
        SensorNode { tag, latest: None }
    }
}

impl NodeBehavior for SensorNode {
    fn take_outgoing(&mut self, kind: FlowKind, ctx: &mut NodeCtx<'_>) -> Option<Message> {
        match kind {
            FlowKind::SensorPublish { tag } if tag == self.tag => {
                // Freshness stamp: the sensor publishes "now" (on hardware
                // it samples right before its slot).
                Some(Message::SensorValue {
                    tag,
                    value: self.latest?,
                    sampled_at: ctx.now,
                })
            }
            _ => None,
        }
    }

    fn on_deliver(&mut self, msg: &Message, _ctx: &mut NodeCtx<'_>) {
        if let Message::SensorValue { tag, value, .. } = *msg {
            if tag == self.tag {
                self.latest = Some(value);
            }
        }
    }
}
