//! The Virtual Component's head node.
//!
//! The head owns the control plane: it hosts a monitor replica of the
//! focus law (so cold-standby deployments still detect faults), receives
//! alerts, and — via the driver, which arbitrates with a global view
//! standing in for the members' health publications — commits
//! reconfigurations broadcast in its slot.

use evm_netsim::NodeId;

use crate::runtime::behavior::{Effect, NodeBehavior, NodeCtx, Timer};
use crate::runtime::behaviors::ControllerCore;
use crate::runtime::topo::FlowKind;
use crate::runtime::Message;

/// Each control-plane command is rebroadcast this many cycles; at 40 %
/// frame loss the probability every copy is lost is 0.4^20 ≈ 1e-8.
pub const CONTROL_PLANE_REPEATS: u32 = 20;

/// The head's control-plane state.
#[derive(Debug, Default)]
pub struct HeadPlane {
    /// Pending control-plane commands with a retransmission budget (the
    /// fault plane must survive lossy links; receivers apply commands
    /// idempotently).
    pub pending_cmds: Vec<(Message, u32)>,
    /// An arbitration decision is scheduled and not yet committed.
    pub decision_pending: bool,
    /// Nodes with confirmed faults — never candidates for promotion.
    pub suspected: Vec<NodeId>,
}

impl HeadPlane {
    /// Queues a command for rebroadcast.
    pub fn push_cmd(&mut self, msg: Message) {
        self.pending_cmds.push((msg, CONTROL_PLANE_REPEATS));
    }
}

/// The head node: monitor replica + control plane.
pub struct HeadNode {
    monitor: ControllerCore,
    plane: HeadPlane,
}

impl HeadNode {
    /// Builds the head around its monitor replica.
    #[must_use]
    pub fn new(monitor: ControllerCore) -> Self {
        HeadNode {
            monitor,
            plane: HeadPlane::default(),
        }
    }
}

impl NodeBehavior for HeadNode {
    fn has_cycle_hook(&self) -> bool {
        true
    }

    fn on_cycle_start(&mut self, ctx: &mut NodeCtx<'_>) {
        // The monitor's heartbeat check short-circuits the alert frame (it
        // would be addressed to this very node).
        if self.monitor.watched_silent(ctx.now) && !self.plane.decision_pending {
            let suspect = self.monitor.watched();
            ctx.trace.log(
                ctx.now,
                "health",
                format!("{} heartbeat timeout on {suspect}", ctx.id),
            );
            ctx.effects.push(Effect::Alert {
                suspect,
                observer: ctx.id,
            });
        }
    }

    fn take_outgoing(&mut self, kind: FlowKind, _ctx: &mut NodeCtx<'_>) -> Option<Message> {
        match kind {
            FlowKind::ControlPlane { vc } if vc == self.monitor.vc => {
                let (msg, remaining) = self.plane.pending_cmds.first_mut()?;
                let out = msg.clone();
                *remaining -= 1;
                if *remaining == 0 {
                    self.plane.pending_cmds.remove(0);
                }
                Some(out)
            }
            _ => None,
        }
    }

    fn on_deliver(&mut self, msg: &Message, ctx: &mut NodeCtx<'_>) {
        match *msg {
            Message::SensorValue {
                vc,
                tag,
                value,
                sampled_at,
            } => {
                // The monitor computes on its own VC's focus PV only.
                if vc != self.monitor.vc || tag != 0 {
                    return;
                }
                if let Some(wcet) = self.monitor.on_pv(value, sampled_at) {
                    ctx.timers.push((ctx.now + wcet, Timer::TaskDone));
                }
            }
            Message::Heartbeat { from } => self.monitor.heard_from(from, ctx.now),
            Message::ControlOutput {
                vc, from, value, ..
            } => {
                if vc != self.monitor.vc {
                    return;
                }
                self.monitor.heard_from(from, ctx.now);
                if let Some(mean_dev) = self.monitor.observe_peer_output(from, value, ctx.now) {
                    ctx.trace.log(
                        ctx.now,
                        "health",
                        format!(
                            "{} confirmed deviation on {from} (mean {mean_dev:.1})",
                            ctx.id
                        ),
                    );
                    ctx.effects.push(Effect::Alert {
                        suspect: from,
                        observer: ctx.id,
                    });
                }
            }
            Message::FaultAlert { suspect, observer } => {
                ctx.effects.push(Effect::Alert { suspect, observer });
            }
            Message::Reconfig { .. }
            | Message::FailSafe { .. }
            | Message::ActuateFwd { .. }
            | Message::CapsuleChunk { .. } => {}
        }
    }

    fn on_timer(&mut self, timer: Timer, ctx: &mut NodeCtx<'_>) {
        match timer {
            Timer::TaskDone => self.monitor.run_capsule(ctx.now, ctx.rng, ctx.trace),
        }
    }

    fn controller_core(&self) -> Option<&ControllerCore> {
        Some(&self.monitor)
    }

    fn controller_core_mut(&mut self) -> Option<&mut ControllerCore> {
        Some(&mut self.monitor)
    }

    fn into_controller_core(self: Box<Self>) -> Option<ControllerCore> {
        Some(self.monitor)
    }

    fn head_plane_mut(&mut self) -> Option<&mut HeadPlane> {
        Some(&mut self.plane)
    }
}
