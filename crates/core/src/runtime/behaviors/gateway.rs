//! The gateway node: ModBus bridge between the plant and the radio.

use evm_sim::SimTime;

use crate::runtime::behavior::{Effect, NodeBehavior, NodeCtx};
use crate::runtime::behaviors::ActuationGate;
use crate::runtime::topo::{FlowKind, VcId};
use crate::runtime::Message;

/// The gateway: serves HIL downlinks from the plant's register map for
/// every hosted Virtual Component, applies forwarded actuations to each
/// VC's register, and — for VCs without an actuator node — gates that
/// VC's controller outputs itself. All per-VC state is indexed by
/// [`VcId`].
pub struct GatewayNode {
    /// Gaussian measurement noise added to each VC's focus PV read.
    noise_std: f64,
    /// Actuation holding register per VC.
    act_registers: Vec<u16>,
    /// Per-VC gate; `Some` when this gateway is that VC's actuation
    /// endpoint (no actuator node in the VC).
    gates: Vec<Option<ActuationGate>>,
}

impl GatewayNode {
    /// Builds the gateway. `act_registers[vc]` is VC `vc`'s actuation
    /// holding register; `gates[vc]` is `Some` where the gateway is the
    /// actuation endpoint.
    #[must_use]
    pub fn new(noise_std: f64, act_registers: Vec<u16>, gates: Vec<Option<ActuationGate>>) -> Self {
        debug_assert_eq!(act_registers.len(), gates.len());
        GatewayNode {
            noise_std,
            act_registers,
            gates,
        }
    }

    /// Writes an accepted actuation to the VC's plant register and
    /// accounts for it.
    fn actuate(&self, vc: VcId, value: f64, pv_sampled_at: SimTime, ctx: &mut NodeCtx<'_>) {
        let register = self.act_registers[vc as usize];
        let _ = ctx.regmap.write_scaled(ctx.plant, register, value);
        ctx.effects.push(Effect::Actuated { vc, pv_sampled_at });
    }
}

impl NodeBehavior for GatewayNode {
    fn take_outgoing(&mut self, kind: FlowKind, ctx: &mut NodeCtx<'_>) -> Option<Message> {
        match kind {
            FlowKind::HilDownlink { vc, tag } => {
                let register = *ctx.vcs.vc(vc).sensor_registers.get(tag as usize)?;
                let mut v = ctx.regmap.read_scaled(ctx.plant, register).ok()?;
                // Measurement noise applies at the focus PV interface.
                if tag == 0 && self.noise_std > 0.0 {
                    v += ctx.rng.normal(0.0, self.noise_std);
                }
                Some(Message::SensorValue {
                    vc,
                    tag,
                    value: v,
                    sampled_at: ctx.now,
                })
            }
            _ => None,
        }
    }

    fn on_deliver(&mut self, msg: &Message, ctx: &mut NodeCtx<'_>) {
        match *msg {
            Message::ActuateFwd {
                vc,
                value,
                pv_sampled_at,
            } => self.actuate(vc, value, pv_sampled_at, ctx),
            // Endpoint duties, only for VCs without an actuator node.
            Message::ControlOutput {
                vc,
                from,
                value,
                pv_sampled_at,
            } => {
                if let Some(Some(gate)) = self.gates.get(vc as usize) {
                    if let Some(v) = gate.accept(from, value) {
                        self.actuate(vc, v, pv_sampled_at, ctx);
                    }
                }
            }
            Message::FailSafe { vc, value } => {
                if let Some(Some(gate)) = self.gates.get_mut(vc as usize) {
                    if gate.engage_failsafe() {
                        ctx.trace
                            .log(ctx.now, "vc", format!("actuator fail-safe at {value}%"));
                        self.actuate(vc, value, ctx.now, ctx);
                    }
                }
            }
            Message::Reconfig { vc, promote, .. } => {
                if let Some(Some(gate)) = self.gates.get_mut(vc as usize) {
                    gate.on_reconfig(promote);
                }
            }
            _ => {}
        }
    }
}
