//! The gateway node: ModBus bridge between the plant and the radio.

use evm_sim::SimTime;

use crate::runtime::behavior::{Effect, NodeBehavior, NodeCtx};
use crate::runtime::behaviors::ActuationGate;
use crate::runtime::topo::FlowKind;
use crate::runtime::Message;

/// The gateway: serves HIL downlinks from the plant's register map,
/// applies forwarded actuations, and — in topologies without an actuator
/// node — gates controller outputs itself.
pub struct GatewayNode {
    /// Gaussian measurement noise added to the focus PV read.
    noise_std: f64,
    /// The focus actuation holding register.
    act_register: u16,
    /// Present when this gateway is the actuation endpoint (no actuator
    /// node in the topology).
    gate: Option<ActuationGate>,
}

impl GatewayNode {
    /// Builds the gateway. `gate` makes it the actuation endpoint.
    #[must_use]
    pub fn new(noise_std: f64, act_register: u16, gate: Option<ActuationGate>) -> Self {
        GatewayNode {
            noise_std,
            act_register,
            gate,
        }
    }

    /// Writes an accepted actuation to the plant and accounts for it.
    fn actuate(&self, value: f64, pv_sampled_at: SimTime, ctx: &mut NodeCtx<'_>) {
        let _ = ctx.regmap.write_scaled(ctx.plant, self.act_register, value);
        ctx.effects.push(Effect::Actuated { pv_sampled_at });
    }
}

impl NodeBehavior for GatewayNode {
    fn take_outgoing(&mut self, kind: FlowKind, ctx: &mut NodeCtx<'_>) -> Option<Message> {
        match kind {
            FlowKind::HilDownlink { tag } => {
                let register = *ctx.roles.sensor_registers.get(tag as usize)?;
                let mut v = ctx.regmap.read_scaled(ctx.plant, register).ok()?;
                // Measurement noise applies at the focus PV interface.
                if tag == 0 && self.noise_std > 0.0 {
                    v += ctx.rng.normal(0.0, self.noise_std);
                }
                Some(Message::SensorValue {
                    tag,
                    value: v,
                    sampled_at: ctx.now,
                })
            }
            _ => None,
        }
    }

    fn on_deliver(&mut self, msg: &Message, ctx: &mut NodeCtx<'_>) {
        match *msg {
            Message::ActuateFwd {
                value,
                pv_sampled_at,
            } => self.actuate(value, pv_sampled_at, ctx),
            // Endpoint duties, only when no actuator node exists.
            Message::ControlOutput {
                from,
                value,
                pv_sampled_at,
            } => {
                if let Some(gate) = &self.gate {
                    if let Some(v) = gate.accept(from, value) {
                        self.actuate(v, pv_sampled_at, ctx);
                    }
                }
            }
            Message::FailSafe { value } => {
                if let Some(gate) = &mut self.gate {
                    if gate.engage_failsafe() {
                        ctx.trace
                            .log(ctx.now, "vc", format!("actuator fail-safe at {value}%"));
                        self.actuate(value, ctx.now, ctx);
                    }
                }
            }
            Message::Reconfig { promote, .. } => {
                if let Some(gate) = &mut self.gate {
                    gate.on_reconfig(promote);
                }
            }
            _ => {}
        }
    }
}
