//! The node registry: behaviors keyed by [`NodeId`].

use evm_netsim::NodeId;

use crate::runtime::behavior::NodeBehavior;
use crate::runtime::behaviors::{ControllerCore, HeadPlane};

/// Sentinel for "id not registered" in the sparse index.
const NO_SLOT: u32 = u32::MAX;

/// Owns every node behavior, with a deterministic iteration order (the
/// topology's node order) so event handling never depends on hash-map
/// iteration.
///
/// Storage is dense: behaviors live in a `Vec` parallel to the
/// registration order, reached through a sparse `NodeId → slot` index —
/// a lookup is two array reads, not a hash. The registry sits on the
/// engine's hottest dispatch path (once per occupied slot and once per
/// delivery), where hashing every id dominated the lookup cost.
#[derive(Default)]
pub struct NodeRegistry {
    order: Vec<NodeId>,
    /// `NodeId::raw() → slot` in `behaviors`; `NO_SLOT` if unregistered.
    index: Vec<u32>,
    /// Parallel to `order`; `None` while a behavior is lifted out for
    /// rehydration ([`NodeRegistry::take`]).
    behaviors: Vec<Option<Box<dyn NodeBehavior>>>,
}

impl NodeRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        NodeRegistry::default()
    }

    #[inline]
    fn slot(&self, id: NodeId) -> Option<usize> {
        match self.index.get(id.raw() as usize) {
            Some(&s) if s != NO_SLOT => Some(s as usize),
            _ => None,
        }
    }

    /// Registers a behavior for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is already registered.
    pub fn insert(&mut self, id: NodeId, behavior: Box<dyn NodeBehavior>) {
        assert!(self.slot(id).is_none(), "duplicate behavior for {id}");
        let raw = id.raw() as usize;
        if raw >= self.index.len() {
            self.index.resize(raw + 1, NO_SLOT);
        }
        self.index[raw] = u32::try_from(self.order.len()).expect("registry fits u32");
        self.order.push(id);
        self.behaviors.push(Some(behavior));
    }

    /// Node ids in registration (topology) order.
    #[must_use]
    pub fn ids(&self) -> &[NodeId] {
        &self.order
    }

    /// The behavior for `id`, if registered.
    #[must_use]
    pub fn get(&self, id: NodeId) -> Option<&dyn NodeBehavior> {
        self.slot(id).and_then(|s| self.behaviors[s].as_deref())
    }

    /// Mutable access to the behavior for `id`, if registered.
    pub fn get_mut(&mut self, id: NodeId) -> Option<&mut (dyn NodeBehavior + 'static)> {
        match self.slot(id) {
            Some(s) => self.behaviors[s].as_deref_mut(),
            None => None,
        }
    }

    /// The controller replica hosted by `id` (controller nodes and the
    /// head's monitor).
    #[must_use]
    pub fn controller(&self, id: NodeId) -> Option<&ControllerCore> {
        self.get(id).and_then(NodeBehavior::controller_core)
    }

    /// Mutable controller replica access.
    pub fn controller_mut(&mut self, id: NodeId) -> Option<&mut ControllerCore> {
        self.get_mut(id).and_then(|n| n.controller_core_mut())
    }

    /// The head's control plane.
    pub fn head_plane_mut(&mut self, head: NodeId) -> Option<&mut HeadPlane> {
        self.get_mut(head).and_then(|n| n.head_plane_mut())
    }

    /// Lifts a behavior out for rehydration (the registration order is
    /// kept — the id stays a member of the registry and must be given a
    /// replacement via [`NodeRegistry::put_back`]).
    pub fn take(&mut self, id: NodeId) -> Option<Box<dyn NodeBehavior>> {
        self.slot(id).and_then(|s| self.behaviors[s].take())
    }

    /// Re-seats a behavior taken with [`NodeRegistry::take`] (possibly a
    /// different type wrapping the same state — how a controller becomes
    /// a head after re-election).
    ///
    /// # Panics
    ///
    /// Panics if `id` was never registered or still holds a behavior.
    pub fn put_back(&mut self, id: NodeId, behavior: Box<dyn NodeBehavior>) {
        let s = self
            .slot(id)
            .unwrap_or_else(|| panic!("put_back rehydrates registered ids only: {id}"));
        assert!(
            self.behaviors[s].replace(behavior).is_none(),
            "duplicate behavior for {id}"
        );
    }
}
