//! The node registry: behaviors keyed by [`NodeId`].

use std::collections::HashMap;

use evm_netsim::NodeId;

use crate::runtime::behavior::NodeBehavior;
use crate::runtime::behaviors::{ControllerCore, HeadPlane};

/// Owns every node behavior, with a deterministic iteration order (the
/// topology's node order) so event handling never depends on hash-map
/// iteration.
#[derive(Default)]
pub struct NodeRegistry {
    order: Vec<NodeId>,
    nodes: HashMap<NodeId, Box<dyn NodeBehavior>>,
}

impl NodeRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        NodeRegistry::default()
    }

    /// Registers a behavior for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is already registered.
    pub fn insert(&mut self, id: NodeId, behavior: Box<dyn NodeBehavior>) {
        assert!(
            self.nodes.insert(id, behavior).is_none(),
            "duplicate behavior for {id}"
        );
        self.order.push(id);
    }

    /// Node ids in registration (topology) order.
    #[must_use]
    pub fn ids(&self) -> &[NodeId] {
        &self.order
    }

    /// The behavior for `id`, if registered.
    pub fn get_mut(&mut self, id: NodeId) -> Option<&mut dyn NodeBehavior> {
        match self.nodes.get_mut(&id) {
            Some(b) => Some(&mut **b),
            None => None,
        }
    }

    /// The controller replica hosted by `id` (controller nodes and the
    /// head's monitor).
    #[must_use]
    pub fn controller(&self, id: NodeId) -> Option<&ControllerCore> {
        self.nodes.get(&id).and_then(|n| n.controller_core())
    }

    /// Mutable controller replica access.
    pub fn controller_mut(&mut self, id: NodeId) -> Option<&mut ControllerCore> {
        self.nodes
            .get_mut(&id)
            .and_then(|n| n.controller_core_mut())
    }

    /// The head's control plane.
    pub fn head_plane_mut(&mut self, head: NodeId) -> Option<&mut HeadPlane> {
        self.nodes.get_mut(&head).and_then(|n| n.head_plane_mut())
    }

    /// Lifts a behavior out for rehydration (the registration order is
    /// kept — the id stays a member of the registry and must be given a
    /// replacement via [`NodeRegistry::put_back`]).
    pub fn take(&mut self, id: NodeId) -> Option<Box<dyn NodeBehavior>> {
        self.nodes.remove(&id)
    }

    /// Re-seats a behavior taken with [`NodeRegistry::take`] (possibly a
    /// different type wrapping the same state — how a controller becomes
    /// a head after re-election).
    ///
    /// # Panics
    ///
    /// Panics if `id` was never registered or still holds a behavior.
    pub fn put_back(&mut self, id: NodeId, behavior: Box<dyn NodeBehavior>) {
        assert!(
            self.order.contains(&id),
            "put_back rehydrates registered ids only: {id}"
        );
        assert!(
            self.nodes.insert(id, behavior).is_none(),
            "duplicate behavior for {id}"
        );
    }
}
