//! The co-simulation driver: the deterministic slot-pipeline engine.
//!
//! A thin event loop that owns the shared world — plant, channel,
//! schedule, energy meters, event queue, the Virtual Component records —
//! and drives per-role [`NodeBehavior`]s through it. All role dispatch is
//! resolved from the scenario's [`VcMap`]; no node id is hard-coded
//! anywhere in the runtime. Every piece of per-loop state (component
//! records, QoS tallies, error traces, fault detectors) is keyed by
//! [`VcId`], so several Virtual Components share one RT-Link cycle
//! without observing each other.
//!
//! Two slot-stepping strategies share one slot body
//! ([`SlotStepping`]): the legacy driver arms one `Ev::Slot` per slot
//! unconditionally, while the event-driven cursor walks a per-epoch
//! [`SlotTable`] and jumps straight to the next occupied slot or cycle
//! boundary, reserving the queue sequence numbers the legacy re-arms
//! would have consumed so both strategies produce byte-identical runs.
//! The steady state is allocation-free: node state lives in dense
//! topology-indexed tables, labels are interned at setup, and dispatch
//! effects/timers drain into reusable scratch buffers.
//!
//! Construction lives in [`super::setup`]; the heads' fault plane
//! (arbitration, migration, failover commits) in [`super::failover`].

use std::collections::HashMap;
use std::mem;

use evm_mac::rtlink::{RtLink, SlotSchedule};
use evm_netsim::{Battery, Channel, EnergyMeter, Frame, FrameKind, NodeId, RadioState, Topology};
use evm_plant::{GasPlant, LocalController, Plant, RegisterMap};
use evm_sim::{EventQueue, SimRng, SimTime, TimeSeries, Trace};

use crate::component::VirtualComponent;
use crate::metrics::{NodeEnergy, RunMeta, RunResult, VcRunStats};
use crate::runtime::behavior::{Effect, NodeBehavior, NodeCtx, Timer};
use crate::runtime::behaviors::RelayCore;
use crate::runtime::plan::CyclePlan;
use crate::runtime::reconfig::{ReconfigState, ReroutePolicy};
use crate::runtime::registry::NodeRegistry;
use crate::runtime::scenario::{CyclePlanMode, SlotStepping};
use crate::runtime::topo::{FlowKind, RoleMap, VcId, VcMap};
use crate::runtime::{Message, Scenario};

/// Sentinel in [`Engine::node_index`] for raw ids outside the topology.
pub(super) const NO_NODE: u32 = u32::MAX;

/// Driver events. The fault plane (`super::failover`) schedules the
/// arbitration/migration ones.
#[derive(Debug)]
pub(super) enum Ev {
    Slot,
    PlantStep,
    Sample,
    Deliver {
        to: NodeId,
        from: NodeId,
        msg: Message,
    },
    /// One transmission's whole delivered-listener set, folded into a
    /// single event carrying one shared message image (planned mode).
    /// `entry` indexes the generation-`gen` plan; bit `i` of `mask`
    /// selects listener `i` of that entry. Reserves the sequence numbers
    /// of the per-listener `Deliver`s it replaces, so ordering against
    /// every other event is identical to the direct path.
    Broadcast {
        gen: u64,
        entry: u32,
        mask: u64,
        msg: Message,
    },
    NodeTimer {
        node: NodeId,
        timer: Timer,
    },
    InjectFault,
    InjectBackupFault,
    CrashPrimary {
        vc: VcId,
    },
    HeadDecision {
        suspect: NodeId,
    },
    MigrationDone {
        target: NodeId,
        suspect: NodeId,
    },
    DormantDemote {
        target: NodeId,
    },
    /// Scripted reconfiguration request: recompute the epoch (with the
    /// current down set, possibly empty) and commit it at the next cycle
    /// boundary.
    Reconfigure,
}

/// One scheduled transmission, with its flow semantic resolved once per
/// epoch instead of per slot.
#[derive(Debug)]
pub(super) struct SlotEntry {
    pub(super) owner: NodeId,
    pub(super) kind: Option<FlowKind>,
    pub(super) listeners: Vec<NodeId>,
}

/// Per-epoch slot occupancy: the schedule flattened into contiguous
/// entry ranges per slot, plus a next-occupied-slot index so the
/// event-driven cursor can jump over empty stretches in O(1). Rebuilt
/// whenever an epoch commits (`schedule` / `flow_kinds` change).
#[derive(Debug, Default)]
pub(super) struct SlotTable {
    /// `entries` range per slot (`slots_per_cycle` rows).
    pub(super) per_slot: Vec<(u32, u32)>,
    pub(super) entries: Vec<SlotEntry>,
    /// `next_occ[s]` = smallest occupied slot `>= s`, or
    /// `slots_per_cycle` if none; `slots_per_cycle + 1` rows so the
    /// lookup from `s + 1` stays in bounds.
    next_occ: Vec<u32>,
}

impl SlotTable {
    /// Flattens `schedule` + `flow_kinds` for one epoch.
    pub(super) fn build(
        spc: usize,
        schedule: &SlotSchedule,
        flow_kinds: &HashMap<(usize, NodeId), FlowKind>,
    ) -> Self {
        let mut per_slot = Vec::with_capacity(spc);
        let mut entries = Vec::new();
        for slot in 0..spc {
            let lo = u32::try_from(entries.len()).expect("schedule fits u32");
            for a in schedule.in_slot(slot) {
                entries.push(SlotEntry {
                    owner: a.owner,
                    kind: flow_kinds.get(&(slot, a.owner)).copied(),
                    listeners: a.listeners.clone(),
                });
            }
            let hi = u32::try_from(entries.len()).expect("schedule fits u32");
            per_slot.push((lo, hi));
        }
        let mut next_occ = vec![u32::try_from(spc).expect("slot count fits u32"); spc + 1];
        for slot in (0..spc).rev() {
            next_occ[slot] = if per_slot[slot].0 != per_slot[slot].1 {
                u32::try_from(slot).expect("slot fits u32")
            } else {
                next_occ[slot + 1]
            };
        }
        SlotTable {
            per_slot,
            entries,
            next_occ,
        }
    }

    fn is_occupied(&self, slot: usize) -> bool {
        self.per_slot[slot].0 != self.per_slot[slot].1
    }

    /// Virtual-slot distance from unoccupied `slot` to the next stop:
    /// the next occupied slot in this cycle, else the cycle boundary
    /// (slot 0 always fires — sync plus cycle-start housekeeping).
    fn slots_until_stop(&self, slot: usize) -> u64 {
        let spc = self.per_slot.len() as u64;
        let next = u64::from(self.next_occ[slot + 1]).min(spc);
        next - slot as u64
    }
}

/// The co-simulation engine. Build with [`Engine::new`], run with
/// [`Engine::run`] (or incrementally with [`Engine::run_until`] +
/// [`Engine::finalize`]).
pub struct Engine {
    pub(super) scenario: Scenario,
    pub(super) plant: GasPlant,
    pub(super) regmap: RegisterMap,
    pub(super) local_loops: Vec<LocalController>,
    pub(super) channel: Channel,
    pub(super) topology: Topology,
    pub(super) vcs: VcMap,
    pub(super) rtlink: RtLink,
    pub(super) schedule: SlotSchedule,
    /// `(slot, owner) → flow semantic` for every scheduled flow (the
    /// cold, inspectable copy; the hot loop reads [`Engine::slot_table`]).
    pub(super) flow_kinds: HashMap<(usize, NodeId), FlowKind>,
    /// Store-and-forward state per forwarding node ([`FlowKind::Relay`]
    /// slots transmit from here, not from the node's behavior), indexed
    /// like [`Engine::meters`].
    pub(super) relay_cores: Vec<Option<RelayCore>>,
    /// Nodes carrying forwarding jobs in the committed epoch, id-sorted.
    pub(super) forwarders: Vec<NodeId>,
    /// One Virtual Component record per hosted loop, indexed by `VcId`.
    pub(super) components: Vec<VirtualComponent>,
    pub(super) rng: SimRng,
    pub(super) trace: Trace,
    pub(super) queue: EventQueue<Ev>,
    pub(super) now: SimTime,
    pub(super) registry: NodeRegistry,

    pub(super) series: HashMap<String, TimeSeries>,
    pub(super) mode_series: Vec<(NodeId, TimeSeries)>,
    /// Per-VC per-cycle regulation-error traces (`Err.<loop>` series):
    /// `(pv tag, setpoint, series)`, indexed by `VcId`.
    pub(super) err_series: Vec<(String, f64, TimeSeries)>,
    /// Radio energy meters, one per topology node, in topology order.
    pub(super) meters: Vec<EnergyMeter>,
    /// Topology node ids in topology order — the dense index space
    /// shared by [`Engine::meters`], [`Engine::relay_cores`] and
    /// [`Engine::labels`].
    pub(super) node_ids: Vec<NodeId>,
    /// Raw id → dense index ([`NO_NODE`] for ids outside the topology).
    pub(super) node_index: Vec<u32>,
    /// Interned node labels, by dense index — `NodeCtx.label` borrows
    /// from here instead of allocating per dispatch.
    pub(super) labels: Vec<String>,
    /// Per-epoch slot occupancy for the hot loop (see [`SlotTable`]).
    pub(super) slot_table: SlotTable,
    /// The epoch-compiled cycle plan the planned slot body runs from
    /// (see [`super::plan`]); rebuilt wherever [`Engine::slot_table`] is.
    pub(super) plan: CyclePlan,
    /// The retired previous plan generation — in-flight folded
    /// broadcasts pushed just before an epoch commit resolve here.
    pub(super) plan_prev: CyclePlan,
    /// Dispatch scratch: effects drain here and are reused, so the
    /// steady state never allocates.
    pub(super) fx_effects: Vec<Effect>,
    /// Dispatch scratch for timers (see [`Engine::fx_effects`]).
    pub(super) fx_timers: Vec<(SimTime, Timer)>,
    /// Heartbeat-scan scratch: the watch set (heads + forwarders).
    pub(super) scratch_watch: Vec<NodeId>,
    /// Heartbeat-scan scratch: nodes marked down this cycle.
    pub(super) scratch_down: Vec<NodeId>,
    /// Event-driven slot cursor: index of the next virtual slot event.
    pub(super) vslot_k: u64,
    /// Boundary time of the next virtual slot event.
    pub(super) vslot_time: SimTime,
    /// Queue sequence number reserved for the next virtual slot event —
    /// keeps same-instant ordering against real queue entries identical
    /// to the legacy `Ev::Slot` chain.
    pub(super) vslot_seq: u64,
    /// Per-VC QoS tallies, indexed by `VcId` — the single source of
    /// truth; the global `RunResult` counters are derived from these at
    /// the end of the run.
    pub(super) vc_stats: Vec<VcRunStats>,
    /// The reconfiguration plane: liveness ledger, committed/staged
    /// epochs, reroute timestamps (see [`super::reconfig`]).
    pub(super) reconfig: ReconfigState,
    /// The authoritative capsule per VC (what a live migration ships),
    /// indexed by `VcId`. Version bumps happen at migration start.
    pub(super) capsules: Vec<crate::bytecode::Capsule>,
    /// The in-flight capsule transfer, if any (see [`super::xfer`]).
    pub(super) xfer: Option<crate::runtime::xfer::ActiveTransfer>,
    /// Completed capsule migrations, in completion order.
    pub(super) migrations: Vec<crate::metrics::MigrationRecord>,
}

impl Engine {
    /// The slot schedule (for inspection/tests).
    #[must_use]
    pub fn schedule(&self) -> &SlotSchedule {
        &self.schedule
    }

    /// VC 0's component record (for inspection/tests; see
    /// [`Engine::components`] for the whole pool).
    #[must_use]
    pub fn component(&self) -> &VirtualComponent {
        &self.components[0]
    }

    /// Every hosted Virtual Component's record, indexed by `VcId`.
    #[must_use]
    pub fn components(&self) -> &[VirtualComponent] {
        &self.components
    }

    /// VC 0's role-resolved addressing (for inspection/tests; see
    /// [`Engine::vc_map`] for all VCs).
    #[must_use]
    pub fn roles(&self) -> &RoleMap {
        self.vcs.vc(0)
    }

    /// Role-resolved addressing for every hosted VC.
    #[must_use]
    pub fn vc_map(&self) -> &VcMap {
        &self.vcs
    }

    /// The physical topology (for inspection/tests).
    #[must_use]
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The committed configuration epoch (0 until a reconfiguration).
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.reconfig.epoch
    }

    /// The nodes carrying forwarding jobs in the committed epoch, in id
    /// order (inspection/tests/benches — e.g. picking a loaded forwarder
    /// to kill without re-deriving the routing pass out of band).
    #[must_use]
    pub fn forwarding_nodes(&self) -> Vec<NodeId> {
        self.forwarders.clone()
    }

    /// The slot in which `owner` serves `kind`, if scheduled.
    #[must_use]
    pub fn slot_serving(&self, owner: NodeId, kind: FlowKind) -> Option<usize> {
        self.flow_kinds
            .iter()
            .find(|&(&(_, o), k)| o == owner && *k == kind)
            .map(|(&(slot, _), _)| slot)
    }

    /// Dense index of `id` in the topology tables, if deployed.
    #[inline]
    pub(super) fn dense_ix(&self, id: NodeId) -> Option<usize> {
        match self.node_index.get(id.raw() as usize) {
            Some(&ix) if ix != NO_NODE => Some(ix as usize),
            _ => None,
        }
    }

    /// The radio energy meter of `id`, if deployed.
    #[inline]
    pub(super) fn meter(&self, id: NodeId) -> Option<&EnergyMeter> {
        self.dense_ix(id).map(|ix| &self.meters[ix])
    }

    /// Mutable access to the radio energy meter of `id`, if deployed.
    #[inline]
    pub(super) fn meter_mut(&mut self, id: NodeId) -> Option<&mut EnergyMeter> {
        match self.dense_ix(id) {
            Some(ix) => Some(&mut self.meters[ix]),
            None => None,
        }
    }

    /// Runs the scenario to completion and returns the results.
    #[must_use]
    pub fn run(mut self) -> RunResult {
        let end = SimTime::ZERO + self.scenario.duration;
        self.run_until(end);
        self.finalize()
    }

    /// Advances the simulation up to (but excluding) `until`: every
    /// event and slot strictly before `until` is processed. The engine
    /// can be advanced again with a later horizon, or closed out with
    /// [`Engine::finalize`]; [`Engine::run`] is exactly
    /// `run_until(start + duration)` followed by `finalize()`.
    pub fn run_until(&mut self, until: SimTime) {
        match self.scenario.stepping {
            SlotStepping::Legacy => self.run_until_legacy(until),
            SlotStepping::EventDriven => self.run_until_cursor(until),
        }
    }

    /// Legacy stepping: pure event-queue pump; `Ev::Slot` re-arms itself.
    fn run_until_legacy(&mut self, until: SimTime) {
        while let Some(t) = self.queue.peek_time() {
            if t >= until {
                break;
            }
            let (t, ev) = self.queue.pop().expect("peeked event");
            self.now = t;
            self.handle(ev);
            self.debug_check_invariants();
        }
    }

    /// Event-driven stepping: the slot cursor races the queue head; the
    /// earlier of the two fires. Empty slots are batch-skipped up to the
    /// next occupied slot, cycle boundary or queue event, reserving the
    /// queue sequence numbers the legacy `Ev::Slot` re-arms would have
    /// consumed so every same-instant ordering decision is identical.
    fn run_until_cursor(&mut self, until: SimTime) {
        let dur = self.scenario.rtlink.slot_duration;
        let spc = self.scenario.rtlink.slots_per_cycle as u64;
        loop {
            let head = self.queue.peek_entry();
            let slot_first = match head {
                None => true,
                Some((qt, qseq)) => (self.vslot_time, self.vslot_seq) < (qt, qseq),
            };
            if !slot_first {
                let (qt, _) = head.expect("queue event ordered first");
                if qt >= until {
                    break;
                }
                let (t, ev) = self.queue.pop().expect("peeked event");
                self.now = t;
                self.handle(ev);
                self.debug_check_invariants();
                continue;
            }
            if self.vslot_time >= until {
                break;
            }
            let slot = usize::try_from(self.vslot_k % spc).expect("slot fits usize");
            if slot == 0 || self.slot_table.is_occupied(slot) {
                let cycle = self.vslot_k / spc;
                self.now = self.vslot_time;
                self.on_slot_body(cycle, slot);
                // The legacy driver re-arms `Ev::Slot` here; reserve the
                // same sequence number so later pushes order identically.
                self.vslot_k += 1;
                self.vslot_time += dur;
                self.vslot_seq = self.queue.skip_seq();
                self.debug_check_invariants();
            } else {
                // Batch-skip the empty stretch. Only slots that provably
                // fire before both the queue head and `until` may be
                // skipped (`.max(1)`: this slot already won the race).
                let horizon = match head {
                    Some((qt, _)) => qt.min(until),
                    None => until,
                };
                let span = horizon.saturating_since(self.vslot_time);
                let whole = span / dur;
                let n_time = if (span % dur).is_zero() {
                    whole
                } else {
                    whole + 1
                };
                let n = self.slot_table.slots_until_stop(slot).min(n_time).max(1);
                self.vslot_k += n;
                self.vslot_time += dur * n;
                self.vslot_seq = self.queue.skip_seqs(n);
            }
        }
    }

    #[inline]
    fn debug_check_invariants(&self) {
        debug_assert!(
            self.components
                .iter()
                .all(VirtualComponent::invariant_single_active),
            "single-active invariant violated at {}",
            self.now
        );
    }

    /// Closes out energy accounting (everything not spent on the radio
    /// was deep sleep) and extracts the [`RunResult`].
    #[must_use]
    pub fn finalize(self) -> RunResult {
        let total = self.scenario.duration;
        let mut meters = self.meters;
        // Labels were interned at setup in topology (= meter) order:
        // hand them over instead of re-cloning from the topology.
        let node_energy = self
            .labels
            .into_iter()
            .zip(meters.iter_mut())
            .map(|(label, m)| {
                let accounted = m.total_time();
                m.add(RadioState::Sleep, total.saturating_sub(accounted));
                let avg = m.average_current_ma();
                (
                    label,
                    NodeEnergy {
                        avg_current_ma: avg,
                        radio_duty: m.radio_duty_cycle(),
                        lifetime_years: Battery::two_aa().lifetime_years_at(avg.max(1e-9)),
                    },
                )
            })
            .collect();
        RunResult {
            meta: RunMeta {
                seed: self.scenario.seed,
                duration: self.scenario.duration,
                nodes: self.topology.nodes().len(),
                controllers: self.vcs.vcs.iter().map(|r| r.controllers.len()).sum(),
                vcs: self.vcs.n_vcs(),
            },
            series: self
                .series
                .into_iter()
                .chain(
                    self.mode_series
                        .into_iter()
                        .map(|(_, s)| (s.name().to_string(), s)),
                )
                .chain(
                    self.err_series
                        .into_iter()
                        .map(|(_, _, s)| (s.name().to_string(), s)),
                )
                .collect(),
            trace: self.trace,
            e2e_latencies: self
                .vc_stats
                .iter()
                .flat_map(|s| s.e2e_latencies.iter().copied())
                .collect(),
            deadline_misses: self.vc_stats.iter().map(|s| s.deadline_misses).sum(),
            actuations: self.vc_stats.iter().map(|s| s.actuations).sum(),
            node_energy,
            vc_stats: self.vc_stats,
            epochs: self.reconfig.epoch,
            reroute_latency: self.reconfig.reroute_latency,
            migrations: self.migrations,
        }
    }

    pub(super) fn alive(&self, node: NodeId) -> bool {
        self.scenario.fault_plan.node_alive(node, self.now)
    }

    /// Remaining battery fraction of `node` in `[0, 1]` — the one
    /// fitness both master arbitration and head election rank
    /// candidates by, so the two planes can never diverge on how they
    /// order the same nodes.
    pub(super) fn battery_fitness(&self, node: NodeId) -> f64 {
        let consumed = self.meter(node).map_or(0.0, EnergyMeter::consumed_mah);
        (1.0 - consumed / Battery::two_aa().capacity_mah()).max(0.0)
    }

    pub(super) fn label_of(&self, id: NodeId) -> String {
        match self.dense_ix(id) {
            Some(ix) => self.labels[ix].clone(),
            None => id.to_string(),
        }
    }

    /// Runs one behavior callback with a scoped [`NodeCtx`], then applies
    /// the timers and effects it produced. Returns `None` for unknown ids.
    pub(super) fn dispatch<R>(
        &mut self,
        id: NodeId,
        f: impl FnOnce(&mut dyn NodeBehavior, &mut NodeCtx<'_>) -> R,
    ) -> Option<R> {
        let mut effects = mem::take(&mut self.fx_effects);
        let mut timers = mem::take(&mut self.fx_timers);
        let out = match self.registry.get_mut(id) {
            None => {
                self.fx_effects = effects;
                self.fx_timers = timers;
                return None;
            }
            Some(node) => {
                let label: &str = match self.node_index.get(id.raw() as usize) {
                    Some(&ix) if ix != NO_NODE => &self.labels[ix as usize],
                    _ => "?",
                };
                let mut ctx = NodeCtx {
                    now: self.now,
                    id,
                    label,
                    vcs: &self.vcs,
                    rng: &mut self.rng,
                    trace: &mut self.trace,
                    plant: &mut self.plant,
                    regmap: &self.regmap,
                    effects: &mut effects,
                    timers: &mut timers,
                };
                f(node, &mut ctx)
            }
        };
        for (at, timer) in timers.drain(..) {
            self.queue.push(at, Ev::NodeTimer { node: id, timer });
        }
        self.fx_timers = timers;
        for effect in effects.drain(..) {
            self.apply_effect(effect);
        }
        self.fx_effects = effects;
        Some(out)
    }

    fn apply_effect(&mut self, effect: Effect) {
        match effect {
            Effect::Alert { suspect, observer } => self.head_on_alert(suspect, observer),
            Effect::Actuated { vc, pv_sampled_at } => {
                let e2e = self.now.saturating_since(pv_sampled_at);
                let deadline = self.rtlink.config().cycle_duration() / 3;
                let stats = &mut self.vc_stats[vc as usize];
                if e2e > deadline {
                    stats.deadline_misses += 1;
                }
                stats.e2e_latencies.push(e2e);
                stats.actuations += 1;
                self.note_actuation_for_reroute_clock();
            }
        }
    }

    fn handle(&mut self, ev: Ev) {
        match ev {
            Ev::PlantStep => self.on_plant_step(),
            Ev::Slot => self.on_slot(),
            Ev::Sample => self.on_sample(),
            Ev::Deliver { to, from, msg } => {
                // Capsule fragments belong to the engine's transfer
                // plane, not the behavior layer: consume them here.
                if let Message::CapsuleChunk { vc, seq, .. } = msg {
                    self.on_chunk_delivered(to, from, vc, seq);
                    return;
                }
                // The forwarding capability sits beside the behavior:
                // any node with routed relay jobs captures matching
                // frames for its scheduled forwarding slots, *and* still
                // consumes the frame itself (a controller lending a hop
                // also hears the PV it forwards).
                if let Some(ix) = self.dense_ix(to) {
                    if let Some(core) = self.relay_cores[ix].as_mut() {
                        core.offer(from, &msg);
                    }
                }
                self.dispatch(to, |n, ctx| n.on_deliver(&msg, ctx));
            }
            Ev::Broadcast {
                gen,
                entry,
                mask,
                msg,
            } => self.on_broadcast_delivered(gen, entry, mask, &msg),
            Ev::NodeTimer { node, timer } => {
                self.dispatch(node, |n, ctx| n.on_timer(timer, ctx));
            }
            Ev::InjectFault => self.on_inject_fault(),
            Ev::InjectBackupFault => self.on_inject_backup_fault(),
            Ev::CrashPrimary { vc } => self.on_crash_primary(vc),
            Ev::HeadDecision { suspect } => self.on_head_decision(suspect),
            Ev::MigrationDone { target, suspect } => self.on_migration_done(target, suspect),
            Ev::DormantDemote { target } => self.on_dormant_demote(target),
            Ev::Reconfigure => self.on_forced_reconfig(),
        }
    }

    fn on_plant_step(&mut self) {
        let dt = self.scenario.plant_dt;
        // Wired loops run at the gateway against the plant directly.
        let now_s = self.now.as_secs_f64();
        for c in &mut self.local_loops {
            let _ = c.poll(&mut self.plant, now_s);
        }
        self.plant.step(dt.as_secs_f64());
        self.queue.push(self.now + dt, Ev::PlantStep);
    }

    fn on_sample(&mut self) {
        for (tag, series) in &mut self.series {
            if let Some(v) = self.plant.read_tag(tag) {
                series.push(self.now, v);
            }
        }
        for (node, series) in &mut self.mode_series {
            let mode = self
                .registry
                .controller(*node)
                .expect("controller registered")
                .mode;
            series.push(self.now, mode.as_f64());
        }
        self.queue
            .push(self.now + self.scenario.sample_every, Ev::Sample);
    }

    /// Legacy stepping entry: one `Ev::Slot` per slot, re-armed
    /// unconditionally.
    fn on_slot(&mut self) {
        let (cycle, slot) = self.rtlink.slot_at(self.now);
        self.on_slot_body(cycle, slot);
        self.queue
            .push(self.now + self.scenario.rtlink.slot_duration, Ev::Slot);
    }

    /// Processes all transmissions of `slot` (in `cycle`), starting now.
    fn on_slot_body(&mut self, cycle: u64, slot: usize) {
        match self.scenario.plan {
            CyclePlanMode::Planned => self.on_slot_body_planned(cycle, slot),
            CyclePlanMode::Direct => self.on_slot_body_direct(cycle, slot),
        }
    }

    /// Direct slot body: re-resolves every slot-invariant term from the
    /// live structures per slot — the pre-plan behavior, kept verbatim
    /// as the differential oracle for [`Engine::on_slot_body_planned`].
    fn on_slot_body_direct(&mut self, cycle: u64, slot: usize) {
        if slot == 0 {
            self.on_cycle_start_direct();
        }
        // Detect window a listener pays before shutting down on an empty
        // slot: guard + PHY header airtime.
        let detect = self.scenario.rtlink.guard
            + evm_netsim::frame::airtime_for_bytes(evm_netsim::PHY_HEADER_BYTES);
        let keepalives = self.scenario.reroute == ReroutePolicy::Heartbeat;
        // Lift the table out for the slot so behaviors can be dispatched
        // while iterating it; nothing mid-slot rebuilds it (epoch commits
        // happen in `on_cycle_start`, above).
        let table = mem::take(&mut self.slot_table);
        let (lo, hi) = table.per_slot[slot];
        for e in &table.entries[lo as usize..hi as usize] {
            let owner = e.owner;
            if !self.alive(owner) {
                continue;
            }
            let kind = e.kind;
            let msg = match kind {
                // Forwarding slots transmit the captured frame from the
                // owner's relay core; everything else asks the behavior.
                Some(FlowKind::Relay { job, .. }) => match self.dense_ix(owner) {
                    Some(ix) => self.relay_cores[ix]
                        .as_mut()
                        .and_then(|c| c.take(job as usize)),
                    None => None,
                },
                // Dedicated transfer slots transmit from the engine's
                // transfer plane; idle (no migration in flight) they stay
                // silent — never keepalive-filled.
                Some(FlowKind::Transfer { vc }) => self.take_transfer_chunk(vc, owner),
                Some(k) => self
                    .dispatch(owner, |n, ctx| n.take_outgoing(k, ctx))
                    .flatten(),
                None => None,
            };
            // Under the heartbeat reroute policy, forwarders and heads
            // fill otherwise-empty owned slots with a keepalive —
            // "alive but starved" stays distinguishable from "dead", so
            // silence is sufficient evidence for marking a node down.
            let msg = match (msg, kind) {
                (Some(m), _) => Some(m),
                (None, Some(FlowKind::Relay { .. } | FlowKind::ControlPlane { .. }))
                    if keepalives =>
                {
                    Some(Message::Heartbeat { from: owner })
                }
                (None, _) => None,
            };
            let Some(msg) = msg else {
                // Empty slot: listeners still pay the detect window.
                for &l in &e.listeners {
                    if self.alive(l) {
                        if let Some(m) = self.meter_mut(l) {
                            m.add(RadioState::Listen, detect);
                        }
                    }
                }
                continue;
            };
            // Every frame actually put on the air stamps the liveness
            // ledger (the heartbeat bookkeeping behind dead-forwarder
            // detection and head re-election).
            if keepalives {
                self.reconfig.ledger.heard(owner, cycle);
            }
            let frame = Frame::new(owner, FrameKind::Broadcast, msg.payload_bytes(), 0);
            let airtime = frame.airtime();
            let guard = self.scenario.rtlink.guard;
            if let Some(m) = self.meter_mut(owner) {
                m.add(RadioState::Idle, guard);
                m.add(RadioState::Tx, airtime);
            }
            for &to in &e.listeners {
                if !self.alive(to) {
                    continue;
                }
                if let Some(m) = self.meter_mut(to) {
                    m.add(RadioState::Rx, guard + airtime);
                }
                if !self.scenario.fault_plan.link_usable(owner, to, self.now) {
                    continue;
                }
                let d = self.topology.distance(owner, to);
                if !self.channel.sample_delivery(&frame, to, d) {
                    continue;
                }
                if self.rng.chance(self.scenario.extra_loss) {
                    continue;
                }
                self.queue.push(
                    self.now + guard + airtime,
                    Ev::Deliver {
                        to,
                        from: owner,
                        msg: msg.clone(),
                    },
                );
            }
        }
        self.slot_table = table;
    }

    /// Planned slot body: runs the epoch-compiled [`CyclePlan`] — dense
    /// indices, distances, channel budgets and airtime constants all
    /// pre-resolved — consuming the RNG streams draw-for-draw like
    /// [`Engine::on_slot_body_direct`]. Delivered listener sets fold
    /// into one [`Ev::Broadcast`] per transmission (one shared message
    /// image), reserving the per-listener sequence numbers the direct
    /// path would have consumed.
    fn on_slot_body_planned(&mut self, cycle: u64, slot: usize) {
        if slot == 0 {
            self.on_cycle_start_planned();
        }
        let guard = self.scenario.rtlink.guard;
        // Lift the plan out for the slot so behaviors can be dispatched
        // while iterating it; nothing mid-slot rebuilds it (epoch commits
        // happen in `on_cycle_start_planned`, above).
        let plan = mem::take(&mut self.plan);
        let (lo, hi) = plan.per_slot[slot];
        for eix in lo..hi {
            let e = &plan.entries[eix as usize];
            let owner = e.owner;
            if !self.alive(owner) {
                continue;
            }
            let msg = match e.kind {
                Some(FlowKind::Relay { job, .. }) => self.relay_cores[e.owner_ix as usize]
                    .as_mut()
                    .and_then(|c| c.take(job as usize)),
                Some(FlowKind::Transfer { vc }) => self.take_transfer_chunk(vc, owner),
                Some(k) => self
                    .dispatch(owner, |n, ctx| n.take_outgoing(k, ctx))
                    .flatten(),
                None => None,
            };
            let msg = match msg {
                Some(m) => Some(m),
                None if e.keepalive_eligible => Some(Message::Heartbeat { from: owner }),
                None => None,
            };
            let listeners = &plan.listeners[e.lo as usize..e.hi as usize];
            let Some(msg) = msg else {
                // Empty slot: listeners still pay the detect window.
                for l in listeners {
                    if self.alive(l.id) {
                        self.meters[l.ix as usize].add(RadioState::Listen, plan.detect);
                    }
                }
                continue;
            };
            if plan.keepalives {
                self.reconfig.ledger.heard(owner, cycle);
            }
            let air_bytes = evm_netsim::PHY_HEADER_BYTES
                + evm_netsim::frame::MAC_HEADER_BYTES
                + msg.payload_bytes();
            let airtime = evm_netsim::frame::airtime_for_bytes(air_bytes);
            let m = &mut self.meters[e.owner_ix as usize];
            m.add(RadioState::Idle, guard);
            m.add(RadioState::Tx, airtime);
            // Fold delivered listeners into one event when they fit the
            // mask; wider listener sets (not seen in practice) fall back
            // to the direct path's per-listener pushes.
            let fold = listeners.len() <= 64;
            let mut mask = 0u64;
            let mut delivered = 0u64;
            for (i, l) in listeners.iter().enumerate() {
                if !self.alive(l.id) {
                    continue;
                }
                self.meters[l.ix as usize].add(RadioState::Rx, guard + airtime);
                if !self.scenario.fault_plan.link_usable(owner, l.id, self.now) {
                    continue;
                }
                let received = match l.budget {
                    Some(b) => self.channel.sample_delivery_budget(l.burst, b, air_bytes),
                    None => {
                        // Shadowed link: the realization is drawn lazily
                        // from the channel RNG, so sample unbudgeted.
                        let frame = Frame::new(owner, FrameKind::Broadcast, msg.payload_bytes(), 0);
                        self.channel.sample_delivery(&frame, l.id, l.distance)
                    }
                };
                if !received {
                    continue;
                }
                if self.rng.chance(self.scenario.extra_loss) {
                    continue;
                }
                if fold {
                    mask |= 1u64 << i;
                    delivered += 1;
                } else {
                    self.queue.push(
                        self.now + guard + airtime,
                        Ev::Deliver {
                            to: l.id,
                            from: owner,
                            msg: msg.clone(),
                        },
                    );
                }
            }
            if fold && delivered > 0 {
                self.queue.push(
                    self.now + guard + airtime,
                    Ev::Broadcast {
                        gen: plan.generation,
                        entry: eix,
                        mask,
                        msg,
                    },
                );
                if delivered > 1 {
                    // Reserve the sequence numbers of the per-listener
                    // deliveries this event folded.
                    self.queue.skip_seqs(delivered - 1);
                }
            }
        }
        self.plan = plan;
    }

    /// Delivers one folded broadcast: dispatches each masked listener in
    /// listener order, exactly as the equivalent run of per-listener
    /// [`Ev::Deliver`]s would have (their contiguous sequence numbers
    /// admit no interleaving).
    fn on_broadcast_delivered(&mut self, gen: u64, entry: u32, mask: u64, msg: &Message) {
        let current = self.plan.generation == gen;
        let plan = if current {
            mem::take(&mut self.plan)
        } else {
            mem::take(&mut self.plan_prev)
        };
        debug_assert_eq!(plan.generation, gen, "broadcast outlived its plan");
        let e = &plan.entries[entry as usize];
        let from = e.owner;
        let listeners = &plan.listeners[e.lo as usize..e.hi as usize];
        for (i, l) in listeners.iter().enumerate() {
            if mask & (1u64 << i) == 0 {
                continue;
            }
            let to = l.id;
            // Mirror the `Ev::Deliver` arm: capsule fragments go to the
            // transfer plane, everything else is offered to the relay
            // core and dispatched to the behavior.
            if let Message::CapsuleChunk { vc, seq, .. } = *msg {
                self.on_chunk_delivered(to, from, vc, seq);
                continue;
            }
            if let Some(core) = self.relay_cores[l.ix as usize].as_mut() {
                core.offer(from, msg);
            }
            self.dispatch(to, |n, ctx| n.on_deliver(msg, ctx));
        }
        if current {
            self.plan = plan;
        } else {
            self.plan_prev = plan;
        }
    }

    /// Cycle-boundary housekeeping: epoch commits and heartbeat-silence
    /// scans (the reconfiguration plane), sync reception energy, per-node
    /// cycle hooks (heartbeat silence checks), and the per-VC per-cycle
    /// regulation-error samples.
    fn on_cycle_start_direct(&mut self) {
        // The reconfiguration plane acts strictly at cycle boundaries,
        // before any transmission of the new cycle: a staged epoch
        // becomes visible here or never — frames are never torn across
        // epochs mid-cycle.
        self.reconfig_on_cycle_start();
        let sync = self.scenario.rtlink.sync_listen;
        // Registration order is topology order, so the registry scans
        // are index loops over the dense tables.
        for ix in 0..self.node_ids.len() {
            let id = self.node_ids[ix];
            if self.alive(id) {
                self.meters[ix].add(RadioState::Rx, sync);
            }
        }
        for ix in 0..self.node_ids.len() {
            let id = self.node_ids[ix];
            if self.alive(id) {
                self.dispatch(id, |n, ctx| n.on_cycle_start(ctx));
            }
        }
        // One regulation-error sample per VC per RT-Link cycle — the
        // per-cycle error trace the multi-VC isolation contract is pinned
        // on (a fault in one VC must leave every other VC's trace
        // byte-identical).
        for (pv_tag, setpoint, series) in &mut self.err_series {
            if let Some(pv) = self.plant.read_tag(pv_tag) {
                series.push(self.now, pv - *setpoint);
            }
        }
    }

    /// [`Engine::on_cycle_start_direct`] run from the plan: the meter
    /// stamp and the cycle hook fuse into one pass (byte-identical — the
    /// hooks draw no RNG and touch no meters, so stamping and
    /// dispatching interleaved observes the same state as two scans),
    /// only hook-bearing nodes are dispatched (the rest are no-ops by
    /// [`NodeBehavior::has_cycle_hook`]), and the regulation-error
    /// samples read pre-bound plant-tag handles.
    fn on_cycle_start_planned(&mut self) {
        self.reconfig_on_cycle_start();
        let sync = self.scenario.rtlink.sync_listen;
        let plan = mem::take(&mut self.plan);
        let mut next_hook = 0usize;
        for ix in 0..self.node_ids.len() {
            let hooked = plan.hooks.get(next_hook).copied()
                == Some(u32::try_from(ix).expect("dense index fits u32"));
            if hooked {
                next_hook += 1;
            }
            let id = self.node_ids[ix];
            if !self.alive(id) {
                continue;
            }
            self.meters[ix].add(RadioState::Rx, sync);
            if hooked {
                self.dispatch(id, |n, ctx| n.on_cycle_start(ctx));
            }
        }
        for ((_, setpoint, series), tag) in self.err_series.iter_mut().zip(&plan.err_tags) {
            if let Some(tag) = tag {
                series.push(self.now, self.plant.read_bound(*tag) - *setpoint);
            }
        }
        self.plan = plan;
    }
}
