//! The co-simulation driver: the deterministic slot-pipeline engine.
//!
//! A thin event loop that owns the shared world — plant, channel,
//! schedule, energy meters, event queue, the Virtual Component records —
//! and drives per-role [`NodeBehavior`]s through it. All role dispatch is
//! resolved from the scenario's [`VcMap`]; no node id is hard-coded
//! anywhere in the runtime. Every piece of per-loop state (component
//! records, QoS tallies, error traces, fault detectors) is keyed by
//! [`VcId`], so several Virtual Components share one RT-Link cycle
//! without observing each other.
//!
//! Construction lives in [`super::setup`]; the heads' fault plane
//! (arbitration, migration, failover commits) in [`super::failover`].

use std::collections::HashMap;

use evm_mac::rtlink::{RtLink, SlotSchedule};
use evm_netsim::{Battery, Channel, EnergyMeter, Frame, FrameKind, NodeId, RadioState, Topology};
use evm_plant::{GasPlant, LocalController, Plant, RegisterMap};
use evm_sim::{EventQueue, SimRng, SimTime, TimeSeries, Trace};

use crate::component::VirtualComponent;
use crate::metrics::{NodeEnergy, RunMeta, RunResult, VcRunStats};
use crate::runtime::behavior::{Effect, NodeBehavior, NodeCtx, Timer};
use crate::runtime::behaviors::RelayCore;
use crate::runtime::reconfig::{ReconfigState, ReroutePolicy};
use crate::runtime::registry::NodeRegistry;
use crate::runtime::topo::{FlowKind, RoleMap, VcId, VcMap};
use crate::runtime::{Message, Scenario};

/// Driver events. The fault plane (`super::failover`) schedules the
/// arbitration/migration ones.
#[derive(Debug)]
pub(super) enum Ev {
    Slot,
    PlantStep,
    Sample,
    Deliver {
        to: NodeId,
        from: NodeId,
        msg: Message,
    },
    NodeTimer {
        node: NodeId,
        timer: Timer,
    },
    InjectFault,
    InjectBackupFault,
    CrashPrimary {
        vc: VcId,
    },
    HeadDecision {
        suspect: NodeId,
    },
    MigrationDone {
        target: NodeId,
        suspect: NodeId,
    },
    DormantDemote {
        target: NodeId,
    },
    /// Scripted reconfiguration request: recompute the epoch (with the
    /// current down set, possibly empty) and commit it at the next cycle
    /// boundary.
    Reconfigure,
}

/// The co-simulation engine. Build with [`Engine::new`], run with
/// [`Engine::run`].
pub struct Engine {
    pub(super) scenario: Scenario,
    pub(super) plant: GasPlant,
    pub(super) regmap: RegisterMap,
    pub(super) local_loops: Vec<LocalController>,
    pub(super) channel: Channel,
    pub(super) topology: Topology,
    pub(super) vcs: VcMap,
    pub(super) rtlink: RtLink,
    pub(super) schedule: SlotSchedule,
    /// `(slot, owner) → flow semantic` for every scheduled flow.
    pub(super) flow_kinds: HashMap<(usize, NodeId), FlowKind>,
    /// Store-and-forward state per forwarding node ([`FlowKind::Relay`]
    /// slots transmit from here, not from the node's behavior).
    pub(super) relay_cores: HashMap<NodeId, RelayCore>,
    /// One Virtual Component record per hosted loop, indexed by `VcId`.
    pub(super) components: Vec<VirtualComponent>,
    pub(super) rng: SimRng,
    pub(super) trace: Trace,
    pub(super) queue: EventQueue<Ev>,
    pub(super) now: SimTime,
    pub(super) registry: NodeRegistry,

    pub(super) series: HashMap<String, TimeSeries>,
    pub(super) mode_series: Vec<(NodeId, TimeSeries)>,
    /// Per-VC per-cycle regulation-error traces (`Err.<loop>` series):
    /// `(pv tag, setpoint, series)`, indexed by `VcId`.
    pub(super) err_series: Vec<(String, f64, TimeSeries)>,
    /// Radio energy meters per node.
    pub(super) meters: HashMap<NodeId, EnergyMeter>,
    /// Per-VC QoS tallies, indexed by `VcId` — the single source of
    /// truth; the global `RunResult` counters are derived from these at
    /// the end of the run.
    pub(super) vc_stats: Vec<VcRunStats>,
    /// The reconfiguration plane: liveness ledger, committed/staged
    /// epochs, reroute timestamps (see [`super::reconfig`]).
    pub(super) reconfig: ReconfigState,
}

impl Engine {
    /// The slot schedule (for inspection/tests).
    #[must_use]
    pub fn schedule(&self) -> &SlotSchedule {
        &self.schedule
    }

    /// VC 0's component record (for inspection/tests; see
    /// [`Engine::components`] for the whole pool).
    #[must_use]
    pub fn component(&self) -> &VirtualComponent {
        &self.components[0]
    }

    /// Every hosted Virtual Component's record, indexed by `VcId`.
    #[must_use]
    pub fn components(&self) -> &[VirtualComponent] {
        &self.components
    }

    /// VC 0's role-resolved addressing (for inspection/tests; see
    /// [`Engine::vc_map`] for all VCs).
    #[must_use]
    pub fn roles(&self) -> &RoleMap {
        self.vcs.vc(0)
    }

    /// Role-resolved addressing for every hosted VC.
    #[must_use]
    pub fn vc_map(&self) -> &VcMap {
        &self.vcs
    }

    /// The physical topology (for inspection/tests).
    #[must_use]
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The committed configuration epoch (0 until a reconfiguration).
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.reconfig.epoch
    }

    /// The nodes carrying forwarding jobs in the committed epoch, in id
    /// order (inspection/tests/benches — e.g. picking a loaded forwarder
    /// to kill without re-deriving the routing pass out of band).
    #[must_use]
    pub fn forwarding_nodes(&self) -> Vec<NodeId> {
        let mut nodes: Vec<NodeId> = self.relay_cores.keys().copied().collect();
        nodes.sort_unstable();
        nodes
    }

    /// The slot in which `owner` serves `kind`, if scheduled.
    #[must_use]
    pub fn slot_serving(&self, owner: NodeId, kind: FlowKind) -> Option<usize> {
        self.flow_kinds
            .iter()
            .find(|&(&(_, o), k)| o == owner && *k == kind)
            .map(|(&(slot, _), _)| slot)
    }

    /// Runs the scenario to completion and returns the results.
    #[must_use]
    pub fn run(mut self) -> RunResult {
        let end = SimTime::ZERO + self.scenario.duration;
        while let Some((t, ev)) = self.queue.pop() {
            if t >= end {
                break;
            }
            self.now = t;
            self.handle(ev);
            debug_assert!(
                self.components
                    .iter()
                    .all(VirtualComponent::invariant_single_active),
                "single-active invariant violated at {t}"
            );
        }
        // Close out energy accounting: everything not spent on the radio
        // was deep sleep.
        let total = self.scenario.duration;
        let node_energy = self
            .meters
            .iter_mut()
            .map(|(id, m)| {
                let accounted = m.total_time();
                m.add(RadioState::Sleep, total.saturating_sub(accounted));
                let label = self
                    .topology
                    .node(*id)
                    .map_or_else(|| id.to_string(), |n| n.label.clone());
                let avg = m.average_current_ma();
                (
                    label,
                    NodeEnergy {
                        avg_current_ma: avg,
                        radio_duty: m.radio_duty_cycle(),
                        lifetime_years: Battery::two_aa().lifetime_years_at(avg.max(1e-9)),
                    },
                )
            })
            .collect();
        RunResult {
            meta: RunMeta {
                seed: self.scenario.seed,
                duration: self.scenario.duration,
                nodes: self.topology.nodes().len(),
                controllers: self.vcs.vcs.iter().map(|r| r.controllers.len()).sum(),
                vcs: self.vcs.n_vcs(),
            },
            series: self
                .series
                .into_iter()
                .chain(
                    self.mode_series
                        .into_iter()
                        .map(|(_, s)| (s.name().to_string(), s)),
                )
                .chain(
                    self.err_series
                        .into_iter()
                        .map(|(_, _, s)| (s.name().to_string(), s)),
                )
                .collect(),
            trace: self.trace,
            e2e_latencies: self
                .vc_stats
                .iter()
                .flat_map(|s| s.e2e_latencies.iter().copied())
                .collect(),
            deadline_misses: self.vc_stats.iter().map(|s| s.deadline_misses).sum(),
            actuations: self.vc_stats.iter().map(|s| s.actuations).sum(),
            node_energy,
            vc_stats: self.vc_stats,
            epochs: self.reconfig.epoch,
            reroute_latency: self.reconfig.reroute_latency,
        }
    }

    pub(super) fn alive(&self, node: NodeId) -> bool {
        self.scenario.fault_plan.node_alive(node, self.now)
    }

    /// Remaining battery fraction of `node` in `[0, 1]` — the one
    /// fitness both master arbitration and head election rank
    /// candidates by, so the two planes can never diverge on how they
    /// order the same nodes.
    pub(super) fn battery_fitness(&self, node: NodeId) -> f64 {
        let consumed = self
            .meters
            .get(&node)
            .map_or(0.0, EnergyMeter::consumed_mah);
        (1.0 - consumed / Battery::two_aa().capacity_mah()).max(0.0)
    }

    pub(super) fn label_of(&self, id: NodeId) -> String {
        self.topology
            .node(id)
            .map_or_else(|| id.to_string(), |n| n.label.clone())
    }

    /// Runs one behavior callback with a scoped [`NodeCtx`], then applies
    /// the timers and effects it produced. Returns `None` for unknown ids.
    pub(super) fn dispatch<R>(
        &mut self,
        id: NodeId,
        f: impl FnOnce(&mut dyn NodeBehavior, &mut NodeCtx<'_>) -> R,
    ) -> Option<R> {
        let label = self.label_of(id);
        let mut effects = Vec::new();
        let mut timers = Vec::new();
        let out = {
            let node = self.registry.get_mut(id)?;
            let mut ctx = NodeCtx {
                now: self.now,
                id,
                label: &label,
                vcs: &self.vcs,
                rng: &mut self.rng,
                trace: &mut self.trace,
                plant: &mut self.plant,
                regmap: &self.regmap,
                effects: &mut effects,
                timers: &mut timers,
            };
            f(node, &mut ctx)
        };
        for (at, timer) in timers {
            self.queue.push(at, Ev::NodeTimer { node: id, timer });
        }
        for effect in effects {
            self.apply_effect(effect);
        }
        Some(out)
    }

    fn apply_effect(&mut self, effect: Effect) {
        match effect {
            Effect::Alert { suspect, observer } => self.head_on_alert(suspect, observer),
            Effect::Actuated { vc, pv_sampled_at } => {
                let e2e = self.now.saturating_since(pv_sampled_at);
                let deadline = self.rtlink.config().cycle_duration() / 3;
                let stats = &mut self.vc_stats[vc as usize];
                if e2e > deadline {
                    stats.deadline_misses += 1;
                }
                stats.e2e_latencies.push(e2e);
                stats.actuations += 1;
                self.note_actuation_for_reroute_clock();
            }
        }
    }

    fn handle(&mut self, ev: Ev) {
        match ev {
            Ev::PlantStep => self.on_plant_step(),
            Ev::Slot => self.on_slot(),
            Ev::Sample => self.on_sample(),
            Ev::Deliver { to, from, msg } => {
                // The forwarding capability sits beside the behavior:
                // any node with routed relay jobs captures matching
                // frames for its scheduled forwarding slots, *and* still
                // consumes the frame itself (a controller lending a hop
                // also hears the PV it forwards).
                if let Some(core) = self.relay_cores.get_mut(&to) {
                    core.offer(from, &msg);
                }
                self.dispatch(to, |n, ctx| n.on_deliver(&msg, ctx));
            }
            Ev::NodeTimer { node, timer } => {
                self.dispatch(node, |n, ctx| n.on_timer(timer, ctx));
            }
            Ev::InjectFault => self.on_inject_fault(),
            Ev::InjectBackupFault => self.on_inject_backup_fault(),
            Ev::CrashPrimary { vc } => self.on_crash_primary(vc),
            Ev::HeadDecision { suspect } => self.on_head_decision(suspect),
            Ev::MigrationDone { target, suspect } => self.on_migration_done(target, suspect),
            Ev::DormantDemote { target } => self.on_dormant_demote(target),
            Ev::Reconfigure => self.on_forced_reconfig(),
        }
    }

    fn on_plant_step(&mut self) {
        let dt = self.scenario.plant_dt;
        // Wired loops run at the gateway against the plant directly.
        let now_s = self.now.as_secs_f64();
        for c in &mut self.local_loops {
            let _ = c.poll(&mut self.plant, now_s);
        }
        self.plant.step(dt.as_secs_f64());
        self.queue.push(self.now + dt, Ev::PlantStep);
    }

    fn on_sample(&mut self) {
        for (tag, series) in &mut self.series {
            if let Some(v) = self.plant.read_tag(tag) {
                series.push(self.now, v);
            }
        }
        for (node, series) in &mut self.mode_series {
            let mode = self
                .registry
                .controller(*node)
                .expect("controller registered")
                .mode;
            series.push(self.now, mode.as_f64());
        }
        self.queue
            .push(self.now + self.scenario.sample_every, Ev::Sample);
    }

    /// Processes all transmissions of the slot that starts now.
    fn on_slot(&mut self) {
        let (_cycle, slot) = self.rtlink.slot_at(self.now);
        if slot == 0 {
            self.on_cycle_start();
        }
        let assignments: Vec<(NodeId, Vec<NodeId>)> = self
            .schedule
            .in_slot(slot)
            .iter()
            .map(|a| (a.owner, a.listeners.clone()))
            .collect();
        // Detect window a listener pays before shutting down on an empty
        // slot: guard + PHY header airtime.
        let detect = self.scenario.rtlink.guard
            + evm_netsim::frame::airtime_for_bytes(evm_netsim::PHY_HEADER_BYTES);
        let keepalives = self.scenario.reroute == ReroutePolicy::Heartbeat;
        for (owner, listeners) in assignments {
            if !self.alive(owner) {
                continue;
            }
            let kind = self.flow_kinds.get(&(slot, owner)).copied();
            let msg = match kind {
                // Forwarding slots transmit the captured frame from the
                // owner's relay core; everything else asks the behavior.
                Some(FlowKind::Relay { job, .. }) => self
                    .relay_cores
                    .get_mut(&owner)
                    .and_then(|c| c.take(job as usize)),
                Some(k) => self
                    .dispatch(owner, |n, ctx| n.take_outgoing(k, ctx))
                    .flatten(),
                None => None,
            };
            // Under the heartbeat reroute policy, forwarders and heads
            // fill otherwise-empty owned slots with a keepalive —
            // "alive but starved" stays distinguishable from "dead", so
            // silence is sufficient evidence for marking a node down.
            let msg = match (msg, kind) {
                (Some(m), _) => Some(m),
                (None, Some(FlowKind::Relay { .. } | FlowKind::ControlPlane { .. }))
                    if keepalives =>
                {
                    Some(Message::Heartbeat { from: owner })
                }
                (None, _) => None,
            };
            let Some(msg) = msg else {
                // Empty slot: listeners still pay the detect window.
                for l in listeners {
                    if self.alive(l) {
                        if let Some(m) = self.meters.get_mut(&l) {
                            m.add(RadioState::Listen, detect);
                        }
                    }
                }
                continue;
            };
            // Every frame actually put on the air stamps the liveness
            // ledger (the heartbeat bookkeeping behind dead-forwarder
            // detection and head re-election).
            if keepalives {
                let (cycle, _) = self.rtlink.slot_at(self.now);
                self.reconfig.ledger.heard(owner, cycle);
            }
            let frame = Frame::new(owner, FrameKind::Broadcast, msg.payload_bytes(), 0);
            let airtime = frame.airtime();
            let guard = self.scenario.rtlink.guard;
            if let Some(m) = self.meters.get_mut(&owner) {
                m.add(RadioState::Idle, guard);
                m.add(RadioState::Tx, airtime);
            }
            for to in listeners {
                if !self.alive(to) {
                    continue;
                }
                if let Some(m) = self.meters.get_mut(&to) {
                    m.add(RadioState::Rx, guard + airtime);
                }
                if !self.scenario.fault_plan.link_usable(owner, to, self.now) {
                    continue;
                }
                let d = self.topology.distance(owner, to);
                if !self.channel.sample_delivery(&frame, to, d) {
                    continue;
                }
                if self.rng.chance(self.scenario.extra_loss) {
                    continue;
                }
                self.queue.push(
                    self.now + guard + airtime,
                    Ev::Deliver {
                        to,
                        from: owner,
                        msg: msg.clone(),
                    },
                );
            }
        }
        self.queue
            .push(self.now + self.scenario.rtlink.slot_duration, Ev::Slot);
    }

    /// Cycle-boundary housekeeping: epoch commits and heartbeat-silence
    /// scans (the reconfiguration plane), sync reception energy, per-node
    /// cycle hooks (heartbeat silence checks), and the per-VC per-cycle
    /// regulation-error samples.
    fn on_cycle_start(&mut self) {
        // The reconfiguration plane acts strictly at cycle boundaries,
        // before any transmission of the new cycle: a staged epoch
        // becomes visible here or never — frames are never torn across
        // epochs mid-cycle.
        self.reconfig_on_cycle_start();
        let sync = self.scenario.rtlink.sync_listen;
        let ids: Vec<NodeId> = self.registry.ids().to_vec();
        for &id in &ids {
            if self.alive(id) {
                if let Some(m) = self.meters.get_mut(&id) {
                    m.add(RadioState::Rx, sync);
                }
            }
        }
        for id in ids {
            if self.alive(id) {
                self.dispatch(id, |n, ctx| n.on_cycle_start(ctx));
            }
        }
        // One regulation-error sample per VC per RT-Link cycle — the
        // per-cycle error trace the multi-VC isolation contract is pinned
        // on (a fault in one VC must leave every other VC's trace
        // byte-identical).
        for (pv_tag, setpoint, series) in &mut self.err_series {
            if let Some(pv) = self.plant.read_tag(pv_tag) {
                series.push(self.now, pv - *setpoint);
            }
        }
    }
}
