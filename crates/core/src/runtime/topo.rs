//! Topology specification and schedule synthesis.
//!
//! A [`TopologySpec`] describes the node set of a deployment by *role*
//! (gateway / sensor / controller / actuator / head) instead of by
//! well-known node id. The runtime resolves roles into a [`RoleMap`] and
//! synthesizes the RT-Link flow pipeline from it, so the same engine runs
//! the paper's seven-node Fig. 5 testbed, a wide star with extra sensors
//! and controllers, or a degenerate three-node loop without code changes.

use evm_mac::rtlink::Flow;
use evm_netsim::{Channel, NodeId, NodeInfo, NodeKind, Position, Topology};

/// The role a node plays in the control loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// ModBus bridge to the plant; origin of HIL downlinks, sink of
    /// actuation forwards (and the actuation endpoint when the topology
    /// has no actuator node).
    Gateway,
    /// Publishes one plant signal. Sensor `0` carries the focus PV; higher
    /// indices are monitoring flows.
    Sensor(u8),
    /// Hosts a replica of the focus control capsule. Controller `0` starts
    /// as the Active primary; higher indices are backups.
    Controller(u8),
    /// Drives the focus valve from accepted controller outputs. At most
    /// one per Virtual Component for now — controller outputs address a
    /// single actuation endpoint.
    Actuator(u8),
    /// The Virtual Component's head: arbitration and the control plane.
    Head,
}

impl Role {
    /// The physical node kind this role maps onto.
    #[must_use]
    pub fn kind(self) -> NodeKind {
        match self {
            Role::Gateway => NodeKind::Gateway,
            Role::Sensor(_) => NodeKind::Sensor,
            Role::Controller(_) | Role::Head => NodeKind::Controller,
            Role::Actuator(_) => NodeKind::Actuator,
        }
    }
}

/// One node of a deployment.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeSpec {
    /// Node identity.
    pub id: NodeId,
    /// Role in the control loop.
    pub role: Role,
    /// Human-readable label (used in traces, series names and results).
    pub label: String,
    /// Planar position (drives path loss and interference).
    pub position: Position,
    /// For sensors: the ModBus input register this sensor publishes.
    pub register: Option<u16>,
}

/// ModBus input registers handed to monitoring sensors (tags 1..), in
/// order. The first matches the Fig. 5 testbed's tower-feed flow.
const MONITOR_REGISTERS: [u16; 11] = [
    30007, 30002, 30003, 30005, 30006, 30004, 30008, 30009, 30010, 30011, 30012,
];

/// The focus PV input register (sensor 0).
const FOCUS_REGISTER: u16 = 30001;

/// A deployment described by roles.
#[derive(Debug, Clone, PartialEq)]
pub struct TopologySpec {
    /// The node set. The gateway must be present exactly once.
    pub nodes: Vec<NodeSpec>,
}

impl TopologySpec {
    /// The paper's Fig. 5 seven-node star: gateway at the center, ring of
    /// S1, Ctrl-A, Ctrl-B, A1, S2 and the head at 15 m.
    #[must_use]
    pub fn fig5() -> Self {
        TopologySpec::star(2, 2, 1, true, 15.0)
    }

    /// A star deployment: the gateway at the origin, all other nodes on a
    /// ring of `radius_m`. Ring order (and id order) follows the Fig. 5
    /// convention: focus sensor, controllers, actuators, monitoring
    /// sensors, head — so `star(2, 2, 1, true, 15.0)` *is* the testbed.
    ///
    /// # Panics
    ///
    /// Panics unless there is at least one sensor and one controller.
    #[must_use]
    pub fn star(
        sensors: usize,
        controllers: usize,
        actuators: usize,
        head: bool,
        radius_m: f64,
    ) -> Self {
        assert!(sensors >= 1, "a control loop needs its focus sensor");
        assert!(controllers >= 1, "a control loop needs a controller");
        let mut roles: Vec<(Role, String)> = Vec::new();
        roles.push((Role::Sensor(0), "S1".to_string()));
        for i in 0..controllers {
            // Ctrl-A, Ctrl-B, ... (wraps to Ctrl-27 past the alphabet).
            let label = if i < 26 {
                format!("Ctrl-{}", char::from(b'A' + i as u8))
            } else {
                format!("Ctrl-{i}")
            };
            roles.push((Role::Controller(i as u8), label));
        }
        for i in 0..actuators {
            roles.push((Role::Actuator(i as u8), format!("A{}", i + 1)));
        }
        for i in 1..sensors {
            roles.push((Role::Sensor(i as u8), format!("S{}", i + 1)));
        }
        if head {
            roles.push((Role::Head, "Head".to_string()));
        }

        let ring = roles.len();
        let mut nodes = vec![NodeSpec {
            id: NodeId(0),
            role: Role::Gateway,
            label: "GW".to_string(),
            position: Position::new(0.0, 0.0),
            register: None,
        }];
        for (i, (role, label)) in roles.into_iter().enumerate() {
            let angle = 2.0 * std::f64::consts::PI * i as f64 / ring as f64;
            let register = match role {
                Role::Sensor(0) => Some(FOCUS_REGISTER),
                Role::Sensor(tag) => {
                    Some(MONITOR_REGISTERS[(tag as usize - 1) % MONITOR_REGISTERS.len()])
                }
                _ => None,
            };
            nodes.push(NodeSpec {
                id: NodeId((i + 1) as u16),
                role,
                label,
                position: Position::new(radius_m * angle.cos(), radius_m * angle.sin()),
                register,
            });
        }
        TopologySpec { nodes }
    }

    /// The degenerate three-node Virtual Component: gateway, one sensor,
    /// one controller. The gateway doubles as the actuation endpoint and
    /// no head means no failover machinery — the smallest closed loop the
    /// runtime can express.
    #[must_use]
    pub fn minimal(radius_m: f64) -> Self {
        TopologySpec::star(1, 1, 0, false, radius_m)
    }

    /// Resolves the spec into the physical [`Topology`] plus the
    /// [`RoleMap`] used for dispatch.
    ///
    /// # Panics
    ///
    /// Panics on a malformed spec: no gateway, duplicate ids, duplicate
    /// role indices, no sensor 0, or no controller 0.
    #[must_use]
    pub fn resolve(&self, channel: &mut Channel) -> (Topology, RoleMap) {
        let infos: Vec<NodeInfo> = self
            .nodes
            .iter()
            .map(|n| NodeInfo::new(n.id, n.role.kind(), n.position, n.label.clone()))
            .collect();
        {
            let mut ids: Vec<NodeId> = infos.iter().map(|n| n.id).collect();
            ids.sort_unstable();
            ids.dedup();
            assert_eq!(
                ids.len(),
                infos.len(),
                "duplicate node ids in topology spec"
            );
        }
        let topology = Topology::derive(infos, channel);
        let roles = RoleMap::from_spec(self);
        (topology, roles)
    }
}

/// Role-resolved addressing: who plays which part, in deterministic order.
/// This replaces the old engine's hard-coded `nodes::*` constants in every
/// dispatch decision.
#[derive(Debug, Clone, PartialEq)]
pub struct RoleMap {
    /// The gateway node.
    pub gateway: NodeId,
    /// The head, if the deployment has one.
    pub head: Option<NodeId>,
    /// Sensors by tag (index 0 is the focus PV sensor).
    pub sensors: Vec<NodeId>,
    /// Controllers in precedence order (index 0 is the initial primary).
    pub controllers: Vec<NodeId>,
    /// Actuators in index order (may be empty: the gateway then accepts
    /// controller outputs directly).
    pub actuators: Vec<NodeId>,
    /// ModBus input register backing each sensor tag.
    pub sensor_registers: Vec<u16>,
}

impl RoleMap {
    fn from_spec(spec: &TopologySpec) -> Self {
        let mut gateway = None;
        let mut head = None;
        let mut sensors: Vec<(u8, NodeId, u16)> = Vec::new();
        let mut controllers: Vec<(u8, NodeId)> = Vec::new();
        let mut actuators: Vec<(u8, NodeId)> = Vec::new();
        for n in &spec.nodes {
            match n.role {
                Role::Gateway => {
                    assert!(gateway.is_none(), "two gateways in topology spec");
                    gateway = Some(n.id);
                }
                Role::Head => {
                    assert!(head.is_none(), "two heads in topology spec");
                    head = Some(n.id);
                }
                Role::Sensor(tag) => {
                    let reg = n.register.expect("sensor needs a register");
                    sensors.push((tag, n.id, reg));
                }
                Role::Controller(i) => controllers.push((i, n.id)),
                Role::Actuator(i) => actuators.push((i, n.id)),
            }
        }
        sensors.sort_by_key(|&(tag, _, _)| tag);
        controllers.sort_by_key(|&(i, _)| i);
        actuators.sort_by_key(|&(i, _)| i);
        for (expect, &(tag, _, _)) in sensors.iter().enumerate() {
            assert_eq!(tag as usize, expect, "sensor tags must be 0..n contiguous");
        }
        for (expect, &(i, _)) in controllers.iter().enumerate() {
            assert_eq!(
                i as usize, expect,
                "controller indices must be 0..n contiguous"
            );
        }
        assert!(!sensors.is_empty(), "topology needs the focus sensor");
        assert!(!controllers.is_empty(), "topology needs a controller");
        assert!(
            actuators.len() <= 1,
            "multiple actuators per focus loop are not supported yet: \
             controller outputs address a single actuation endpoint, so \
             extra actuators would hold dead slots (see ROADMAP multi-VC \
             scaling)"
        );
        RoleMap {
            gateway: gateway.expect("topology needs a gateway"),
            head,
            sensor_registers: sensors.iter().map(|&(_, _, r)| r).collect(),
            sensors: sensors.into_iter().map(|(_, id, _)| id).collect(),
            controllers: controllers.into_iter().map(|(_, id)| id).collect(),
            actuators: actuators.into_iter().map(|(_, id)| id).collect(),
        }
    }

    /// The initial primary controller.
    #[must_use]
    pub fn primary(&self) -> NodeId {
        self.controllers[0]
    }

    /// The node controller outputs are addressed to: the first actuator,
    /// or the gateway when the deployment has none.
    #[must_use]
    pub fn actuation_endpoint(&self) -> NodeId {
        self.actuators.first().copied().unwrap_or(self.gateway)
    }

    /// `true` if `id` is a controller (the head's monitor replica does not
    /// count).
    #[must_use]
    pub fn is_controller(&self, id: NodeId) -> bool {
        self.controllers.contains(&id)
    }

    /// The sensor tag of `id`, if it is a sensor.
    #[must_use]
    pub fn sensor_tag(&self, id: NodeId) -> Option<u8> {
        self.sensors.iter().position(|&s| s == id).map(|i| i as u8)
    }
}

/// What a slot owner is expected to transmit — the semantic attached to a
/// scheduled flow. The driver hands this to the owner's behavior, which
/// decides the concrete [`crate::runtime::Message`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowKind {
    /// Gateway → sensor: deliver the plant value backing `tag` (the
    /// hardware-in-the-loop downlink).
    HilDownlink {
        /// The sensor tag served.
        tag: u8,
    },
    /// Sensor → subscribers: publish the latest value of `tag`.
    SensorPublish {
        /// The published tag.
        tag: u8,
    },
    /// Controller → actuation endpoint (+observers): output, alert or
    /// keepalive.
    ControlPublish,
    /// Actuator → gateway: forward the accepted command.
    ActuateForward,
    /// Head → members: the control plane (reconfig / fail-safe commands).
    ControlPlane,
}

/// Synthesizes the pipeline-ordered flow list for a deployment. Each flow
/// is chained `after` its predecessor, so one control cycle completes
/// within one RT-Link cycle (objective 5). For the Fig. 5 role set this
/// reproduces the testbed's eight flows exactly:
///
/// 1. `GW→S1` downlink, 2. `S1→Ctrl-A` publish (B, head listen), 3./4.
///    controller outputs (later controllers and head listen), 5. `A1→GW`
///    forward, 6. head control plane, then per monitoring sensor its
///    downlink and publish.
#[must_use]
pub fn synth_flows(roles: &RoleMap) -> Vec<(Flow, FlowKind)> {
    let mut flows: Vec<(Flow, FlowKind)> = Vec::new();
    let chain = |flows: &mut Vec<(Flow, FlowKind)>, flow: Flow, kind: FlowKind| {
        let after = flows.len().checked_sub(1);
        let flow = match after {
            Some(i) => flow.after(i),
            None => flow,
        };
        flows.push((flow, kind));
    };

    // Focus PV: downlink then publish to every controller replica.
    chain(
        &mut flows,
        Flow::new(roles.gateway, roles.sensors[0]),
        FlowKind::HilDownlink { tag: 0 },
    );
    let mut pv_listeners: Vec<NodeId> = roles.controllers[1..].to_vec();
    pv_listeners.extend(roles.head);
    chain(
        &mut flows,
        Flow::new(roles.sensors[0], roles.primary()).with_listeners(pv_listeners),
        FlowKind::SensorPublish { tag: 0 },
    );

    // Controller outputs, in precedence order. Later-scheduled replicas
    // (and the head) observe each output within the same cycle; this is
    // what feeds the deviation detectors.
    let endpoint = roles.actuation_endpoint();
    for (i, &c) in roles.controllers.iter().enumerate() {
        let mut listeners: Vec<NodeId> = roles.controllers[i + 1..].to_vec();
        listeners.extend(roles.head);
        chain(
            &mut flows,
            Flow::new(c, endpoint).with_listeners(listeners),
            FlowKind::ControlPublish,
        );
    }

    // Actuation forwards back to the plant bridge.
    for &a in &roles.actuators {
        chain(
            &mut flows,
            Flow::new(a, roles.gateway),
            FlowKind::ActuateForward,
        );
    }

    // Control plane: head → first controller, everyone else listens.
    if let Some(head) = roles.head {
        let mut listeners: Vec<NodeId> = roles.controllers[1..].to_vec();
        listeners.extend(roles.actuators.iter().copied());
        listeners.push(roles.gateway);
        chain(
            &mut flows,
            Flow::new(head, roles.primary()).with_listeners(listeners),
            FlowKind::ControlPlane,
        );
    }

    // Monitoring sensors: downlink + publish toward the head (or the
    // gateway's log when there is no head).
    for (tag, &s) in roles.sensors.iter().enumerate().skip(1) {
        let tag = tag as u8;
        chain(
            &mut flows,
            Flow::new(roles.gateway, s),
            FlowKind::HilDownlink { tag },
        );
        let (dst, listeners) = match roles.head {
            Some(head) => (head, vec![roles.gateway]),
            None => (roles.gateway, Vec::new()),
        };
        chain(
            &mut flows,
            Flow::new(s, dst).with_listeners(listeners),
            FlowKind::SensorPublish { tag },
        );
    }
    flows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_spec_matches_testbed_layout() {
        let spec = TopologySpec::fig5();
        assert_eq!(spec.nodes.len(), 7);
        let labels: Vec<&str> = spec.nodes.iter().map(|n| n.label.as_str()).collect();
        assert_eq!(labels, ["GW", "S1", "Ctrl-A", "Ctrl-B", "A1", "S2", "Head"]);
        let ids: Vec<u16> = spec.nodes.iter().map(|n| n.id.raw()).collect();
        assert_eq!(ids, [0, 1, 2, 3, 4, 5, 6]);
        assert_eq!(spec.nodes[1].register, Some(30001));
        assert_eq!(spec.nodes[5].register, Some(30007));
    }

    #[test]
    fn fig5_flow_synthesis_reproduces_the_eight_testbed_flows() {
        let roles = RoleMap::from_spec(&TopologySpec::fig5());
        let flows = synth_flows(&roles);
        let as_tuple = |f: &Flow| (f.src.raw(), f.dst.raw(), f.extra_listeners.clone());
        assert_eq!(flows.len(), 8);
        assert_eq!(as_tuple(&flows[0].0), (0, 1, vec![]));
        assert_eq!(as_tuple(&flows[1].0), (1, 2, vec![NodeId(3), NodeId(6)]));
        assert_eq!(as_tuple(&flows[2].0), (2, 4, vec![NodeId(3), NodeId(6)]));
        assert_eq!(as_tuple(&flows[3].0), (3, 4, vec![NodeId(6)]));
        assert_eq!(as_tuple(&flows[4].0), (4, 0, vec![]));
        assert_eq!(
            as_tuple(&flows[5].0),
            (6, 2, vec![NodeId(3), NodeId(4), NodeId(0)])
        );
        assert_eq!(as_tuple(&flows[6].0), (0, 5, vec![]));
        assert_eq!(as_tuple(&flows[7].0), (5, 6, vec![NodeId(0)]));
        // Fully chained: every flow after the first has a predecessor.
        assert!(flows[0].0.after.is_none());
        for (i, (f, _)) in flows.iter().enumerate().skip(1) {
            assert_eq!(f.after, Some(i - 1));
        }
    }

    /// Golden trace for the 2-sensor / 3-controller / 1-actuator star:
    /// every flow's (src, dst, listeners) tuple and semantic, not just the
    /// Fig. 5 role set. Node ids follow the star ring convention: GW=0,
    /// S1=1, Ctrl-A=2, Ctrl-B=3, Ctrl-C=4, A1=5, S2=6, Head=7.
    #[test]
    fn golden_flows_for_two_sensor_three_controller_star() {
        let roles = RoleMap::from_spec(&TopologySpec::star(2, 3, 1, true, 15.0));
        let flows = synth_flows(&roles);
        let got: Vec<(u16, u16, Vec<u16>, FlowKind)> = flows
            .iter()
            .map(|(f, k)| {
                (
                    f.src.raw(),
                    f.dst.raw(),
                    f.extra_listeners.iter().map(|n| n.raw()).collect(),
                    *k,
                )
            })
            .collect();
        let expected: Vec<(u16, u16, Vec<u16>, FlowKind)> = vec![
            (0, 1, vec![], FlowKind::HilDownlink { tag: 0 }),
            (1, 2, vec![3, 4, 7], FlowKind::SensorPublish { tag: 0 }),
            (2, 5, vec![3, 4, 7], FlowKind::ControlPublish),
            (3, 5, vec![4, 7], FlowKind::ControlPublish),
            (4, 5, vec![7], FlowKind::ControlPublish),
            (5, 0, vec![], FlowKind::ActuateForward),
            (7, 2, vec![3, 4, 5, 0], FlowKind::ControlPlane),
            (0, 6, vec![], FlowKind::HilDownlink { tag: 1 }),
            (6, 7, vec![0], FlowKind::SensorPublish { tag: 1 }),
        ];
        assert_eq!(got, expected);
        // The pipeline stays fully chained (one control cycle per RT-Link
        // cycle) no matter how many replicas are inserted in the middle.
        assert!(flows[0].0.after.is_none());
        for (i, (f, _)) in flows.iter().enumerate().skip(1) {
            assert_eq!(f.after, Some(i - 1));
        }
    }

    #[test]
    fn minimal_topology_routes_actuation_through_gateway() {
        let roles = RoleMap::from_spec(&TopologySpec::minimal(10.0));
        assert_eq!(roles.actuation_endpoint(), roles.gateway);
        assert!(roles.head.is_none());
        let flows = synth_flows(&roles);
        // Downlink, publish, controller output — three flows, no control
        // plane, no forwards.
        assert_eq!(flows.len(), 3);
        assert_eq!(flows[2].1, FlowKind::ControlPublish);
        assert_eq!(flows[2].0.dst, roles.gateway);
    }

    #[test]
    fn wide_star_flows_scale_with_roles() {
        let roles = RoleMap::from_spec(&TopologySpec::star(3, 3, 1, true, 15.0));
        let flows = synth_flows(&roles);
        // 1 downlink + 1 publish + 3 outputs + 1 forward + 1 plane
        // + 2 * (downlink + publish) = 11.
        assert_eq!(flows.len(), 11);
        // The primary's output is observed by both backups and the head.
        let primary_out = flows
            .iter()
            .find(|(f, k)| *k == FlowKind::ControlPublish && f.src == roles.primary())
            .unwrap();
        assert_eq!(primary_out.0.extra_listeners.len(), 3);
    }
}
