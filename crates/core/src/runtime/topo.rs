//! Topology specification and schedule synthesis.
//!
//! A [`TopologySpec`] describes the node set of a deployment by *role*
//! (gateway / sensor / controller / actuator / head) instead of by
//! well-known node id. The runtime resolves roles into a [`VcMap`] — one
//! [`RoleMap`] per hosted Virtual Component — and synthesizes the RT-Link
//! flow pipeline from it, so the same engine runs the paper's seven-node
//! Fig. 5 testbed, a wide star with extra sensors and controllers, a
//! degenerate three-node loop, or several concurrent control loops sharing
//! one gateway and one RT-Link cycle, without code changes.
//!
//! # `VcId` addressing convention
//!
//! Every non-gateway node belongs to exactly one Virtual Component,
//! identified by a dense [`VcId`] (`0..n_vcs`). VC `0` is the paper's
//! focus loop (LC-LTS by default); higher ids host additional plant loops
//! in the canonical order of [`evm_plant::vc_host_loops`]. Role indices
//! (sensor tags, controller precedence, actuator index) are *per VC*:
//! `(vc, Sensor(0))` is VC `vc`'s focus PV sensor. The gateway is shared
//! by every VC and carries no meaningful VC tag of its own. Frames and
//! flow semantics carry the `VcId` explicitly, so one shared TDMA cycle
//! closes every hosted loop without cross-talk.

use evm_mac::rtlink::Flow;
use evm_netsim::{Channel, NodeId, NodeInfo, NodeKind, Position, Topology};

/// Identifies one Virtual Component hosted by the deployment (dense,
/// starting at 0; VC 0 is the focus loop).
pub type VcId = u8;

/// The largest VC pool one deployment can host — bounded by the eight
/// plant loops of §4.2 ([`evm_plant::vc_host_loops`]).
pub const MAX_VCS: usize = 8;

/// The role a node plays in its Virtual Component's control loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// ModBus bridge to the plant; origin of HIL downlinks, sink of
    /// actuation forwards (and the actuation endpoint for every VC whose
    /// topology has no actuator node). Shared by all VCs.
    Gateway,
    /// Publishes one plant signal. Sensor `0` carries its VC's focus PV;
    /// higher indices are monitoring flows.
    Sensor(u8),
    /// Hosts a replica of its VC's control capsule. Controller `0` starts
    /// as the Active primary; higher indices are backups.
    Controller(u8),
    /// Drives its VC's valve from accepted controller outputs. At most
    /// one per Virtual Component — controller outputs address a single
    /// actuation endpoint.
    Actuator(u8),
    /// A Virtual Component's head: arbitration and the control plane.
    Head,
}

impl Role {
    /// The physical node kind this role maps onto.
    #[must_use]
    pub fn kind(self) -> NodeKind {
        match self {
            Role::Gateway => NodeKind::Gateway,
            Role::Sensor(_) => NodeKind::Sensor,
            Role::Controller(_) | Role::Head => NodeKind::Controller,
            Role::Actuator(_) => NodeKind::Actuator,
        }
    }
}

/// One node of a deployment.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeSpec {
    /// Node identity.
    pub id: NodeId,
    /// The Virtual Component this node belongs to (ignored for the
    /// gateway, which serves every VC).
    pub vc: VcId,
    /// Role in its VC's control loop.
    pub role: Role,
    /// Human-readable label (used in traces, series names and results).
    pub label: String,
    /// Planar position (drives path loss and interference).
    pub position: Position,
    /// For sensors: the ModBus input register this sensor publishes.
    pub register: Option<u16>,
}

/// ModBus input registers handed to monitoring sensors (tags 1..), in
/// order. The first matches the Fig. 5 testbed's tower-feed flow.
const MONITOR_REGISTERS: [u16; 11] = [
    30007, 30002, 30003, 30005, 30006, 30004, 30008, 30009, 30010, 30011, 30012,
];

/// First synthetic input register handed out once [`MONITOR_REGISTERS`]
/// is exhausted, so monitoring sensors past the table never alias.
const MONITOR_OVERFLOW_BASE: u16 = 30013;

/// The input register assigned to the `idx`-th monitoring sensor
/// (0-based; sensor tag `idx + 1`). The first eleven come from the
/// Fig. 5-calibrated table; beyond it, registers are derived uniquely as
/// `30013 + k` instead of wrapping around and silently aliasing earlier
/// monitors.
#[must_use]
pub fn monitor_register(idx: usize) -> u16 {
    match MONITOR_REGISTERS.get(idx) {
        Some(&r) => r,
        None => MONITOR_OVERFLOW_BASE + (idx - MONITOR_REGISTERS.len()) as u16,
    }
}

/// The focus PV input register of each VC, in canonical VC order. Mirrors
/// `RegisterMap::gas_plant_standard` for the pv tags of
/// [`evm_plant::vc_host_loops`] (engine construction cross-checks the
/// two; see `setup.rs`).
pub const VC_FOCUS_REGISTERS: [u16; MAX_VCS] = [
    30001, // LC-LTS: LTS.LiquidPct
    30002, // LC-InletSep: InletSep.LevelPct
    30003, // TC-Chiller: Chiller.OutletTempK
    30004, // FC-SalesGas: SalesGas.MolarFlow
    30008, // PC-Column: Column.PressureKPa
    30009, // LC-Sump: Column.SumpLevelPct
    30010, // LC-RefluxDrum: Column.DrumLevelPct
    30011, // TC-Tray: Column.TrayTempK
];

/// A deployment described by roles.
#[derive(Debug, Clone, PartialEq)]
pub struct TopologySpec {
    /// The node set. The gateway must be present exactly once.
    pub nodes: Vec<NodeSpec>,
}

impl TopologySpec {
    /// The paper's Fig. 5 seven-node star: gateway at the center, ring of
    /// S1, Ctrl-A, Ctrl-B, A1, S2 and the head at 15 m.
    #[must_use]
    pub fn fig5() -> Self {
        TopologySpec::star(2, 2, 1, true, 15.0)
    }

    /// A single-VC star deployment: the gateway at the origin, all other
    /// nodes on a ring of `radius_m`. Ring order (and id order) follows
    /// the Fig. 5 convention: focus sensor, controllers, actuators,
    /// monitoring sensors, head — so `star(2, 2, 1, true, 15.0)` *is* the
    /// testbed.
    ///
    /// # Panics
    ///
    /// Panics unless there is at least one sensor and one controller.
    #[must_use]
    pub fn star(
        sensors: usize,
        controllers: usize,
        actuators: usize,
        head: bool,
        radius_m: f64,
    ) -> Self {
        TopologySpec::multi_star(1, sensors, controllers, actuators, head, radius_m)
    }

    /// A multi-VC star deployment: one shared gateway at the origin and
    /// `vcs` Virtual Components, each a full role set (`sensors`,
    /// `controllers`, `actuators`, `head`) on one shared ring of
    /// `radius_m`. VC `k`'s nodes occupy a contiguous arc; ids are
    /// sequential across VCs; VC 0 keeps the legacy labels (`S1`,
    /// `Ctrl-A`, …) while VC `k > 0` prefixes them with `Vk.`.
    /// `multi_star(1, ...)` is exactly [`TopologySpec::star`].
    ///
    /// Each VC's focus sensor reads that VC's loop PV register
    /// ([`VC_FOCUS_REGISTERS`]); monitoring sensors draw from the shared
    /// monitor table ([`monitor_register`]).
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= vcs <= MAX_VCS` and each VC has at least one
    /// sensor and one controller.
    #[must_use]
    pub fn multi_star(
        vcs: usize,
        sensors: usize,
        controllers: usize,
        actuators: usize,
        head: bool,
        radius_m: f64,
    ) -> Self {
        assert!(
            (1..=MAX_VCS).contains(&vcs),
            "vc count out of 1..={MAX_VCS}: {vcs}"
        );
        assert!(sensors >= 1, "a control loop needs its focus sensor");
        assert!(controllers >= 1, "a control loop needs a controller");
        let mut roles: Vec<(VcId, Role, String)> = Vec::new();
        for vc in 0..vcs as u8 {
            let prefix = if vc == 0 {
                String::new()
            } else {
                format!("V{vc}.")
            };
            roles.push((vc, Role::Sensor(0), format!("{prefix}S1")));
            for i in 0..controllers {
                // Ctrl-A, Ctrl-B, ... (wraps to Ctrl-27 past the alphabet).
                let label = if i < 26 {
                    format!("{prefix}Ctrl-{}", char::from(b'A' + i as u8))
                } else {
                    format!("{prefix}Ctrl-{i}")
                };
                roles.push((vc, Role::Controller(i as u8), label));
            }
            for i in 0..actuators {
                roles.push((vc, Role::Actuator(i as u8), format!("{prefix}A{}", i + 1)));
            }
            for i in 1..sensors {
                roles.push((vc, Role::Sensor(i as u8), format!("{prefix}S{}", i + 1)));
            }
            if head {
                roles.push((vc, Role::Head, format!("{prefix}Head")));
            }
        }

        let ring = roles.len();
        let mut nodes = vec![NodeSpec {
            id: NodeId(0),
            vc: 0,
            role: Role::Gateway,
            label: "GW".to_string(),
            position: Position::new(0.0, 0.0),
            register: None,
        }];
        for (i, (vc, role, label)) in roles.into_iter().enumerate() {
            let angle = 2.0 * std::f64::consts::PI * i as f64 / ring as f64;
            let register = match role {
                Role::Sensor(0) => Some(VC_FOCUS_REGISTERS[vc as usize]),
                Role::Sensor(tag) => Some(monitor_register(tag as usize - 1)),
                _ => None,
            };
            nodes.push(NodeSpec {
                id: NodeId((i + 1) as u16),
                vc,
                role,
                label,
                position: Position::new(radius_m * angle.cos(), radius_m * angle.sin()),
                register,
            });
        }
        TopologySpec { nodes }
    }

    /// The degenerate three-node Virtual Component: gateway, one sensor,
    /// one controller. The gateway doubles as the actuation endpoint and
    /// no head means no failover machinery — the smallest closed loop the
    /// runtime can express.
    #[must_use]
    pub fn minimal(radius_m: f64) -> Self {
        TopologySpec::star(1, 1, 0, false, radius_m)
    }

    /// Number of Virtual Components the spec hosts (1 + highest VC tag).
    #[must_use]
    pub fn n_vcs(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| n.role != Role::Gateway)
            .map(|n| n.vc as usize + 1)
            .max()
            .unwrap_or(1)
    }

    /// Resolves the spec into the physical [`Topology`] plus the
    /// [`VcMap`] used for dispatch.
    ///
    /// # Errors
    ///
    /// [`TopologyError`] on a malformed spec: no gateway, duplicate ids,
    /// non-contiguous VC or role indices, a missing focus sensor or
    /// controller, or more than one actuator/head per VC.
    pub fn try_resolve(&self, channel: &mut Channel) -> Result<(Topology, VcMap), TopologyError> {
        let map = VcMap::try_from_spec(self)?;
        let infos: Vec<NodeInfo> = self
            .nodes
            .iter()
            .map(|n| NodeInfo::new(n.id, n.role.kind(), n.position, n.label.clone()))
            .collect();
        let topology = Topology::derive(infos, channel);
        Ok((topology, map))
    }

    /// Panicking wrapper over [`TopologySpec::try_resolve`] for the
    /// builder path, where a malformed spec is a configuration error.
    ///
    /// # Panics
    ///
    /// Panics on any [`TopologyError`].
    #[must_use]
    pub fn resolve(&self, channel: &mut Channel) -> (Topology, VcMap) {
        match self.try_resolve(channel) {
            Ok(out) => out,
            Err(e) => panic!("malformed topology spec: {e}"),
        }
    }
}

/// A malformed [`TopologySpec`], reported per cell instead of aborting a
/// whole sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// No gateway node in the spec.
    MissingGateway,
    /// More than one gateway node.
    DuplicateGateway,
    /// Two nodes share an id.
    DuplicateNodeId(NodeId),
    /// A sensor node has no input register.
    MissingSensorRegister(NodeId),
    /// A VC has two head nodes.
    DuplicateHead(VcId),
    /// A VC has no sensor 0 (or its sensor tags are not dense `0..n`).
    NonContiguousSensors(VcId),
    /// A VC has no controller 0 (or its indices are not dense `0..n`).
    NonContiguousControllers(VcId),
    /// A VC has no sensor at all.
    MissingFocusSensor(VcId),
    /// A VC has no controller at all.
    MissingController(VcId),
    /// A VC has more than one actuator node.
    MultipleActuators(VcId),
}

impl std::fmt::Display for TopologyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TopologyError::MissingGateway => write!(f, "topology needs a gateway"),
            TopologyError::DuplicateGateway => write!(f, "two gateways in topology spec"),
            TopologyError::DuplicateNodeId(n) => write!(f, "duplicate node id {n}"),
            TopologyError::MissingSensorRegister(n) => {
                write!(f, "sensor {n} needs an input register")
            }
            TopologyError::DuplicateHead(vc) => write!(f, "two heads in VC {vc}"),
            TopologyError::NonContiguousSensors(vc) => {
                write!(f, "VC {vc} sensor tags must be 0..n contiguous")
            }
            TopologyError::NonContiguousControllers(vc) => {
                write!(f, "VC {vc} controller indices must be 0..n contiguous")
            }
            TopologyError::MissingFocusSensor(vc) => {
                write!(f, "VC {vc} needs its focus sensor")
            }
            TopologyError::MissingController(vc) => write!(f, "VC {vc} needs a controller"),
            TopologyError::MultipleActuators(vc) => write!(
                f,
                "VC {vc} has multiple actuators: controller outputs address a \
                 single actuation endpoint"
            ),
        }
    }
}

impl std::error::Error for TopologyError {}

/// Role-resolved addressing for **one** Virtual Component: who plays
/// which part, in deterministic order.
#[derive(Debug, Clone, PartialEq)]
pub struct RoleMap {
    /// The Virtual Component this role set belongs to.
    pub vc: VcId,
    /// The (shared) gateway node.
    pub gateway: NodeId,
    /// The VC's head, if deployed.
    pub head: Option<NodeId>,
    /// Sensors by tag (index 0 is the VC's focus PV sensor).
    pub sensors: Vec<NodeId>,
    /// Controllers in precedence order (index 0 is the initial primary).
    pub controllers: Vec<NodeId>,
    /// Actuators in index order (may be empty: the gateway then accepts
    /// controller outputs directly).
    pub actuators: Vec<NodeId>,
    /// ModBus input register backing each sensor tag.
    pub sensor_registers: Vec<u16>,
}

impl RoleMap {
    /// The initial primary controller.
    #[must_use]
    pub fn primary(&self) -> NodeId {
        self.controllers[0]
    }

    /// The node controller outputs are addressed to: the first actuator,
    /// or the gateway when the VC has none.
    #[must_use]
    pub fn actuation_endpoint(&self) -> NodeId {
        self.actuators.first().copied().unwrap_or(self.gateway)
    }

    /// `true` if `id` is one of this VC's controllers (the head's monitor
    /// replica does not count).
    #[must_use]
    pub fn is_controller(&self, id: NodeId) -> bool {
        self.controllers.contains(&id)
    }

    /// The sensor tag of `id` within this VC, if it is a sensor.
    #[must_use]
    pub fn sensor_tag(&self, id: NodeId) -> Option<u8> {
        self.sensors.iter().position(|&s| s == id).map(|i| i as u8)
    }
}

/// Role-resolved addressing for the whole deployment: one [`RoleMap`] per
/// hosted Virtual Component plus the shared gateway. This replaces the
/// old engine's single-VC `RoleMap` in every dispatch decision.
#[derive(Debug, Clone, PartialEq)]
pub struct VcMap {
    /// The shared gateway node.
    pub gateway: NodeId,
    /// Per-VC role maps, indexed by [`VcId`].
    pub vcs: Vec<RoleMap>,
}

impl VcMap {
    /// Builds the map from a spec, validating it.
    ///
    /// # Errors
    ///
    /// See [`TopologyError`].
    pub fn try_from_spec(spec: &TopologySpec) -> Result<Self, TopologyError> {
        {
            let mut ids: Vec<NodeId> = spec.nodes.iter().map(|n| n.id).collect();
            ids.sort_unstable();
            for w in ids.windows(2) {
                if w[0] == w[1] {
                    return Err(TopologyError::DuplicateNodeId(w[0]));
                }
            }
        }
        let mut gateway = None;
        for n in &spec.nodes {
            if n.role == Role::Gateway {
                if gateway.is_some() {
                    return Err(TopologyError::DuplicateGateway);
                }
                gateway = Some(n.id);
            }
        }
        let gateway = gateway.ok_or(TopologyError::MissingGateway)?;

        let n_vcs = spec.n_vcs();
        let mut vcs = Vec::with_capacity(n_vcs);
        for vc in 0..n_vcs as u8 {
            let mut head = None;
            let mut sensors: Vec<(u8, NodeId, u16)> = Vec::new();
            let mut controllers: Vec<(u8, NodeId)> = Vec::new();
            let mut actuators: Vec<(u8, NodeId)> = Vec::new();
            for n in spec.nodes.iter().filter(|n| n.vc == vc) {
                match n.role {
                    Role::Gateway => continue,
                    Role::Head => {
                        if head.is_some() {
                            return Err(TopologyError::DuplicateHead(vc));
                        }
                        head = Some(n.id);
                    }
                    Role::Sensor(tag) => {
                        let reg = n
                            .register
                            .ok_or(TopologyError::MissingSensorRegister(n.id))?;
                        sensors.push((tag, n.id, reg));
                    }
                    Role::Controller(i) => controllers.push((i, n.id)),
                    Role::Actuator(i) => actuators.push((i, n.id)),
                }
            }
            sensors.sort_by_key(|&(tag, _, _)| tag);
            controllers.sort_by_key(|&(i, _)| i);
            actuators.sort_by_key(|&(i, _)| i);
            if sensors.is_empty() {
                return Err(TopologyError::MissingFocusSensor(vc));
            }
            if controllers.is_empty() {
                return Err(TopologyError::MissingController(vc));
            }
            if sensors
                .iter()
                .enumerate()
                .any(|(expect, &(tag, _, _))| tag as usize != expect)
            {
                return Err(TopologyError::NonContiguousSensors(vc));
            }
            if controllers
                .iter()
                .enumerate()
                .any(|(expect, &(i, _))| i as usize != expect)
            {
                return Err(TopologyError::NonContiguousControllers(vc));
            }
            if actuators.len() > 1 {
                return Err(TopologyError::MultipleActuators(vc));
            }
            vcs.push(RoleMap {
                vc,
                gateway,
                head,
                sensor_registers: sensors.iter().map(|&(_, _, r)| r).collect(),
                sensors: sensors.into_iter().map(|(_, id, _)| id).collect(),
                controllers: controllers.into_iter().map(|(_, id)| id).collect(),
                actuators: actuators.into_iter().map(|(_, id)| id).collect(),
            });
        }
        Ok(VcMap { gateway, vcs })
    }

    /// Panicking wrapper over [`VcMap::try_from_spec`] (builder path).
    ///
    /// # Panics
    ///
    /// Panics on any [`TopologyError`].
    #[must_use]
    pub fn from_spec(spec: &TopologySpec) -> Self {
        match VcMap::try_from_spec(spec) {
            Ok(map) => map,
            Err(e) => panic!("malformed topology spec: {e}"),
        }
    }

    /// Number of hosted Virtual Components.
    #[must_use]
    pub fn n_vcs(&self) -> usize {
        self.vcs.len()
    }

    /// The role map of one VC.
    ///
    /// # Panics
    ///
    /// Panics if `vc` is out of range.
    #[must_use]
    pub fn vc(&self, vc: VcId) -> &RoleMap {
        &self.vcs[vc as usize]
    }

    /// The VC whose controller set contains `id`.
    #[must_use]
    pub fn vc_of_controller(&self, id: NodeId) -> Option<VcId> {
        self.vcs.iter().find(|r| r.is_controller(id)).map(|r| r.vc)
    }

    /// The `(vc, tag)` of a sensor node.
    #[must_use]
    pub fn sensor_of(&self, id: NodeId) -> Option<(VcId, u8)> {
        self.vcs
            .iter()
            .find_map(|r| r.sensor_tag(id).map(|t| (r.vc, t)))
    }

    /// The VC whose actuator set contains `id`.
    #[must_use]
    pub fn vc_of_actuator(&self, id: NodeId) -> Option<VcId> {
        self.vcs
            .iter()
            .find(|r| r.actuators.contains(&id))
            .map(|r| r.vc)
    }

    /// The VC headed by `id`.
    #[must_use]
    pub fn vc_of_head(&self, id: NodeId) -> Option<VcId> {
        self.vcs.iter().find(|r| r.head == Some(id)).map(|r| r.vc)
    }

    /// All controllers across VCs, in `(vc, precedence)` order.
    pub fn all_controllers(&self) -> impl Iterator<Item = (VcId, NodeId)> + '_ {
        self.vcs
            .iter()
            .flat_map(|r| r.controllers.iter().map(move |&c| (r.vc, c)))
    }
}

/// What a slot owner is expected to transmit — the semantic attached to a
/// scheduled flow. The driver hands this to the owner's behavior, which
/// decides the concrete [`crate::runtime::Message`]. Every variant names
/// the Virtual Component it serves, because the shared gateway (and the
/// schedule itself) multiplexes all VCs onto one cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowKind {
    /// Gateway → sensor: deliver the plant value backing `(vc, tag)` (the
    /// hardware-in-the-loop downlink).
    HilDownlink {
        /// The served Virtual Component.
        vc: VcId,
        /// The sensor tag served.
        tag: u8,
    },
    /// Sensor → subscribers: publish the latest value of `(vc, tag)`.
    SensorPublish {
        /// The publishing Virtual Component.
        vc: VcId,
        /// The published tag.
        tag: u8,
    },
    /// Controller → actuation endpoint (+observers): output, alert or
    /// keepalive.
    ControlPublish {
        /// The computing Virtual Component.
        vc: VcId,
    },
    /// Actuator → gateway: forward the accepted command.
    ActuateForward {
        /// The forwarding Virtual Component.
        vc: VcId,
    },
    /// Head → members: the control plane (reconfig / fail-safe commands).
    ControlPlane {
        /// The commanding Virtual Component.
        vc: VcId,
    },
}

/// Synthesizes the pipeline-ordered flow list for a deployment. Within
/// each VC every flow is chained `after` its predecessor, so each control
/// cycle completes within one RT-Link cycle (objective 5); *across* VCs
/// the chains are independent, which lets `SlotSchedule::place_flows`
/// interleave them and reuse slots spatially where the topology allows.
/// For the Fig. 5 role set this reproduces the testbed's eight flows
/// exactly:
///
/// 1. `GW→S1` downlink, 2. `S1→Ctrl-A` publish (B, head listen), 3./4.
///    controller outputs (later controllers and head listen), 5. `A1→GW`
///    forward, 6. head control plane, then per monitoring sensor its
///    downlink and publish.
#[must_use]
pub fn synth_flows(map: &VcMap) -> Vec<(Flow, FlowKind)> {
    let mut flows: Vec<(Flow, FlowKind)> = Vec::new();
    for roles in &map.vcs {
        let vc = roles.vc;
        // Per-VC chain head: each VC's pipeline is after-chained
        // independently of every other VC's.
        let mut last: Option<usize> = None;
        let mut chain = |flows: &mut Vec<(Flow, FlowKind)>, flow: Flow, kind: FlowKind| {
            let flow = match last {
                Some(i) => flow.after(i),
                None => flow,
            };
            last = Some(flows.len());
            flows.push((flow, kind));
        };

        // Focus PV: downlink then publish to every controller replica.
        chain(
            &mut flows,
            Flow::new(roles.gateway, roles.sensors[0]),
            FlowKind::HilDownlink { vc, tag: 0 },
        );
        let mut pv_listeners: Vec<NodeId> = roles.controllers[1..].to_vec();
        pv_listeners.extend(roles.head);
        chain(
            &mut flows,
            Flow::new(roles.sensors[0], roles.primary()).with_listeners(pv_listeners),
            FlowKind::SensorPublish { vc, tag: 0 },
        );

        // Controller outputs, in precedence order. Later-scheduled
        // replicas (and the head) observe each output within the same
        // cycle; this is what feeds the deviation detectors.
        let endpoint = roles.actuation_endpoint();
        for (i, &c) in roles.controllers.iter().enumerate() {
            let mut listeners: Vec<NodeId> = roles.controllers[i + 1..].to_vec();
            listeners.extend(roles.head);
            chain(
                &mut flows,
                Flow::new(c, endpoint).with_listeners(listeners),
                FlowKind::ControlPublish { vc },
            );
        }

        // Actuation forwards back to the plant bridge.
        for &a in &roles.actuators {
            chain(
                &mut flows,
                Flow::new(a, roles.gateway),
                FlowKind::ActuateForward { vc },
            );
        }

        // Control plane: head → first controller, everyone else listens.
        if let Some(head) = roles.head {
            let mut listeners: Vec<NodeId> = roles.controllers[1..].to_vec();
            listeners.extend(roles.actuators.iter().copied());
            listeners.push(roles.gateway);
            chain(
                &mut flows,
                Flow::new(head, roles.primary()).with_listeners(listeners),
                FlowKind::ControlPlane { vc },
            );
        }

        // Monitoring sensors: downlink + publish toward the head (or the
        // gateway's log when there is no head).
        for (tag, &s) in roles.sensors.iter().enumerate().skip(1) {
            let tag = tag as u8;
            chain(
                &mut flows,
                Flow::new(roles.gateway, s),
                FlowKind::HilDownlink { vc, tag },
            );
            let (dst, listeners) = match roles.head {
                Some(head) => (head, vec![roles.gateway]),
                None => (roles.gateway, Vec::new()),
            };
            chain(
                &mut flows,
                Flow::new(s, dst).with_listeners(listeners),
                FlowKind::SensorPublish { vc, tag },
            );
        }
    }
    flows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_spec_matches_testbed_layout() {
        let spec = TopologySpec::fig5();
        assert_eq!(spec.nodes.len(), 7);
        let labels: Vec<&str> = spec.nodes.iter().map(|n| n.label.as_str()).collect();
        assert_eq!(labels, ["GW", "S1", "Ctrl-A", "Ctrl-B", "A1", "S2", "Head"]);
        let ids: Vec<u16> = spec.nodes.iter().map(|n| n.id.raw()).collect();
        assert_eq!(ids, [0, 1, 2, 3, 4, 5, 6]);
        assert_eq!(spec.nodes[1].register, Some(30001));
        assert_eq!(spec.nodes[5].register, Some(30007));
        assert!(spec.nodes.iter().all(|n| n.vc == 0));
        assert_eq!(spec.n_vcs(), 1);
    }

    #[test]
    fn fig5_flow_synthesis_reproduces_the_eight_testbed_flows() {
        let map = VcMap::from_spec(&TopologySpec::fig5());
        let flows = synth_flows(&map);
        let as_tuple = |f: &Flow| (f.src.raw(), f.dst.raw(), f.extra_listeners.clone());
        assert_eq!(flows.len(), 8);
        assert_eq!(as_tuple(&flows[0].0), (0, 1, vec![]));
        assert_eq!(as_tuple(&flows[1].0), (1, 2, vec![NodeId(3), NodeId(6)]));
        assert_eq!(as_tuple(&flows[2].0), (2, 4, vec![NodeId(3), NodeId(6)]));
        assert_eq!(as_tuple(&flows[3].0), (3, 4, vec![NodeId(6)]));
        assert_eq!(as_tuple(&flows[4].0), (4, 0, vec![]));
        assert_eq!(
            as_tuple(&flows[5].0),
            (6, 2, vec![NodeId(3), NodeId(4), NodeId(0)])
        );
        assert_eq!(as_tuple(&flows[6].0), (0, 5, vec![]));
        assert_eq!(as_tuple(&flows[7].0), (5, 6, vec![NodeId(0)]));
        // Fully chained: every flow after the first has a predecessor.
        assert!(flows[0].0.after.is_none());
        for (i, (f, _)) in flows.iter().enumerate().skip(1) {
            assert_eq!(f.after, Some(i - 1));
        }
    }

    /// The PR 2 golden trace for the 2-sensor / 3-controller / 1-actuator
    /// star: every flow's (src, dst, listeners) tuple and semantic, not
    /// just the Fig. 5 role set — byte-identical under the multi-VC
    /// refactor (all kinds carry `vc: 0`). Node ids follow the star ring
    /// convention: GW=0, S1=1, Ctrl-A=2, Ctrl-B=3, Ctrl-C=4, A1=5, S2=6,
    /// Head=7.
    #[test]
    fn golden_flows_for_two_sensor_three_controller_star() {
        let map = VcMap::from_spec(&TopologySpec::star(2, 3, 1, true, 15.0));
        let flows = synth_flows(&map);
        let got: Vec<(u16, u16, Vec<u16>, FlowKind)> = flows
            .iter()
            .map(|(f, k)| {
                (
                    f.src.raw(),
                    f.dst.raw(),
                    f.extra_listeners.iter().map(|n| n.raw()).collect(),
                    *k,
                )
            })
            .collect();
        let expected: Vec<(u16, u16, Vec<u16>, FlowKind)> = vec![
            (0, 1, vec![], FlowKind::HilDownlink { vc: 0, tag: 0 }),
            (
                1,
                2,
                vec![3, 4, 7],
                FlowKind::SensorPublish { vc: 0, tag: 0 },
            ),
            (2, 5, vec![3, 4, 7], FlowKind::ControlPublish { vc: 0 }),
            (3, 5, vec![4, 7], FlowKind::ControlPublish { vc: 0 }),
            (4, 5, vec![7], FlowKind::ControlPublish { vc: 0 }),
            (5, 0, vec![], FlowKind::ActuateForward { vc: 0 }),
            (7, 2, vec![3, 4, 5, 0], FlowKind::ControlPlane { vc: 0 }),
            (0, 6, vec![], FlowKind::HilDownlink { vc: 0, tag: 1 }),
            (6, 7, vec![0], FlowKind::SensorPublish { vc: 0, tag: 1 }),
        ];
        assert_eq!(got, expected);
        // The pipeline stays fully chained (one control cycle per RT-Link
        // cycle) no matter how many replicas are inserted in the middle.
        assert!(flows[0].0.after.is_none());
        for (i, (f, _)) in flows.iter().enumerate().skip(1) {
            assert_eq!(f.after, Some(i - 1));
        }
    }

    /// Golden trace for the 2-VC × (1 sensor, 2 controllers, 1 actuator,
    /// head) star: every `(src, dst, listeners, kind, after)` tuple. Ring
    /// id order: GW=0, then VC0 {S1=1, Ctrl-A=2, Ctrl-B=3, A1=4, Head=5},
    /// then VC1 {V1.S1=6, V1.Ctrl-A=7, V1.Ctrl-B=8, V1.A1=9, V1.Head=10}.
    /// Each VC's chain is after-linked independently: VC1's first flow has
    /// no predecessor even though it is emitted seventh.
    type FlowTuple = (u16, u16, Vec<u16>, FlowKind, Option<usize>);

    #[test]
    fn golden_flows_for_two_vc_star() {
        let spec = TopologySpec::multi_star(2, 1, 2, 1, true, 15.0);
        let map = VcMap::from_spec(&spec);
        assert_eq!(map.n_vcs(), 2);
        let flows = synth_flows(&map);
        let got: Vec<FlowTuple> = flows
            .iter()
            .map(|(f, k)| {
                (
                    f.src.raw(),
                    f.dst.raw(),
                    f.extra_listeners.iter().map(|n| n.raw()).collect(),
                    *k,
                    f.after,
                )
            })
            .collect();
        let expected: Vec<FlowTuple> = vec![
            // --- VC 0 chain -------------------------------------------
            (0, 1, vec![], FlowKind::HilDownlink { vc: 0, tag: 0 }, None),
            (
                1,
                2,
                vec![3, 5],
                FlowKind::SensorPublish { vc: 0, tag: 0 },
                Some(0),
            ),
            (
                2,
                4,
                vec![3, 5],
                FlowKind::ControlPublish { vc: 0 },
                Some(1),
            ),
            (3, 4, vec![5], FlowKind::ControlPublish { vc: 0 }, Some(2)),
            (4, 0, vec![], FlowKind::ActuateForward { vc: 0 }, Some(3)),
            (
                5,
                2,
                vec![3, 4, 0],
                FlowKind::ControlPlane { vc: 0 },
                Some(4),
            ),
            // --- VC 1 chain (independent of VC 0's) -------------------
            (0, 6, vec![], FlowKind::HilDownlink { vc: 1, tag: 0 }, None),
            (
                6,
                7,
                vec![8, 10],
                FlowKind::SensorPublish { vc: 1, tag: 0 },
                Some(6),
            ),
            (
                7,
                9,
                vec![8, 10],
                FlowKind::ControlPublish { vc: 1 },
                Some(7),
            ),
            (8, 9, vec![10], FlowKind::ControlPublish { vc: 1 }, Some(8)),
            (9, 0, vec![], FlowKind::ActuateForward { vc: 1 }, Some(9)),
            (
                10,
                7,
                vec![8, 9, 0],
                FlowKind::ControlPlane { vc: 1 },
                Some(10),
            ),
        ];
        assert_eq!(got, expected);
    }

    #[test]
    fn multi_star_vc_focus_registers_and_labels() {
        let spec = TopologySpec::multi_star(3, 2, 2, 1, true, 15.0);
        assert_eq!(spec.n_vcs(), 3);
        let map = VcMap::from_spec(&spec);
        assert_eq!(map.vc(0).sensor_registers[0], 30001);
        assert_eq!(map.vc(1).sensor_registers[0], 30002);
        assert_eq!(map.vc(2).sensor_registers[0], 30003);
        // VC 1's labels carry the V1. prefix; VC 0 keeps the legacy names.
        let label_of = |id: NodeId| {
            spec.nodes
                .iter()
                .find(|n| n.id == id)
                .unwrap()
                .label
                .clone()
        };
        assert_eq!(label_of(map.vc(0).primary()), "Ctrl-A");
        assert_eq!(label_of(map.vc(1).primary()), "V1.Ctrl-A");
        assert_eq!(label_of(map.vc(2).head.unwrap()), "V2.Head");
        // Reverse lookups agree.
        assert_eq!(map.vc_of_controller(map.vc(1).controllers[1]), Some(1));
        assert_eq!(map.sensor_of(map.vc(2).sensors[1]), Some((2, 1)));
        assert_eq!(map.vc_of_head(map.vc(1).head.unwrap()), Some(1));
        assert_eq!(map.vc_of_actuator(map.vc(0).actuators[0]), Some(0));
    }

    #[test]
    fn single_vc_star_is_multi_star_of_one() {
        assert_eq!(
            TopologySpec::star(2, 3, 1, true, 15.0),
            TopologySpec::multi_star(1, 2, 3, 1, true, 15.0)
        );
    }

    #[test]
    fn minimal_topology_routes_actuation_through_gateway() {
        let map = VcMap::from_spec(&TopologySpec::minimal(10.0));
        let roles = map.vc(0);
        assert_eq!(roles.actuation_endpoint(), roles.gateway);
        assert!(roles.head.is_none());
        let flows = synth_flows(&map);
        // Downlink, publish, controller output — three flows, no control
        // plane, no forwards.
        assert_eq!(flows.len(), 3);
        assert_eq!(flows[2].1, FlowKind::ControlPublish { vc: 0 });
        assert_eq!(flows[2].0.dst, roles.gateway);
    }

    #[test]
    fn wide_star_flows_scale_with_roles() {
        let map = VcMap::from_spec(&TopologySpec::star(3, 3, 1, true, 15.0));
        let flows = synth_flows(&map);
        // 1 downlink + 1 publish + 3 outputs + 1 forward + 1 plane
        // + 2 * (downlink + publish) = 11.
        assert_eq!(flows.len(), 11);
        // The primary's output is observed by both backups and the head.
        let primary_out = flows
            .iter()
            .find(|(f, k)| {
                matches!(k, FlowKind::ControlPublish { vc: 0 }) && f.src == map.vc(0).primary()
            })
            .unwrap();
        assert_eq!(primary_out.0.extra_listeners.len(), 3);
    }

    /// The wraparound fix: monitoring sensors past the 11-entry table get
    /// unique synthetic registers instead of silently aliasing earlier
    /// monitors.
    #[test]
    fn monitor_registers_never_alias_past_the_table() {
        assert_eq!(monitor_register(0), 30007);
        assert_eq!(monitor_register(10), 30012);
        assert_eq!(monitor_register(11), 30013);
        assert_eq!(monitor_register(12), 30014);
        // A 20-sensor star: one focus + 19 monitors, all registers unique.
        let spec = TopologySpec::star(20, 1, 0, false, 15.0);
        let mut regs: Vec<u16> = spec.nodes.iter().filter_map(|n| n.register).collect();
        assert_eq!(regs.len(), 20);
        regs.sort_unstable();
        regs.dedup();
        assert_eq!(regs.len(), 20, "monitor registers must not alias");
    }

    #[test]
    fn malformed_specs_return_typed_errors() {
        let good = TopologySpec::fig5();

        let mut no_gw = good.clone();
        no_gw.nodes.retain(|n| n.role != Role::Gateway);
        assert_eq!(
            VcMap::try_from_spec(&no_gw),
            Err(TopologyError::MissingGateway)
        );

        let mut two_gw = good.clone();
        let mut extra = two_gw.nodes[0].clone();
        extra.id = NodeId(99);
        two_gw.nodes.push(extra);
        assert_eq!(
            VcMap::try_from_spec(&two_gw),
            Err(TopologyError::DuplicateGateway)
        );

        let mut dup_id = good.clone();
        dup_id.nodes[2].id = dup_id.nodes[1].id;
        assert_eq!(
            VcMap::try_from_spec(&dup_id),
            Err(TopologyError::DuplicateNodeId(dup_id.nodes[1].id))
        );

        let mut no_sensor = good.clone();
        no_sensor
            .nodes
            .retain(|n| !matches!(n.role, Role::Sensor(_)));
        assert_eq!(
            VcMap::try_from_spec(&no_sensor),
            Err(TopologyError::MissingFocusSensor(0))
        );

        let mut no_ctrl = good.clone();
        no_ctrl
            .nodes
            .retain(|n| !matches!(n.role, Role::Controller(_)));
        assert_eq!(
            VcMap::try_from_spec(&no_ctrl),
            Err(TopologyError::MissingController(0))
        );

        let mut gap = good.clone();
        for n in &mut gap.nodes {
            if n.role == Role::Controller(1) {
                n.role = Role::Controller(2);
            }
        }
        assert_eq!(
            VcMap::try_from_spec(&gap),
            Err(TopologyError::NonContiguousControllers(0))
        );

        let mut two_act = good.clone();
        two_act.nodes.push(NodeSpec {
            id: NodeId(42),
            vc: 0,
            role: Role::Actuator(1),
            label: "A2".into(),
            position: Position::new(1.0, 1.0),
            register: None,
        });
        assert_eq!(
            VcMap::try_from_spec(&two_act),
            Err(TopologyError::MultipleActuators(0))
        );

        let mut no_reg = good.clone();
        no_reg.nodes[1].register = None;
        assert_eq!(
            VcMap::try_from_spec(&no_reg),
            Err(TopologyError::MissingSensorRegister(no_reg.nodes[1].id))
        );

        let mut sparse_vc = good;
        for n in &mut sparse_vc.nodes {
            if n.role != Role::Gateway {
                n.vc = 2; // VCs 0 and 1 left unpopulated.
            }
        }
        assert!(matches!(
            VcMap::try_from_spec(&sparse_vc),
            Err(TopologyError::MissingFocusSensor(0))
        ));
    }

    #[test]
    #[should_panic(expected = "malformed topology spec")]
    fn panicking_wrapper_kept_for_builder_path() {
        let mut spec = TopologySpec::fig5();
        spec.nodes.retain(|n| n.role != Role::Gateway);
        let _ = VcMap::from_spec(&spec);
    }
}
