//! Topology specification and schedule synthesis.
//!
//! A [`TopologySpec`] describes the node set of a deployment by *role*
//! (gateway / sensor / controller / actuator / head) instead of by
//! well-known node id. The runtime resolves roles into a [`VcMap`] — one
//! [`RoleMap`] per hosted Virtual Component — and synthesizes the RT-Link
//! flow pipeline from it, so the same engine runs the paper's seven-node
//! Fig. 5 testbed, a wide star with extra sensors and controllers, a
//! degenerate three-node loop, or several concurrent control loops sharing
//! one gateway and one RT-Link cycle, without code changes.
//!
//! # `VcId` addressing convention
//!
//! Every non-gateway node belongs to exactly one Virtual Component,
//! identified by a dense [`VcId`] (`0..n_vcs`). VC `0` is the paper's
//! focus loop (LC-LTS by default); higher ids host additional plant loops
//! in the canonical order of [`evm_plant::vc_host_loops`]. Role indices
//! (sensor tags, controller precedence, actuator index) are *per VC*:
//! `(vc, Sensor(0))` is VC `vc`'s focus PV sensor. The gateway is shared
//! by every VC and carries no meaningful VC tag of its own. Frames and
//! flow semantics carry the `VcId` explicitly, so one shared TDMA cycle
//! closes every hosted loop without cross-talk.

use std::collections::BTreeMap;

use evm_mac::rtlink::Flow;
use evm_netsim::{Channel, NodeId, NodeInfo, NodeKind, Position, Topology};

/// Identifies one Virtual Component hosted by the deployment (dense,
/// starting at 0; VC 0 is the focus loop). `u16` so a fleet deployment
/// can host tens of thousands of VCs in one process; the star family
/// stays bounded by [`MAX_VCS`].
pub type VcId = u16;

/// The largest VC pool one deployment can host — bounded by the eight
/// plant loops of §4.2 ([`evm_plant::vc_host_loops`]).
pub const MAX_VCS: usize = 8;

/// The role a node plays in its Virtual Component's control loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// ModBus bridge to the plant; origin of HIL downlinks, sink of
    /// actuation forwards (and the actuation endpoint for every VC whose
    /// topology has no actuator node). Shared by all VCs.
    Gateway,
    /// Publishes one plant signal. Sensor `0` carries its VC's focus PV;
    /// higher indices are monitoring flows.
    Sensor(u8),
    /// Hosts a replica of its VC's control capsule. Controller `0` starts
    /// as the Active primary; higher indices are backups.
    Controller(u8),
    /// Drives its VC's valve from accepted controller outputs. At most
    /// one per Virtual Component — controller outputs address a single
    /// actuation endpoint.
    Actuator(u8),
    /// A Virtual Component's head: arbitration and the control plane.
    Head,
    /// A dedicated store-and-forward node extending its VC's reach beyond
    /// one radio hop. Relays own no control state: the routing pass
    /// ([`route_flows`]) assigns them forwarding jobs, and any node can
    /// forward — a `Relay` node just does nothing else.
    Relay(u8),
}

impl Role {
    /// The physical node kind this role maps onto.
    #[must_use]
    pub fn kind(self) -> NodeKind {
        match self {
            Role::Gateway => NodeKind::Gateway,
            Role::Sensor(_) => NodeKind::Sensor,
            Role::Controller(_) | Role::Head => NodeKind::Controller,
            Role::Actuator(_) => NodeKind::Actuator,
            Role::Relay(_) => NodeKind::Relay,
        }
    }
}

/// One node of a deployment.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeSpec {
    /// Node identity.
    pub id: NodeId,
    /// The Virtual Component this node belongs to (ignored for the
    /// gateway, which serves every VC).
    pub vc: VcId,
    /// Role in its VC's control loop.
    pub role: Role,
    /// Human-readable label (used in traces, series names and results).
    pub label: String,
    /// Planar position (drives path loss and interference).
    pub position: Position,
    /// For sensors: the ModBus input register this sensor publishes.
    pub register: Option<u16>,
}

/// ModBus input registers handed to monitoring sensors (tags 1..), in
/// order. The first matches the Fig. 5 testbed's tower-feed flow.
const MONITOR_REGISTERS: [u16; 11] = [
    30007, 30002, 30003, 30005, 30006, 30004, 30008, 30009, 30010, 30011, 30012,
];

/// First synthetic input register handed out once [`MONITOR_REGISTERS`]
/// is exhausted, so monitoring sensors past the table never alias.
const MONITOR_OVERFLOW_BASE: u16 = 30013;

/// The input register assigned to the `idx`-th monitoring sensor
/// (0-based; sensor tag `idx + 1`). The first eleven come from the
/// Fig. 5-calibrated table; beyond it, registers are derived uniquely as
/// `30013 + k` instead of wrapping around and silently aliasing earlier
/// monitors.
#[must_use]
pub fn monitor_register(idx: usize) -> u16 {
    match MONITOR_REGISTERS.get(idx) {
        Some(&r) => r,
        None => MONITOR_OVERFLOW_BASE + (idx - MONITOR_REGISTERS.len()) as u16,
    }
}

/// The focus PV input register of each VC, in canonical VC order. Mirrors
/// `RegisterMap::gas_plant_standard` for the pv tags of
/// [`evm_plant::vc_host_loops`] (engine construction cross-checks the
/// two; see `setup.rs`).
pub const VC_FOCUS_REGISTERS: [u16; MAX_VCS] = [
    30001, // LC-LTS: LTS.LiquidPct
    30002, // LC-InletSep: InletSep.LevelPct
    30003, // TC-Chiller: Chiller.OutletTempK
    30004, // FC-SalesGas: SalesGas.MolarFlow
    30008, // PC-Column: Column.PressureKPa
    30009, // LC-Sump: Column.SumpLevelPct
    30010, // LC-RefluxDrum: Column.DrumLevelPct
    30011, // TC-Tray: Column.TrayTempK
];

/// Default adjacent-link spacing of [`TopologySpec::line`], calibrated
/// against the default channel model: 40 m links are loss-free (packet
/// error rate exactly zero) while 80 m skip links are out of range, so a
/// line closes its loop only through the relays.
pub const LINE_SPACING_M: f64 = 40.0;
/// Default lattice spacing of [`TopologySpec::grid`]: 52 m orthogonal
/// links connect, 73.5 m diagonals do not — clean 4-connectivity.
pub const GRID_SPACING_M: f64 = 52.0;
/// Default relay-chain hop of [`TopologySpec::clustered`] (loss-free).
pub const CLUSTER_HOP_M: f64 = 40.0;
/// Default cluster disc radius of [`TopologySpec::clustered`]:
/// intra-cluster links stay within a few meters, far below any loss.
pub const CLUSTER_RING_M: f64 = 2.0;

/// `Ctrl-A`, `Ctrl-B`, … (wraps to `Ctrl-27` past the alphabet).
fn controller_label(prefix: &str, i: usize) -> String {
    if i < 26 {
        format!("{prefix}Ctrl-{}", char::from(b'A' + i as u8))
    } else {
        format!("{prefix}Ctrl-{i}")
    }
}

/// A deployment described by roles.
#[derive(Debug, Clone, PartialEq)]
pub struct TopologySpec {
    /// The node set. The gateway must be present exactly once.
    pub nodes: Vec<NodeSpec>,
    /// Explicit bidirectional links. `None` (the default everywhere but
    /// fleet deployments) derives connectivity from the channel model;
    /// `Some` bypasses the O(n²) derivation and uses exactly these links
    /// — required at fleet scale, where channel-derived adjacency would
    /// also mesh every co-located cell together.
    pub links: Option<Vec<(NodeId, NodeId)>>,
}

impl TopologySpec {
    /// The paper's Fig. 5 seven-node star: gateway at the center, ring of
    /// S1, Ctrl-A, Ctrl-B, A1, S2 and the head at 15 m.
    #[must_use]
    pub fn fig5() -> Self {
        TopologySpec::star(2, 2, 1, true, 15.0)
    }

    /// A single-VC star deployment: the gateway at the origin, all other
    /// nodes on a ring of `radius_m`. Ring order (and id order) follows
    /// the Fig. 5 convention: focus sensor, controllers, actuators,
    /// monitoring sensors, head — so `star(2, 2, 1, true, 15.0)` *is* the
    /// testbed.
    ///
    /// # Panics
    ///
    /// Panics unless there is at least one sensor and one controller.
    #[must_use]
    pub fn star(
        sensors: usize,
        controllers: usize,
        actuators: usize,
        head: bool,
        radius_m: f64,
    ) -> Self {
        TopologySpec::multi_star(1, sensors, controllers, actuators, head, radius_m)
    }

    /// A multi-VC star deployment: one shared gateway at the origin and
    /// `vcs` Virtual Components, each a full role set (`sensors`,
    /// `controllers`, `actuators`, `head`) on one shared ring of
    /// `radius_m`. VC `k`'s nodes occupy a contiguous arc; ids are
    /// sequential across VCs; VC 0 keeps the legacy labels (`S1`,
    /// `Ctrl-A`, …) while VC `k > 0` prefixes them with `Vk.`.
    /// `multi_star(1, ...)` is exactly [`TopologySpec::star`].
    ///
    /// Each VC's focus sensor reads that VC's loop PV register
    /// ([`VC_FOCUS_REGISTERS`]); monitoring sensors draw from the shared
    /// monitor table ([`monitor_register`]).
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= vcs <= MAX_VCS` and each VC has at least one
    /// sensor and one controller.
    #[must_use]
    pub fn multi_star(
        vcs: usize,
        sensors: usize,
        controllers: usize,
        actuators: usize,
        head: bool,
        radius_m: f64,
    ) -> Self {
        assert!(
            (1..=MAX_VCS).contains(&vcs),
            "vc count out of 1..={MAX_VCS}: {vcs}"
        );
        assert!(sensors >= 1, "a control loop needs its focus sensor");
        assert!(controllers >= 1, "a control loop needs a controller");
        let mut roles: Vec<(VcId, Role, String)> = Vec::new();
        for vc in 0..vcs as VcId {
            let prefix = if vc == 0 {
                String::new()
            } else {
                format!("V{vc}.")
            };
            roles.push((vc, Role::Sensor(0), format!("{prefix}S1")));
            for i in 0..controllers {
                roles.push((vc, Role::Controller(i as u8), controller_label(&prefix, i)));
            }
            for i in 0..actuators {
                roles.push((vc, Role::Actuator(i as u8), format!("{prefix}A{}", i + 1)));
            }
            for i in 1..sensors {
                roles.push((vc, Role::Sensor(i as u8), format!("{prefix}S{}", i + 1)));
            }
            if head {
                roles.push((vc, Role::Head, format!("{prefix}Head")));
            }
        }

        let ring = roles.len();
        let mut nodes = vec![NodeSpec {
            id: NodeId(0),
            vc: 0,
            role: Role::Gateway,
            label: "GW".to_string(),
            position: Position::new(0.0, 0.0),
            register: None,
        }];
        for (i, (vc, role, label)) in roles.into_iter().enumerate() {
            let angle = 2.0 * std::f64::consts::PI * i as f64 / ring as f64;
            let register = match role {
                Role::Sensor(0) => Some(VC_FOCUS_REGISTERS[vc as usize]),
                Role::Sensor(tag) => Some(monitor_register(tag as usize - 1)),
                _ => None,
            };
            nodes.push(NodeSpec {
                id: NodeId((i + 1) as u16),
                vc,
                role,
                label,
                position: Position::new(radius_m * angle.cos(), radius_m * angle.sin()),
                register,
            });
        }
        TopologySpec { nodes, links: None }
    }

    /// The degenerate three-node Virtual Component: gateway, one sensor,
    /// one controller. The gateway doubles as the actuation endpoint and
    /// no head means no failover machinery — the smallest closed loop the
    /// runtime can express.
    #[must_use]
    pub fn minimal(radius_m: f64) -> Self {
        TopologySpec::star(1, 1, 0, false, radius_m)
    }

    /// A multi-hop line: the focus sensor sits `hops` radio hops left of
    /// the gateway behind `hops - 1` relays, and the control pod
    /// (controllers, head) one hop right of it with the actuator one hop
    /// further — the `sensor—relay—gateway—controller—actuator` chain of
    /// the paper's multi-hop deployments. At the default 40 m spacing
    /// every adjacent link is loss-free while skip links are out of
    /// range, so closing the loop *requires* the relay flows.
    ///
    /// Geometry (spacing `d`): sensor at `(-hops·d, 0)` (monitors stacked
    /// at `0.3·d` y-offsets beside it), relays at `(-k·d, 0)`, gateway at
    /// the origin, controller `i` at `(d, 0.25·d·i)`, the head at
    /// `(d, -0.25·d)` and actuators at `(2d, 0.25·d·j)`. Node ids follow
    /// the star convention (gateway, focus sensor, controllers,
    /// actuators, monitors, head) with relays appended last, `R1` nearest
    /// the gateway.
    ///
    /// # Panics
    ///
    /// Panics unless `hops >= 1` and there is at least one sensor and one
    /// controller.
    #[must_use]
    pub fn line(
        hops: usize,
        sensors: usize,
        controllers: usize,
        actuators: usize,
        head: bool,
        spacing_m: f64,
    ) -> Self {
        TopologySpec::line_with_backups(hops, sensors, controllers, actuators, head, spacing_m, 0)
    }

    /// [`TopologySpec::line`] plus `backups` redundant relay chains: for
    /// each backup `b`, forwarders `RB1..` mirror the primary relays at a
    /// `0.25·spacing·b` y-offset, so every primary hop has a geometric
    /// twin (at the default 40 m spacing the first backup chain's links
    /// are ≈41.2 m — still in the loss-free band). The routing pass's
    /// deterministic BFS prefers the lower-id primaries while they live;
    /// the backups exist for the runtime reconfiguration plane to re-route
    /// through when a primary forwarder dies. Backup ids follow the
    /// primary relays.
    ///
    /// # Panics
    ///
    /// Panics unless `hops >= 1` and there is at least one sensor and one
    /// controller.
    #[must_use]
    pub fn line_with_backups(
        hops: usize,
        sensors: usize,
        controllers: usize,
        actuators: usize,
        head: bool,
        spacing_m: f64,
        backups: usize,
    ) -> Self {
        assert!(hops >= 1, "a line needs at least one hop to the sensor");
        assert!(sensors >= 1, "a control loop needs its focus sensor");
        assert!(controllers >= 1, "a control loop needs a controller");
        let d = spacing_m;
        let far = -(hops as f64) * d;
        let mut roles: Vec<(Role, String, Position)> = Vec::new();
        roles.push((Role::Sensor(0), "S1".into(), Position::new(far, 0.0)));
        for i in 0..controllers {
            roles.push((
                Role::Controller(i as u8),
                controller_label("", i),
                Position::new(d, 0.25 * d * i as f64),
            ));
        }
        for j in 0..actuators {
            roles.push((
                Role::Actuator(j as u8),
                format!("A{}", j + 1),
                Position::new(2.0 * d, 0.25 * d * j as f64),
            ));
        }
        for k in 1..sensors {
            roles.push((
                Role::Sensor(k as u8),
                format!("S{}", k + 1),
                Position::new(far, 0.3 * d * k as f64),
            ));
        }
        if head {
            roles.push((Role::Head, "Head".into(), Position::new(d, -0.25 * d)));
        }
        for k in 1..hops {
            roles.push((
                Role::Relay(k as u8 - 1),
                format!("R{k}"),
                Position::new(-(k as f64) * d, 0.0),
            ));
        }
        for b in 1..=backups {
            for k in 1..hops {
                let label = if b == 1 {
                    format!("RB{k}")
                } else {
                    format!("RB{b}.{k}")
                };
                roles.push((
                    Role::Relay(((hops - 1) * b + k - 1) as u8),
                    label,
                    Position::new(-(k as f64) * d, 0.25 * d * b as f64),
                ));
            }
        }
        TopologySpec::assemble_single_vc(roles)
    }

    /// A `w × h` lattice with `spacing_m` between orthogonal neighbors
    /// (the default 52 m keeps diagonals out of range: clean
    /// 4-connectivity). The gateway takes the first cell and the focus
    /// sensor the opposite corner, so every sensor flow crosses the grid
    /// over relay hops; the remaining roles (controllers, actuators,
    /// monitors, head) fill cells in row-major order and every leftover
    /// cell becomes a relay.
    ///
    /// Node ids follow the star convention (gateway, focus sensor,
    /// controllers, actuators, monitors, head, relays); positions come
    /// from the assigned cells.
    ///
    /// # Panics
    ///
    /// Panics unless the lattice has a cell per role (`w·h >=` role
    /// count) and there is at least one sensor and one controller.
    #[must_use]
    pub fn grid(
        w: usize,
        h: usize,
        sensors: usize,
        controllers: usize,
        actuators: usize,
        head: bool,
        spacing_m: f64,
    ) -> Self {
        assert!(sensors >= 1, "a control loop needs its focus sensor");
        assert!(controllers >= 1, "a control loop needs a controller");
        let roles_total = 1 + sensors + controllers + actuators + usize::from(head);
        assert!(
            w >= 1 && h >= 1 && w * h >= roles_total,
            "a {w}x{h} grid cannot seat {roles_total} roles"
        );
        let cell =
            |idx: usize| Position::new((idx % w) as f64 * spacing_m, (idx / w) as f64 * spacing_m);
        let mut roles: Vec<(Role, String, Position)> = Vec::new();
        let mut next_cell = 1usize; // cell 0 is the gateway's
        roles.push((Role::Sensor(0), "S1".into(), cell(w * h - 1)));
        let seat = |role: Role, label: String, next_cell: &mut usize| {
            let c = *next_cell;
            *next_cell += 1;
            (role, label, cell(c))
        };
        for i in 0..controllers {
            let r = seat(
                Role::Controller(i as u8),
                controller_label("", i),
                &mut next_cell,
            );
            roles.push(r);
        }
        for j in 0..actuators {
            let r = seat(
                Role::Actuator(j as u8),
                format!("A{}", j + 1),
                &mut next_cell,
            );
            roles.push(r);
        }
        for k in 1..sensors {
            let r = seat(Role::Sensor(k as u8), format!("S{}", k + 1), &mut next_cell);
            roles.push(r);
        }
        if head {
            let r = seat(Role::Head, "Head".into(), &mut next_cell);
            roles.push(r);
        }
        let mut relay = 0u8;
        while next_cell < w * h - 1 {
            relay += 1;
            let r = seat(Role::Relay(relay - 1), format!("R{relay}"), &mut next_cell);
            roles.push(r);
        }
        TopologySpec::assemble_single_vc(roles)
    }

    /// `clusters` Virtual Components, each a full role set packed into a
    /// tight disc three hops from the shared gateway behind a two-relay
    /// chain. Intra-cluster links are a few meters, relay hops `hop_m`
    /// (default 40 m, loss-free), and distinct clusters are far out of
    /// each other's 2-hop interference sets — the layout that lets the
    /// slot scheduler reuse intra-cluster slots across clusters.
    ///
    /// Cluster `k` sits at angle `2πk/clusters`: relays `R1`/`R2` at
    /// `hop_m` and `2·hop_m` along the ray, the cluster's members on a
    /// ring of `ring_m` around `3·hop_m`. Ids are sequential per VC in
    /// star convention with the VC's relays appended; VC `k > 0` labels
    /// carry the `Vk.` prefix.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= clusters <= MAX_VCS` and each cluster has at
    /// least one sensor and one controller.
    #[must_use]
    pub fn clustered(
        clusters: usize,
        sensors: usize,
        controllers: usize,
        actuators: usize,
        head: bool,
        hop_m: f64,
        ring_m: f64,
    ) -> Self {
        TopologySpec::clustered_with_backups(
            clusters,
            sensors,
            controllers,
            actuators,
            head,
            hop_m,
            ring_m,
            0,
        )
    }

    /// [`TopologySpec::clustered`] plus `backups` redundant relay chains
    /// per cluster: backup forwarders `RB1`/`RB2` shadow the cluster's
    /// two-relay chain at small perpendicular offsets (10 m at the first
    /// hop, 0.5 m at the second — calibrated so every backup link stays
    /// in the loss-free band at the default 40 m hop). BFS tie-breaks
    /// keep routes on the lower-id primaries; the backups carry the
    /// cluster after a primary relay dies and the reconfiguration plane
    /// re-routes. Backup ids follow each cluster's primary relays.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= clusters <= MAX_VCS` and each cluster has at
    /// least one sensor and one controller.
    #[must_use]
    #[allow(clippy::too_many_arguments)]
    pub fn clustered_with_backups(
        clusters: usize,
        sensors: usize,
        controllers: usize,
        actuators: usize,
        head: bool,
        hop_m: f64,
        ring_m: f64,
        backups: usize,
    ) -> Self {
        assert!(
            (1..=MAX_VCS).contains(&clusters),
            "cluster count out of 1..={MAX_VCS}: {clusters}"
        );
        assert!(sensors >= 1, "a control loop needs its focus sensor");
        assert!(controllers >= 1, "a control loop needs a controller");
        let mut nodes = vec![NodeSpec {
            id: NodeId(0),
            vc: 0,
            role: Role::Gateway,
            label: "GW".to_string(),
            position: Position::new(0.0, 0.0),
            register: None,
        }];
        let members = sensors + controllers + actuators + usize::from(head);
        let mut next_id = 1u16;
        for vc in 0..clusters as VcId {
            let prefix = if vc == 0 {
                String::new()
            } else {
                format!("V{vc}.")
            };
            let angle = 2.0 * std::f64::consts::PI * f64::from(vc) / clusters as f64;
            let (dx, dy) = (angle.cos(), angle.sin());
            let center = Position::new(3.0 * hop_m * dx, 3.0 * hop_m * dy);
            let mut roles: Vec<(Role, String)> = vec![(Role::Sensor(0), format!("{prefix}S1"))];
            for i in 0..controllers {
                roles.push((Role::Controller(i as u8), controller_label(&prefix, i)));
            }
            for j in 0..actuators {
                roles.push((Role::Actuator(j as u8), format!("{prefix}A{}", j + 1)));
            }
            for k in 1..sensors {
                roles.push((Role::Sensor(k as u8), format!("{prefix}S{}", k + 1)));
            }
            if head {
                roles.push((Role::Head, format!("{prefix}Head")));
            }
            debug_assert_eq!(roles.len(), members);
            for (i, (role, label)) in roles.into_iter().enumerate() {
                let theta = 2.0 * std::f64::consts::PI * i as f64 / members as f64;
                let register = match role {
                    Role::Sensor(0) => Some(VC_FOCUS_REGISTERS[vc as usize]),
                    Role::Sensor(tag) => Some(monitor_register(tag as usize - 1)),
                    _ => None,
                };
                nodes.push(NodeSpec {
                    id: NodeId(next_id),
                    vc,
                    role,
                    label,
                    position: Position::new(
                        center.x + ring_m * theta.cos(),
                        center.y + ring_m * theta.sin(),
                    ),
                    register,
                });
                next_id += 1;
            }
            for (r, dist) in [(0u8, hop_m), (1u8, 2.0 * hop_m)] {
                nodes.push(NodeSpec {
                    id: NodeId(next_id),
                    vc,
                    role: Role::Relay(r),
                    label: format!("{prefix}R{}", r + 1),
                    position: Position::new(dist * dx, dist * dy),
                    register: None,
                });
                next_id += 1;
            }
            // Redundant chains at small perpendicular offsets (the unit
            // normal of the cluster's ray): geometric twins of the
            // primaries that the reconfiguration plane re-routes through.
            let (nx, ny) = (-dy, dx);
            for b in 1..=backups {
                for (r, dist, off) in [(0u8, hop_m, 10.0), (1u8, 2.0 * hop_m, 0.5)] {
                    let off = off * b as f64;
                    let label = if b == 1 {
                        format!("{prefix}RB{}", r + 1)
                    } else {
                        format!("{prefix}RB{b}.{}", r + 1)
                    };
                    nodes.push(NodeSpec {
                        id: NodeId(next_id),
                        vc,
                        role: Role::Relay(2 * b as u8 + r),
                        label,
                        position: Position::new(dist * dx + off * nx, dist * dy + off * ny),
                        register: None,
                    });
                    next_id += 1;
                }
            }
        }
        TopologySpec { nodes, links: None }
    }

    /// A fleet deployment: one shared gateway and `n` minimal Virtual
    /// Components (focus sensor + one controller each, no head, no
    /// actuator — the gateway is every VC's actuation endpoint), built
    /// for the 10k-VC scale the fleet engine targets. VC `k`'s pair sits
    /// at angle `2πk/n` on a 12 m ring; ids are `S = 1 + 2k`,
    /// `C = 2 + 2k`; labels `Fk.S` / `Fk.C`. Each VC's sensor reads the
    /// focus register of canonical loop `k % MAX_VCS`
    /// ([`VC_FOCUS_REGISTERS`]), mirroring the cycled loop hosting of
    /// `Scenario::fleet`.
    ///
    /// Connectivity is **explicit** (`links`): gateway↔sensor,
    /// gateway↔controller and sensor↔controller per VC — every flow is
    /// single-hop, and the O(n²) channel derivation (which would mesh
    /// all co-located cells) is bypassed.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= n <= 32000` (node ids are `u16`).
    #[must_use]
    pub fn fleet(n: usize) -> Self {
        assert!(
            (1..=32_000).contains(&n),
            "fleet size out of 1..=32000: {n}"
        );
        let mut nodes = Vec::with_capacity(1 + 2 * n);
        let mut links = Vec::with_capacity(3 * n);
        nodes.push(NodeSpec {
            id: NodeId(0),
            vc: 0,
            role: Role::Gateway,
            label: "GW".to_string(),
            position: Position::new(0.0, 0.0),
            register: None,
        });
        for k in 0..n {
            let vc = k as VcId;
            let angle = 2.0 * std::f64::consts::PI * k as f64 / n as f64;
            let pos = Position::new(12.0 * angle.cos(), 12.0 * angle.sin());
            let sensor = NodeId((1 + 2 * k) as u16);
            let ctrl = NodeId((2 + 2 * k) as u16);
            nodes.push(NodeSpec {
                id: sensor,
                vc,
                role: Role::Sensor(0),
                label: format!("F{k}.S"),
                position: pos,
                register: Some(VC_FOCUS_REGISTERS[k % MAX_VCS]),
            });
            nodes.push(NodeSpec {
                id: ctrl,
                vc,
                role: Role::Controller(0),
                label: format!("F{k}.C"),
                position: pos,
                register: None,
            });
            links.push((NodeId(0), sensor));
            links.push((NodeId(0), ctrl));
            links.push((sensor, ctrl));
        }
        TopologySpec {
            nodes,
            links: Some(links),
        }
    }

    /// Shared assembly for the single-VC multi-hop generators: prepends
    /// the gateway at the origin, assigns sequential ids in role order and
    /// fills sensor registers by tag.
    fn assemble_single_vc(roles: Vec<(Role, String, Position)>) -> Self {
        let mut nodes = vec![NodeSpec {
            id: NodeId(0),
            vc: 0,
            role: Role::Gateway,
            label: "GW".to_string(),
            position: Position::new(0.0, 0.0),
            register: None,
        }];
        for (i, (role, label, position)) in roles.into_iter().enumerate() {
            let register = match role {
                Role::Sensor(0) => Some(VC_FOCUS_REGISTERS[0]),
                Role::Sensor(tag) => Some(monitor_register(tag as usize - 1)),
                _ => None,
            };
            nodes.push(NodeSpec {
                id: NodeId((i + 1) as u16),
                vc: 0,
                role,
                label,
                position,
                register,
            });
        }
        TopologySpec { nodes, links: None }
    }

    /// Number of Virtual Components the spec hosts (1 + highest VC tag).
    #[must_use]
    pub fn n_vcs(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| n.role != Role::Gateway)
            .map(|n| n.vc as usize + 1)
            .max()
            .unwrap_or(1)
    }

    /// Resolves the spec into the physical [`Topology`] plus the
    /// [`VcMap`] used for dispatch.
    ///
    /// # Errors
    ///
    /// [`TopologyError`] on a malformed spec: no gateway, duplicate ids,
    /// non-contiguous VC or role indices, a missing focus sensor or
    /// controller, or more than one actuator/head per VC.
    pub fn try_resolve(&self, channel: &mut Channel) -> Result<(Topology, VcMap), TopologyError> {
        let map = VcMap::try_from_spec(self)?;
        let infos: Vec<NodeInfo> = self
            .nodes
            .iter()
            .map(|n| NodeInfo::new(n.id, n.role.kind(), n.position, n.label.clone()))
            .collect();
        let topology = match &self.links {
            Some(links) => Topology::with_links(infos, links),
            None => Topology::derive(infos, channel),
        };
        Ok((topology, map))
    }

    /// Panicking wrapper over [`TopologySpec::try_resolve`] for the
    /// builder path, where a malformed spec is a configuration error.
    ///
    /// # Panics
    ///
    /// Panics on any [`TopologyError`].
    #[must_use]
    pub fn resolve(&self, channel: &mut Channel) -> (Topology, VcMap) {
        match self.try_resolve(channel) {
            Ok(out) => out,
            Err(e) => panic!("malformed topology spec: {e}"),
        }
    }
}

/// A malformed [`TopologySpec`], reported per cell instead of aborting a
/// whole sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// No gateway node in the spec.
    MissingGateway,
    /// More than one gateway node.
    DuplicateGateway,
    /// Two nodes share an id.
    DuplicateNodeId(NodeId),
    /// A sensor node has no input register.
    MissingSensorRegister(NodeId),
    /// A VC has two head nodes.
    DuplicateHead(VcId),
    /// A VC has no sensor 0 (or its sensor tags are not dense `0..n`).
    NonContiguousSensors(VcId),
    /// A VC has no controller 0 (or its indices are not dense `0..n`).
    NonContiguousControllers(VcId),
    /// A VC has no sensor at all.
    MissingFocusSensor(VcId),
    /// A VC has no controller at all.
    MissingController(VcId),
    /// A VC has more than one actuator node.
    MultipleActuators(VcId),
}

impl std::fmt::Display for TopologyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TopologyError::MissingGateway => write!(f, "topology needs a gateway"),
            TopologyError::DuplicateGateway => write!(f, "two gateways in topology spec"),
            TopologyError::DuplicateNodeId(n) => write!(f, "duplicate node id {n}"),
            TopologyError::MissingSensorRegister(n) => {
                write!(f, "sensor {n} needs an input register")
            }
            TopologyError::DuplicateHead(vc) => write!(f, "two heads in VC {vc}"),
            TopologyError::NonContiguousSensors(vc) => {
                write!(f, "VC {vc} sensor tags must be 0..n contiguous")
            }
            TopologyError::NonContiguousControllers(vc) => {
                write!(f, "VC {vc} controller indices must be 0..n contiguous")
            }
            TopologyError::MissingFocusSensor(vc) => {
                write!(f, "VC {vc} needs its focus sensor")
            }
            TopologyError::MissingController(vc) => write!(f, "VC {vc} needs a controller"),
            TopologyError::MultipleActuators(vc) => write!(
                f,
                "VC {vc} has multiple actuators: controller outputs address a \
                 single actuation endpoint"
            ),
        }
    }
}

impl std::error::Error for TopologyError {}

/// Role-resolved addressing for **one** Virtual Component: who plays
/// which part, in deterministic order.
#[derive(Debug, Clone, PartialEq)]
pub struct RoleMap {
    /// The Virtual Component this role set belongs to.
    pub vc: VcId,
    /// The (shared) gateway node.
    pub gateway: NodeId,
    /// The VC's head, if deployed.
    pub head: Option<NodeId>,
    /// Sensors by tag (index 0 is the VC's focus PV sensor).
    pub sensors: Vec<NodeId>,
    /// Controllers in precedence order (index 0 is the initial primary).
    pub controllers: Vec<NodeId>,
    /// Actuators in index order (may be empty: the gateway then accepts
    /// controller outputs directly).
    pub actuators: Vec<NodeId>,
    /// Dedicated relay nodes in index order (may be empty: single-hop
    /// deployments, or multi-hop routes carried by role nodes).
    pub relays: Vec<NodeId>,
    /// ModBus input register backing each sensor tag.
    pub sensor_registers: Vec<u16>,
}

impl RoleMap {
    /// The initial primary controller.
    #[must_use]
    pub fn primary(&self) -> NodeId {
        self.controllers[0]
    }

    /// The node controller outputs are addressed to: the first actuator,
    /// or the gateway when the VC has none.
    #[must_use]
    pub fn actuation_endpoint(&self) -> NodeId {
        self.actuators.first().copied().unwrap_or(self.gateway)
    }

    /// `true` if `id` is one of this VC's controllers (the head's monitor
    /// replica does not count).
    #[must_use]
    pub fn is_controller(&self, id: NodeId) -> bool {
        self.controllers.contains(&id)
    }

    /// The sensor tag of `id` within this VC, if it is a sensor.
    #[must_use]
    pub fn sensor_tag(&self, id: NodeId) -> Option<u8> {
        self.sensors.iter().position(|&s| s == id).map(|i| i as u8)
    }
}

/// Role-resolved addressing for the whole deployment: one [`RoleMap`] per
/// hosted Virtual Component plus the shared gateway. This replaces the
/// old engine's single-VC `RoleMap` in every dispatch decision.
#[derive(Debug, Clone, PartialEq)]
pub struct VcMap {
    /// The shared gateway node.
    pub gateway: NodeId,
    /// Per-VC role maps, indexed by [`VcId`].
    pub vcs: Vec<RoleMap>,
}

impl VcMap {
    /// Builds the map from a spec, validating it.
    ///
    /// # Errors
    ///
    /// See [`TopologyError`].
    pub fn try_from_spec(spec: &TopologySpec) -> Result<Self, TopologyError> {
        {
            let mut ids: Vec<NodeId> = spec.nodes.iter().map(|n| n.id).collect();
            ids.sort_unstable();
            for w in ids.windows(2) {
                if w[0] == w[1] {
                    return Err(TopologyError::DuplicateNodeId(w[0]));
                }
            }
        }
        let mut gateway = None;
        for n in &spec.nodes {
            if n.role == Role::Gateway {
                if gateway.is_some() {
                    return Err(TopologyError::DuplicateGateway);
                }
                gateway = Some(n.id);
            }
        }
        let gateway = gateway.ok_or(TopologyError::MissingGateway)?;

        let n_vcs = spec.n_vcs();
        let mut vcs = Vec::with_capacity(n_vcs);
        for vc in 0..n_vcs as VcId {
            let mut head = None;
            let mut sensors: Vec<(u8, NodeId, u16)> = Vec::new();
            let mut controllers: Vec<(u8, NodeId)> = Vec::new();
            let mut actuators: Vec<(u8, NodeId)> = Vec::new();
            let mut relays: Vec<(u8, NodeId)> = Vec::new();
            for n in spec.nodes.iter().filter(|n| n.vc == vc) {
                match n.role {
                    Role::Gateway => continue,
                    Role::Head => {
                        if head.is_some() {
                            return Err(TopologyError::DuplicateHead(vc));
                        }
                        head = Some(n.id);
                    }
                    Role::Sensor(tag) => {
                        let reg = n
                            .register
                            .ok_or(TopologyError::MissingSensorRegister(n.id))?;
                        sensors.push((tag, n.id, reg));
                    }
                    Role::Controller(i) => controllers.push((i, n.id)),
                    Role::Actuator(i) => actuators.push((i, n.id)),
                    Role::Relay(i) => relays.push((i, n.id)),
                }
            }
            sensors.sort_by_key(|&(tag, _, _)| tag);
            controllers.sort_by_key(|&(i, _)| i);
            actuators.sort_by_key(|&(i, _)| i);
            relays.sort_by_key(|&(i, _)| i);
            if sensors.is_empty() {
                return Err(TopologyError::MissingFocusSensor(vc));
            }
            if controllers.is_empty() {
                return Err(TopologyError::MissingController(vc));
            }
            if sensors
                .iter()
                .enumerate()
                .any(|(expect, &(tag, _, _))| tag as usize != expect)
            {
                return Err(TopologyError::NonContiguousSensors(vc));
            }
            if controllers
                .iter()
                .enumerate()
                .any(|(expect, &(i, _))| i as usize != expect)
            {
                return Err(TopologyError::NonContiguousControllers(vc));
            }
            if actuators.len() > 1 {
                return Err(TopologyError::MultipleActuators(vc));
            }
            vcs.push(RoleMap {
                vc,
                gateway,
                head,
                sensor_registers: sensors.iter().map(|&(_, _, r)| r).collect(),
                sensors: sensors.into_iter().map(|(_, id, _)| id).collect(),
                controllers: controllers.into_iter().map(|(_, id)| id).collect(),
                actuators: actuators.into_iter().map(|(_, id)| id).collect(),
                relays: relays.into_iter().map(|(_, id)| id).collect(),
            });
        }
        Ok(VcMap { gateway, vcs })
    }

    /// Panicking wrapper over [`VcMap::try_from_spec`] (builder path).
    ///
    /// # Panics
    ///
    /// Panics on any [`TopologyError`].
    #[must_use]
    pub fn from_spec(spec: &TopologySpec) -> Self {
        match VcMap::try_from_spec(spec) {
            Ok(map) => map,
            Err(e) => panic!("malformed topology spec: {e}"),
        }
    }

    /// Number of hosted Virtual Components.
    #[must_use]
    pub fn n_vcs(&self) -> usize {
        self.vcs.len()
    }

    /// The role map of one VC.
    ///
    /// # Panics
    ///
    /// Panics if `vc` is out of range.
    #[must_use]
    pub fn vc(&self, vc: VcId) -> &RoleMap {
        &self.vcs[vc as usize]
    }

    /// The VC whose controller set contains `id`.
    #[must_use]
    pub fn vc_of_controller(&self, id: NodeId) -> Option<VcId> {
        self.vcs.iter().find(|r| r.is_controller(id)).map(|r| r.vc)
    }

    /// The `(vc, tag)` of a sensor node.
    #[must_use]
    pub fn sensor_of(&self, id: NodeId) -> Option<(VcId, u8)> {
        self.vcs
            .iter()
            .find_map(|r| r.sensor_tag(id).map(|t| (r.vc, t)))
    }

    /// The VC whose actuator set contains `id`.
    #[must_use]
    pub fn vc_of_actuator(&self, id: NodeId) -> Option<VcId> {
        self.vcs
            .iter()
            .find(|r| r.actuators.contains(&id))
            .map(|r| r.vc)
    }

    /// The VC headed by `id`.
    #[must_use]
    pub fn vc_of_head(&self, id: NodeId) -> Option<VcId> {
        self.vcs.iter().find(|r| r.head == Some(id)).map(|r| r.vc)
    }

    /// The VC whose dedicated relay set contains `id`.
    #[must_use]
    pub fn vc_of_relay(&self, id: NodeId) -> Option<VcId> {
        self.vcs
            .iter()
            .find(|r| r.relays.contains(&id))
            .map(|r| r.vc)
    }

    /// All controllers across VCs, in `(vc, precedence)` order.
    pub fn all_controllers(&self) -> impl Iterator<Item = (VcId, NodeId)> + '_ {
        self.vcs
            .iter()
            .flat_map(|r| r.controllers.iter().map(move |&c| (r.vc, c)))
    }
}

/// What a slot owner is expected to transmit — the semantic attached to a
/// scheduled flow. The driver hands this to the owner's behavior, which
/// decides the concrete [`crate::runtime::Message`]. Every variant names
/// the Virtual Component it serves, because the shared gateway (and the
/// schedule itself) multiplexes all VCs onto one cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowKind {
    /// Gateway → sensor: deliver the plant value backing `(vc, tag)` (the
    /// hardware-in-the-loop downlink).
    HilDownlink {
        /// The served Virtual Component.
        vc: VcId,
        /// The sensor tag served.
        tag: u8,
    },
    /// Sensor → subscribers: publish the latest value of `(vc, tag)`.
    SensorPublish {
        /// The publishing Virtual Component.
        vc: VcId,
        /// The published tag.
        tag: u8,
    },
    /// Controller → actuation endpoint (+observers): output, alert or
    /// keepalive.
    ControlPublish {
        /// The computing Virtual Component.
        vc: VcId,
    },
    /// Actuator → gateway: forward the accepted command.
    ActuateForward {
        /// The forwarding Virtual Component.
        vc: VcId,
    },
    /// Head → members: the control plane (reconfig / fail-safe commands).
    ControlPlane {
        /// The commanding Virtual Component.
        vc: VcId,
    },
    /// Store-and-forward hop of a multi-hop route: the owner retransmits
    /// the frame it captured for forwarding job `job` (an index into the
    /// owner's [`RelayJob`] list built by [`route_flows`]). Only the
    /// routing pass emits this kind; `synth_flows` stays single-hop.
    Relay {
        /// The Virtual Component whose flow is being forwarded.
        vc: VcId,
        /// Index into the owner's forwarding-job list.
        job: u8,
    },
    /// Dedicated capsule-transfer slot: the owner ships one fragment of a
    /// migrating capsule image per cycle (live task migration over the
    /// reconfiguration plane). Idle when no transfer is in flight — never
    /// backfilled with keepalives.
    Transfer {
        /// The Virtual Component whose capsule may migrate here.
        vc: VcId,
    },
}

impl FlowKind {
    /// The Virtual Component this flow serves.
    #[must_use]
    pub fn vc(self) -> VcId {
        match self {
            FlowKind::HilDownlink { vc, .. }
            | FlowKind::SensorPublish { vc, .. }
            | FlowKind::ControlPublish { vc }
            | FlowKind::ActuateForward { vc }
            | FlowKind::ControlPlane { vc }
            | FlowKind::Relay { vc, .. }
            | FlowKind::Transfer { vc } => vc,
        }
    }
}

/// Synthesizes the pipeline-ordered flow list for a deployment. Within
/// each VC every flow is chained `after` its predecessor, so each control
/// cycle completes within one RT-Link cycle (objective 5); *across* VCs
/// the chains are independent, which lets `SlotSchedule::place_flows`
/// interleave them and reuse slots spatially where the topology allows.
/// For the Fig. 5 role set this reproduces the testbed's eight flows
/// exactly:
///
/// 1. `GW→S1` downlink, 2. `S1→Ctrl-A` publish (B, head listen), 3./4.
///    controller outputs (later controllers and head listen), 5. `A1→GW`
///    forward, 6. head control plane, then per monitoring sensor its
///    downlink and publish.
#[must_use]
pub fn synth_flows(map: &VcMap) -> Vec<(Flow, FlowKind)> {
    let mut flows: Vec<(Flow, FlowKind)> = Vec::new();
    for roles in &map.vcs {
        let vc = roles.vc;
        // Per-VC chain head: each VC's pipeline is after-chained
        // independently of every other VC's.
        let mut last: Option<usize> = None;
        let mut chain = |flows: &mut Vec<(Flow, FlowKind)>, flow: Flow, kind: FlowKind| {
            let flow = match last {
                Some(i) => flow.after(i),
                None => flow,
            };
            last = Some(flows.len());
            flows.push((flow, kind));
        };

        // Focus PV: downlink then publish to every controller replica.
        chain(
            &mut flows,
            Flow::new(roles.gateway, roles.sensors[0]),
            FlowKind::HilDownlink { vc, tag: 0 },
        );
        let mut pv_listeners: Vec<NodeId> = roles.controllers[1..].to_vec();
        pv_listeners.extend(roles.head);
        chain(
            &mut flows,
            Flow::new(roles.sensors[0], roles.primary()).with_listeners(pv_listeners),
            FlowKind::SensorPublish { vc, tag: 0 },
        );

        // Controller outputs, in precedence order. Later-scheduled
        // replicas (and the head) observe each output within the same
        // cycle; this is what feeds the deviation detectors.
        let endpoint = roles.actuation_endpoint();
        for (i, &c) in roles.controllers.iter().enumerate() {
            let mut listeners: Vec<NodeId> = roles.controllers[i + 1..].to_vec();
            listeners.extend(roles.head);
            chain(
                &mut flows,
                Flow::new(c, endpoint).with_listeners(listeners),
                FlowKind::ControlPublish { vc },
            );
        }

        // Actuation forwards back to the plant bridge.
        for &a in &roles.actuators {
            chain(
                &mut flows,
                Flow::new(a, roles.gateway),
                FlowKind::ActuateForward { vc },
            );
        }

        // Control plane: head → first controller, everyone else listens.
        if let Some(head) = roles.head {
            let mut listeners: Vec<NodeId> = roles.controllers[1..].to_vec();
            listeners.extend(roles.actuators.iter().copied());
            listeners.push(roles.gateway);
            chain(
                &mut flows,
                Flow::new(head, roles.primary()).with_listeners(listeners),
                FlowKind::ControlPlane { vc },
            );
        }

        // Monitoring sensors: downlink + publish toward the head (or the
        // gateway's log when there is no head).
        for (tag, &s) in roles.sensors.iter().enumerate().skip(1) {
            let tag = tag as u8;
            chain(
                &mut flows,
                Flow::new(roles.gateway, s),
                FlowKind::HilDownlink { vc, tag },
            );
            let (dst, listeners) = match roles.head {
                Some(head) => (head, vec![roles.gateway]),
                None => (roles.gateway, Vec::new()),
            };
            chain(
                &mut flows,
                Flow::new(s, dst).with_listeners(listeners),
                FlowKind::SensorPublish { vc, tag },
            );
        }
    }
    flows
}

/// One forwarding duty of a node, produced by [`route_flows`]: capture
/// the frame that arrives from `upstream` matching the relayed flow's
/// semantic, hold the latest copy, and retransmit it in the slot
/// scheduled for the corresponding [`FlowKind::Relay`] job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RelayJob {
    /// The previous-hop transmitter whose frames this job captures.
    pub upstream: NodeId,
    /// The logical flow's original source (disambiguates flows that
    /// share a semantic, e.g. several controllers' `ControlPublish`).
    pub origin: NodeId,
    /// The logical semantic being forwarded.
    pub kind: FlowKind,
}

/// The output of [`route_flows`]: the hop-expanded physical flow list
/// plus every node's forwarding jobs.
#[derive(Debug, Clone, PartialEq)]
pub struct RoutedFlows {
    /// Physical flows in schedule order (same shape `place_flows` takes).
    /// Single-hop logical flows pass through byte-identically.
    pub flows: Vec<(Flow, FlowKind)>,
    /// Forwarding jobs per node, in emission order; `FlowKind::Relay`'s
    /// `job` indexes into the owner's list.
    pub jobs: BTreeMap<NodeId, Vec<RelayJob>>,
    /// For each logical flow, the `(first, last)` physical indices of its
    /// hop chain (`first == last` for single-hop flows).
    pub spans: Vec<(usize, usize)>,
}

/// A logical flow that cannot be carried by the physical topology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteError {
    /// Index of the unroutable logical flow.
    pub flow: usize,
    /// The chain node the route got stuck at.
    pub from: NodeId,
    /// The target (primary receiver or listener) it could not reach.
    pub to: NodeId,
}

impl std::fmt::Display for RouteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "flow {} is unroutable: no path {} -> {}",
            self.flow, self.from, self.to
        )
    }
}

impl std::error::Error for RouteError {}

/// Expands logical flows into per-hop physical flows over the real
/// connectivity graph — the multi-hop relay pass.
///
/// Per logical flow the pass visits the primary receiver first, then each
/// extra listener in declared order, building one *multicast chain*:
///
/// * a target adjacent to an already-emitted hop's transmitter is
///   **attached** as that hop's listener (earliest such hop wins — the
///   star case degenerates to the original single flow, byte-identically),
/// * otherwise the chain is **extended** with the shortest path
///   ([`Topology::shortest_path`], deterministic tie-breaks) from the
///   last visited target, every new hop a store-and-forward
///   [`FlowKind::Relay`] slot with a [`RelayJob`] registered on its
///   transmitter.
///
/// Hops chain `after` one another and the first hop inherits the logical
/// flow's own `after` edge (remapped to its dependency's last hop), so a
/// pipelined control cycle stays pipelined across any number of hops.
/// Forwarding is a node *capability*: routes run through whatever node is
/// closest, dedicated [`Role::Relay`] nodes being merely nodes with no
/// other duties.
///
/// # Errors
///
/// [`RouteError`] when a target is unreachable from the chain.
pub fn route_flows(
    topology: &Topology,
    logical: &[(Flow, FlowKind)],
) -> Result<RoutedFlows, RouteError> {
    struct Hop {
        owner: NodeId,
        dst: NodeId,
        listeners: Vec<NodeId>,
    }

    let mut out: Vec<(Flow, FlowKind)> = Vec::new();
    let mut jobs: BTreeMap<NodeId, Vec<RelayJob>> = BTreeMap::new();
    let mut spans: Vec<(usize, usize)> = Vec::new();

    for (li, (flow, kind)) in logical.iter().enumerate() {
        assert!(
            flow.after.is_none_or(|dep| dep < li),
            "flow {li} has a forward or dangling precedence edge"
        );
        let after = flow.after.map(|dep| spans[dep].1);

        // Fast path: everything within one hop of the source — the flow
        // passes through untouched (this is every star flow).
        if topology.are_neighbors(flow.src, flow.dst)
            && flow
                .extra_listeners
                .iter()
                .all(|&l| topology.are_neighbors(flow.src, l))
        {
            let mut f = Flow::new(flow.src, flow.dst).with_listeners(flow.extra_listeners.clone());
            if let Some(a) = after {
                f = f.after(a);
            }
            let idx = out.len();
            out.push((f, *kind));
            spans.push((idx, idx));
            continue;
        }

        // Multicast chain over the connectivity graph.
        let mut hops: Vec<Hop> = Vec::new();
        let mut on_chain: Vec<NodeId> = vec![flow.src];
        let mut cur = flow.src;
        for (ti, &target) in std::iter::once(&flow.dst)
            .chain(flow.extra_listeners.iter())
            .enumerate()
        {
            if on_chain.contains(&target) {
                continue; // already receives as a hop endpoint
            }
            if ti > 0 {
                if let Some(h) = hops
                    .iter_mut()
                    .find(|h| topology.are_neighbors(h.owner, target))
                {
                    h.listeners.push(target);
                    continue;
                }
            }
            let path = topology.shortest_path(cur, target).ok_or(RouteError {
                flow: li,
                from: cur,
                to: target,
            })?;
            for w in path.windows(2) {
                hops.push(Hop {
                    owner: w[0],
                    dst: w[1],
                    listeners: Vec::new(),
                });
                on_chain.push(w[1]);
            }
            cur = target;
        }

        let first = out.len();
        for (hi, hop) in hops.iter().enumerate() {
            let hop_kind = if hi == 0 {
                *kind
            } else {
                let node_jobs = jobs.entry(hop.owner).or_default();
                let job = u8::try_from(node_jobs.len())
                    .expect("more than 255 forwarding jobs on one node");
                node_jobs.push(RelayJob {
                    upstream: hops[hi - 1].owner,
                    origin: flow.src,
                    kind: *kind,
                });
                FlowKind::Relay { vc: kind.vc(), job }
            };
            let mut f = Flow::new(hop.owner, hop.dst).with_listeners(hop.listeners.clone());
            f = match if hi == 0 { after } else { Some(out.len() - 1) } {
                Some(a) => f.after(a),
                None => f,
            };
            out.push((f, hop_kind));
        }
        spans.push((first, out.len() - 1));
    }

    Ok(RoutedFlows {
        flows: out,
        jobs,
        spans,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_spec_matches_testbed_layout() {
        let spec = TopologySpec::fig5();
        assert_eq!(spec.nodes.len(), 7);
        let labels: Vec<&str> = spec.nodes.iter().map(|n| n.label.as_str()).collect();
        assert_eq!(labels, ["GW", "S1", "Ctrl-A", "Ctrl-B", "A1", "S2", "Head"]);
        let ids: Vec<u16> = spec.nodes.iter().map(|n| n.id.raw()).collect();
        assert_eq!(ids, [0, 1, 2, 3, 4, 5, 6]);
        assert_eq!(spec.nodes[1].register, Some(30001));
        assert_eq!(spec.nodes[5].register, Some(30007));
        assert!(spec.nodes.iter().all(|n| n.vc == 0));
        assert_eq!(spec.n_vcs(), 1);
    }

    #[test]
    fn fig5_flow_synthesis_reproduces_the_eight_testbed_flows() {
        let map = VcMap::from_spec(&TopologySpec::fig5());
        let flows = synth_flows(&map);
        let as_tuple = |f: &Flow| (f.src.raw(), f.dst.raw(), f.extra_listeners.clone());
        assert_eq!(flows.len(), 8);
        assert_eq!(as_tuple(&flows[0].0), (0, 1, vec![]));
        assert_eq!(as_tuple(&flows[1].0), (1, 2, vec![NodeId(3), NodeId(6)]));
        assert_eq!(as_tuple(&flows[2].0), (2, 4, vec![NodeId(3), NodeId(6)]));
        assert_eq!(as_tuple(&flows[3].0), (3, 4, vec![NodeId(6)]));
        assert_eq!(as_tuple(&flows[4].0), (4, 0, vec![]));
        assert_eq!(
            as_tuple(&flows[5].0),
            (6, 2, vec![NodeId(3), NodeId(4), NodeId(0)])
        );
        assert_eq!(as_tuple(&flows[6].0), (0, 5, vec![]));
        assert_eq!(as_tuple(&flows[7].0), (5, 6, vec![NodeId(0)]));
        // Fully chained: every flow after the first has a predecessor.
        assert!(flows[0].0.after.is_none());
        for (i, (f, _)) in flows.iter().enumerate().skip(1) {
            assert_eq!(f.after, Some(i - 1));
        }
    }

    /// The PR 2 golden trace for the 2-sensor / 3-controller / 1-actuator
    /// star: every flow's (src, dst, listeners) tuple and semantic, not
    /// just the Fig. 5 role set — byte-identical under the multi-VC
    /// refactor (all kinds carry `vc: 0`). Node ids follow the star ring
    /// convention: GW=0, S1=1, Ctrl-A=2, Ctrl-B=3, Ctrl-C=4, A1=5, S2=6,
    /// Head=7.
    #[test]
    fn golden_flows_for_two_sensor_three_controller_star() {
        let map = VcMap::from_spec(&TopologySpec::star(2, 3, 1, true, 15.0));
        let flows = synth_flows(&map);
        let got: Vec<(u16, u16, Vec<u16>, FlowKind)> = flows
            .iter()
            .map(|(f, k)| {
                (
                    f.src.raw(),
                    f.dst.raw(),
                    f.extra_listeners.iter().map(|n| n.raw()).collect(),
                    *k,
                )
            })
            .collect();
        let expected: Vec<(u16, u16, Vec<u16>, FlowKind)> = vec![
            (0, 1, vec![], FlowKind::HilDownlink { vc: 0, tag: 0 }),
            (
                1,
                2,
                vec![3, 4, 7],
                FlowKind::SensorPublish { vc: 0, tag: 0 },
            ),
            (2, 5, vec![3, 4, 7], FlowKind::ControlPublish { vc: 0 }),
            (3, 5, vec![4, 7], FlowKind::ControlPublish { vc: 0 }),
            (4, 5, vec![7], FlowKind::ControlPublish { vc: 0 }),
            (5, 0, vec![], FlowKind::ActuateForward { vc: 0 }),
            (7, 2, vec![3, 4, 5, 0], FlowKind::ControlPlane { vc: 0 }),
            (0, 6, vec![], FlowKind::HilDownlink { vc: 0, tag: 1 }),
            (6, 7, vec![0], FlowKind::SensorPublish { vc: 0, tag: 1 }),
        ];
        assert_eq!(got, expected);
        // The pipeline stays fully chained (one control cycle per RT-Link
        // cycle) no matter how many replicas are inserted in the middle.
        assert!(flows[0].0.after.is_none());
        for (i, (f, _)) in flows.iter().enumerate().skip(1) {
            assert_eq!(f.after, Some(i - 1));
        }
    }

    /// Golden trace for the 2-VC × (1 sensor, 2 controllers, 1 actuator,
    /// head) star: every `(src, dst, listeners, kind, after)` tuple. Ring
    /// id order: GW=0, then VC0 {S1=1, Ctrl-A=2, Ctrl-B=3, A1=4, Head=5},
    /// then VC1 {V1.S1=6, V1.Ctrl-A=7, V1.Ctrl-B=8, V1.A1=9, V1.Head=10}.
    /// Each VC's chain is after-linked independently: VC1's first flow has
    /// no predecessor even though it is emitted seventh.
    type FlowTuple = (u16, u16, Vec<u16>, FlowKind, Option<usize>);

    #[test]
    fn golden_flows_for_two_vc_star() {
        let spec = TopologySpec::multi_star(2, 1, 2, 1, true, 15.0);
        let map = VcMap::from_spec(&spec);
        assert_eq!(map.n_vcs(), 2);
        let flows = synth_flows(&map);
        let got: Vec<FlowTuple> = flows
            .iter()
            .map(|(f, k)| {
                (
                    f.src.raw(),
                    f.dst.raw(),
                    f.extra_listeners.iter().map(|n| n.raw()).collect(),
                    *k,
                    f.after,
                )
            })
            .collect();
        let expected: Vec<FlowTuple> = vec![
            // --- VC 0 chain -------------------------------------------
            (0, 1, vec![], FlowKind::HilDownlink { vc: 0, tag: 0 }, None),
            (
                1,
                2,
                vec![3, 5],
                FlowKind::SensorPublish { vc: 0, tag: 0 },
                Some(0),
            ),
            (
                2,
                4,
                vec![3, 5],
                FlowKind::ControlPublish { vc: 0 },
                Some(1),
            ),
            (3, 4, vec![5], FlowKind::ControlPublish { vc: 0 }, Some(2)),
            (4, 0, vec![], FlowKind::ActuateForward { vc: 0 }, Some(3)),
            (
                5,
                2,
                vec![3, 4, 0],
                FlowKind::ControlPlane { vc: 0 },
                Some(4),
            ),
            // --- VC 1 chain (independent of VC 0's) -------------------
            (0, 6, vec![], FlowKind::HilDownlink { vc: 1, tag: 0 }, None),
            (
                6,
                7,
                vec![8, 10],
                FlowKind::SensorPublish { vc: 1, tag: 0 },
                Some(6),
            ),
            (
                7,
                9,
                vec![8, 10],
                FlowKind::ControlPublish { vc: 1 },
                Some(7),
            ),
            (8, 9, vec![10], FlowKind::ControlPublish { vc: 1 }, Some(8)),
            (9, 0, vec![], FlowKind::ActuateForward { vc: 1 }, Some(9)),
            (
                10,
                7,
                vec![8, 9, 0],
                FlowKind::ControlPlane { vc: 1 },
                Some(10),
            ),
        ];
        assert_eq!(got, expected);
    }

    #[test]
    fn multi_star_vc_focus_registers_and_labels() {
        let spec = TopologySpec::multi_star(3, 2, 2, 1, true, 15.0);
        assert_eq!(spec.n_vcs(), 3);
        let map = VcMap::from_spec(&spec);
        assert_eq!(map.vc(0).sensor_registers[0], 30001);
        assert_eq!(map.vc(1).sensor_registers[0], 30002);
        assert_eq!(map.vc(2).sensor_registers[0], 30003);
        // VC 1's labels carry the V1. prefix; VC 0 keeps the legacy names.
        let label_of = |id: NodeId| {
            spec.nodes
                .iter()
                .find(|n| n.id == id)
                .unwrap()
                .label
                .clone()
        };
        assert_eq!(label_of(map.vc(0).primary()), "Ctrl-A");
        assert_eq!(label_of(map.vc(1).primary()), "V1.Ctrl-A");
        assert_eq!(label_of(map.vc(2).head.unwrap()), "V2.Head");
        // Reverse lookups agree.
        assert_eq!(map.vc_of_controller(map.vc(1).controllers[1]), Some(1));
        assert_eq!(map.sensor_of(map.vc(2).sensors[1]), Some((2, 1)));
        assert_eq!(map.vc_of_head(map.vc(1).head.unwrap()), Some(1));
        assert_eq!(map.vc_of_actuator(map.vc(0).actuators[0]), Some(0));
    }

    #[test]
    fn single_vc_star_is_multi_star_of_one() {
        assert_eq!(
            TopologySpec::star(2, 3, 1, true, 15.0),
            TopologySpec::multi_star(1, 2, 3, 1, true, 15.0)
        );
    }

    #[test]
    fn minimal_topology_routes_actuation_through_gateway() {
        let map = VcMap::from_spec(&TopologySpec::minimal(10.0));
        let roles = map.vc(0);
        assert_eq!(roles.actuation_endpoint(), roles.gateway);
        assert!(roles.head.is_none());
        let flows = synth_flows(&map);
        // Downlink, publish, controller output — three flows, no control
        // plane, no forwards.
        assert_eq!(flows.len(), 3);
        assert_eq!(flows[2].1, FlowKind::ControlPublish { vc: 0 });
        assert_eq!(flows[2].0.dst, roles.gateway);
    }

    #[test]
    fn wide_star_flows_scale_with_roles() {
        let map = VcMap::from_spec(&TopologySpec::star(3, 3, 1, true, 15.0));
        let flows = synth_flows(&map);
        // 1 downlink + 1 publish + 3 outputs + 1 forward + 1 plane
        // + 2 * (downlink + publish) = 11.
        assert_eq!(flows.len(), 11);
        // The primary's output is observed by both backups and the head.
        let primary_out = flows
            .iter()
            .find(|(f, k)| {
                matches!(k, FlowKind::ControlPublish { vc: 0 }) && f.src == map.vc(0).primary()
            })
            .unwrap();
        assert_eq!(primary_out.0.extra_listeners.len(), 3);
    }

    /// The wraparound fix: monitoring sensors past the 11-entry table get
    /// unique synthetic registers instead of silently aliasing earlier
    /// monitors.
    #[test]
    fn monitor_registers_never_alias_past_the_table() {
        assert_eq!(monitor_register(0), 30007);
        assert_eq!(monitor_register(10), 30012);
        assert_eq!(monitor_register(11), 30013);
        assert_eq!(monitor_register(12), 30014);
        // A 20-sensor star: one focus + 19 monitors, all registers unique.
        let spec = TopologySpec::star(20, 1, 0, false, 15.0);
        let mut regs: Vec<u16> = spec.nodes.iter().filter_map(|n| n.register).collect();
        assert_eq!(regs.len(), 20);
        regs.sort_unstable();
        regs.dedup();
        assert_eq!(regs.len(), 20, "monitor registers must not alias");
    }

    #[test]
    fn malformed_specs_return_typed_errors() {
        let good = TopologySpec::fig5();

        let mut no_gw = good.clone();
        no_gw.nodes.retain(|n| n.role != Role::Gateway);
        assert_eq!(
            VcMap::try_from_spec(&no_gw),
            Err(TopologyError::MissingGateway)
        );

        let mut two_gw = good.clone();
        let mut extra = two_gw.nodes[0].clone();
        extra.id = NodeId(99);
        two_gw.nodes.push(extra);
        assert_eq!(
            VcMap::try_from_spec(&two_gw),
            Err(TopologyError::DuplicateGateway)
        );

        let mut dup_id = good.clone();
        dup_id.nodes[2].id = dup_id.nodes[1].id;
        assert_eq!(
            VcMap::try_from_spec(&dup_id),
            Err(TopologyError::DuplicateNodeId(dup_id.nodes[1].id))
        );

        let mut no_sensor = good.clone();
        no_sensor
            .nodes
            .retain(|n| !matches!(n.role, Role::Sensor(_)));
        assert_eq!(
            VcMap::try_from_spec(&no_sensor),
            Err(TopologyError::MissingFocusSensor(0))
        );

        let mut no_ctrl = good.clone();
        no_ctrl
            .nodes
            .retain(|n| !matches!(n.role, Role::Controller(_)));
        assert_eq!(
            VcMap::try_from_spec(&no_ctrl),
            Err(TopologyError::MissingController(0))
        );

        let mut gap = good.clone();
        for n in &mut gap.nodes {
            if n.role == Role::Controller(1) {
                n.role = Role::Controller(2);
            }
        }
        assert_eq!(
            VcMap::try_from_spec(&gap),
            Err(TopologyError::NonContiguousControllers(0))
        );

        let mut two_act = good.clone();
        two_act.nodes.push(NodeSpec {
            id: NodeId(42),
            vc: 0,
            role: Role::Actuator(1),
            label: "A2".into(),
            position: Position::new(1.0, 1.0),
            register: None,
        });
        assert_eq!(
            VcMap::try_from_spec(&two_act),
            Err(TopologyError::MultipleActuators(0))
        );

        let mut no_reg = good.clone();
        no_reg.nodes[1].register = None;
        assert_eq!(
            VcMap::try_from_spec(&no_reg),
            Err(TopologyError::MissingSensorRegister(no_reg.nodes[1].id))
        );

        let mut sparse_vc = good;
        for n in &mut sparse_vc.nodes {
            if n.role != Role::Gateway {
                n.vc = 2; // VCs 0 and 1 left unpopulated.
            }
        }
        assert!(matches!(
            VcMap::try_from_spec(&sparse_vc),
            Err(TopologyError::MissingFocusSensor(0))
        ));
    }

    #[test]
    #[should_panic(expected = "malformed topology spec")]
    fn panicking_wrapper_kept_for_builder_path() {
        let mut spec = TopologySpec::fig5();
        spec.nodes.retain(|n| n.role != Role::Gateway);
        let _ = VcMap::from_spec(&spec);
    }

    // ---- multi-hop layouts and the routing pass ----------------------

    use evm_netsim::ChannelConfig;
    use evm_sim::SimRng;

    fn resolve(spec: &TopologySpec) -> (Topology, VcMap) {
        let mut ch = Channel::new(ChannelConfig::default(), SimRng::seed_from(1));
        spec.resolve(&mut ch)
    }

    #[test]
    fn line_spec_layout_and_relay_roles() {
        let spec = TopologySpec::line(2, 1, 2, 1, true, LINE_SPACING_M);
        let labels: Vec<&str> = spec.nodes.iter().map(|n| n.label.as_str()).collect();
        assert_eq!(labels, ["GW", "S1", "Ctrl-A", "Ctrl-B", "A1", "Head", "R1"]);
        assert_eq!(spec.nodes[1].position, Position::new(-80.0, 0.0));
        assert_eq!(spec.nodes[6].position, Position::new(-40.0, 0.0));
        assert_eq!(spec.nodes[4].position, Position::new(80.0, 0.0));
        let map = VcMap::from_spec(&spec);
        assert_eq!(map.vc(0).relays, vec![NodeId(6)]);
        assert_eq!(map.vc_of_relay(NodeId(6)), Some(0));

        // The physical graph forces the relay: sensor and gateway are out
        // of range of each other, each in range of R1.
        let (topo, _) = resolve(&spec);
        assert!(!topo.are_neighbors(NodeId(0), NodeId(1)));
        assert!(topo.are_neighbors(NodeId(0), NodeId(6)));
        assert!(topo.are_neighbors(NodeId(6), NodeId(1)));
        assert_eq!(topo.hops(NodeId(0), NodeId(1)), Some(2));
        // Actuator is two hops out on the other side, via the pod.
        assert!(!topo.are_neighbors(NodeId(0), NodeId(4)));
        assert!(topo.is_fully_connected());
    }

    #[test]
    fn grid_spec_fills_cells_row_major() {
        let spec = TopologySpec::grid(2, 3, 1, 2, 1, false, GRID_SPACING_M);
        let labels: Vec<&str> = spec.nodes.iter().map(|n| n.label.as_str()).collect();
        assert_eq!(labels, ["GW", "S1", "Ctrl-A", "Ctrl-B", "A1", "R1"]);
        // GW cell 0, sensor the far corner, relay the last leftover cell.
        assert_eq!(spec.nodes[0].position, Position::new(0.0, 0.0));
        assert_eq!(spec.nodes[1].position, Position::new(52.0, 104.0));
        assert_eq!(spec.nodes[2].position, Position::new(52.0, 0.0));
        assert_eq!(spec.nodes[5].position, Position::new(0.0, 104.0));
        let (topo, _) = resolve(&spec);
        // 4-connectivity: orthogonal neighbors only.
        assert!(topo.are_neighbors(NodeId(0), NodeId(2)));
        assert!(
            !topo.are_neighbors(NodeId(2), NodeId(3)),
            "diagonal must be out of range"
        );
        assert_eq!(topo.hops(NodeId(0), NodeId(1)), Some(3));
    }

    #[test]
    #[should_panic(expected = "cannot seat")]
    fn grid_rejects_too_small_lattices() {
        let _ = TopologySpec::grid(2, 2, 2, 2, 1, true, GRID_SPACING_M);
    }

    #[test]
    fn clustered_spec_arcs_relays_per_vc() {
        let spec = TopologySpec::clustered(2, 1, 2, 1, true, CLUSTER_HOP_M, CLUSTER_RING_M);
        assert_eq!(spec.n_vcs(), 2);
        let labels: Vec<&str> = spec.nodes.iter().map(|n| n.label.as_str()).collect();
        assert_eq!(
            labels,
            [
                "GW",
                "S1",
                "Ctrl-A",
                "Ctrl-B",
                "A1",
                "Head",
                "R1",
                "R2",
                "V1.S1",
                "V1.Ctrl-A",
                "V1.Ctrl-B",
                "V1.A1",
                "V1.Head",
                "V1.R1",
                "V1.R2",
            ]
        );
        let map = VcMap::from_spec(&spec);
        assert_eq!(map.vc(0).relays.len(), 2);
        assert_eq!(map.vc(1).relays.len(), 2);
        assert_eq!(map.vc(0).sensor_registers[0], 30001);
        assert_eq!(map.vc(1).sensor_registers[0], 30002);
        let (topo, _) = resolve(&spec);
        // Three hops from the gateway to each cluster's sensor, and the
        // two clusters are mutually unreachable except through the GW.
        assert_eq!(topo.hops(NodeId(0), NodeId(1)), Some(3));
        assert_eq!(topo.hops(NodeId(0), NodeId(8)), Some(3));
        assert!(!topo.are_neighbors(NodeId(6), NodeId(13)));
        assert!(topo.is_fully_connected());
    }

    /// The routing pass is the identity on fully-connected stars: every
    /// logical flow is already one hop, so the physical flow list (and
    /// the PR 2 / PR 3 goldens pinned on it) is byte-identical and no
    /// forwarding jobs exist.
    #[test]
    fn star_flows_route_byte_identically() {
        for spec in [
            TopologySpec::fig5(),
            TopologySpec::star(2, 3, 1, true, 15.0),
            TopologySpec::multi_star(2, 1, 2, 1, true, 15.0),
        ] {
            let (topo, map) = resolve(&spec);
            let logical = synth_flows(&map);
            let routed = route_flows(&topo, &logical).expect("routable");
            let as_tuples = |flows: &[(Flow, FlowKind)]| -> Vec<FlowTuple> {
                flows
                    .iter()
                    .map(|(f, k)| {
                        (
                            f.src.raw(),
                            f.dst.raw(),
                            f.extra_listeners.iter().map(|n| n.raw()).collect(),
                            *k,
                            f.after,
                        )
                    })
                    .collect()
            };
            assert_eq!(as_tuples(&routed.flows), as_tuples(&logical));
            assert!(routed.jobs.is_empty());
            assert!(routed.spans.iter().all(|&(a, b)| a == b));
        }
    }

    /// 2-hop line routing: the downlink grows a forwarding hop on R1, the
    /// publish comes back over R1 and the gateway, and the precedence
    /// chain stays intact across the expansion.
    #[test]
    fn line_routing_inserts_relay_hops() {
        let spec = TopologySpec::line(2, 1, 1, 1, false, LINE_SPACING_M);
        // GW=0, S1=1, Ctrl-A=2, A1=3, R1=4.
        let (topo, map) = resolve(&spec);
        let logical = synth_flows(&map);
        let routed = route_flows(&topo, &logical).expect("routable");

        // Downlink GW -> S1 becomes GW -> R1 -> S1.
        let (f0, k0) = &routed.flows[0];
        assert_eq!((f0.src, f0.dst), (NodeId(0), NodeId(4)));
        assert_eq!(*k0, FlowKind::HilDownlink { vc: 0, tag: 0 });
        let (f1, k1) = &routed.flows[1];
        assert_eq!((f1.src, f1.dst), (NodeId(4), NodeId(1)));
        assert!(matches!(k1, FlowKind::Relay { vc: 0, .. }));
        assert_eq!(f1.after, Some(0));

        // R1 carries one job per direction it forwards.
        let r1_jobs = &routed.jobs[&NodeId(4)];
        assert!(r1_jobs.contains(&RelayJob {
            upstream: NodeId(0),
            origin: NodeId(0),
            kind: FlowKind::HilDownlink { vc: 0, tag: 0 },
        }));
        assert!(r1_jobs.contains(&RelayJob {
            upstream: NodeId(1),
            origin: NodeId(1),
            kind: FlowKind::SensorPublish { vc: 0, tag: 0 },
        }));

        // Every hop chain is strictly pipelined: each physical flow after
        // its predecessor within the logical chain.
        for (li, &(first, last)) in routed.spans.iter().enumerate() {
            for idx in first + 1..=last {
                assert_eq!(routed.flows[idx].0.after, Some(idx - 1), "flow {li}");
            }
        }
        // And the schedule respects it end to end.
        let flows: Vec<Flow> = routed.flows.iter().map(|(f, _)| f.clone()).collect();
        let cfg = evm_mac::RtLinkConfig::default();
        let (sched, placed) =
            evm_mac::rtlink::SlotSchedule::place_flows(&cfg, &topo, &flows).expect("schedulable");
        assert!(sched.is_interference_free(&topo));
        for (i, f) in flows.iter().enumerate() {
            if let Some(dep) = f.after {
                assert!(placed[dep] < placed[i]);
            }
        }
    }

    /// A listener no hop transmitter can reach extends the multicast
    /// chain instead of silently starving: the grid's backup controller
    /// gets the primary's output over a forwarding hop.
    #[test]
    fn unreachable_listener_extends_the_chain() {
        let spec = TopologySpec::grid(2, 3, 1, 2, 1, false, GRID_SPACING_M);
        // GW=0, S1=1, Ctrl-A=2, Ctrl-B=3, A1=4, R1=5.
        let (topo, map) = resolve(&spec);
        assert!(!topo.are_neighbors(NodeId(2), NodeId(3)), "diagonal ctrls");
        let logical = synth_flows(&map);
        let routed = route_flows(&topo, &logical).expect("routable");
        // Ctrl-A's output flow: direct hop to A1, then a forwarding hop
        // carrying it on to Ctrl-B.
        let out_idx = logical
            .iter()
            .position(|(f, k)| {
                matches!(k, FlowKind::ControlPublish { vc: 0 }) && f.src == NodeId(2)
            })
            .expect("primary output flow");
        let (first, last) = routed.spans[out_idx];
        assert!(last > first, "listener must extend the chain");
        let hop = &routed.flows[last].0;
        assert_eq!(hop.dst, NodeId(3));
        assert!(
            routed.jobs[&hop.src]
                .iter()
                .any(|j| j.origin == NodeId(2)
                    && matches!(j.kind, FlowKind::ControlPublish { vc: 0 }))
        );
    }

    #[test]
    fn unroutable_flows_are_reported() {
        let mut spec = TopologySpec::minimal(10.0);
        // Strand the sensor 500 m out: nothing can reach it.
        spec.nodes[1].position = Position::new(500.0, 0.0);
        let (topo, map) = resolve(&spec);
        let logical = synth_flows(&map);
        let err = route_flows(&topo, &logical).expect_err("unroutable");
        assert_eq!(err.flow, 0);
        assert_eq!(err.to, NodeId(1));
    }
}
