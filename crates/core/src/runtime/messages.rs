//! Frames exchanged between nodes on the RT-Link data and control planes.

use evm_netsim::NodeId;
use evm_sim::SimTime;

use crate::roles::ControllerMode;

/// Frames exchanged between nodes.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// A plant value for a sensor node (HIL downlink) or a published PV.
    SensorValue {
        /// Which signal this is: 0 = the focus PV (e.g. the LTS level),
        /// 1.. = monitoring flows published by additional sensors.
        tag: u8,
        /// Engineering value.
        value: f64,
        /// When the publishing sensor transmitted it.
        sampled_at: SimTime,
    },
    /// A controller's computed output (also its health publication).
    ControlOutput {
        /// The computing controller.
        from: NodeId,
        /// The output value (post-fault for a faulty controller).
        value: f64,
        /// Timestamp of the PV this output responds to.
        pv_sampled_at: SimTime,
    },
    /// Backup's confirmed-fault report to the head.
    FaultAlert {
        /// The suspected node.
        suspect: NodeId,
        /// The reporting observer.
        observer: NodeId,
    },
    /// Head's atomic reconfiguration command.
    Reconfig {
        /// Controller to promote to Active, if any.
        promote: Option<NodeId>,
        /// Controller to demote and its new mode, if any.
        demote: Option<(NodeId, ControllerMode)>,
    },
    /// Keepalive a computing controller sends in its slot when it has no
    /// output pending (e.g. the PV stream stalled) — distinguishes "I am
    /// alive but starved" from a crash.
    Heartbeat {
        /// The sending controller.
        from: NodeId,
    },
    /// Head's order to drive the actuator to its fail-safe position
    /// (no viable master remains).
    FailSafe {
        /// The safe actuator value.
        value: f64,
    },
    /// Actuator's forward of an accepted command to the gateway.
    ActuateFwd {
        /// The actuator value.
        value: f64,
        /// PV timestamp carried through for latency accounting.
        pv_sampled_at: SimTime,
    },
}

impl Message {
    /// Approximate MAC payload size, bytes (drives airtime).
    pub(crate) fn payload_bytes(&self) -> usize {
        match self {
            Message::SensorValue { .. } => 12,
            Message::ControlOutput { .. } => 16,
            Message::FaultAlert { .. } => 8,
            Message::Reconfig { .. } => 10,
            Message::Heartbeat { .. } => 4,
            Message::FailSafe { .. } => 9,
            Message::ActuateFwd { .. } => 14,
        }
    }
}
