//! Frames exchanged between nodes on the RT-Link data and control planes.

use evm_netsim::NodeId;
use evm_sim::SimTime;

use crate::roles::ControllerMode;
use crate::runtime::topo::VcId;

/// Frames exchanged between nodes. Every frame names the Virtual
/// Component it belongs to where the receiver could not otherwise tell —
/// the shared gateway (and any cross-subscribed listener) demultiplexes
/// on it, so several VCs share one RT-Link cycle without cross-talk.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// A plant value for a sensor node (HIL downlink) or a published PV.
    SensorValue {
        /// The Virtual Component the signal belongs to.
        vc: VcId,
        /// Which signal this is: 0 = the VC's focus PV (e.g. the LTS
        /// level), 1.. = monitoring flows published by additional sensors.
        tag: u8,
        /// Engineering value.
        value: f64,
        /// When the publishing sensor transmitted it.
        sampled_at: SimTime,
    },
    /// A controller's computed output (also its health publication).
    ControlOutput {
        /// The computing controller's Virtual Component.
        vc: VcId,
        /// The computing controller.
        from: NodeId,
        /// The output value (post-fault for a faulty controller).
        value: f64,
        /// Timestamp of the PV this output responds to.
        pv_sampled_at: SimTime,
    },
    /// Backup's confirmed-fault report to its VC's head.
    FaultAlert {
        /// The suspected node.
        suspect: NodeId,
        /// The reporting observer.
        observer: NodeId,
    },
    /// Head's atomic reconfiguration command for its VC.
    Reconfig {
        /// The reconfigured Virtual Component.
        vc: VcId,
        /// Controller to promote to Active, if any.
        promote: Option<NodeId>,
        /// Controller to demote and its new mode, if any.
        demote: Option<(NodeId, ControllerMode)>,
    },
    /// Keepalive a computing controller sends in its slot when it has no
    /// output pending (e.g. the PV stream stalled) — distinguishes "I am
    /// alive but starved" from a crash.
    Heartbeat {
        /// The sending controller.
        from: NodeId,
    },
    /// Head's order to drive its VC's actuator to the fail-safe position
    /// (no viable master remains).
    FailSafe {
        /// The failing Virtual Component.
        vc: VcId,
        /// The safe actuator value.
        value: f64,
    },
    /// Actuator's forward of an accepted command to the gateway.
    ActuateFwd {
        /// The actuating Virtual Component (selects the plant register).
        vc: VcId,
        /// The actuator value.
        value: f64,
        /// PV timestamp carried through for latency accounting.
        pv_sampled_at: SimTime,
    },
    /// One fragment of a capsule image in flight over the epoch's
    /// dedicated transfer slots (live task migration). The receiver
    /// reassembles fragments in `seq` order and attests the capsule only
    /// once all `total` fragments verified.
    CapsuleChunk {
        /// The Virtual Component whose capsule is migrating.
        vc: VcId,
        /// Fragment index, `0..total`.
        seq: u16,
        /// Total fragments of this image.
        total: u16,
        /// Payload bytes carried by this fragment.
        len: u8,
    },
}

impl Message {
    /// Approximate MAC payload size, bytes (drives airtime). The VC tag
    /// rides in header bits that were already budgeted, so sizes match
    /// the single-VC frames exactly.
    pub(crate) fn payload_bytes(&self) -> usize {
        match self {
            Message::SensorValue { .. } => 12,
            Message::ControlOutput { .. } => 16,
            Message::FaultAlert { .. } => 8,
            Message::Reconfig { .. } => 10,
            Message::Heartbeat { .. } => 4,
            Message::FailSafe { .. } => 9,
            Message::ActuateFwd { .. } => 14,
            // Fragment header (seq, total, len) + the carried image bytes.
            Message::CapsuleChunk { len, .. } => 7 + *len as usize,
        }
    }
}
