//! The co-simulation engine.
//!
//! # Topology (Fig. 5)
//!
//! Seven nodes in a star around the gateway: `GW`(0) bridges the plant via
//! ModBus; `S1`(1) publishes the LTS level; `Ctrl-A`(2) and `Ctrl-B`(3)
//! host the focus control capsule as primary and backup; `A1`(4) drives
//! the LTS liquid valve; `S2`(5) publishes the tower-feed flow for
//! monitoring; `Head`(6) is the Virtual Component's head controller.
//!
//! # Slot pipeline
//!
//! Within each 250 ms RT-Link cycle the flows are scheduled in pipeline
//! order, so one control cycle completes well inside the cycle
//! (objective 5): `GW→S1` (HIL downlink), `S1→*` (PV publish, timestamped
//! at transmission — on the real testbed the sensor samples right before
//! its slot), `Ctrl-A→*` (output + health publication), `Ctrl-B→*`
//! (output/alert), `A1→GW` (actuation), `Head→*` (control plane).
//!
//! # Failure semantics
//!
//! The backup computes the same capsule on the same PV stream and feeds a
//! [`DeviationDetector`] with (primary output, own output) pairs; a
//! confirmed run of anomalies raises a `FaultAlert` to the head, which
//! arbitrates and commits the reconfiguration at its epoch boundary —
//! the exact Fig. 6(b) machinery.

use std::collections::HashMap;

use evm_mac::rtlink::{Flow, RtLink, SlotSchedule};
use evm_netsim::{
    Battery, Channel, EnergyMeter, Frame, FrameKind, NodeId, NodeInfo, NodeKind, Position,
    RadioPowerModel, RadioState, Topology,
};
use evm_plant::{GasPlant, LocalController, Plant, RegisterMap};
use evm_rtos::Kernel;
use evm_sim::{EventQueue, SimDuration, SimRng, SimTime, TimeSeries, Trace};

use crate::arbitration::{select_master, Candidate};
use crate::bytecode::{compile_control_law, control_law_gas_budget, ControlLawSpec, Program, Vm};
use crate::component::{MemberInfo, VirtualComponent};
use crate::health::{DeviationDetector, HeartbeatMonitor};
use crate::metrics::{NodeEnergy, RunResult};
use crate::migration::{execute_migration, MigrationPlan};
use crate::roles::ControllerMode;
use crate::runtime::Scenario;

/// Well-known node ids of the testbed.
pub mod nodes {
    use evm_netsim::NodeId;
    /// Gateway (ModBus bridge).
    pub const GW: NodeId = NodeId(0);
    /// LTS level sensor.
    pub const S1: NodeId = NodeId(1);
    /// Primary controller.
    pub const CTRL_A: NodeId = NodeId(2);
    /// Backup controller.
    pub const CTRL_B: NodeId = NodeId(3);
    /// LTS valve actuator.
    pub const ACT: NodeId = NodeId(4);
    /// Tower-feed sensor.
    pub const S2: NodeId = NodeId(5);
    /// Virtual-component head.
    pub const HEAD: NodeId = NodeId(6);
}

/// Frames exchanged between nodes.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// A plant value for a sensor node (HIL downlink) or a published PV.
    SensorValue {
        /// Which signal this is: 0 = the focus PV (LTS level), 1 = the
        /// tower-feed monitoring flow.
        tag: u8,
        /// Engineering value.
        value: f64,
        /// When the publishing sensor transmitted it.
        sampled_at: SimTime,
    },
    /// A controller's computed output (also its health publication).
    ControlOutput {
        /// The computing controller.
        from: NodeId,
        /// The output value (post-fault for a faulty controller).
        value: f64,
        /// Timestamp of the PV this output responds to.
        pv_sampled_at: SimTime,
    },
    /// Backup's confirmed-fault report to the head.
    FaultAlert {
        /// The suspected node.
        suspect: NodeId,
        /// The reporting observer.
        observer: NodeId,
    },
    /// Head's atomic reconfiguration command.
    Reconfig {
        /// Controller to promote to Active, if any.
        promote: Option<NodeId>,
        /// Controller to demote and its new mode, if any.
        demote: Option<(NodeId, ControllerMode)>,
    },
    /// Keepalive a computing controller sends in its slot when it has no
    /// output pending (e.g. the PV stream stalled) — distinguishes "I am
    /// alive but starved" from a crash.
    Heartbeat {
        /// The sending controller.
        from: NodeId,
    },
    /// Head's order to drive the actuator to its fail-safe position
    /// (no viable master remains).
    FailSafe {
        /// The safe actuator value.
        value: f64,
    },
    /// Actuator's forward of an accepted command to the gateway.
    ActuateFwd {
        /// The actuator value.
        value: f64,
        /// PV timestamp carried through for latency accounting.
        pv_sampled_at: SimTime,
    },
}

impl Message {
    /// Approximate MAC payload size, bytes (drives airtime).
    fn payload_bytes(&self) -> usize {
        match self {
            Message::SensorValue { .. } => 12,
            Message::ControlOutput { .. } => 16,
            Message::FaultAlert { .. } => 8,
            Message::Reconfig { .. } => 10,
            Message::Heartbeat { .. } => 4,
            Message::FailSafe { .. } => 9,
            Message::ActuateFwd { .. } => 14,
        }
    }
}

/// Each control-plane command is rebroadcast this many cycles; at 40 %
/// frame loss the probability every copy is lost is 0.4^20 ≈ 1e-8.
const CONTROL_PLANE_REPEATS: u32 = 20;

#[derive(Debug)]
enum Ev {
    Slot,
    PlantStep,
    Sample,
    Deliver { to: NodeId, msg: Message },
    TaskDone { node: NodeId },
    InjectFault,
    InjectBackupFault,
    CrashPrimary,
    HeadDecision { suspect: NodeId },
    MigrationDone { target: NodeId, suspect: NodeId },
    DormantDemote { target: NodeId },
}

/// Per-controller runtime state.
#[derive(Debug)]
struct ControllerState {
    mode: ControllerMode,
    vm: Vm,
    program: Program,
    kernel: Kernel,
    has_task: bool,
    latest_pv: Option<(f64, SimTime)>,
    computing: bool,
    /// Computed output awaiting this node's TX slot.
    pending_output: Option<(f64, SimTime)>,
    /// Last own output (for deviation checks).
    last_own_output: Option<f64>,
    detector: DeviationDetector,
    heartbeat: HeartbeatMonitor,
    pending_alert: Option<NodeId>,
    fault: Option<(SimTime, evm_plant::ActuatorFault)>,
}

/// The co-simulation engine. Build with [`Engine::new`], run with
/// [`Engine::run`].
pub struct Engine {
    scenario: Scenario,
    plant: GasPlant,
    regmap: RegisterMap,
    local_loops: Vec<LocalController>,
    channel: Channel,
    topology: Topology,
    rtlink: RtLink,
    schedule: SlotSchedule,
    vc: VirtualComponent,
    rng: SimRng,
    trace: Trace,
    queue: EventQueue<Ev>,
    now: SimTime,

    controllers: HashMap<NodeId, ControllerState>,
    /// Sensor nodes' latest values (S1, S2).
    sensor_latest: HashMap<NodeId, f64>,
    /// Actuator state: accepted active controller + pending forward.
    act_active_ctrl: NodeId,
    act_pending: Option<(f64, SimTime)>,
    /// Head state: pending control-plane commands with a retransmission
    /// budget (the fault plane must survive lossy links; receivers apply
    /// commands idempotently).
    head_pending_cmds: Vec<(Message, u32)>,
    head_decision_pending: bool,
    /// Nodes with confirmed faults — never candidates for promotion.
    suspected: Vec<NodeId>,
    /// Actuator lock: once in fail-safe, controller outputs are ignored
    /// until a promotion arrives.
    act_failsafe: bool,
    /// Slot indices (fixed at setup).
    slot_of: HashMap<&'static str, usize>,

    series: HashMap<String, TimeSeries>,
    mode_series: HashMap<NodeId, TimeSeries>,
    /// Radio energy meters per node.
    meters: HashMap<NodeId, EnergyMeter>,
    e2e: Vec<SimDuration>,
    deadline_misses: usize,
    actuations: usize,
}

impl Engine {
    /// Builds the testbed for a scenario.
    ///
    /// # Panics
    ///
    /// Panics if the scenario's slot schedule cannot be constructed — a
    /// configuration error, not a runtime condition.
    #[must_use]
    pub fn new(scenario: Scenario) -> Self {
        let mut rng = SimRng::seed_from(scenario.seed);
        let mut channel = Channel::new(scenario.channel.clone(), rng.fork(1));

        // --- Fig. 5 topology ------------------------------------------
        let ring = 15.0;
        let mut infos = vec![NodeInfo::new(nodes::GW, NodeKind::Gateway, Position::new(0.0, 0.0), "GW")];
        let ring_nodes: [(NodeId, NodeKind, &str); 6] = [
            (nodes::S1, NodeKind::Sensor, "S1"),
            (nodes::CTRL_A, NodeKind::Controller, "Ctrl-A"),
            (nodes::CTRL_B, NodeKind::Controller, "Ctrl-B"),
            (nodes::ACT, NodeKind::Actuator, "A1"),
            (nodes::S2, NodeKind::Sensor, "S2"),
            (nodes::HEAD, NodeKind::Controller, "Head"),
        ];
        for (i, (id, kind, label)) in ring_nodes.into_iter().enumerate() {
            let angle = 2.0 * std::f64::consts::PI * i as f64 / 6.0;
            infos.push(NodeInfo::new(
                id,
                kind,
                Position::new(ring * angle.cos(), ring * angle.sin()),
                label,
            ));
        }
        let topology = Topology::derive(infos, &mut channel);

        // --- Slot schedule (pipeline order) ---------------------------
        let flows = vec![
            /* 0: GW -> S1  */ Flow::new(nodes::GW, nodes::S1),
            /* 1: S1 -> all */
            Flow::new(nodes::S1, nodes::CTRL_A)
                .with_listeners(vec![nodes::CTRL_B, nodes::HEAD])
                .after(0),
            /* 2: A -> out  */
            Flow::new(nodes::CTRL_A, nodes::ACT)
                .with_listeners(vec![nodes::CTRL_B, nodes::HEAD])
                .after(1),
            /* 3: B -> out  */
            Flow::new(nodes::CTRL_B, nodes::ACT)
                .with_listeners(vec![nodes::HEAD])
                .after(2),
            /* 4: A1 -> GW  */ Flow::new(nodes::ACT, nodes::GW).after(3),
            /* 5: Head -> * */
            Flow::new(nodes::HEAD, nodes::CTRL_A)
                .with_listeners(vec![nodes::CTRL_B, nodes::ACT, nodes::GW])
                .after(4),
            /* 6: GW -> S2  */ Flow::new(nodes::GW, nodes::S2).after(5),
            /* 7: S2 -> GW  */
            Flow::new(nodes::S2, nodes::HEAD)
                .with_listeners(vec![nodes::GW])
                .after(6),
        ];
        let schedule = SlotSchedule::for_flows(&scenario.rtlink, &topology, &flows)
            .expect("testbed flows must schedule");
        let slot_idx = |flow: usize, node: NodeId| -> usize {
            let owned = schedule.owned_slots(node);
            // Flows are placed in order, so each owner's slots sort by flow.
            let mine: Vec<usize> = owned;
            let earlier_same_owner = flows[..flow]
                .iter()
                .filter(|f| f.src == node)
                .count();
            mine[earlier_same_owner]
        };
        let mut slot_of = HashMap::new();
        slot_of.insert("gw_s1", slot_idx(0, nodes::GW));
        slot_of.insert("s1_bcast", slot_idx(1, nodes::S1));
        slot_of.insert("a_out", slot_idx(2, nodes::CTRL_A));
        slot_of.insert("b_out", slot_idx(3, nodes::CTRL_B));
        slot_of.insert("act_fwd", slot_idx(4, nodes::ACT));
        slot_of.insert("head_bcast", slot_idx(5, nodes::HEAD));
        slot_of.insert("gw_s2", slot_idx(6, nodes::GW));
        slot_of.insert("s2_bcast", slot_idx(7, nodes::S2));

        // --- Plant + local (wired) loops for the 7 non-focus loops ----
        let plant = GasPlant::default();
        let focus_name = scenario.focus_loop.name.clone();
        let local_loops: Vec<LocalController> = evm_plant::standard_loops()
            .into_iter()
            .filter(|l| l.name != focus_name)
            .map(LocalController::new)
            .collect();

        // --- Controllers ------------------------------------------------
        let law = ControlLawSpec::from_loop(&scenario.focus_loop);
        let program = compile_control_law(&law);
        let gas = control_law_gas_budget(&program);
        let period = SimDuration::from_secs_f64(scenario.focus_loop.period_s);
        let hb_timeout = scenario.rtlink.cycle_duration() * scenario.heartbeat_cycles;

        let mk_controller = |id: NodeId, mode: ControllerMode, hosts_task: bool| {
            let mut kernel = Kernel::new(format!("{id}"));
            let mut has_task = false;
            if hosts_task {
                kernel
                    .admit(
                        evm_rtos::TaskSpec::new("focus", kernel.instr_cost() * gas, period),
                        evm_rtos::TaskImage::typical_control_task(),
                        None,
                    )
                    .expect("focus task admits on an empty kernel");
                has_task = true;
            }
            ControllerState {
                mode,
                vm: Vm::new(gas),
                program: program.clone(),
                kernel,
                has_task,
                latest_pv: None,
                computing: false,
                pending_output: None,
                last_own_output: None,
                detector: DeviationDetector::new(
                    id,
                    nodes::CTRL_A,
                    scenario.detect_threshold,
                    scenario.detect_consecutive,
                ),
                heartbeat: HeartbeatMonitor::new(nodes::CTRL_A, hb_timeout),
                pending_alert: None,
                fault: None,
            }
        };
        let mut controllers = HashMap::new();
        controllers.insert(
            nodes::CTRL_A,
            mk_controller(nodes::CTRL_A, ControllerMode::Active, true),
        );
        let b_mode = if scenario.warm_backup {
            ControllerMode::Backup
        } else {
            ControllerMode::Dormant
        };
        controllers.insert(
            nodes::CTRL_B,
            mk_controller(nodes::CTRL_B, b_mode, scenario.warm_backup),
        );
        // The head always runs a monitor replica of the law: it observes
        // the data plane and can detect output deviations itself, which is
        // what makes cold-standby deployments (no warm backup computing)
        // still fail over.
        controllers.insert(nodes::HEAD, mk_controller(nodes::HEAD, ControllerMode::Backup, true));

        // --- Virtual component ----------------------------------------
        let mut vc = VirtualComponent::new("lts-loop");
        for n in topology.nodes() {
            let mode = match n.id {
                id if id == nodes::CTRL_A => Some(ControllerMode::Active),
                id if id == nodes::CTRL_B => Some(b_mode),
                _ => None,
            };
            vc.add_member(MemberInfo {
                node: n.id,
                kind: n.kind,
                mode,
                capsules: vec![],
            });
        }
        vc.set_head(nodes::HEAD);

        let series = scenario
            .sampled_tags
            .iter()
            .map(|t| (t.clone(), TimeSeries::new(t.clone())))
            .collect();
        let mode_series = [nodes::CTRL_A, nodes::CTRL_B]
            .into_iter()
            .map(|n| {
                let label = topology.node(n).expect("member").label.clone();
                (n, TimeSeries::new(format!("Mode.{label}")))
            })
            .collect();

        let meters = topology
            .nodes()
            .iter()
            .map(|n| (n.id, EnergyMeter::new(RadioPowerModel::cc2420())))
            .collect();

        let mut engine = Engine {
            plant,
            regmap: RegisterMap::gas_plant_standard(),
            local_loops,
            channel,
            topology,
            rtlink: RtLink::new(scenario.rtlink.clone()),
            schedule,
            vc,
            rng,
            trace: Trace::new(),
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            controllers,
            sensor_latest: HashMap::new(),
            act_active_ctrl: nodes::CTRL_A,
            act_pending: None,
            head_pending_cmds: Vec::new(),
            head_decision_pending: false,
            suspected: Vec::new(),
            act_failsafe: false,
            slot_of,
            series,
            mode_series,
            meters,
            e2e: Vec::new(),
            deadline_misses: 0,
            actuations: 0,
            scenario,
        };

        // Seed events.
        engine.queue.push(SimTime::ZERO, Ev::PlantStep);
        engine
            .queue
            .push(SimTime::ZERO + engine.scenario.rtlink.slot_duration, Ev::Slot);
        engine.queue.push(SimTime::ZERO, Ev::Sample);
        if let Some((at, _)) = engine.scenario.fault {
            engine.queue.push(at, Ev::InjectFault);
        }
        if let Some((at, _)) = engine.scenario.backup_fault {
            engine.queue.push(at, Ev::InjectBackupFault);
        }
        if let Some(at) = engine.scenario.primary_crash {
            engine.queue.push(at, Ev::CrashPrimary);
        }
        engine
    }

    /// The slot schedule (for inspection/tests).
    #[must_use]
    pub fn schedule(&self) -> &SlotSchedule {
        &self.schedule
    }

    /// The virtual component (for inspection/tests).
    #[must_use]
    pub fn component(&self) -> &VirtualComponent {
        &self.vc
    }

    /// Runs the scenario to completion and returns the results.
    #[must_use]
    pub fn run(mut self) -> RunResult {
        let end = SimTime::ZERO + self.scenario.duration;
        while let Some((t, ev)) = self.queue.pop() {
            if t >= end {
                break;
            }
            self.now = t;
            self.handle(ev);
            debug_assert!(
                self.vc.invariant_single_active(),
                "single-active invariant violated at {t}"
            );
        }
        // Close out energy accounting: everything not spent on the radio
        // was deep sleep.
        let total = self.scenario.duration;
        let node_energy = self
            .meters
            .iter_mut()
            .map(|(id, m)| {
                let accounted = m.total_time();
                m.add(RadioState::Sleep, total.saturating_sub(accounted));
                let label = self
                    .topology
                    .node(*id)
                    .map_or_else(|| id.to_string(), |n| n.label.clone());
                let avg = m.average_current_ma();
                (
                    label,
                    NodeEnergy {
                        avg_current_ma: avg,
                        radio_duty: m.radio_duty_cycle(),
                        lifetime_years: Battery::two_aa().lifetime_years_at(avg.max(1e-9)),
                    },
                )
            })
            .collect();
        RunResult {
            series: self
                .series
                .into_iter()
                .chain(
                    self.mode_series
                        .into_values()
                        .map(|s| (s.name().to_string(), s)),
                )
                .collect(),
            trace: self.trace,
            e2e_latencies: self.e2e,
            deadline_misses: self.deadline_misses,
            actuations: self.actuations,
            node_energy,
        }
    }

    fn slot(&self, key: &str) -> usize {
        self.slot_of[key]
    }

    fn alive(&self, node: NodeId) -> bool {
        self.scenario.fault_plan.node_alive(node, self.now)
    }

    fn handle(&mut self, ev: Ev) {
        match ev {
            Ev::PlantStep => self.on_plant_step(),
            Ev::Slot => self.on_slot(),
            Ev::Sample => self.on_sample(),
            Ev::Deliver { to, msg } => self.on_deliver(to, msg),
            Ev::TaskDone { node } => self.on_task_done(node),
            Ev::InjectFault => self.on_inject_fault(),
            Ev::InjectBackupFault => self.on_inject_backup_fault(),
            Ev::CrashPrimary => self.on_crash_primary(),
            Ev::HeadDecision { suspect } => self.on_head_decision(suspect),
            Ev::MigrationDone { target, suspect } => self.on_migration_done(target, suspect),
            Ev::DormantDemote { target } => {
                let _ = self.vc.set_mode(target, ControllerMode::Dormant);
                self.head_pending_cmds.push((
                    Message::Reconfig {
                        promote: None,
                        demote: Some((target, ControllerMode::Dormant)),
                    },
                    CONTROL_PLANE_REPEATS,
                ));
            }
        }
    }

    fn on_plant_step(&mut self) {
        let dt = self.scenario.plant_dt;
        // Wired loops run at the gateway against the plant directly.
        let now_s = self.now.as_secs_f64();
        for c in &mut self.local_loops {
            let _ = c.poll(&mut self.plant, now_s);
        }
        self.plant.step(dt.as_secs_f64());
        self.queue.push(self.now + dt, Ev::PlantStep);
    }

    fn on_sample(&mut self) {
        for (tag, series) in &mut self.series {
            if let Some(v) = self.plant.read_tag(tag) {
                series.push(self.now, v);
            }
        }
        for (node, series) in &mut self.mode_series {
            let mode = self.controllers[node].mode;
            series.push(self.now, mode.as_f64());
        }
        self.queue.push(self.now + self.scenario.sample_every, Ev::Sample);
    }

    /// Processes all transmissions of the slot that starts now.
    fn on_slot(&mut self) {
        let (cycle, slot) = self.rtlink.slot_at(self.now);
        if slot == 0 {
            self.on_cycle_start(cycle);
        }
        let assignments: Vec<(NodeId, Vec<NodeId>)> = self
            .schedule
            .in_slot(slot)
            .iter()
            .map(|a| (a.owner, a.listeners.clone()))
            .collect();
        // Detect window a listener pays before shutting down on an empty
        // slot: guard + PHY header airtime.
        let detect = self.scenario.rtlink.guard
            + evm_netsim::frame::airtime_for_bytes(evm_netsim::PHY_HEADER_BYTES);
        for (owner, listeners) in assignments {
            if !self.alive(owner) {
                continue;
            }
            let Some(msg) = self.take_outgoing(owner, slot) else {
                // Empty slot: listeners still pay the detect window.
                for l in listeners {
                    if self.alive(l) {
                        if let Some(m) = self.meters.get_mut(&l) {
                            m.add(RadioState::Listen, detect);
                        }
                    }
                }
                continue;
            };
            let frame = Frame::new(owner, FrameKind::Broadcast, msg.payload_bytes(), 0);
            let airtime = frame.airtime();
            let guard = self.scenario.rtlink.guard;
            if let Some(m) = self.meters.get_mut(&owner) {
                m.add(RadioState::Idle, guard);
                m.add(RadioState::Tx, airtime);
            }
            for to in listeners {
                if !self.alive(to) {
                    continue;
                }
                if let Some(m) = self.meters.get_mut(&to) {
                    m.add(RadioState::Rx, guard + airtime);
                }
                if !self.scenario.fault_plan.link_usable(owner, to, self.now) {
                    continue;
                }
                let d = self.topology.distance(owner, to);
                if !self.channel.sample_delivery(&frame, to, d) {
                    continue;
                }
                if self.rng.chance(self.scenario.extra_loss) {
                    continue;
                }
                self.queue.push(
                    self.now + guard + airtime,
                    Ev::Deliver {
                        to,
                        msg: msg.clone(),
                    },
                );
            }
        }
        self.queue
            .push(self.now + self.scenario.rtlink.slot_duration, Ev::Slot);
    }

    /// Cycle-boundary housekeeping: sync reception energy and heartbeat
    /// checks on backups.
    fn on_cycle_start(&mut self, _cycle: u64) {
        let now = self.now;
        let sync = self.scenario.rtlink.sync_listen;
        let ids: Vec<NodeId> = self.topology.nodes().iter().map(|n| n.id).collect();
        for id in ids {
            if self.alive(id) {
                if let Some(m) = self.meters.get_mut(&id) {
                    m.add(RadioState::Rx, sync);
                }
            }
        }
        let mut alerts = Vec::new();
        for (&id, c) in &mut self.controllers {
            if c.mode == ControllerMode::Backup
                && id != nodes::HEAD
                && c.heartbeat.is_silent(now)
                && c.pending_alert.is_none()
            {
                c.pending_alert = Some(c.heartbeat.watched());
                alerts.push((id, c.heartbeat.watched()));
            }
        }
        for (observer, suspect) in alerts {
            self.trace.log(
                self.now,
                "health",
                format!("{observer} heartbeat timeout on {suspect}"),
            );
        }
    }

    /// What `owner` transmits in `slot`, if anything.
    fn take_outgoing(&mut self, owner: NodeId, slot: usize) -> Option<Message> {
        if owner == nodes::GW && slot == self.slot("gw_s1") {
            let mut v = self.regmap.read_scaled(&self.plant, 30001).ok()?;
            if self.scenario.sensor_noise_std > 0.0 {
                v += self.rng.normal(0.0, self.scenario.sensor_noise_std);
            }
            return Some(Message::SensorValue {
                tag: 0,
                value: v,
                sampled_at: self.now,
            });
        }
        if owner == nodes::GW && slot == self.slot("gw_s2") {
            let v = self.regmap.read_scaled(&self.plant, 30007).ok()?;
            return Some(Message::SensorValue {
                tag: 1,
                value: v,
                sampled_at: self.now,
            });
        }
        if (owner == nodes::S1 && slot == self.slot("s1_bcast"))
            || (owner == nodes::S2 && slot == self.slot("s2_bcast"))
        {
            let v = *self.sensor_latest.get(&owner)?;
            let tag = if owner == nodes::S1 { 0 } else { 1 };
            // Freshness stamp: the sensor publishes "now" (on hardware it
            // samples right before its slot).
            return Some(Message::SensorValue {
                tag,
                value: v,
                sampled_at: self.now,
            });
        }
        if (owner == nodes::CTRL_A && slot == self.slot("a_out"))
            || (owner == nodes::CTRL_B && slot == self.slot("b_out"))
        {
            let c = self.controllers.get_mut(&owner)?;
            if !c.mode.computes() {
                return None;
            }
            // Alerts preempt outputs (fault plane over data plane).
            if let Some(suspect) = c.pending_alert.take() {
                return Some(Message::FaultAlert {
                    suspect,
                    observer: owner,
                });
            }
            if let Some((value, pv_ts)) = c.pending_output.take() {
                return Some(Message::ControlOutput {
                    from: owner,
                    value,
                    pv_sampled_at: pv_ts,
                });
            }
            // Nothing to publish (PV stream stalled): send a keepalive so
            // peers can tell starvation from a crash.
            return Some(Message::Heartbeat { from: owner });
        }
        if owner == nodes::ACT && slot == self.slot("act_fwd") {
            let (value, pv_ts) = self.act_pending.take()?;
            return Some(Message::ActuateFwd {
                value,
                pv_sampled_at: pv_ts,
            });
        }
        if owner == nodes::HEAD && slot == self.slot("head_bcast") {
            if let Some((msg, remaining)) = self.head_pending_cmds.first_mut() {
                let out = msg.clone();
                *remaining -= 1;
                if *remaining == 0 {
                    self.head_pending_cmds.remove(0);
                }
                return Some(out);
            }
            return None;
        }
        None
    }

    fn on_deliver(&mut self, to: NodeId, msg: Message) {
        match msg {
            Message::SensorValue {
                tag,
                value,
                sampled_at,
            } => {
                if to == nodes::S1 || to == nodes::S2 {
                    self.sensor_latest.insert(to, value);
                } else if let Some(c) = self.controllers.get_mut(&to) {
                    // Controllers only act on the focus PV.
                    if tag != 0 {
                        return;
                    }
                    c.latest_pv = Some((value, sampled_at));
                    if c.mode.computes() && c.has_task && !c.computing {
                        c.computing = true;
                        let wcet = c.kernel.instr_cost() * c.vm.gas_limit();
                        self.queue.push(self.now + wcet, Ev::TaskDone { node: to });
                    }
                }
            }
            Message::Heartbeat { from } => {
                if let Some(c) = self.controllers.get_mut(&to) {
                    if from == c.heartbeat.watched() {
                        c.heartbeat.heard(self.now);
                    }
                }
            }
            Message::FailSafe { value } => {
                if to == nodes::ACT && !self.act_failsafe {
                    self.act_failsafe = true;
                    self.act_pending = Some((value, self.now));
                    self.trace
                        .log(self.now, "vc", format!("actuator fail-safe at {value}%"));
                }
            }
            Message::ControlOutput {
                from,
                value,
                pv_sampled_at,
            } => {
                if to == nodes::ACT {
                    if from == self.act_active_ctrl && !self.act_failsafe {
                        self.act_pending = Some((value, pv_sampled_at));
                    }
                } else if let Some(c) = self.controllers.get_mut(&to) {
                    if from == nodes::CTRL_A {
                        c.heartbeat.heard(self.now);
                    }
                    // Backup observation of the primary's published output.
                    // The suspect is whoever is currently actuating.
                    let mut confirmed = None;
                    if c.mode == ControllerMode::Backup && from == self.act_active_ctrl {
                        if let Some(own) = c.last_own_output {
                            if let Some(ev) = c.detector.observe(value, own, self.now) {
                                if c.pending_alert.is_none() {
                                    c.pending_alert = Some(from);
                                    confirmed = Some(ev.mean_deviation);
                                }
                            }
                        }
                    }
                    if let Some(mean_dev) = confirmed {
                        self.trace.log(
                            self.now,
                            "health",
                            format!("{to} confirmed deviation on {from} (mean {mean_dev:.1})"),
                        );
                        // The head's own monitor short-circuits the alert
                        // frame (it would be addressed to itself).
                        if to == nodes::HEAD {
                            if let Some(c) = self.controllers.get_mut(&nodes::HEAD) {
                                c.pending_alert = None;
                            }
                            self.head_on_alert(from, nodes::HEAD);
                        }
                    }
                }
            }
            Message::FaultAlert { suspect, observer } => {
                if to == nodes::HEAD {
                    self.head_on_alert(suspect, observer);
                }
            }
            Message::Reconfig { promote, demote } => {
                self.apply_reconfig(to, promote, demote);
            }
            Message::ActuateFwd {
                value,
                pv_sampled_at,
            } => {
                if to == nodes::GW {
                    let _ = self.regmap.write_scaled(&mut self.plant, 40002, value);
                    let e2e = self.now.saturating_since(pv_sampled_at);
                    let deadline = self.rtlink.config().cycle_duration() / 3;
                    if e2e > deadline {
                        self.deadline_misses += 1;
                    }
                    self.e2e.push(e2e);
                    self.actuations += 1;
                }
            }
        }
    }

    /// Head-side alert handling: schedule the reconfiguration decision at
    /// the next epoch boundary.
    fn head_on_alert(&mut self, suspect: NodeId, observer: NodeId) {
        if self.head_decision_pending {
            return;
        }
        // Only the controller the component believes is Active can be the
        // subject of a failover (stale alerts from the switchover window
        // are dropped here).
        if self.vc.active_controller() != Some(suspect) {
            return;
        }
        self.head_decision_pending = true;
        let epoch = self.scenario.reconfig_epoch;
        let decide_at = if epoch.is_zero() {
            self.now + self.scenario.rtlink.slot_duration
        } else {
            self.now.ceil_to(epoch)
        };
        self.trace.log(
            self.now,
            "vc",
            format!("head received alert from {observer} on {suspect}; deciding at {decide_at}"),
        );
        self.queue.push(decide_at, Ev::HeadDecision { suspect });
    }

    /// Applies a reconfiguration frame on the receiving node. The VC
    /// record itself is the *head's* authoritative view, updated when the
    /// head commits (a crashed node never acks its demotion; the component
    /// must not wait for it).
    fn apply_reconfig(
        &mut self,
        to: NodeId,
        promote: Option<NodeId>,
        demote: Option<(NodeId, ControllerMode)>,
    ) {
        // The actuator switches masters (the OS-1 operation switch); a
        // promotion also releases a fail-safe lock.
        if to == nodes::ACT {
            if let Some(p) = promote {
                self.act_active_ctrl = p;
                self.act_failsafe = false;
            }
            return;
        }
        let Some(c) = self.controllers.get_mut(&to) else {
            return;
        };
        // A reconfiguration starts a fresh observation epoch.
        c.detector.reset();
        c.pending_alert = None;
        // Demote first so the single-active invariant holds through the
        // transition.
        if let Some((target, mode)) = demote {
            if target == to && c.mode != mode {
                let label = self.topology.node(to).expect("member").label.clone();
                c.mode = mode;
                if mode == ControllerMode::Dormant {
                    c.pending_output = None;
                    c.computing = false;
                }
                self.trace.log(self.now, "vc", format!("{label} -> {mode}"));
            }
        }
        if let Some(target) = promote {
            if target == to && c.mode != ControllerMode::Active {
                let label = self.topology.node(to).expect("member").label.clone();
                c.mode = ControllerMode::Active;
                self.trace.log(self.now, "vc", format!("{label} -> Active"));
            }
        }
    }

    fn on_task_done(&mut self, node: NodeId) {
        let Some(c) = self.controllers.get_mut(&node) else {
            return;
        };
        c.computing = false;
        if !c.mode.computes() {
            return;
        }
        let Some((pv, pv_ts)) = c.latest_pv else {
            return;
        };
        struct Env {
            pv: f64,
            out: Option<f64>,
            now_s: f64,
            role: f64,
        }
        impl crate::bytecode::VmEnv for Env {
            fn read_sensor(&mut self, _p: u8) -> Result<f64, crate::bytecode::VmError> {
                Ok(self.pv)
            }
            fn write_actuator(&mut self, _p: u8, v: f64) -> Result<(), crate::bytecode::VmError> {
                self.out = Some(v);
                Ok(())
            }
            fn emit(&mut self, _ch: u8, _v: f64) {}
            fn clock_s(&self) -> f64 {
                self.now_s
            }
            fn role_code(&self) -> f64 {
                self.role
            }
        }
        let mut env = Env {
            pv,
            out: None,
            now_s: self.now.as_secs_f64(),
            role: c.mode.as_f64(),
        };
        let Ok(_) = c.vm.run(&c.program, &mut env) else {
            self.trace
                .log(self.now, "vm", format!("{node} capsule trapped"));
            return;
        };
        let correct = env.out.unwrap_or(0.0);
        c.last_own_output = Some(correct);
        // Apply the scripted controller fault to the *published* output.
        let published = match c.fault {
            Some((since, fault)) => {
                let elapsed = self.now.saturating_since(since).as_secs_f64();
                fault.apply(correct, elapsed, &mut self.rng)
            }
            None => correct,
        };
        c.pending_output = Some((published, pv_ts));
    }

    fn on_inject_fault(&mut self) {
        if let Some((_, fault)) = self.scenario.fault {
            if let Some(c) = self.controllers.get_mut(&nodes::CTRL_A) {
                c.fault = Some((self.now, fault));
            }
            self.trace
                .log(self.now, "fault", format!("inject {fault:?} on Ctrl-A"));
        }
    }

    fn on_inject_backup_fault(&mut self) {
        if let Some((_, fault)) = self.scenario.backup_fault {
            if let Some(c) = self.controllers.get_mut(&nodes::CTRL_B) {
                c.fault = Some((self.now, fault));
            }
            self.trace
                .log(self.now, "fault", format!("inject {fault:?} on Ctrl-B"));
        }
    }

    fn on_crash_primary(&mut self) {
        self.scenario
            .fault_plan
            .add_crash(evm_netsim::NodeCrash::permanent(nodes::CTRL_A, self.now));
        self.trace.log(self.now, "fault", "Ctrl-A crashed");
    }

    fn on_head_decision(&mut self, suspect: NodeId) {
        if !self.suspected.contains(&suspect) {
            self.suspected.push(suspect);
        }
        // Arbitration over the surviving, unsuspected controllers.
        let candidates: Vec<Candidate> = self
            .controllers
            .iter()
            .filter(|(&id, _)| {
                id != suspect && id != nodes::HEAD && !self.suspected.contains(&id)
            })
            .map(|(&id, c)| Candidate {
                node: id,
                eligible: self.alive(id),
                battery: {
                    let consumed = self.meters.get(&id).map_or(0.0, EnergyMeter::consumed_mah);
                    (1.0 - consumed / Battery::two_aa().capacity_mah()).max(0.0)
                },
                cpu_headroom: 1.0 - c.kernel.utilization(),
                link_quality: 1.0,
                warm_replica: c.has_task,
            })
            .collect();
        let Some(target) = select_master(&candidates) else {
            // §3.1.2 health-assessment response: LocalFailSafe. Demote the
            // suspect and drive the actuator to its safe position.
            self.trace.log(self.now, "vc", "no viable master; engaging fail-safe");
            let _ = self.vc.set_mode(suspect, ControllerMode::Indicator);
            self.head_pending_cmds.push((
                Message::Reconfig {
                    promote: None,
                    demote: Some((suspect, ControllerMode::Indicator)),
                },
                CONTROL_PLANE_REPEATS,
            ));
            self.head_pending_cmds.push((
                Message::FailSafe {
                    value: self.scenario.fail_safe_value,
                },
                CONTROL_PLANE_REPEATS,
            ));
            self.head_decision_pending = false;
            return;
        };
        let warm = self.controllers[&target].has_task;
        if warm {
            self.commit_failover(target, suspect);
        } else {
            // Cold standby: migrate the task image first.
            let plan = MigrationPlan::new(
                &evm_rtos::TaskImage::typical_control_task(),
                1,
                self.rtlink.config().cycle_duration(),
            );
            let outcome = execute_migration(&plan, self.scenario.extra_loss, 100, &mut self.rng);
            match outcome {
                Ok(out) => {
                    self.trace.log(
                        self.now,
                        "migration",
                        format!(
                            "image {} B in {} frames ({} retries), {}",
                            plan.image_bytes, out.frames_sent, out.retries, out.duration
                        ),
                    );
                    self.queue.push(
                        self.now + out.duration,
                        Ev::MigrationDone { target, suspect },
                    );
                }
                Err(e) => {
                    self.trace
                        .log(self.now, "migration", format!("failed: {e}"));
                    self.head_decision_pending = false;
                }
            }
        }
    }

    fn on_migration_done(&mut self, target: NodeId, suspect: NodeId) {
        // Admission gate on the target before activation.
        let c = self.controllers.get_mut(&target).expect("target exists");
        let gas = c.vm.gas_limit();
        let period = SimDuration::from_secs_f64(self.scenario.focus_loop.period_s);
        let admitted = c
            .kernel
            .admit(
                evm_rtos::TaskSpec::new("focus", c.kernel.instr_cost() * gas, period),
                evm_rtos::TaskImage::typical_control_task(),
                None,
            )
            .is_ok();
        if !admitted {
            self.trace
                .log(self.now, "migration", format!("{target} refused admission"));
            self.head_decision_pending = false;
            return;
        }
        c.has_task = true;
        // Warm-start the migrated integrator from the suspect's snapshot
        // (the data section of the migrated TCB).
        let snapshot = self.controllers[&suspect].vm.snapshot_vars();
        self.controllers
            .get_mut(&target)
            .expect("target exists")
            .vm
            .restore_vars(snapshot);
        self.trace
            .log(self.now, "migration", format!("task activated on {target}"));
        self.commit_failover(target, suspect);
    }

    fn commit_failover(&mut self, target: NodeId, suspect: NodeId) {
        // Head's authoritative VC view: demote first, then promote.
        let _ = self.vc.set_mode(suspect, ControllerMode::Backup);
        let _ = self.vc.set_mode(target, ControllerMode::Active);
        self.head_pending_cmds.push((
            Message::Reconfig {
                promote: Some(target),
                demote: Some((suspect, ControllerMode::Backup)),
            },
            CONTROL_PLANE_REPEATS,
        ));
        self.queue.push(
            self.now + self.scenario.demote_dormant_after,
            Ev::DormantDemote { target: suspect },
        );
        self.trace.log(
            self.now,
            "vc",
            format!("head commits failover {suspect} -> {target}"),
        );
        self.head_decision_pending = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn short(scenario: Scenario, secs: u64) -> RunResult {
        let mut s = scenario;
        s.duration = SimDuration::from_secs(secs);
        Engine::new(s).run()
    }

    #[test]
    fn baseline_holds_level_and_meets_deadlines() {
        let r = short(Scenario::baseline(), 120);
        let level = r.series("LTS.LiquidPct");
        let last = level.last_value().unwrap();
        assert!((last - 50.0).abs() < 5.0, "level {last}");
        assert!(r.actuations > 200, "actuations {}", r.actuations);
        // Objective 5: latency <= 1/3 of the 250 ms cycle.
        assert!(
            r.deadline_hit_ratio() > 0.99,
            "hit ratio {}",
            r.deadline_hit_ratio()
        );
        let p99 = r.e2e_quantile(0.99).unwrap();
        assert!(
            p99 <= SimDuration::from_micros(83_333),
            "p99 latency {p99}"
        );
    }

    #[test]
    fn schedule_is_pipeline_ordered() {
        let e = Engine::new(Scenario::baseline());
        let s = |k: &str| e.slot(k);
        assert!(s("gw_s1") < s("s1_bcast"));
        assert!(s("s1_bcast") < s("a_out"));
        assert!(s("a_out") < s("b_out"));
        assert!(s("b_out") < s("act_fwd"));
        assert!(s("act_fwd") < s("head_bcast"));
        assert!(e.schedule().is_interference_free(&e.topology));
    }

    #[test]
    fn fig6b_failover_sequence() {
        let r = Engine::new(Scenario::fig6b()).run();
        // Detection happens quickly after the 300 s injection...
        let detected = r.event_time("confirmed deviation").expect("detected");
        assert!(detected >= SimTime::from_secs(300));
        assert!(
            detected < SimTime::from_secs(310),
            "detection was slow: {detected}"
        );
        // ...but the head commits at the next 300 s epoch: T2 = 600 s.
        let promoted = r.event_time("Ctrl-B -> Active").expect("promoted");
        assert!(
            promoted >= SimTime::from_secs(600) && promoted < SimTime::from_secs(602),
            "T2 was {promoted}"
        );
        // T3 = 800 s: Ctrl-A Dormant.
        let dormant = r.event_time("Ctrl-A -> Dormant").expect("dormant");
        assert!(
            dormant >= SimTime::from_secs(800) && dormant < SimTime::from_secs(802),
            "T3 was {dormant}"
        );
        // Level collapses under the fault, then recovers after failover.
        let level = r.series("LTS.LiquidPct");
        let during = level.window(SimTime::from_secs(550), SimTime::from_secs(600));
        assert!(during.stats().unwrap().max < 20.0, "level must collapse");
        let late = level.window(SimTime::from_secs(900), SimTime::from_secs(1000));
        let recovering = late.stats().unwrap().mean;
        assert!(
            recovering > during.stats().unwrap().mean + 5.0,
            "level must recover: {recovering}"
        );
    }

    #[test]
    fn fast_reconfig_recovers_sooner() {
        let slow = Engine::new(Scenario::fig6b()).run();
        let fast = Engine::new(Scenario::fig6b_fast()).run();
        let t_slow = slow.event_time("Ctrl-B -> Active").unwrap();
        let t_fast = fast.event_time("Ctrl-B -> Active").unwrap();
        assert!(
            t_fast < t_slow - SimDuration::from_secs(250),
            "fast {t_fast} vs slow {t_slow}"
        );
        // Lower control cost with fast failover.
        let cost = |r: &RunResult| {
            r.control_cost(
                "LTS.LiquidPct",
                50.0,
                SimTime::from_secs(300),
                SimTime::from_secs(1000),
            )
        };
        assert!(cost(&fast) < cost(&slow));
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        let a = Engine::new(Scenario::fig6b()).run();
        let b = Engine::new(Scenario::fig6b()).run();
        assert_eq!(a.trace.render(), b.trace.render());
        assert_eq!(
            a.series("LTS.LiquidPct").samples(),
            b.series("LTS.LiquidPct").samples()
        );
    }

    #[test]
    fn crash_failover_via_heartbeat() {
        let scenario = Scenario::builder()
            .crash_primary_at(SimTime::from_secs(100))
            .reconfig_epoch(SimDuration::ZERO)
            .duration(SimDuration::from_secs(300))
            .build();
        let r = Engine::new(scenario).run();
        assert!(r.event_time("heartbeat timeout").is_some());
        let promoted = r.event_time("Ctrl-B -> Active").expect("failover");
        assert!(
            promoted < SimTime::from_secs(110),
            "crash failover took until {promoted}"
        );
        // After failover the loop keeps running.
        let level = r.series("LTS.LiquidPct");
        let last = level.last_value().unwrap();
        assert!((last - 50.0).abs() < 10.0, "level {last}");
    }

    #[test]
    fn energy_accounting_is_plausible() {
        let r = short(Scenario::baseline(), 300);
        let e = |label: &str| r.node_energy.get(label).expect("metered");
        for label in ["GW", "S1", "Ctrl-A", "Ctrl-B", "A1", "S2", "Head"] {
            let ne = e(label);
            assert!(
                ne.avg_current_ma > 0.05 && ne.avg_current_ma < 5.0,
                "{label}: {:.3} mA",
                ne.avg_current_ma
            );
            assert!(ne.radio_duty < 0.10, "{label}: duty {:.3}", ne.radio_duty);
            assert!(ne.lifetime_years > 0.05, "{label}: {:.2} y", ne.lifetime_years);
        }
        // The gateway owns two uplink slots and receives actuations: it
        // must work the radio at least as hard as the idle spare sensor.
        assert!(e("GW").radio_duty >= e("S2").radio_duty);
    }

    /// Design property the broadcast-PV architecture buys: because every
    /// replica computes on the *same published sample*, measurement noise
    /// cannot diverge primary and backup — so it can never cause a false
    /// failover, no matter how large.
    #[test]
    fn sensor_noise_cannot_cause_false_failover() {
        let scenario = Scenario::builder()
            .sensor_noise(5.0) // same magnitude as the detection threshold
            .reconfig_epoch(SimDuration::ZERO)
            .duration(SimDuration::from_secs(300))
            .build();
        let r = Engine::new(scenario).run();
        assert!(r.event_time("confirmed deviation").is_none());
        assert!(r.event_time("Ctrl-B -> Active").is_none());
        // The loop still regulates (the 2nd-order filter earns its keep).
        let level = r.series("LTS.LiquidPct");
        assert!((level.last_value().unwrap() - 50.0).abs() < 6.0);
    }

    #[test]
    fn double_fault_engages_fail_safe() {
        use evm_plant::ActuatorFault;
        let scenario = Scenario::builder()
            .fault_at(SimTime::from_secs(100), ActuatorFault::paper_fault())
            .backup_fault_at(SimTime::from_secs(200), ActuatorFault::StuckOutput(90.0))
            .reconfig_epoch(SimDuration::ZERO)
            .duration(SimDuration::from_secs(400))
            .build();
        let r = Engine::new(scenario).run();
        // First failover: B takes over.
        let first = r.event_time("Ctrl-B -> Active").expect("first failover");
        assert!(first < SimTime::from_secs(102));
        // Second fault: A is already suspected, so no viable master.
        let fs = r.event_time("fail-safe").expect("fail-safe engaged");
        assert!(fs > SimTime::from_secs(200) && fs < SimTime::from_secs(205));
        // The valve lands at the fail-safe position and stays there.
        let valve = r.series("LTSLiqValve.OpeningPct");
        let late = valve.value_at(SimTime::from_secs(300)).unwrap();
        assert!(late < 1.0, "valve fail-closed, got {late}");
        // And the faulty backup was demoted to Indicator mode.
        let b_mode = r.series("Mode.Ctrl-B");
        assert_eq!(b_mode.value_at(SimTime::from_secs(300)), Some(3.0));
    }

    #[test]
    fn cold_backup_requires_migration() {
        let scenario = Scenario::builder()
            .fault_at(SimTime::from_secs(100), evm_plant::ActuatorFault::paper_fault())
            .reconfig_epoch(SimDuration::ZERO)
            .cold_backup()
            .duration(SimDuration::from_secs(400))
            .build();
        let r = Engine::new(scenario).run();
        let migrated = r.event_time("task activated on").expect("migration ran");
        let promoted = r.event_time("Ctrl-B -> Active").expect("promotion");
        assert!(migrated <= promoted);
        assert!(r.event_time("image 384 B").is_some(), "plan logged");
    }
}
