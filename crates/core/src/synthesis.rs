//! Runtime synthesis: logical-task → physical-node mapping.
//!
//! "At runtime, nodes determine (via centralized or distributed
//! algorithms) the task-set and operating points of different controllers
//! in the Virtual Component" (§1.1), and "we use Binary Quadratic
//! Programming for fixed-point optimization for functional and
//! para-functional requirements across controller nodes" (§3.1.1 op 7).
//!
//! The model: assign each control task to one controller node minimizing
//!
//! * **communication cost** — hop distance from the host to the task's
//!   sensor and actuator, and
//! * **load imbalance** — the sum of squared per-node utilizations (the
//!   quadratic term that makes this a BQP),
//!
//! subject to per-node CPU and slot capacity. Three solvers are provided
//! and compared by experiment E10: exact enumeration, greedy, and
//! simulated annealing on the one-hot BQP encoding.

use evm_netsim::NodeId;
use evm_sim::SimRng;

/// One logical control task to place.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskReq {
    /// Name, for reports.
    pub name: String,
    /// CPU utilization the task adds to its host.
    pub cpu_util: f64,
    /// TDMA slots per cycle the task needs.
    pub slots: u16,
    /// Index (into the node list) of the sensor this task reads, if any.
    pub sensor_node: Option<usize>,
    /// Index of the actuator this task drives, if any.
    pub actuator_node: Option<usize>,
}

/// One physical node that can host tasks.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeRes {
    /// The node.
    pub id: NodeId,
    /// CPU capacity available for EVM tasks.
    pub cpu_capacity: f64,
    /// Slot capacity per cycle.
    pub slot_capacity: u16,
}

/// A synthesis instance.
#[derive(Debug, Clone)]
pub struct SynthesisProblem {
    /// Tasks to place.
    pub tasks: Vec<TaskReq>,
    /// Candidate hosts.
    pub nodes: Vec<NodeRes>,
    /// `hops[i][j]`: hop distance between nodes `i` and `j`.
    pub hops: Vec<Vec<f64>>,
    /// Weight of the communication term.
    pub w_comm: f64,
    /// Weight of the load-balance (quadratic) term.
    pub w_balance: f64,
}

/// An assignment: `task_to_node[t]` is the index of the host of task `t`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Assignment {
    /// Host node index per task.
    pub task_to_node: Vec<usize>,
}

/// Penalty added per unit of capacity violation (dominates real costs).
const INFEASIBLE_PENALTY: f64 = 1e6;

impl SynthesisProblem {
    /// Total cost of an assignment (lower is better); infeasible
    /// assignments carry a dominating penalty rather than being rejected,
    /// which keeps the annealer's search space connected.
    ///
    /// # Panics
    ///
    /// Panics if the assignment length mismatches the task list.
    #[must_use]
    pub fn cost(&self, a: &Assignment) -> f64 {
        assert_eq!(a.task_to_node.len(), self.tasks.len(), "length mismatch");
        let mut comm = 0.0;
        let mut node_util = vec![0.0f64; self.nodes.len()];
        let mut node_slots = vec![0u32; self.nodes.len()];
        for (t, &n) in a.task_to_node.iter().enumerate() {
            let task = &self.tasks[t];
            if let Some(s) = task.sensor_node {
                comm += self.hops[n][s];
            }
            if let Some(act) = task.actuator_node {
                comm += self.hops[n][act];
            }
            node_util[n] += task.cpu_util;
            node_slots[n] += u32::from(task.slots);
        }
        let balance: f64 = node_util.iter().map(|u| u * u).sum();
        let mut penalty = 0.0;
        for (i, node) in self.nodes.iter().enumerate() {
            if node_util[i] > node.cpu_capacity {
                penalty += INFEASIBLE_PENALTY * (node_util[i] - node.cpu_capacity);
            }
            if node_slots[i] > u32::from(node.slot_capacity) {
                penalty +=
                    INFEASIBLE_PENALTY * f64::from(node_slots[i] - u32::from(node.slot_capacity));
            }
        }
        self.w_comm * comm + self.w_balance * balance + penalty
    }

    /// Total capacity violation (zero for feasible assignments).
    #[must_use]
    pub fn capacity_violation(&self, a: &Assignment) -> f64 {
        let mut node_util = vec![0.0f64; self.nodes.len()];
        let mut node_slots = vec![0u32; self.nodes.len()];
        for (t, &n) in a.task_to_node.iter().enumerate() {
            node_util[n] += self.tasks[t].cpu_util;
            node_slots[n] += u32::from(self.tasks[t].slots);
        }
        let mut v = 0.0;
        for (i, node) in self.nodes.iter().enumerate() {
            v += (node_util[i] - node.cpu_capacity - 1e-9).max(0.0);
            v += f64::from(node_slots[i].saturating_sub(u32::from(node.slot_capacity)));
        }
        v
    }

    /// `true` if the assignment respects all capacities.
    #[must_use]
    pub fn is_feasible(&self, a: &Assignment) -> bool {
        self.capacity_violation(a) == 0.0
    }

    /// Exact solver: enumerates all `nodes^tasks` assignments.
    ///
    /// # Panics
    ///
    /// Panics if the instance has more than 16 tasks × nodes combinations
    /// than fit a u64 enumeration (guard: `nodes.len().pow(tasks.len())`
    /// must stay below ~10⁸).
    #[must_use]
    pub fn solve_exhaustive(&self) -> Assignment {
        let n = self.nodes.len();
        let t = self.tasks.len();
        let total = (n as u128).pow(t as u32);
        assert!(total <= 100_000_000, "instance too large for enumeration");
        let mut best = Assignment {
            task_to_node: vec![0; t],
        };
        let mut best_cost = self.cost(&best);
        let mut current = vec![0usize; t];
        for code in 1..total {
            let mut c = code;
            for slot in current.iter_mut() {
                *slot = (c % n as u128) as usize;
                c /= n as u128;
            }
            let a = Assignment {
                task_to_node: current.clone(),
            };
            let cost = self.cost(&a);
            if cost < best_cost {
                best_cost = cost;
                best = a;
            }
        }
        best
    }

    /// Greedy solver: places tasks in declaration order on the node that
    /// minimizes incremental cost.
    #[must_use]
    pub fn solve_greedy(&self) -> Assignment {
        let mut assignment = Assignment {
            task_to_node: Vec::with_capacity(self.tasks.len()),
        };
        for t in 0..self.tasks.len() {
            let mut best_n = 0usize;
            let mut best_cost = f64::INFINITY;
            for n in 0..self.nodes.len() {
                let mut trial = assignment.task_to_node.clone();
                trial.push(n);
                // Cost of the partial assignment, using only placed tasks.
                let partial = SynthesisProblem {
                    tasks: self.tasks[..=t].to_vec(),
                    nodes: self.nodes.clone(),
                    hops: self.hops.clone(),
                    w_comm: self.w_comm,
                    w_balance: self.w_balance,
                };
                let cost = partial.cost(&Assignment {
                    task_to_node: trial,
                });
                if cost < best_cost {
                    best_cost = cost;
                    best_n = n;
                }
            }
            assignment.task_to_node.push(best_n);
        }
        assignment
    }

    /// Simulated-annealing solver over reassignment moves.
    #[must_use]
    pub fn solve_anneal(&self, rng: &mut SimRng, iterations: usize) -> Assignment {
        let t = self.tasks.len();
        let n = self.nodes.len();
        if t == 0 || n == 0 {
            return Assignment {
                task_to_node: vec![],
            };
        }
        let mut current = self.solve_greedy();
        let mut cur_cost = self.cost(&current);
        let mut best = current.clone();
        let mut best_cost = cur_cost;

        let t0 = 10.0 * self.w_comm.max(self.w_balance).max(1.0);
        for k in 0..iterations {
            let temp = t0 * (0.995f64).powi(k as i32) + 1e-6;
            let task = rng.index(t);
            let new_node = rng.index(n);
            let old_node = current.task_to_node[task];
            if new_node == old_node {
                continue;
            }
            current.task_to_node[task] = new_node;
            let new_cost = self.cost(&current);
            let accept = new_cost <= cur_cost
                || rng.chance(((cur_cost - new_cost) / temp).exp().clamp(0.0, 1.0));
            if accept {
                cur_cost = new_cost;
                if new_cost < best_cost {
                    best_cost = new_cost;
                    best = current.clone();
                }
            } else {
                current.task_to_node[task] = old_node;
            }
        }
        best
    }

    /// The explicit BQP encoding of this instance.
    #[must_use]
    pub fn to_bqp(&self) -> BqpInstance {
        BqpInstance::from_problem(self)
    }
}

/// Explicit binary-quadratic-program form: minimize `xᵀQx + cᵀx` over
/// binary `x` indexed by `(task, node)` pairs, with the one-hot constraint
/// folded in as a quadratic penalty.
#[derive(Debug, Clone)]
pub struct BqpInstance {
    n_tasks: usize,
    n_nodes: usize,
    /// Linear coefficients, length `n_tasks * n_nodes`.
    pub linear: Vec<f64>,
    /// Quadratic coefficients (upper triangle including diagonal),
    /// `q[i][j]` for `i <= j`.
    pub quadratic: Vec<Vec<f64>>,
    /// One-hot penalty weight.
    pub onehot_penalty: f64,
}

impl BqpInstance {
    /// Index of variable `x_{task,node}`.
    #[must_use]
    pub fn var(&self, task: usize, node: usize) -> usize {
        task * self.n_nodes + node
    }

    /// Builds the BQP from a synthesis problem.
    #[must_use]
    pub fn from_problem(p: &SynthesisProblem) -> Self {
        let nt = p.tasks.len();
        let nn = p.nodes.len();
        let nv = nt * nn;
        let mut linear = vec![0.0; nv];
        let mut quadratic = vec![vec![0.0; nv]; nv];
        let onehot_penalty = INFEASIBLE_PENALTY;

        for t in 0..nt {
            for n in 0..nn {
                let v = t * nn + n;
                // Communication cost is linear in x.
                if let Some(s) = p.tasks[t].sensor_node {
                    linear[v] += p.w_comm * p.hops[n][s];
                }
                if let Some(a) = p.tasks[t].actuator_node {
                    linear[v] += p.w_comm * p.hops[n][a];
                }
                // Balance term: (Σ_t u_t x_tn)² expands to pairwise
                // products of co-located tasks.
                for t2 in t..nt {
                    let v2 = t2 * nn + n;
                    let coeff = p.w_balance * p.tasks[t].cpu_util * p.tasks[t2].cpu_util;
                    if t2 == t {
                        quadratic[v][v] += coeff;
                    } else {
                        quadratic[v][v2] += 2.0 * coeff;
                    }
                }
            }
            // One-hot: penalty * (Σ_n x_tn − 1)² =
            //   penalty * (Σ x² + 2Σ_{n<m} x_n x_m − 2Σ x + 1).
            for n in 0..nn {
                let v = t * nn + n;
                quadratic[v][v] += onehot_penalty;
                linear[v] -= 2.0 * onehot_penalty;
                for m in (n + 1)..nn {
                    let v2 = t * nn + m;
                    quadratic[v][v2] += 2.0 * onehot_penalty;
                }
            }
        }
        BqpInstance {
            n_tasks: nt,
            n_nodes: nn,
            linear,
            quadratic,
            onehot_penalty,
        }
    }

    /// Objective value at a binary point (plus the constant `penalty·n_t`
    /// completing the squares, so one-hot feasible points line up with
    /// [`SynthesisProblem::cost`] minus capacity penalties).
    #[must_use]
    pub fn value(&self, x: &[bool]) -> f64 {
        assert_eq!(x.len(), self.n_tasks * self.n_nodes, "length mismatch");
        let mut v = self.onehot_penalty * self.n_tasks as f64;
        for (i, &xi) in x.iter().enumerate() {
            if !xi {
                continue;
            }
            v += self.linear[i];
            for (j, &xj) in x.iter().enumerate().skip(i) {
                if xj {
                    v += self.quadratic[i][j];
                }
            }
        }
        v
    }

    /// Encodes an assignment as a one-hot binary vector.
    #[must_use]
    pub fn encode(&self, a: &Assignment) -> Vec<bool> {
        let mut x = vec![false; self.n_tasks * self.n_nodes];
        for (t, &n) in a.task_to_node.iter().enumerate() {
            x[self.var(t, n)] = true;
        }
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 3 controllers in a line (hops 0-1-2), a sensor at node 0 and an
    /// actuator at node 2.
    fn line_problem() -> SynthesisProblem {
        SynthesisProblem {
            tasks: vec![
                TaskReq {
                    name: "pid-a".into(),
                    cpu_util: 0.3,
                    slots: 1,
                    sensor_node: Some(0),
                    actuator_node: Some(2),
                },
                TaskReq {
                    name: "pid-b".into(),
                    cpu_util: 0.3,
                    slots: 1,
                    sensor_node: Some(0),
                    actuator_node: Some(0),
                },
                TaskReq {
                    name: "log".into(),
                    cpu_util: 0.2,
                    slots: 1,
                    sensor_node: None,
                    actuator_node: None,
                },
            ],
            nodes: vec![
                NodeRes {
                    id: NodeId(10),
                    cpu_capacity: 0.7,
                    slot_capacity: 4,
                },
                NodeRes {
                    id: NodeId(11),
                    cpu_capacity: 0.7,
                    slot_capacity: 4,
                },
                NodeRes {
                    id: NodeId(12),
                    cpu_capacity: 0.7,
                    slot_capacity: 4,
                },
            ],
            hops: vec![
                vec![0.0, 1.0, 2.0],
                vec![1.0, 0.0, 1.0],
                vec![2.0, 1.0, 0.0],
            ],
            w_comm: 1.0,
            w_balance: 0.5,
        }
    }

    #[test]
    fn exhaustive_finds_feasible_optimum() {
        let p = line_problem();
        let best = p.solve_exhaustive();
        assert!(p.is_feasible(&best));
        // pid-b reads and writes node 0: optimum hosts it there.
        assert_eq!(best.task_to_node[1], 0);
    }

    #[test]
    fn greedy_never_beats_exhaustive() {
        let p = line_problem();
        let exact = p.cost(&p.solve_exhaustive());
        let greedy = p.cost(&p.solve_greedy());
        assert!(greedy >= exact - 1e-9);
    }

    #[test]
    fn annealing_matches_exhaustive_on_small_instance() {
        let p = line_problem();
        let exact = p.cost(&p.solve_exhaustive());
        let mut rng = SimRng::seed_from(7);
        let sa = p.cost(&p.solve_anneal(&mut rng, 5_000));
        assert!(
            sa <= exact * 1.05 + 1e-9,
            "SA {sa} should be within 5% of exact {exact}"
        );
    }

    #[test]
    fn capacity_violations_are_penalized() {
        let p = line_problem();
        // All three tasks (0.8 util) on one 0.7-capacity node.
        let bad = Assignment {
            task_to_node: vec![0, 0, 0],
        };
        assert!(!p.is_feasible(&bad));
        assert!(p.cost(&bad) > 1e5);
    }

    #[test]
    fn bqp_value_agrees_with_cost_on_feasible_points() {
        let p = line_problem();
        let bqp = p.to_bqp();
        for a in [
            Assignment {
                task_to_node: vec![0, 1, 2],
            },
            Assignment {
                task_to_node: vec![2, 0, 1],
            },
            p.solve_exhaustive(),
        ] {
            let direct = p.cost(&a);
            let via_bqp = bqp.value(&bqp.encode(&a));
            assert!(
                (direct - via_bqp).abs() < 1e-6,
                "cost {direct} vs bqp {via_bqp}"
            );
        }
    }

    #[test]
    fn bqp_punishes_non_onehot_points() {
        let p = line_problem();
        let bqp = p.to_bqp();
        // Task 0 assigned nowhere.
        let mut x = bqp.encode(&Assignment {
            task_to_node: vec![0, 1, 2],
        });
        x[bqp.var(0, 0)] = false;
        assert!(bqp.value(&x) > 1e5);
        // Task 0 assigned twice.
        x[bqp.var(0, 0)] = true;
        x[bqp.var(0, 1)] = true;
        assert!(bqp.value(&x) > 1e5);
    }

    #[test]
    fn balance_term_spreads_load() {
        let mut p = line_problem();
        // Make communication free so only balance matters.
        p.w_comm = 0.0;
        let best = p.solve_exhaustive();
        let mut hosts = best.task_to_node.clone();
        hosts.sort_unstable();
        hosts.dedup();
        assert_eq!(hosts.len(), 3, "optimum spreads tasks across all nodes");
    }

    #[test]
    fn empty_problem_is_trivial() {
        let p = SynthesisProblem {
            tasks: vec![],
            nodes: vec![],
            hops: vec![],
            w_comm: 1.0,
            w_balance: 1.0,
        };
        let mut rng = SimRng::seed_from(1);
        assert_eq!(p.solve_anneal(&mut rng, 10).task_to_node.len(), 0);
    }
}
