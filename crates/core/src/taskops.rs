//! Runtime task management (§3.1.1 op 1).
//!
//! "The specific operations supported by the EVM are task **assignment**
//! to a particular node, task **migration** from one node to another, task
//! **partition** from one node to another and itself and finally task
//! **replication** where an instance of a task is also invoked on another
//! node (using the same state information, stack and register settings)."
//!
//! Every operation is *atomic under the safety gate*: if the target
//! kernel's admission (reserves + schedulability) refuses, the source is
//! left exactly as it was — there is no window where the task exists
//! nowhere or consumes capacity twice without both gates having passed.

use evm_netsim::NodeId;
use evm_rtos::{AdmitError, Kernel, TaskId, TaskSpec, Tcb};
use evm_sim::SimDuration;

use crate::error::EvmError;

fn refused(node: NodeId, e: AdmitError) -> EvmError {
    EvmError::AdmissionRefused {
        node,
        reason: e.to_string(),
    }
}

/// Assigns a fresh task to `kernel` (the basic allocation operation).
///
/// # Errors
///
/// [`EvmError::AdmissionRefused`] if the kernel's gate refuses.
pub fn assign(
    kernel: &mut Kernel,
    node: NodeId,
    spec: TaskSpec,
    image: evm_rtos::TaskImage,
) -> Result<TaskId, EvmError> {
    kernel
        .admit(spec, image, None)
        .map_err(|e| refused(node, e))
}

/// Migrates task `id` from `src` to `dst`, carrying its full state
/// (registers, stack, data, metadata). On failure the task is restored on
/// `src` unchanged.
///
/// # Errors
///
/// [`EvmError::AdmissionRefused`] with the refusing side's reason.
///
/// # Panics
///
/// Panics only if restoring the task to its source fails — which cannot
/// happen, since its capacity was just freed there.
pub fn migrate(
    src: &mut Kernel,
    src_node: NodeId,
    id: TaskId,
    dst: &mut Kernel,
    dst_node: NodeId,
) -> Result<TaskId, EvmError> {
    let tcb: Tcb = src.remove(id).map_err(|e| refused(src_node, e))?;
    match dst.admit(tcb.spec.clone(), tcb.image.clone(), None) {
        Ok(new_id) => Ok(new_id),
        Err(e) => {
            // Roll back: the capacity we just freed readmits by
            // construction.
            src.admit(tcb.spec, tcb.image, None)
                .expect("rollback to freed capacity cannot fail");
            Err(refused(dst_node, e))
        }
    }
}

/// Replicates task `id` onto `dst` "using the same state information,
/// stack and register settings" — the source keeps running; the replica
/// starts with an identical image (the warm-backup pattern of Fig. 6).
///
/// # Errors
///
/// [`EvmError::AdmissionRefused`] if either kernel objects.
pub fn replicate(
    src: &Kernel,
    src_node: NodeId,
    id: TaskId,
    dst: &mut Kernel,
    dst_node: NodeId,
) -> Result<TaskId, EvmError> {
    let tcb = src
        .tcb(id)
        .ok_or_else(|| refused(src_node, AdmitError::UnknownTask(id)))?;
    dst.admit(tcb.spec.clone(), tcb.image.clone(), None)
        .map_err(|e| refused(dst_node, e))
}

/// Partitions task `id` "from one node to another and itself": the
/// execution budget is split so a `fraction` of the work stays on `src`
/// and the rest moves to `dst` (e.g. sensor fusion staying local while
/// the control law moves). Both halves pass their gates or nothing
/// changes.
///
/// # Errors
///
/// [`EvmError::AdmissionRefused`] if any gate refuses; the original task
/// is intact on error.
///
/// # Panics
///
/// Panics if `fraction` is outside `(0, 1)`, or on a rollback failure
/// (impossible: capacity was just freed).
pub fn partition(
    src: &mut Kernel,
    src_node: NodeId,
    id: TaskId,
    dst: &mut Kernel,
    dst_node: NodeId,
    fraction: f64,
) -> Result<(TaskId, TaskId), EvmError> {
    assert!(
        fraction > 0.0 && fraction < 1.0,
        "partition fraction must be in (0,1)"
    );
    let tcb: Tcb = src.remove(id).map_err(|e| refused(src_node, e))?;
    let us = tcb.spec.wcet.as_micros() as f64;
    let local_wcet = SimDuration::from_micros(((us * fraction).round() as u64).max(1));
    let remote_wcet = SimDuration::from_micros(((us * (1.0 - fraction)).round() as u64).max(1));

    let mut local_spec = tcb.spec.clone();
    local_spec.wcet = local_wcet;
    local_spec.priority = None;
    let mut remote_spec = tcb.spec.clone();
    remote_spec.name = format!("{}~part", tcb.spec.name);
    remote_spec.wcet = remote_wcet;
    remote_spec.priority = None;

    let local_id = match src.admit(local_spec, tcb.image.clone(), None) {
        Ok(i) => i,
        Err(e) => {
            src.admit(tcb.spec, tcb.image, None)
                .expect("rollback to freed capacity cannot fail");
            return Err(refused(src_node, e));
        }
    };
    match dst.admit(remote_spec, tcb.image.clone(), None) {
        Ok(remote_id) => Ok((local_id, remote_id)),
        Err(e) => {
            // Undo the local half, restore the original.
            src.remove(local_id).expect("local half exists");
            src.admit(tcb.spec, tcb.image, None)
                .expect("rollback to freed capacity cannot fail");
            Err(refused(dst_node, e))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evm_rtos::TaskImage;

    const N1: NodeId = NodeId(1);
    const N2: NodeId = NodeId(2);

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    fn spec(name: &str, wcet: u64, period: u64) -> TaskSpec {
        TaskSpec::new(name, ms(wcet), ms(period))
    }

    fn img() -> TaskImage {
        TaskImage::typical_control_task()
    }

    #[test]
    fn migrate_moves_task_and_state() {
        let mut a = Kernel::new("a");
        let mut b = Kernel::new("b");
        let id = assign(&mut a, N1, spec("pid", 2, 10), img()).unwrap();
        let new_id = migrate(&mut a, N1, id, &mut b, N2).unwrap();
        assert!(a.tcb(id).is_none());
        let moved = b.tcb(new_id).unwrap();
        assert_eq!(moved.spec.name, "pid");
        assert_eq!(moved.image, img(), "state travels with the task");
    }

    #[test]
    fn migrate_rolls_back_when_target_refuses() {
        let mut a = Kernel::new("a");
        let mut b = Kernel::new("b");
        // Fill b so the migration cannot fit.
        assign(&mut b, N2, spec("hog", 9, 10), img()).unwrap();
        let id = assign(&mut a, N1, spec("pid", 5, 10), img()).unwrap();
        let err = migrate(&mut a, N1, id, &mut b, N2).unwrap_err();
        assert!(matches!(err, EvmError::AdmissionRefused { node, .. } if node == N2));
        // Source restored (new id, same task).
        assert!(a.tcb_by_name("pid").is_some());
        assert_eq!(b.tcbs().len(), 1);
    }

    #[test]
    fn replicate_keeps_source_running() {
        let mut a = Kernel::new("a");
        let mut b = Kernel::new("b");
        let id = assign(&mut a, N1, spec("pid", 2, 10), img()).unwrap();
        let rep = replicate(&a, N1, id, &mut b, N2).unwrap();
        assert!(a.tcb(id).is_some(), "source keeps its instance");
        assert_eq!(b.tcb(rep).unwrap().image, a.tcb(id).unwrap().image);
    }

    #[test]
    fn replicate_unknown_task_fails_cleanly() {
        let a = Kernel::new("a");
        let mut b = Kernel::new("b");
        let err = replicate(&a, N1, TaskId(99), &mut b, N2).unwrap_err();
        assert!(matches!(err, EvmError::AdmissionRefused { node, .. } if node == N1));
        assert!(b.tcbs().is_empty());
    }

    #[test]
    fn partition_splits_utilization() {
        let mut a = Kernel::new("a");
        let mut b = Kernel::new("b");
        let id = assign(&mut a, N1, spec("fusion+control", 6, 20), img()).unwrap();
        let before = a.utilization();
        let (local, remote) = partition(&mut a, N1, id, &mut b, N2, 0.5).unwrap();
        assert!((a.utilization() - before / 2.0).abs() < 1e-9);
        assert!((b.utilization() - before / 2.0).abs() < 1e-9);
        assert_eq!(a.tcb(local).unwrap().spec.wcet, ms(3));
        assert_eq!(b.tcb(remote).unwrap().spec.wcet, ms(3));
        assert!(b.tcb(remote).unwrap().spec.name.contains("~part"));
    }

    #[test]
    fn partition_rolls_back_atomically() {
        let mut a = Kernel::new("a");
        let mut b = Kernel::new("b");
        assign(&mut b, N2, spec("hog", 9, 10), img()).unwrap();
        let id = assign(&mut a, N1, spec("t", 6, 20), img()).unwrap();
        let before_a = a.active_set();
        let err = partition(&mut a, N1, id, &mut b, N2, 0.5).unwrap_err();
        assert!(matches!(err, EvmError::AdmissionRefused { node, .. } if node == N2));
        // a holds exactly the original task again (id may differ).
        assert_eq!(a.tcbs().len(), 1);
        assert_eq!(
            a.active_set().total_utilization(),
            before_a.total_utilization()
        );
        assert!(a.tcb_by_name("t").is_some());
        assert_eq!(b.tcbs().len(), 1, "no orphan half on b");
    }

    #[test]
    #[should_panic(expected = "fraction must be in")]
    fn bad_fraction_panics() {
        let mut a = Kernel::new("a");
        let mut b = Kernel::new("b");
        let id = assign(&mut a, N1, spec("t", 2, 10), img()).unwrap();
        let _ = partition(&mut a, N1, id, &mut b, N2, 1.5);
    }
}
