//! The Virtual Component.
//!
//! "A Virtual Component is a composition of inter-connected communicating
//! physical components defined by object transfer relationships" (§1.1).
//! It is the unit the EVM keeps invariant while the physical network
//! changes underneath: members join and leave, controllers swap modes,
//! but the component's task manifest and transfer relationships persist.

use std::collections::BTreeMap;

use evm_netsim::{NodeId, NodeKind};

use crate::bytecode::CapsuleId;
use crate::roles::ControllerMode;
use crate::transfers::ObjectTransfer;

/// Per-member record.
#[derive(Debug, Clone, PartialEq)]
pub struct MemberInfo {
    /// The member node.
    pub node: NodeId,
    /// Its physical role.
    pub kind: NodeKind,
    /// Controller mode, for controller members hosting the focus task.
    pub mode: Option<ControllerMode>,
    /// Capsules currently hosted.
    pub capsules: Vec<CapsuleId>,
}

/// A Virtual Component: membership, head, relationships, epoch.
#[derive(Debug, Clone, PartialEq)]
pub struct VirtualComponent {
    name: String,
    members: BTreeMap<NodeId, MemberInfo>,
    head: Option<NodeId>,
    transfers: Vec<ObjectTransfer>,
    epoch: u64,
}

impl VirtualComponent {
    /// Creates an empty component.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        VirtualComponent {
            name: name.into(),
            members: BTreeMap::new(),
            head: None,
            transfers: Vec::new(),
            epoch: 0,
        }
    }

    /// Component name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Configuration epoch; bumped on every membership or mode change so
    /// stale messages are recognizable.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The current head, if elected.
    #[must_use]
    pub fn head(&self) -> Option<NodeId> {
        self.head
    }

    /// All members in id order.
    pub fn members(&self) -> impl Iterator<Item = &MemberInfo> {
        self.members.values()
    }

    /// Looks up one member.
    #[must_use]
    pub fn member(&self, node: NodeId) -> Option<&MemberInfo> {
        self.members.get(&node)
    }

    /// Number of members.
    #[must_use]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// `true` if the component has no members.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Adds a member (admission checks happen in
    /// [`crate::membership`]). Re-adding an existing node updates its
    /// record. Bumps the epoch and re-runs head election.
    pub fn add_member(&mut self, info: MemberInfo) {
        self.members.insert(info.node, info);
        self.epoch += 1;
        self.elect_head();
    }

    /// Removes a member (crash or planned leave). Bumps the epoch; if the
    /// head left, a new one is elected.
    pub fn remove_member(&mut self, node: NodeId) -> Option<MemberInfo> {
        let gone = self.members.remove(&node);
        if gone.is_some() {
            self.epoch += 1;
            if self.head == Some(node) {
                self.elect_head();
            }
        }
        gone
    }

    /// Deterministic head election: the lowest-id controller or gateway
    /// member. Every node observing the same membership elects the same
    /// head without extra messages.
    pub fn elect_head(&mut self) {
        self.head = self
            .members
            .values()
            .find(|m| matches!(m.kind, NodeKind::Controller | NodeKind::Gateway))
            .map(|m| m.node);
    }

    /// Pins the head explicitly (deployments often dedicate a supervisory
    /// controller, as the paper's testbed does with its VC head).
    ///
    /// # Panics
    ///
    /// Panics if the node is not a member.
    pub fn set_head(&mut self, node: NodeId) {
        assert!(self.members.contains_key(&node), "head must be a member");
        self.head = Some(node);
        self.epoch += 1;
    }

    /// Sets a controller member's mode.
    ///
    /// # Errors
    ///
    /// Returns `Err` if the node is unknown or the transition is illegal
    /// per [`ControllerMode::can_transition_to`]. On error nothing
    /// changes.
    pub fn set_mode(&mut self, node: NodeId, mode: ControllerMode) -> Result<(), String> {
        let m = self
            .members
            .get_mut(&node)
            .ok_or_else(|| format!("unknown member {node}"))?;
        match m.mode {
            Some(cur) if !cur.can_transition_to(mode) => {
                Err(format!("illegal transition {cur} -> {mode} on {node}"))
            }
            _ => {
                m.mode = Some(mode);
                self.epoch += 1;
                Ok(())
            }
        }
    }

    /// The controller currently in `Active` mode, if exactly one exists.
    #[must_use]
    pub fn active_controller(&self) -> Option<NodeId> {
        let mut it = self
            .members
            .values()
            .filter(|m| m.mode == Some(ControllerMode::Active))
            .map(|m| m.node);
        match (it.next(), it.next()) {
            (Some(n), None) => Some(n),
            _ => None,
        }
    }

    /// All controllers in `Backup` mode.
    #[must_use]
    pub fn backup_controllers(&self) -> Vec<NodeId> {
        self.members
            .values()
            .filter(|m| m.mode == Some(ControllerMode::Backup))
            .map(|m| m.node)
            .collect()
    }

    /// Registers an object-transfer relationship.
    pub fn add_transfer(&mut self, t: ObjectTransfer) {
        self.transfers.push(t);
    }

    /// The relationship list.
    #[must_use]
    pub fn transfers(&self) -> &[ObjectTransfer] {
        &self.transfers
    }

    /// Single-active-controller safety invariant: at most one member may
    /// be `Active` (checked by property tests and asserted by the engine
    /// after every reconfiguration).
    #[must_use]
    pub fn invariant_single_active(&self) -> bool {
        self.members
            .values()
            .filter(|m| m.mode == Some(ControllerMode::Active))
            .count()
            <= 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn member(id: u16, kind: NodeKind, mode: Option<ControllerMode>) -> MemberInfo {
        MemberInfo {
            node: NodeId(id),
            kind,
            mode,
            capsules: vec![],
        }
    }

    fn paper_vc() -> VirtualComponent {
        let mut vc = VirtualComponent::new("lts-loop");
        vc.add_member(member(1, NodeKind::Sensor, None));
        vc.add_member(member(
            2,
            NodeKind::Controller,
            Some(ControllerMode::Active),
        ));
        vc.add_member(member(
            3,
            NodeKind::Controller,
            Some(ControllerMode::Backup),
        ));
        vc.add_member(member(4, NodeKind::Actuator, None));
        vc
    }

    #[test]
    fn head_is_lowest_controller() {
        let vc = paper_vc();
        assert_eq!(vc.head(), Some(NodeId(2)));
    }

    #[test]
    fn head_reelected_on_departure() {
        let mut vc = paper_vc();
        let e0 = vc.epoch();
        vc.remove_member(NodeId(2));
        assert_eq!(vc.head(), Some(NodeId(3)));
        assert!(vc.epoch() > e0);
    }

    #[test]
    fn fig6b_mode_sequence() {
        let mut vc = paper_vc();
        // T2: B promotes, A demotes.
        vc.set_mode(NodeId(3), ControllerMode::Active).unwrap();
        // Transiently both Active — the engine sequences demote first in
        // practice; the invariant check exposes the window:
        assert!(!vc.invariant_single_active());
        vc.set_mode(NodeId(2), ControllerMode::Backup).unwrap();
        assert!(vc.invariant_single_active());
        assert_eq!(vc.active_controller(), Some(NodeId(3)));
        // T3: A -> Dormant.
        vc.set_mode(NodeId(2), ControllerMode::Dormant).unwrap();
        assert_eq!(vc.backup_controllers(), Vec::<NodeId>::new());
    }

    #[test]
    fn illegal_transition_rejected() {
        let mut vc = paper_vc();
        vc.set_mode(NodeId(2), ControllerMode::Dormant).unwrap();
        let err = vc.set_mode(NodeId(2), ControllerMode::Indicator);
        assert!(err.is_err());
        assert_eq!(
            vc.member(NodeId(2)).unwrap().mode,
            Some(ControllerMode::Dormant)
        );
    }

    #[test]
    fn unknown_member_errors() {
        let mut vc = paper_vc();
        assert!(vc.set_mode(NodeId(99), ControllerMode::Active).is_err());
        assert!(vc.member(NodeId(99)).is_none());
        assert!(vc.remove_member(NodeId(99)).is_none());
    }

    #[test]
    fn active_controller_ambiguity_returns_none() {
        let mut vc = paper_vc();
        vc.set_mode(NodeId(3), ControllerMode::Active).unwrap();
        assert_eq!(vc.active_controller(), None, "two actives is not a master");
    }

    #[test]
    fn epoch_monotone_over_changes() {
        let mut vc = paper_vc();
        let mut last = vc.epoch();
        vc.set_mode(NodeId(3), ControllerMode::Dormant).unwrap();
        assert!(vc.epoch() > last);
        last = vc.epoch();
        vc.add_member(member(9, NodeKind::Controller, None));
        assert!(vc.epoch() > last);
    }
}
