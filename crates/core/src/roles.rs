//! Controller modes and their transitions.
//!
//! Fig. 6(b)'s scenario walks one controller through
//! `Active → Backup → Dormant` while the other goes `Backup → Active`;
//! §4 also names a passive *indicator* mode the demoted primary enters
//! immediately after failover.

use std::fmt;

/// The mode of a controller replica within a Virtual Component.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ControllerMode {
    /// Computes the law and drives the actuator.
    Active,
    /// Computes the law, observes the primary, never actuates.
    Backup,
    /// Holds the capsule but neither computes nor observes (suspended in
    /// the kernel; consumes no CPU reserve).
    Dormant,
    /// Demoted-primary transition mode: outputs are displayed/logged but
    /// disconnected from the actuator (the paper's "passive indicator").
    Indicator,
}

impl ControllerMode {
    /// Legal mode transitions (driven by the VC head's arbitration or by
    /// planned reconfiguration).
    #[must_use]
    pub fn can_transition_to(self, next: ControllerMode) -> bool {
        use ControllerMode::{Active, Backup, Dormant, Indicator};
        matches!(
            (self, next),
            (Active, Indicator)      // demotion on detected fault
                | (Active, Backup)   // planned swap
                | (Active, Dormant)  // planned shutdown
                | (Backup, Active)   // promotion
                | (Backup, Dormant)  // demotion at end of transition
                | (Indicator, Backup)
                | (Indicator, Dormant)
                | (Dormant, Backup)  // re-warmed replica
                | (Dormant, Active) // direct activation (cold standby)
        )
    }

    /// `true` if this mode executes the control law every cycle.
    #[must_use]
    pub fn computes(self) -> bool {
        matches!(
            self,
            ControllerMode::Active | ControllerMode::Backup | ControllerMode::Indicator
        )
    }

    /// `true` if this mode's output reaches the actuator.
    #[must_use]
    pub fn actuates(self) -> bool {
        self == ControllerMode::Active
    }

    /// Numeric encoding exposed to capsules via `rdrole`.
    #[must_use]
    pub fn as_f64(self) -> f64 {
        match self {
            ControllerMode::Active => 0.0,
            ControllerMode::Backup => 1.0,
            ControllerMode::Dormant => 2.0,
            ControllerMode::Indicator => 3.0,
        }
    }
}

impl fmt::Display for ControllerMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ControllerMode::Active => "Active",
            ControllerMode::Backup => "Backup",
            ControllerMode::Dormant => "Dormant",
            ControllerMode::Indicator => "Indicator",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ControllerMode::{Active, Backup, Dormant, Indicator};

    #[test]
    fn paper_scenario_transitions_are_legal() {
        // Fig. 6b: Ctrl-B Backup -> Active; Ctrl-A Active -> Backup (via
        // the VC's reconfiguration) -> Dormant at T3.
        assert!(Backup.can_transition_to(Active));
        assert!(Active.can_transition_to(Backup));
        assert!(Backup.can_transition_to(Dormant));
        assert!(Active.can_transition_to(Indicator));
        assert!(Indicator.can_transition_to(Dormant));
    }

    #[test]
    fn illegal_transitions_rejected() {
        assert!(!Dormant.can_transition_to(Indicator));
        assert!(!Indicator.can_transition_to(Active));
        assert!(!Active.can_transition_to(Active));
    }

    #[test]
    fn compute_and_actuate_flags() {
        assert!(Active.computes() && Active.actuates());
        assert!(Backup.computes() && !Backup.actuates());
        assert!(!Dormant.computes());
        assert!(Indicator.computes() && !Indicator.actuates());
    }

    #[test]
    fn role_codes_are_distinct() {
        let codes = [Active, Backup, Dormant, Indicator].map(ControllerMode::as_f64);
        for (i, a) in codes.iter().enumerate() {
            for b in codes.iter().skip(i + 1) {
                assert_ne!(a, b);
            }
        }
    }
}
