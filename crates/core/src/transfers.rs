//! Object-transfer relationship types (§3.1.2).
//!
//! "Five elementary object transfer types are included in the EVM design:
//! disjoint, bi-directional transfers, temporal-conditional transfers,
//! causal-conditional transfers and health assessment." A Virtual
//! Component is *defined* by these relationships (§1.1): they say which
//! node may talk to which, when, and what the failure semantics are.

use evm_netsim::NodeId;
use evm_sim::{SimDuration, SimTime};

/// Response policy of a health-assessment relationship.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultResponse {
    /// Raise an operator alert only.
    TriggerAlert,
    /// Promote the designated backup (the Fig. 6b behavior).
    TriggerBackup,
    /// Halt the watched node's task.
    Halt,
    /// Drive the local actuator to its fail-safe position.
    LocalFailSafe {
        /// The fail-safe actuator value.
        safe_value: f64,
    },
}

/// One relationship between members of a Virtual Component.
#[derive(Debug, Clone, PartialEq)]
pub enum ObjectTransfer {
    /// No shared state: the nodes may operate concurrently in time and
    /// space.
    Disjoint {
        /// First node.
        a: NodeId,
        /// Second node.
        b: NodeId,
    },
    /// One-way transfer (producer → consumer, publish → subscribe).
    Directional {
        /// Producer.
        from: NodeId,
        /// Consumer.
        to: NodeId,
    },
    /// Two-way transfer (master ↔ slave).
    Bidirectional {
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
    },
    /// Transfer valid only within a time window after `epoch_start`.
    TemporalConditional {
        /// Producer.
        from: NodeId,
        /// Consumer.
        to: NodeId,
        /// Window start.
        window_start: SimTime,
        /// Window length.
        window: SimDuration,
    },
    /// Transfer enabled only after another transfer was observed (the
    /// precedence restriction between inter-connected controllers).
    CausalConditional {
        /// Producer.
        from: NodeId,
        /// Consumer.
        to: NodeId,
        /// Index of the prerequisite transfer in the component's list.
        after: usize,
    },
    /// Monitoring relationship: `watcher` passively observes `watched`
    /// and applies `response` on confirmed faults.
    HealthAssessment {
        /// Observing node (a backup, or the head).
        watcher: NodeId,
        /// Observed node (the primary).
        watched: NodeId,
        /// What to do on a confirmed fault.
        response: FaultResponse,
    },
}

impl ObjectTransfer {
    /// Whether a transfer from `from` to `to` is permitted at time `now`,
    /// given `completed` (whether this relationship's prerequisite — if
    /// any — has completed).
    #[must_use]
    pub fn permits(&self, from: NodeId, to: NodeId, now: SimTime, prerequisite_done: bool) -> bool {
        match *self {
            ObjectTransfer::Disjoint { .. } => false,
            ObjectTransfer::Directional { from: f, to: t } => f == from && t == to,
            ObjectTransfer::Bidirectional { a, b } => {
                (a == from && b == to) || (b == from && a == to)
            }
            ObjectTransfer::TemporalConditional {
                from: f,
                to: t,
                window_start,
                window,
            } => f == from && t == to && now >= window_start && now < window_start + window,
            ObjectTransfer::CausalConditional { from: f, to: t, .. } => {
                f == from && t == to && prerequisite_done
            }
            ObjectTransfer::HealthAssessment {
                watcher, watched, ..
            } => {
                // Health data flows from the watched node to the watcher.
                watched == from && watcher == to
            }
        }
    }

    /// The nodes this relationship involves.
    #[must_use]
    pub fn endpoints(&self) -> (NodeId, NodeId) {
        match *self {
            ObjectTransfer::Disjoint { a, b } | ObjectTransfer::Bidirectional { a, b } => (a, b),
            ObjectTransfer::Directional { from, to }
            | ObjectTransfer::TemporalConditional { from, to, .. }
            | ObjectTransfer::CausalConditional { from, to, .. } => (from, to),
            ObjectTransfer::HealthAssessment {
                watcher, watched, ..
            } => (watched, watcher),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: NodeId = NodeId(1);
    const B: NodeId = NodeId(2);
    const T0: SimTime = SimTime::ZERO;

    #[test]
    fn disjoint_never_permits() {
        let t = ObjectTransfer::Disjoint { a: A, b: B };
        assert!(!t.permits(A, B, T0, true));
        assert!(!t.permits(B, A, T0, true));
    }

    #[test]
    fn directional_is_one_way() {
        let t = ObjectTransfer::Directional { from: A, to: B };
        assert!(t.permits(A, B, T0, false));
        assert!(!t.permits(B, A, T0, false));
    }

    #[test]
    fn bidirectional_is_two_way() {
        let t = ObjectTransfer::Bidirectional { a: A, b: B };
        assert!(t.permits(A, B, T0, false));
        assert!(t.permits(B, A, T0, false));
    }

    #[test]
    fn temporal_window_enforced() {
        let t = ObjectTransfer::TemporalConditional {
            from: A,
            to: B,
            window_start: SimTime::from_secs(10),
            window: SimDuration::from_secs(5),
        };
        assert!(!t.permits(A, B, SimTime::from_secs(9), true));
        assert!(t.permits(A, B, SimTime::from_secs(12), true));
        assert!(!t.permits(A, B, SimTime::from_secs(15), true));
    }

    #[test]
    fn causal_requires_prerequisite() {
        let t = ObjectTransfer::CausalConditional {
            from: A,
            to: B,
            after: 0,
        };
        assert!(!t.permits(A, B, T0, false));
        assert!(t.permits(A, B, T0, true));
    }

    #[test]
    fn health_flows_watched_to_watcher() {
        let t = ObjectTransfer::HealthAssessment {
            watcher: B,
            watched: A,
            response: FaultResponse::TriggerBackup,
        };
        assert!(t.permits(A, B, T0, false));
        assert!(!t.permits(B, A, T0, false));
        assert_eq!(t.endpoints(), (A, B));
    }
}
