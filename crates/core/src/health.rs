//! Fault detection: output deviation and heartbeat monitors.
//!
//! The Fig. 6b failover starts when "the node Ctrl-B (which is in the
//! Backup mode) determines inappropriate outputs from Ctrl-A". The backup
//! computes the same control law on the same inputs and compares the
//! primary's published output against its own; a configurable number of
//! **consecutive** deviations beyond a threshold constitutes evidence (a
//! single glitch, or a lost health report, must not trigger failover —
//! that is the burst-loss lesson from `evm-netsim::gilbert`).

use evm_netsim::NodeId;
use evm_sim::{SimDuration, SimTime};

/// Evidence of a confirmed fault, reported to the VC head.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEvidence {
    /// The node under suspicion.
    pub suspect: NodeId,
    /// The observer raising the evidence.
    pub observer: NodeId,
    /// When the last confirming observation was made.
    pub at: SimTime,
    /// Mean absolute deviation over the confirming window.
    pub mean_deviation: f64,
    /// Number of consecutive anomalous observations.
    pub consecutive: u32,
}

/// Compares primary outputs against locally computed ones.
#[derive(Debug, Clone)]
pub struct DeviationDetector {
    observer: NodeId,
    suspect: NodeId,
    /// Absolute deviation (in output units) considered anomalous.
    threshold: f64,
    /// Consecutive anomalies needed to confirm.
    needed: u32,
    run: u32,
    dev_sum: f64,
}

impl DeviationDetector {
    /// Creates a detector.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is negative or `needed` is zero.
    #[must_use]
    pub fn new(observer: NodeId, suspect: NodeId, threshold: f64, needed: u32) -> Self {
        assert!(threshold >= 0.0, "threshold must be non-negative");
        assert!(needed > 0, "need at least one observation");
        DeviationDetector {
            observer,
            suspect,
            threshold,
            needed,
            run: 0,
            dev_sum: 0.0,
        }
    }

    /// Feeds one paired observation (primary's published output vs the
    /// observer's own computation on the same input). Returns evidence
    /// when the consecutive-anomaly rule first fires (and keeps returning
    /// it while the run persists, so lost reports can be retried).
    pub fn observe(
        &mut self,
        primary_out: f64,
        own_out: f64,
        at: SimTime,
    ) -> Option<FaultEvidence> {
        let dev = (primary_out - own_out).abs();
        if dev > self.threshold {
            self.run += 1;
            self.dev_sum += dev;
        } else {
            self.run = 0;
            self.dev_sum = 0.0;
        }
        if self.run >= self.needed {
            Some(FaultEvidence {
                suspect: self.suspect,
                observer: self.observer,
                at,
                mean_deviation: self.dev_sum / f64::from(self.run),
                consecutive: self.run,
            })
        } else {
            None
        }
    }

    /// Current consecutive-anomaly count.
    #[must_use]
    pub fn run_length(&self) -> u32 {
        self.run
    }

    /// Resets the detector (e.g. after the suspect was demoted).
    pub fn reset(&mut self) {
        self.run = 0;
        self.dev_sum = 0.0;
    }
}

/// Liveness monitoring by heartbeat timeout (crash faults, as opposed to
/// the value faults the deviation detector catches).
#[derive(Debug, Clone)]
pub struct HeartbeatMonitor {
    watched: NodeId,
    timeout: SimDuration,
    last_seen: Option<SimTime>,
}

impl HeartbeatMonitor {
    /// Creates a monitor with the given silence timeout.
    ///
    /// # Panics
    ///
    /// Panics if the timeout is zero.
    #[must_use]
    pub fn new(watched: NodeId, timeout: SimDuration) -> Self {
        assert!(!timeout.is_zero(), "timeout must be positive");
        HeartbeatMonitor {
            watched,
            timeout,
            last_seen: None,
        }
    }

    /// Records a heartbeat (any frame counts).
    pub fn heard(&mut self, at: SimTime) {
        self.last_seen = Some(at);
    }

    /// `true` if the watched node has been silent past the timeout.
    /// A node never heard from is not (yet) considered dead.
    #[must_use]
    pub fn is_silent(&self, now: SimTime) -> bool {
        match self.last_seen {
            Some(t) => now.saturating_since(t) > self.timeout,
            None => false,
        }
    }

    /// The monitored node.
    #[must_use]
    pub fn watched(&self) -> NodeId {
        self.watched
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const OBS: NodeId = NodeId(3);
    const SUS: NodeId = NodeId(2);

    fn detector(needed: u32) -> DeviationDetector {
        DeviationDetector::new(OBS, SUS, 5.0, needed)
    }

    #[test]
    fn single_glitch_does_not_trigger() {
        let mut d = detector(3);
        assert!(d.observe(75.0, 11.48, SimTime::from_secs(1)).is_none());
        assert!(d.observe(11.5, 11.48, SimTime::from_secs(2)).is_none());
        assert_eq!(d.run_length(), 0, "run resets on a good sample");
    }

    #[test]
    fn consecutive_anomalies_trigger() {
        // The paper's fault: primary stuck at 75 %, correct output 11.48 %.
        let mut d = detector(3);
        assert!(d.observe(75.0, 11.48, SimTime::from_secs(1)).is_none());
        assert!(d.observe(75.0, 11.50, SimTime::from_secs(2)).is_none());
        let ev = d.observe(75.0, 11.46, SimTime::from_secs(3)).unwrap();
        assert_eq!(ev.suspect, SUS);
        assert_eq!(ev.observer, OBS);
        assert_eq!(ev.consecutive, 3);
        assert!(ev.mean_deviation > 60.0);
        assert_eq!(ev.at, SimTime::from_secs(3));
    }

    #[test]
    fn evidence_persists_while_run_continues() {
        let mut d = detector(2);
        let _ = d.observe(75.0, 11.0, SimTime::from_secs(1));
        assert!(d.observe(75.0, 11.0, SimTime::from_secs(2)).is_some());
        assert!(d.observe(75.0, 11.0, SimTime::from_secs(3)).is_some());
        d.reset();
        assert_eq!(d.run_length(), 0);
    }

    #[test]
    fn small_deviations_tolerated() {
        // Quantization and float noise between replicas must not trigger.
        let mut d = detector(3);
        for k in 0..100 {
            let own = 11.48 + (k as f64 * 0.01).sin() * 0.2;
            assert!(d.observe(11.48, own, SimTime::from_secs(k)).is_none());
        }
    }

    #[test]
    fn heartbeat_timeout() {
        let mut m = HeartbeatMonitor::new(SUS, SimDuration::from_secs(2));
        assert!(!m.is_silent(SimTime::from_secs(100)), "never heard ≠ dead");
        m.heard(SimTime::from_secs(10));
        assert!(!m.is_silent(SimTime::from_secs(11)));
        assert!(!m.is_silent(SimTime::from_secs(12)));
        assert!(m.is_silent(SimTime::from_secs(13)));
        m.heard(SimTime::from_secs(13));
        assert!(!m.is_silent(SimTime::from_secs(14)));
        assert_eq!(m.watched(), SUS);
    }
}
