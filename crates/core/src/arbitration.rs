//! New-master selection.
//!
//! "Control algorithm failure is detected by backup observers and a new
//! master is selected based on an arbitration algorithm" (§3). The
//! arbitration here is a deterministic weighted ranking over the resources
//! the paper lists (§1.1 goal 2): link bandwidth, processing capacity,
//! energy — candidates that cannot host the task at all (capability or
//! admission failure) are excluded before scoring.

use evm_netsim::NodeId;

/// A candidate node for taking over a control task.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// The node.
    pub node: NodeId,
    /// `true` if the node holds the capsule's required capabilities and
    /// its kernel pre-admitted the task.
    pub eligible: bool,
    /// Remaining battery fraction `[0, 1]`.
    pub battery: f64,
    /// CPU utilization headroom `[0, 1]`.
    pub cpu_headroom: f64,
    /// Link quality to the component's sensors/actuators `[0, 1]`
    /// (delivery ratio estimate).
    pub link_quality: f64,
    /// `true` if the node already holds a warm replica (state up to date).
    pub warm_replica: bool,
}

impl Candidate {
    /// The arbitration score. Warm replicas are strongly preferred (they
    /// restore control one cycle after promotion); among equals, energy,
    /// headroom and link quality trade off smoothly.
    #[must_use]
    pub fn score(&self) -> f64 {
        let warm = if self.warm_replica { 1.0 } else { 0.0 };
        2.0 * warm + 1.0 * self.battery + 0.75 * self.cpu_headroom + 1.25 * self.link_quality
    }
}

/// Selects the new master among `candidates`.
///
/// Ineligible candidates are skipped; ties break toward the **lowest node
/// id**, making arbitration deterministic across observers — two nodes
/// running the same election on the same inputs pick the same master,
/// which is what prevents dual-Active splits.
#[must_use]
pub fn select_master(candidates: &[Candidate]) -> Option<NodeId> {
    candidates
        .iter()
        .filter(|c| c.eligible)
        .map(|c| (c.score(), c.node))
        .max_by(|(sa, na), (sb, nb)| {
            sa.partial_cmp(sb)
                .expect("scores are finite")
                // Lower id wins ties, so compare ids in reverse.
                .then(nb.cmp(na))
        })
        .map(|(_, node)| node)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(id: u16, battery: f64, headroom: f64, link: f64, warm: bool) -> Candidate {
        Candidate {
            node: NodeId(id),
            eligible: true,
            battery,
            cpu_headroom: headroom,
            link_quality: link,
            warm_replica: warm,
        }
    }

    #[test]
    fn warm_replica_beats_cold_node() {
        let cold_strong = cand(1, 1.0, 1.0, 1.0, false);
        let warm_weak = cand(2, 0.5, 0.3, 0.8, true);
        assert_eq!(select_master(&[cold_strong, warm_weak]), Some(NodeId(2)));
    }

    #[test]
    fn ineligible_candidates_excluded() {
        let mut best = cand(1, 1.0, 1.0, 1.0, true);
        best.eligible = false;
        let ok = cand(2, 0.2, 0.2, 0.2, false);
        assert_eq!(select_master(&[best, ok]), Some(NodeId(2)));
        let mut none = cand(3, 1.0, 1.0, 1.0, true);
        none.eligible = false;
        assert_eq!(select_master(&[none]), None);
        assert_eq!(select_master(&[]), None);
    }

    #[test]
    fn ties_break_to_lowest_id_deterministically() {
        let a = cand(7, 0.8, 0.5, 0.9, true);
        let b = cand(3, 0.8, 0.5, 0.9, true);
        assert_eq!(select_master(&[a.clone(), b.clone()]), Some(NodeId(3)));
        // Order independence.
        assert_eq!(select_master(&[b, a]), Some(NodeId(3)));
    }

    #[test]
    fn energy_matters_between_cold_candidates() {
        let low_batt = cand(1, 0.1, 0.5, 0.9, false);
        let high_batt = cand(2, 0.9, 0.5, 0.9, false);
        assert_eq!(select_master(&[low_batt, high_batt]), Some(NodeId(2)));
    }

    #[test]
    fn link_quality_outweighs_headroom() {
        let good_link = cand(1, 0.5, 0.2, 0.9, false);
        let good_cpu = cand(2, 0.5, 0.6, 0.4, false);
        // 1.25*0.9 + 0.75*0.2 = 1.275 vs 1.25*0.4 + 0.75*0.6 = 0.95.
        assert_eq!(select_master(&[good_link, good_cpu]), Some(NodeId(1)));
    }
}
