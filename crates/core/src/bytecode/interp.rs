//! The stack-machine interpreter — the semantic *oracle* for the tiered
//! execution engine.
//!
//! [`Vm::run`] dispatches on [`Tier`]: `Interp` executes the stack
//! program directly (this file), `Fused` runs the superinstruction
//! rewrite from [`super::fuse`], and `Compiled` runs the closure chain
//! from [`super::compile`] (falling back to `Fused` for programs the
//! register-IR lowering rejects). Whatever the tier, results, gas,
//! variable snapshots and trap behavior are bit-identical to this
//! interpreter.

use std::fmt;

use super::compile::{self, CompiledProgram};
use super::fuse::{self, FusedProgram};
use super::isa::{Op, Program};

/// Maximum data-stack depth (mirrors the 8-bit platform's tight RAM).
pub const MAX_STACK: usize = 32;
/// Number of task-local variables.
pub const N_VARS: usize = 32;
/// Maximum call depth.
pub(crate) const MAX_CALLS: usize = 8;

/// The fixed extension-word dispatch table: direct indexing, no hashing.
pub(crate) type ExtTable = [Option<Program>; 256];

/// Which execution engine a [`Vm`] uses.
///
/// All tiers are observationally identical (results, gas, variables,
/// traps, environment effects); they differ only in speed. `Interp` is
/// the oracle and the default, so existing goldens never move.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Tier {
    /// The stack interpreter in this module (the oracle).
    #[default]
    Interp,
    /// Superinstruction fusion: hot stack idioms in one dispatch.
    Fused,
    /// Register IR lowered to a chain of boxed closures; programs that
    /// do not lower (e.g. `call`/`ext`) fall back to [`Tier::Fused`].
    Compiled,
}

impl Tier {
    /// Every tier, oracle first — handy for differential loops.
    pub const ALL: [Tier; 3] = [Tier::Interp, Tier::Fused, Tier::Compiled];

    /// Short lower-case label used in sweep keys and bench rows.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Tier::Interp => "interp",
            Tier::Fused => "fused",
            Tier::Compiled => "compiled",
        }
    }
}

impl fmt::Display for Tier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Runtime faults the interpreter traps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VmError {
    /// Pop from an empty stack.
    StackUnderflow,
    /// Push onto a full stack.
    StackOverflow,
    /// Jump or fall-through outside the program.
    PcOutOfRange,
    /// Division by zero.
    DivideByZero,
    /// Variable index ≥ [`N_VARS`].
    BadVariable,
    /// Gas budget exhausted before `halt`.
    OutOfGas,
    /// `ext` with no registered word.
    UnknownExtension,
    /// Call stack exhausted.
    CallDepthExceeded,
    /// Environment refused a port access.
    PortFault,
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            VmError::StackUnderflow => "stack underflow",
            VmError::StackOverflow => "stack overflow",
            VmError::PcOutOfRange => "pc out of range",
            VmError::DivideByZero => "divide by zero",
            VmError::BadVariable => "bad variable index",
            VmError::OutOfGas => "out of gas",
            VmError::UnknownExtension => "unknown extension word",
            VmError::CallDepthExceeded => "call depth exceeded",
            VmError::PortFault => "port fault",
        };
        f.write_str(s)
    }
}

impl std::error::Error for VmError {}

/// The node environment a capsule executes against.
///
/// The engine implements this for real nodes; [`NullEnv`] serves tests.
pub trait VmEnv {
    /// Reads sensor input `port`.
    ///
    /// # Errors
    ///
    /// Implementations return `Err(VmError::PortFault)` for unbound ports.
    fn read_sensor(&mut self, port: u8) -> Result<f64, VmError>;

    /// Writes actuator output `port`.
    ///
    /// # Errors
    ///
    /// Implementations return `Err(VmError::PortFault)` for unbound ports.
    fn write_actuator(&mut self, port: u8, value: f64) -> Result<(), VmError>;

    /// Publishes `value` on Virtual-Component data channel `ch`.
    fn emit(&mut self, ch: u8, value: f64);

    /// Node clock, seconds.
    fn clock_s(&self) -> f64;

    /// Remaining battery fraction.
    fn battery_fraction(&self) -> f64 {
        1.0
    }

    /// The node's controller mode as a small integer (see
    /// [`crate::roles::ControllerMode::as_f64`]).
    fn role_code(&self) -> f64 {
        0.0
    }
}

/// A test/bench environment: one sensor value on every port, actuator
/// writes and emissions recorded.
#[derive(Debug, Clone, Default)]
pub struct NullEnv {
    /// Value served on every sensor port.
    pub sensor_value: f64,
    /// Recorded `(port, value)` actuator writes.
    pub writes: Vec<(u8, f64)>,
    /// Recorded `(channel, value)` emissions.
    pub emissions: Vec<(u8, f64)>,
    /// Clock returned to the program.
    pub now_s: f64,
}

impl VmEnv for NullEnv {
    fn read_sensor(&mut self, _port: u8) -> Result<f64, VmError> {
        Ok(self.sensor_value)
    }
    fn write_actuator(&mut self, port: u8, value: f64) -> Result<(), VmError> {
        self.writes.push((port, value));
        Ok(())
    }
    fn emit(&mut self, ch: u8, value: f64) {
        self.emissions.push((ch, value));
    }
    fn clock_s(&self) -> f64 {
        self.now_s
    }
}

/// Per-program artifacts for the non-oracle tiers, rebuilt lazily
/// whenever a different program is installed (capsule-install time in
/// the runtime: the controller runs one control-law program per task).
#[derive(Debug)]
struct Prepared {
    source: Program,
    /// Cache id of the last program recognized as equal to `source` —
    /// the O(1) hit test, updated when a content-equal program with a
    /// different id shows up.
    source_id: u64,
    fused: FusedProgram,
    compiled: Option<CompiledProgram>,
}

/// The persistent virtual machine for one task: variables survive across
/// invocations (that is where PID integrators live), and the extension
/// dictionary can grow at runtime.
#[derive(Debug)]
pub struct Vm {
    vars: [f64; N_VARS],
    extensions: Box<ExtTable>,
    gas_limit: u64,
    gas_used_last: u64,
    tier: Tier,
    prepared: Option<Prepared>,
    /// Register file reused by the compiled tier across invocations.
    scratch: Vec<f64>,
}

impl Clone for Vm {
    fn clone(&self) -> Self {
        // The prepared artifacts are a cache (closures are not Clone);
        // the clone rebuilds them on its first non-oracle run.
        Vm {
            vars: self.vars,
            extensions: self.extensions.clone(),
            gas_limit: self.gas_limit,
            gas_used_last: self.gas_used_last,
            tier: self.tier,
            prepared: None,
            scratch: Vec::new(),
        }
    }
}

impl Vm {
    /// Creates a VM with the given per-invocation gas budget.
    ///
    /// # Panics
    ///
    /// Panics if `gas_limit` is zero.
    #[must_use]
    pub fn new(gas_limit: u64) -> Self {
        Self::with_tier(gas_limit, Tier::Interp)
    }

    /// Creates a VM with the given gas budget and execution tier.
    ///
    /// # Panics
    ///
    /// Panics if `gas_limit` is zero.
    #[must_use]
    pub fn with_tier(gas_limit: u64, tier: Tier) -> Self {
        assert!(gas_limit > 0, "gas limit must be positive");
        Vm {
            vars: [0.0; N_VARS],
            extensions: Box::new(std::array::from_fn(|_| None)),
            gas_limit,
            gas_used_last: 0,
            tier,
            prepared: None,
            scratch: Vec::new(),
        }
    }

    /// The execution tier this VM runs capsules on.
    #[must_use]
    pub fn tier(&self) -> Tier {
        self.tier
    }

    /// Switches the execution tier (takes effect on the next run).
    pub fn set_tier(&mut self, tier: Tier) {
        self.tier = tier;
    }

    /// Registers (or replaces) extension word `n` — the runtime ISA
    /// extension mechanism. Returns the previous definition, if any.
    pub fn register_extension(&mut self, n: u8, body: Program) -> Option<Program> {
        self.extensions[n as usize].replace(body)
    }

    /// Gas consumed by the last invocation.
    #[must_use]
    pub fn gas_used(&self) -> u64 {
        self.gas_used_last
    }

    /// The per-invocation gas budget.
    #[must_use]
    pub fn gas_limit(&self) -> u64 {
        self.gas_limit
    }

    /// Reads a task-local variable (for state migration).
    ///
    /// # Panics
    ///
    /// Panics if `idx >= N_VARS`.
    #[must_use]
    pub fn var(&self, idx: usize) -> f64 {
        self.vars[idx]
    }

    /// Snapshot of all variables (migrated with the TCB).
    #[must_use]
    pub fn snapshot_vars(&self) -> [f64; N_VARS] {
        self.vars
    }

    /// Restores variables from a migrated snapshot.
    pub fn restore_vars(&mut self, vars: [f64; N_VARS]) {
        self.vars = vars;
    }

    /// Executes `program` from instruction 0 until `halt`.
    ///
    /// Returns the top of stack at halt (or 0.0 for an empty stack) — by
    /// convention the capsule's "result".
    ///
    /// # Errors
    ///
    /// Any [`VmError`]; stores executed before the fault remain visible in
    /// the task-local variables (as on the real machine).
    pub fn run(&mut self, program: &Program, env: &mut dyn VmEnv) -> Result<f64, VmError> {
        let mut gas = 0u64;
        let result = match self.tier {
            Tier::Interp => exec(
                program,
                &self.extensions,
                &mut self.vars,
                self.gas_limit,
                &mut gas,
                env,
            ),
            Tier::Fused | Tier::Compiled => {
                self.prepare(program);
                let prepared = self.prepared.as_ref().expect("prepared above");
                match (&prepared.compiled, self.tier) {
                    (Some(compiled), Tier::Compiled) => compile::run(
                        compiled,
                        &mut self.scratch,
                        &mut self.vars,
                        self.gas_limit,
                        &mut gas,
                        env,
                    ),
                    _ => fuse::exec_fused(
                        &prepared.fused,
                        &self.extensions,
                        &mut self.vars,
                        self.gas_limit,
                        &mut gas,
                        env,
                    ),
                }
            }
        };
        self.gas_used_last = gas;
        result
    }

    /// Rebuilds the fused/compiled artifacts iff `program` differs from
    /// the one prepared last. The steady-state hit is O(1): programs are
    /// immutable and carry a construction-unique cache id, so an id
    /// match proves content equality without walking the instruction
    /// list. A content-equal program built separately (different id)
    /// deep-compares once, then its id is remembered.
    fn prepare(&mut self, program: &Program) {
        match &mut self.prepared {
            Some(p) if p.source_id == program.cache_id() => {}
            Some(p) if p.source.len() == program.len() && p.source == *program => {
                p.source_id = program.cache_id();
            }
            _ => {
                self.prepared = Some(Prepared {
                    source: program.clone(),
                    source_id: program.cache_id(),
                    fused: fuse::fuse(program),
                    compiled: compile::compile(program),
                });
            }
        }
    }
}

/// Code frame: the main program or a runtime-registered extension word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FrameRef {
    Main,
    Ext(u8),
}

#[allow(clippy::too_many_lines)]
fn exec(
    program: &Program,
    extensions: &ExtTable,
    vars: &mut [f64; N_VARS],
    gas_limit: u64,
    gas_out: &mut u64,
    env: &mut dyn VmEnv,
) -> Result<f64, VmError> {
    let code = |f: FrameRef| -> &Program {
        match f {
            FrameRef::Main => program,
            FrameRef::Ext(n) => extensions[n as usize]
                .as_ref()
                .expect("checked at ext dispatch"),
        }
    };
    {
        let mut stack: Vec<f64> = Vec::with_capacity(MAX_STACK);
        let mut calls: Vec<(FrameRef, usize)> = Vec::new();
        let mut gas: u64 = 0;
        let mut frame = FrameRef::Main;
        let mut pc = 0usize;

        macro_rules! pop {
            () => {
                stack.pop().ok_or(VmError::StackUnderflow)?
            };
        }
        macro_rules! push {
            ($v:expr) => {{
                if stack.len() >= MAX_STACK {
                    return Err(VmError::StackOverflow);
                }
                stack.push($v);
            }};
        }

        loop {
            if gas >= gas_limit {
                *gas_out = gas;
                return Err(VmError::OutOfGas);
            }
            let ops = code(frame).ops();
            let Some(&op) = ops.get(pc) else {
                // Falling off an extension body behaves like ret.
                if let Some((f, ret)) = calls.pop() {
                    frame = f;
                    pc = ret;
                    continue;
                }
                *gas_out = gas;
                return Err(VmError::PcOutOfRange);
            };
            gas += 1;
            *gas_out = gas;
            pc += 1;
            match op {
                Op::Push(v) => push!(v),
                Op::Dup => {
                    let a = *stack.last().ok_or(VmError::StackUnderflow)?;
                    push!(a);
                }
                Op::Drop => {
                    let _ = pop!();
                }
                Op::Swap => {
                    let b = pop!();
                    let a = pop!();
                    push!(b);
                    push!(a);
                }
                Op::Over => {
                    if stack.len() < 2 {
                        return Err(VmError::StackUnderflow);
                    }
                    let a = stack[stack.len() - 2];
                    push!(a);
                }
                Op::Rot => {
                    if stack.len() < 3 {
                        return Err(VmError::StackUnderflow);
                    }
                    let n = stack.len();
                    stack[n - 3..].rotate_left(1);
                }
                Op::Add => {
                    let b = pop!();
                    let a = pop!();
                    push!(a + b);
                }
                Op::Sub => {
                    let b = pop!();
                    let a = pop!();
                    push!(a - b);
                }
                Op::Mul => {
                    let b = pop!();
                    let a = pop!();
                    push!(a * b);
                }
                Op::Div => {
                    let b = pop!();
                    let a = pop!();
                    if b == 0.0 {
                        return Err(VmError::DivideByZero);
                    }
                    push!(a / b);
                }
                Op::Neg => {
                    let a = pop!();
                    push!(-a);
                }
                Op::Abs => {
                    let a = pop!();
                    push!(a.abs());
                }
                Op::Min => {
                    let b = pop!();
                    let a = pop!();
                    push!(a.min(b));
                }
                Op::Max => {
                    let b = pop!();
                    let a = pop!();
                    push!(a.max(b));
                }
                Op::Gt => {
                    let b = pop!();
                    let a = pop!();
                    push!(if a > b { 1.0 } else { 0.0 });
                }
                Op::Lt => {
                    let b = pop!();
                    let a = pop!();
                    push!(if a < b { 1.0 } else { 0.0 });
                }
                Op::Ge => {
                    let b = pop!();
                    let a = pop!();
                    push!(if a >= b { 1.0 } else { 0.0 });
                }
                Op::Le => {
                    let b = pop!();
                    let a = pop!();
                    push!(if a <= b { 1.0 } else { 0.0 });
                }
                Op::Eq => {
                    let b = pop!();
                    let a = pop!();
                    push!(if a == b { 1.0 } else { 0.0 });
                }
                Op::Not => {
                    let a = pop!();
                    push!(if a == 0.0 { 1.0 } else { 0.0 });
                }
                Op::Load(n) => {
                    if n as usize >= N_VARS {
                        return Err(VmError::BadVariable);
                    }
                    push!(vars[n as usize]);
                }
                Op::Store(n) => {
                    if n as usize >= N_VARS {
                        return Err(VmError::BadVariable);
                    }
                    vars[n as usize] = pop!();
                }
                Op::Jmp(off) => {
                    pc = jump_target(pc, off)?;
                }
                Op::Jz(off) => {
                    let c = pop!();
                    if c == 0.0 {
                        pc = jump_target(pc, off)?;
                    }
                }
                Op::Call(addr) => {
                    if calls.len() >= MAX_CALLS {
                        return Err(VmError::CallDepthExceeded);
                    }
                    calls.push((frame, pc));
                    pc = addr as usize;
                }
                Op::Ret => match calls.pop() {
                    Some((f, ret)) => {
                        frame = f;
                        pc = ret;
                    }
                    None => {
                        *gas_out = gas;
                        return Ok(stack.last().copied().unwrap_or(0.0));
                    }
                },
                Op::Halt => {
                    *gas_out = gas;
                    return Ok(stack.last().copied().unwrap_or(0.0));
                }
                Op::ReadSensor(p) => {
                    let v = env.read_sensor(p)?;
                    push!(v);
                }
                Op::WriteActuator(p) => {
                    let v = pop!();
                    env.write_actuator(p, v)?;
                }
                Op::Emit(ch) => {
                    let v = pop!();
                    env.emit(ch, v);
                }
                Op::ReadClock => push!(env.clock_s()),
                Op::ReadBattery => push!(env.battery_fraction()),
                Op::ReadRole => push!(env.role_code()),
                Op::Ext(n) => {
                    if calls.len() >= MAX_CALLS {
                        return Err(VmError::CallDepthExceeded);
                    }
                    if extensions[n as usize].is_none() {
                        return Err(VmError::UnknownExtension);
                    }
                    calls.push((frame, pc));
                    frame = FrameRef::Ext(n);
                    pc = 0;
                }
                Op::Nop => {}
            }
        }
    }
}

fn jump_target(pc_after_fetch: usize, off: i16) -> Result<usize, VmError> {
    let target = pc_after_fetch as i64 - 1 + off as i64;
    usize::try_from(target).map_err(|_| VmError::PcOutOfRange)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_ops(ops: Vec<Op>) -> Result<f64, VmError> {
        let mut vm = Vm::new(10_000);
        let mut env = NullEnv::default();
        vm.run(&Program::new(ops), &mut env)
    }

    #[test]
    fn arithmetic_works() {
        assert_eq!(
            run_ops(vec![Op::Push(2.0), Op::Push(3.0), Op::Add, Op::Halt]),
            Ok(5.0)
        );
        assert_eq!(
            run_ops(vec![Op::Push(2.0), Op::Push(3.0), Op::Sub, Op::Halt]),
            Ok(-1.0)
        );
        assert_eq!(
            run_ops(vec![Op::Push(6.0), Op::Push(3.0), Op::Div, Op::Halt]),
            Ok(2.0)
        );
        assert_eq!(run_ops(vec![Op::Push(-4.0), Op::Abs, Op::Halt]), Ok(4.0));
        assert_eq!(
            run_ops(vec![Op::Push(1.0), Op::Push(9.0), Op::Max, Op::Halt]),
            Ok(9.0)
        );
    }

    #[test]
    fn stack_manipulation() {
        assert_eq!(
            run_ops(vec![Op::Push(1.0), Op::Push(2.0), Op::Swap, Op::Halt]),
            Ok(1.0)
        );
        assert_eq!(
            run_ops(vec![Op::Push(1.0), Op::Push(2.0), Op::Over, Op::Halt]),
            Ok(1.0)
        );
        assert_eq!(
            // 1 2 3 rot -> 2 3 1
            run_ops(vec![
                Op::Push(1.0),
                Op::Push(2.0),
                Op::Push(3.0),
                Op::Rot,
                Op::Halt
            ]),
            Ok(1.0)
        );
    }

    #[test]
    fn comparison_and_branching() {
        // if (5 > 3) result = 10 else result = 20
        let ops = vec![
            Op::Push(5.0),
            Op::Push(3.0),
            Op::Gt,
            Op::Jz(3),      // to the else branch
            Op::Push(10.0), // then
            Op::Jmp(2),
            Op::Push(20.0), // else
            Op::Halt,
        ];
        assert_eq!(run_ops(ops), Ok(10.0));
    }

    #[test]
    fn loop_with_counter() {
        // var0 = 5; while (var0 != 0) { var0 -= 1 }; result = var0
        let ops = vec![
            Op::Push(5.0),
            Op::Store(0),
            // loop:
            Op::Load(0),
            Op::Jz(6), // exit
            Op::Load(0),
            Op::Push(1.0),
            Op::Sub,
            Op::Store(0),
            Op::Jmp(-6), // back to loop
            // exit:
            Op::Load(0),
            Op::Halt,
        ];
        assert_eq!(run_ops(ops), Ok(0.0));
    }

    #[test]
    fn vars_persist_across_invocations() {
        let mut vm = Vm::new(1000);
        let mut env = NullEnv::default();
        let inc = Program::new(vec![
            Op::Load(7),
            Op::Push(1.0),
            Op::Add,
            Op::Store(7),
            Op::Load(7),
            Op::Halt,
        ]);
        assert_eq!(vm.run(&inc, &mut env), Ok(1.0));
        assert_eq!(vm.run(&inc, &mut env), Ok(2.0));
        assert_eq!(vm.var(7), 2.0);
    }

    #[test]
    fn io_and_emit() {
        let mut vm = Vm::new(1000);
        let mut env = NullEnv {
            sensor_value: 42.0,
            ..NullEnv::default()
        };
        let p = Program::new(vec![
            Op::ReadSensor(0),
            Op::Push(2.0),
            Op::Mul,
            Op::Dup,
            Op::WriteActuator(1),
            Op::Emit(0),
            Op::Halt,
        ]);
        // After emit pops, the stack is empty: result 0.0.
        assert_eq!(vm.run(&p, &mut env), Ok(0.0));
        assert_eq!(env.writes, vec![(1, 84.0)]);
        assert_eq!(env.emissions, vec![(0, 84.0)]);
    }

    #[test]
    fn gas_metering_stops_infinite_loops() {
        let mut vm = Vm::new(100);
        let mut env = NullEnv::default();
        let p = Program::new(vec![Op::Jmp(0)]);
        assert_eq!(vm.run(&p, &mut env), Err(VmError::OutOfGas));
        assert_eq!(vm.gas_used(), 100);
    }

    #[test]
    fn traps_are_reported() {
        assert_eq!(run_ops(vec![Op::Add]), Err(VmError::StackUnderflow));
        assert_eq!(
            run_ops(vec![Op::Push(1.0), Op::Push(0.0), Op::Div]),
            Err(VmError::DivideByZero)
        );
        assert_eq!(run_ops(vec![Op::Load(200)]), Err(VmError::BadVariable));
        assert_eq!(run_ops(vec![Op::Push(1.0)]), Err(VmError::PcOutOfRange));
        assert_eq!(
            run_ops(vec![Op::Ext(9), Op::Halt]),
            Err(VmError::UnknownExtension)
        );
        let overflow: Vec<Op> = (0..40).map(|i| Op::Push(i as f64)).collect();
        assert_eq!(run_ops(overflow), Err(VmError::StackOverflow));
    }

    #[test]
    fn call_and_ret() {
        // main: call square(3); halt   square: dup mul ret  (at addr 4)
        let ops = vec![
            Op::Push(3.0),
            Op::Call(4),
            Op::Halt,
            Op::Nop,
            Op::Dup, // addr 4
            Op::Mul,
            Op::Ret,
        ];
        assert_eq!(run_ops(ops), Ok(9.0));
    }

    #[test]
    fn runtime_extension_words() {
        let mut vm = Vm::new(1000);
        let mut env = NullEnv::default();
        // Define word 1 = "square" at runtime.
        vm.register_extension(1, Program::new(vec![Op::Dup, Op::Mul, Op::Ret]));
        let p = Program::new(vec![Op::Push(7.0), Op::Ext(1), Op::Halt]);
        assert_eq!(vm.run(&p, &mut env), Ok(49.0));
        // Redefining replaces the behavior.
        let old = vm.register_extension(1, Program::new(vec![Op::Push(0.0), Op::Add, Op::Ret]));
        assert!(old.is_some());
        assert_eq!(vm.run(&p, &mut env), Ok(7.0));
    }

    #[test]
    fn extension_without_ret_falls_through() {
        let mut vm = Vm::new(1000);
        let mut env = NullEnv::default();
        vm.register_extension(2, Program::new(vec![Op::Push(5.0)]));
        let p = Program::new(vec![Op::Ext(2), Op::Halt]);
        assert_eq!(vm.run(&p, &mut env), Ok(5.0));
    }

    #[test]
    fn call_depth_limited() {
        // Recursive call with no exit.
        let ops = vec![Op::Call(0)];
        assert_eq!(run_ops(ops), Err(VmError::CallDepthExceeded));
    }

    mod fuzz {
        use super::*;
        use evm_sim::SimRng;

        /// Draws one random (not necessarily well-formed) instruction.
        fn random_op(rng: &mut SimRng) -> Op {
            match rng.index(30) {
                0 => Op::Push(rng.range(-100.0, 100.0)),
                1 => Op::Dup,
                2 => Op::Drop,
                3 => Op::Swap,
                4 => Op::Over,
                5 => Op::Rot,
                6 => Op::Add,
                7 => Op::Sub,
                8 => Op::Mul,
                9 => Op::Div,
                10 => Op::Neg,
                11 => Op::Abs,
                12 => Op::Min,
                13 => Op::Max,
                14 => Op::Gt,
                15 => Op::Lt,
                16 => Op::Eq,
                17 => Op::Not,
                18 => Op::Load(rng.index(256) as u8),
                19 => Op::Store(rng.index(256) as u8),
                20 => Op::Jmp(rng.int_range(-20, 19) as i16),
                21 => Op::Jz(rng.int_range(-20, 19) as i16),
                22 => Op::Call(rng.index(32) as u16),
                23 => Op::Ret,
                24 => Op::Halt,
                25 => Op::ReadSensor(rng.index(256) as u8),
                26 => Op::WriteActuator(rng.index(256) as u8),
                27 => Op::Emit(rng.index(256) as u8),
                28 => Op::ReadClock,
                _ => Op::Ext(rng.index(256) as u8),
            }
        }

        fn random_ops(rng: &mut SimRng, max_len: usize) -> Vec<Op> {
            let len = rng.index(max_len);
            (0..len).map(|_| random_op(rng)).collect()
        }

        /// The interpreter is total: any byte-valid program either halts
        /// with a value or traps with a typed error — it never panics, and
        /// it never exceeds its gas budget.
        #[test]
        fn interpreter_is_total_on_random_programs() {
            let mut rng = SimRng::seed_from(0xF022);
            for _ in 0..512 {
                let mut vm = Vm::new(256);
                let mut env = NullEnv {
                    sensor_value: 1.5,
                    ..NullEnv::default()
                };
                let program = Program::new(random_ops(&mut rng, 64));
                let _ = vm.run(&program, &mut env);
                assert!(vm.gas_used() <= 256);
            }
        }

        /// Encode/decode is the identity on arbitrary programs, so a
        /// migrated capsule executes identically on the target node.
        #[test]
        fn migration_preserves_execution_of_random_programs() {
            let mut rng = SimRng::seed_from(0xF023);
            for _ in 0..512 {
                let program = Program::new(random_ops(&mut rng, 48));
                let decoded = Program::decode(&program.encode()).expect("roundtrip");
                let mut vm_a = Vm::new(200);
                let mut vm_b = Vm::new(200);
                let mut env_a = NullEnv {
                    sensor_value: 2.5,
                    ..NullEnv::default()
                };
                let mut env_b = env_a.clone();
                let ra = vm_a.run(&program, &mut env_a);
                let rb = vm_b.run(&decoded, &mut env_b);
                assert_eq!(ra, rb);
                assert_eq!(env_a.writes, env_b.writes);
                assert_eq!(vm_a.snapshot_vars(), vm_b.snapshot_vars());
            }
        }
    }

    #[test]
    fn clock_battery_role() {
        let mut vm = Vm::new(100);
        let mut env = NullEnv {
            now_s: 12.5,
            ..NullEnv::default()
        };
        let p = Program::new(vec![Op::ReadClock, Op::Halt]);
        assert_eq!(vm.run(&p, &mut env), Ok(12.5));
        let p = Program::new(vec![Op::ReadBattery, Op::Halt]);
        assert_eq!(vm.run(&p, &mut env), Ok(1.0));
        let p = Program::new(vec![Op::ReadRole, Op::Halt]);
        assert_eq!(vm.run(&p, &mut env), Ok(0.0));
    }
}
