//! Text assembler and disassembler.
//!
//! A small FORTH-flavored assembly syntax with labels, so capsules can be
//! written and inspected by humans:
//!
//! ```text
//! ; count down from 5
//!     push 5
//!     store 0
//! loop:
//!     load 0
//!     jz done
//!     load 0
//!     push 1
//!     sub
//!     store 0
//!     jmp loop
//! done:
//!     load 0
//!     halt
//! ```

use std::collections::HashMap;

use super::isa::{Op, Program};

/// Assembly errors, with the offending line number (1-based).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based source line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for AsmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AsmError {}

fn err(line: usize, message: impl Into<String>) -> AsmError {
    AsmError {
        line,
        message: message.into(),
    }
}

/// Assembles source text into a [`Program`].
///
/// Labels are `name:` on their own (or before an instruction); jump
/// targets may be labels or numeric relative offsets; `call` targets may
/// be labels or absolute addresses. `;` starts a comment.
///
/// # Errors
///
/// [`AsmError`] with the line number of the first problem.
pub fn assemble(source: &str) -> Result<Program, AsmError> {
    // Pass 1: strip comments, collect labels and raw instructions.
    struct Raw<'a> {
        line: usize,
        mnemonic: &'a str,
        operand: Option<&'a str>,
    }
    let mut labels: HashMap<&str, usize> = HashMap::new();
    let mut raws: Vec<Raw> = Vec::new();

    for (lineno, full_line) in source.lines().enumerate() {
        let line = lineno + 1;
        let mut text = full_line;
        if let Some(i) = text.find(';') {
            text = &text[..i];
        }
        let mut rest = text.trim();
        // Possibly several labels before the instruction.
        while let Some(colon) = rest.find(':') {
            let (label, tail) = rest.split_at(colon);
            let label = label.trim();
            if label.is_empty() || label.contains(char::is_whitespace) {
                return Err(err(line, format!("bad label {label:?}")));
            }
            if labels.insert(label, raws.len()).is_some() {
                return Err(err(line, format!("duplicate label {label:?}")));
            }
            rest = tail[1..].trim();
        }
        if rest.is_empty() {
            continue;
        }
        let mut parts = rest.split_whitespace();
        let mnemonic = parts.next().expect("nonempty");
        let operand = parts.next();
        if parts.next().is_some() {
            return Err(err(line, "too many operands"));
        }
        raws.push(Raw {
            line,
            mnemonic,
            operand,
        });
    }

    // Pass 2: encode.
    let mut ops = Vec::with_capacity(raws.len());
    for (idx, raw) in raws.iter().enumerate() {
        let line = raw.line;
        let operand = |what: &str| -> Result<&str, AsmError> {
            raw.operand
                .ok_or_else(|| err(line, format!("{} needs {what}", raw.mnemonic)))
        };
        let no_operand = |op: Op| -> Result<Op, AsmError> {
            if raw.operand.is_some() {
                Err(err(line, format!("{} takes no operand", raw.mnemonic)))
            } else {
                Ok(op)
            }
        };
        let parse_f64 = |s: &str| -> Result<f64, AsmError> {
            s.parse()
                .map_err(|_| err(line, format!("bad number {s:?}")))
        };
        let parse_u8 = |s: &str| -> Result<u8, AsmError> {
            s.parse().map_err(|_| err(line, format!("bad index {s:?}")))
        };
        let jump_offset = |s: &str| -> Result<i16, AsmError> {
            if let Some(&target) = labels.get(s) {
                let off = target as i64 - idx as i64;
                i16::try_from(off).map_err(|_| err(line, "jump too far"))
            } else {
                s.parse()
                    .map_err(|_| err(line, format!("unknown label {s:?}")))
            }
        };

        let op = match raw.mnemonic {
            "push" => Op::Push(parse_f64(operand("a literal")?)?),
            "dup" => no_operand(Op::Dup)?,
            "drop" => no_operand(Op::Drop)?,
            "swap" => no_operand(Op::Swap)?,
            "over" => no_operand(Op::Over)?,
            "rot" => no_operand(Op::Rot)?,
            "add" => no_operand(Op::Add)?,
            "sub" => no_operand(Op::Sub)?,
            "mul" => no_operand(Op::Mul)?,
            "div" => no_operand(Op::Div)?,
            "neg" => no_operand(Op::Neg)?,
            "abs" => no_operand(Op::Abs)?,
            "min" => no_operand(Op::Min)?,
            "max" => no_operand(Op::Max)?,
            "gt" => no_operand(Op::Gt)?,
            "lt" => no_operand(Op::Lt)?,
            "ge" => no_operand(Op::Ge)?,
            "le" => no_operand(Op::Le)?,
            "eq" => no_operand(Op::Eq)?,
            "not" => no_operand(Op::Not)?,
            "load" => Op::Load(parse_u8(operand("a variable")?)?),
            "store" => Op::Store(parse_u8(operand("a variable")?)?),
            "jmp" => Op::Jmp(jump_offset(operand("a target")?)?),
            "jz" => Op::Jz(jump_offset(operand("a target")?)?),
            "call" => {
                let s = operand("a target")?;
                let addr = if let Some(&target) = labels.get(s) {
                    target as u16
                } else {
                    s.parse()
                        .map_err(|_| err(line, format!("unknown label {s:?}")))?
                };
                Op::Call(addr)
            }
            "ret" => no_operand(Op::Ret)?,
            "halt" => no_operand(Op::Halt)?,
            "rdsens" => Op::ReadSensor(parse_u8(operand("a port")?)?),
            "wract" => Op::WriteActuator(parse_u8(operand("a port")?)?),
            "emit" => Op::Emit(parse_u8(operand("a channel")?)?),
            "rdclk" => no_operand(Op::ReadClock)?,
            "rdbat" => no_operand(Op::ReadBattery)?,
            "rdrole" => no_operand(Op::ReadRole)?,
            "ext" => Op::Ext(parse_u8(operand("a word")?)?),
            "nop" => no_operand(Op::Nop)?,
            other => return Err(err(line, format!("unknown mnemonic {other:?}"))),
        };
        ops.push(op);
    }
    Ok(Program::new(ops))
}

/// Renders a program as assembly text (numeric offsets, no labels).
#[must_use]
pub fn disassemble(program: &Program) -> String {
    let mut out = String::new();
    for (i, op) in program.ops().iter().enumerate() {
        out.push_str(&format!("{i:4}  {op}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bytecode::{NullEnv, Vm};

    #[test]
    fn assembles_countdown_loop() {
        let src = r"
            ; count down from 5
                push 5
                store 0
            loop:
                load 0
                jz done
                load 0
                push 1
                sub
                store 0
                jmp loop
            done:
                load 0
                halt
        ";
        let p = assemble(src).unwrap();
        let mut vm = Vm::new(1000);
        let mut env = NullEnv::default();
        assert_eq!(vm.run(&p, &mut env), Ok(0.0));
    }

    #[test]
    fn label_and_numeric_jumps_agree() {
        let with_label = assemble("start:\n jmp start").unwrap();
        let numeric = assemble("jmp 0").unwrap();
        assert_eq!(with_label, numeric);
    }

    #[test]
    fn call_by_label() {
        let src = r"
                push 3
                call square
                halt
            square:
                dup
                mul
                ret
        ";
        let p = assemble(src).unwrap();
        let mut vm = Vm::new(1000);
        assert_eq!(vm.run(&p, &mut NullEnv::default()), Ok(9.0));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = assemble("push 1\nbogus\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("bogus"));

        let e = assemble("push").unwrap_err();
        assert!(e.message.contains("needs"));

        let e = assemble("dup 3").unwrap_err();
        assert!(e.message.contains("takes no operand"));

        let e = assemble("jmp nowhere").unwrap_err();
        assert!(e.message.contains("unknown label"));

        let e = assemble("x:\nx:\n halt").unwrap_err();
        assert!(e.message.contains("duplicate label"));
    }

    #[test]
    fn disassemble_roundtrips_through_assemble() {
        let src = "push 1.5\nload 3\nadd\nwract 0\nhalt";
        let p = assemble(src).unwrap();
        let text = disassemble(&p);
        // Strip the address column and re-assemble.
        let stripped: String = text
            .lines()
            .map(|l| l.trim_start().split_once("  ").expect("two columns").1)
            .collect::<Vec<_>>()
            .join("\n");
        let q = assemble(&stripped).unwrap();
        assert_eq!(p, q);
    }
}
