//! Tier 1: superinstruction fusion.
//!
//! [`fuse`] scans a stack [`Program`] for hot multi-op idioms — the
//! `load/push/sub/store` decrement loop, the compiled PID's
//! `load·load·sub` / `push·mul` / `load·add` chains — and rewrites each
//! into one fused op executed in a single dispatch.
//!
//! The fused program is *same-length*: a superinstruction sits at the
//! first index of the run it covers, and the covered slots retain their
//! original base ops. Jump offsets therefore never move, and a branch
//! landing in the middle of a fused run simply executes base ops —
//! correctness never depends on jump-target analysis.
//!
//! Gas/trap identity with the oracle interpreter is kept by *guarding*
//! every superinstruction: the fast path runs only if the whole covered
//! run is statically trap-free from the current state (enough gas for
//! every constituent, stack depth in range). On any shortfall the op
//! *deopts* to executing just its first constituent base op, which
//! reproduces the oracle's behavior (including mid-sequence `OutOfGas`)
//! exactly, one op at a time.

use super::interp::{ExtTable, VmEnv, VmError, MAX_CALLS, MAX_STACK, N_VARS};
use super::isa::{Op, Program};

/// Binary-operator selector shared by the fused and compiled tiers.
/// `Div` is deliberately absent: it can trap, so it never fuses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum BinSel {
    Add,
    Sub,
    Mul,
    Min,
    Max,
    Gt,
    Lt,
    Ge,
    Le,
    Eq,
}

impl BinSel {
    /// The selector for a pure, non-trapping binary stack op.
    pub(crate) fn of(op: Op) -> Option<BinSel> {
        match op {
            Op::Add => Some(BinSel::Add),
            Op::Sub => Some(BinSel::Sub),
            Op::Mul => Some(BinSel::Mul),
            Op::Min => Some(BinSel::Min),
            Op::Max => Some(BinSel::Max),
            Op::Gt => Some(BinSel::Gt),
            Op::Lt => Some(BinSel::Lt),
            Op::Ge => Some(BinSel::Ge),
            Op::Le => Some(BinSel::Le),
            Op::Eq => Some(BinSel::Eq),
            _ => None,
        }
    }

    /// Applies the operator exactly as the oracle interpreter does.
    #[inline]
    pub(crate) fn apply(self, a: f64, b: f64) -> f64 {
        match self {
            BinSel::Add => a + b,
            BinSel::Sub => a - b,
            BinSel::Mul => a * b,
            BinSel::Min => a.min(b),
            BinSel::Max => a.max(b),
            BinSel::Gt => f64::from(a > b),
            BinSel::Lt => f64::from(a < b),
            BinSel::Ge => f64::from(a >= b),
            BinSel::Le => f64::from(a <= b),
            BinSel::Eq => f64::from(a == b),
        }
    }

    /// The operator as a bare function pointer (for closure capture).
    pub(crate) fn func(self) -> fn(f64, f64) -> f64 {
        match self {
            BinSel::Add => |a, b| a + b,
            BinSel::Sub => |a, b| a - b,
            BinSel::Mul => |a, b| a * b,
            BinSel::Min => f64::min,
            BinSel::Max => f64::max,
            BinSel::Gt => |a, b| f64::from(a > b),
            BinSel::Lt => |a, b| f64::from(a < b),
            BinSel::Ge => |a, b| f64::from(a >= b),
            BinSel::Le => |a, b| f64::from(a <= b),
            BinSel::Eq => |a, b| f64::from(a == b),
        }
    }
}

/// One slot of a fused program. Superinstructions record how many
/// source ops they cover; the covered slots keep their base ops.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum FOp {
    /// An unfused source op.
    Base(Op),
    /// `load var · push k · (add|sub) · store var` — covers 4.
    IncVar { var: u8, k: f64, sub: bool },
    /// `push k · store var` — covers 2.
    SetVar { var: u8, k: f64 },
    /// `load a · load b · <bin>` — covers 3.
    LoadLoadBin { a: u8, b: u8, sel: BinSel },
    /// `load var · <bin>` (top ⊙= vars\[var\]) — covers 2.
    LoadBin { var: u8, sel: BinSel },
    /// `push k · <bin>` (top ⊙= k) — covers 2.
    PushBin { k: f64, sel: BinSel },
    /// `load src · store dst` — covers 2.
    CopyVar { src: u8, dst: u8 },
    /// `store var · load var` (vars\[var\] = top, stack unchanged) — covers 2.
    StoreLoad { var: u8 },
    /// `load var · jz off` — covers 2; `off` is relative to the `jz` op.
    LoadJz { var: u8, off: i16 },
}

impl FOp {
    /// Source ops covered (1 for a base op).
    fn covers(self) -> usize {
        match self {
            FOp::Base(_) => 1,
            FOp::IncVar { .. } => 4,
            FOp::LoadLoadBin { .. } => 3,
            _ => 2,
        }
    }

    /// The first constituent base op — what a deopt executes.
    fn first(self) -> Op {
        match self {
            FOp::Base(op) => op,
            FOp::IncVar { var, .. } | FOp::LoadBin { var, .. } | FOp::LoadJz { var, .. } => {
                Op::Load(var)
            }
            FOp::SetVar { k, .. } | FOp::PushBin { k, .. } => Op::Push(k),
            FOp::LoadLoadBin { a, .. } => Op::Load(a),
            FOp::CopyVar { src, .. } => Op::Load(src),
            FOp::StoreLoad { var } => Op::Store(var),
        }
    }
}

/// A same-length superinstruction rewrite of a stack program.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct FusedProgram {
    fops: Vec<FOp>,
}

fn var_ok(n: u8) -> bool {
    (n as usize) < N_VARS
}

/// Tries to fuse the run starting at `i`; longest pattern wins.
fn match_at(ops: &[Op]) -> Option<FOp> {
    // 4-op: load v · push k · (add|sub) · store v
    if let [Op::Load(v), Op::Push(k), op, Op::Store(w), ..] = *ops {
        if v == w && var_ok(v) && matches!(op, Op::Add | Op::Sub) {
            return Some(FOp::IncVar {
                var: v,
                k,
                sub: op == Op::Sub,
            });
        }
    }
    // 3-op: load a · load b · bin
    if let [Op::Load(a), Op::Load(b), op, ..] = *ops {
        if var_ok(a) && var_ok(b) {
            if let Some(sel) = BinSel::of(op) {
                return Some(FOp::LoadLoadBin { a, b, sel });
            }
        }
    }
    // 2-op patterns.
    match *ops {
        [Op::Push(k), Op::Store(v), ..] if var_ok(v) => Some(FOp::SetVar { var: v, k }),
        [Op::Load(v), Op::Store(w), ..] if var_ok(v) && var_ok(w) => {
            Some(FOp::CopyVar { src: v, dst: w })
        }
        [Op::Store(v), Op::Load(w), ..] if v == w && var_ok(v) => Some(FOp::StoreLoad { var: v }),
        [Op::Load(v), Op::Jz(off), ..] if var_ok(v) => Some(FOp::LoadJz { var: v, off }),
        [Op::Load(v), op, ..] if var_ok(v) => {
            BinSel::of(op).map(|sel| FOp::LoadBin { var: v, sel })
        }
        [Op::Push(k), op, ..] => BinSel::of(op).map(|sel| FOp::PushBin { k, sel }),
        _ => None,
    }
}

/// Rewrites `program` into its same-length fused form.
pub(crate) fn fuse(program: &Program) -> FusedProgram {
    let ops = program.ops();
    let mut fops: Vec<FOp> = ops.iter().map(|&op| FOp::Base(op)).collect();
    let mut i = 0;
    while i < ops.len() {
        if let Some(fop) = match_at(&ops[i..]) {
            fops[i] = fop;
            i += fop.covers();
        } else {
            i += 1;
        }
    }
    FusedProgram { fops }
}

/// Code frame: the fused main program or a raw extension word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Frame {
    Main,
    Ext(u8),
}

/// Executes a fused program with oracle-identical observable behavior.
#[allow(clippy::too_many_lines)]
pub(crate) fn exec_fused(
    fused: &FusedProgram,
    extensions: &ExtTable,
    vars: &mut [f64; N_VARS],
    gas_limit: u64,
    gas_out: &mut u64,
    env: &mut dyn VmEnv,
) -> Result<f64, VmError> {
    let mut stack: Vec<f64> = Vec::with_capacity(MAX_STACK);
    let mut calls: Vec<(Frame, usize)> = Vec::new();
    let mut gas: u64 = 0;
    let mut frame = Frame::Main;
    let mut pc = 0usize;

    macro_rules! pop {
        () => {
            stack.pop().ok_or(VmError::StackUnderflow)?
        };
    }
    macro_rules! push {
        ($v:expr) => {{
            if stack.len() >= MAX_STACK {
                return Err(VmError::StackOverflow);
            }
            stack.push($v);
        }};
    }

    loop {
        if gas >= gas_limit {
            *gas_out = gas;
            return Err(VmError::OutOfGas);
        }
        let fetched = match frame {
            Frame::Main => fused.fops.get(pc).copied(),
            Frame::Ext(n) => extensions[n as usize]
                .as_ref()
                .expect("checked at ext dispatch")
                .ops()
                .get(pc)
                .map(|&op| FOp::Base(op)),
        };
        let Some(fop) = fetched else {
            // Falling off an extension body behaves like ret.
            if let Some((f, ret)) = calls.pop() {
                frame = f;
                pc = ret;
                continue;
            }
            *gas_out = gas;
            return Err(VmError::PcOutOfRange);
        };

        // Fast path: the whole covered run is trap-free from here, so
        // execute it in one dispatch charging the constituent ops' gas.
        if !matches!(fop, FOp::Base(_)) {
            let covers = fop.covers() as u64;
            let len = stack.len();
            let fits = gas_limit - gas >= covers
                && match fop {
                    FOp::Base(_) => unreachable!(),
                    FOp::IncVar { .. } | FOp::LoadLoadBin { .. } => len + 2 <= MAX_STACK,
                    FOp::SetVar { .. } | FOp::CopyVar { .. } | FOp::LoadJz { .. } => {
                        len < MAX_STACK
                    }
                    FOp::LoadBin { .. } | FOp::PushBin { .. } => (1..MAX_STACK).contains(&len),
                    FOp::StoreLoad { .. } => len >= 1,
                };
            if fits {
                gas += covers;
                *gas_out = gas;
                pc += fop.covers();
                match fop {
                    FOp::Base(_) => unreachable!(),
                    FOp::IncVar { var, k, sub } => {
                        let v = var as usize;
                        vars[v] = if sub { vars[v] - k } else { vars[v] + k };
                    }
                    FOp::SetVar { var, k } => vars[var as usize] = k,
                    FOp::LoadLoadBin { a, b, sel } => {
                        stack.push(sel.apply(vars[a as usize], vars[b as usize]));
                    }
                    FOp::LoadBin { var, sel } => {
                        let top = stack.last_mut().expect("guarded");
                        *top = sel.apply(*top, vars[var as usize]);
                    }
                    FOp::PushBin { k, sel } => {
                        let top = stack.last_mut().expect("guarded");
                        *top = sel.apply(*top, k);
                    }
                    FOp::CopyVar { src, dst } => vars[dst as usize] = vars[src as usize],
                    FOp::StoreLoad { var } => {
                        vars[var as usize] = *stack.last().expect("guarded");
                    }
                    FOp::LoadJz { var, off } => {
                        if vars[var as usize] == 0.0 {
                            // `off` is relative to the jz (second op).
                            let target = (pc as i64 - 1) + i64::from(off);
                            match usize::try_from(target) {
                                Ok(t) => pc = t,
                                Err(_) => return Err(VmError::PcOutOfRange),
                            }
                        }
                    }
                }
                continue;
            }
        }

        // Base op, or a deopt: execute only the first constituent,
        // exactly as the oracle interpreter would.
        let op = fop.first();
        gas += 1;
        *gas_out = gas;
        pc += 1;
        match op {
            Op::Push(v) => push!(v),
            Op::Dup => {
                let a = *stack.last().ok_or(VmError::StackUnderflow)?;
                push!(a);
            }
            Op::Drop => {
                let _ = pop!();
            }
            Op::Swap => {
                let b = pop!();
                let a = pop!();
                push!(b);
                push!(a);
            }
            Op::Over => {
                if stack.len() < 2 {
                    return Err(VmError::StackUnderflow);
                }
                let a = stack[stack.len() - 2];
                push!(a);
            }
            Op::Rot => {
                if stack.len() < 3 {
                    return Err(VmError::StackUnderflow);
                }
                let n = stack.len();
                stack[n - 3..].rotate_left(1);
            }
            Op::Add
            | Op::Sub
            | Op::Mul
            | Op::Min
            | Op::Max
            | Op::Gt
            | Op::Lt
            | Op::Ge
            | Op::Le
            | Op::Eq => {
                let b = pop!();
                let a = pop!();
                push!(BinSel::of(op).expect("binary op").apply(a, b));
            }
            Op::Div => {
                let b = pop!();
                let a = pop!();
                if b == 0.0 {
                    return Err(VmError::DivideByZero);
                }
                push!(a / b);
            }
            Op::Neg => {
                let a = pop!();
                push!(-a);
            }
            Op::Abs => {
                let a = pop!();
                push!(a.abs());
            }
            Op::Not => {
                let a = pop!();
                push!(if a == 0.0 { 1.0 } else { 0.0 });
            }
            Op::Load(n) => {
                if n as usize >= N_VARS {
                    return Err(VmError::BadVariable);
                }
                push!(vars[n as usize]);
            }
            Op::Store(n) => {
                if n as usize >= N_VARS {
                    return Err(VmError::BadVariable);
                }
                vars[n as usize] = pop!();
            }
            Op::Jmp(off) => {
                pc = jump_target(pc, off)?;
            }
            Op::Jz(off) => {
                let c = pop!();
                if c == 0.0 {
                    pc = jump_target(pc, off)?;
                }
            }
            Op::Call(addr) => {
                if calls.len() >= MAX_CALLS {
                    return Err(VmError::CallDepthExceeded);
                }
                calls.push((frame, pc));
                pc = addr as usize;
            }
            Op::Ret => match calls.pop() {
                Some((f, ret)) => {
                    frame = f;
                    pc = ret;
                }
                None => {
                    *gas_out = gas;
                    return Ok(stack.last().copied().unwrap_or(0.0));
                }
            },
            Op::Halt => {
                *gas_out = gas;
                return Ok(stack.last().copied().unwrap_or(0.0));
            }
            Op::ReadSensor(p) => {
                let v = env.read_sensor(p)?;
                push!(v);
            }
            Op::WriteActuator(p) => {
                let v = pop!();
                env.write_actuator(p, v)?;
            }
            Op::Emit(ch) => {
                let v = pop!();
                env.emit(ch, v);
            }
            Op::ReadClock => push!(env.clock_s()),
            Op::ReadBattery => push!(env.battery_fraction()),
            Op::ReadRole => push!(env.role_code()),
            Op::Ext(n) => {
                if calls.len() >= MAX_CALLS {
                    return Err(VmError::CallDepthExceeded);
                }
                if extensions[n as usize].is_none() {
                    return Err(VmError::UnknownExtension);
                }
                calls.push((frame, pc));
                frame = Frame::Ext(n);
                pc = 0;
            }
            Op::Nop => {}
        }
    }
}

fn jump_target(pc_after_fetch: usize, off: i16) -> Result<usize, VmError> {
    let target = pc_after_fetch as i64 - 1 + i64::from(off);
    usize::try_from(target).map_err(|_| VmError::PcOutOfRange)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decrement_loop_fuses() {
        // The canonical counter loop: load 0 · jz · load 0 · push 1 ·
        // sub · store 0 · jmp.
        let ops = vec![
            Op::Push(5.0),
            Op::Store(0),
            Op::Load(0),
            Op::Jz(6),
            Op::Load(0),
            Op::Push(1.0),
            Op::Sub,
            Op::Store(0),
            Op::Jmp(-6),
            Op::Load(0),
            Op::Halt,
        ];
        let fused = fuse(&Program::new(ops));
        assert_eq!(fused.fops[0], FOp::SetVar { var: 0, k: 5.0 });
        assert_eq!(fused.fops[2], FOp::LoadJz { var: 0, off: 6 });
        assert_eq!(
            fused.fops[4],
            FOp::IncVar {
                var: 0,
                k: 1.0,
                sub: true
            }
        );
        // Covered slots keep their base ops for mid-run branch targets.
        assert_eq!(fused.fops[5], FOp::Base(Op::Push(1.0)));
        assert_eq!(fused.fops[7], FOp::Base(Op::Store(0)));
    }

    #[test]
    fn pid_idioms_fuse() {
        let ops = vec![
            Op::Load(31),
            Op::Load(1),
            Op::Sub,
            Op::Push(0.2),
            Op::Mul,
            Op::Load(1),
            Op::Add,
            Op::Store(1),
        ];
        let fused = fuse(&Program::new(ops));
        assert_eq!(
            fused.fops[0],
            FOp::LoadLoadBin {
                a: 31,
                b: 1,
                sel: BinSel::Sub
            }
        );
        assert_eq!(
            fused.fops[3],
            FOp::PushBin {
                k: 0.2,
                sel: BinSel::Mul
            }
        );
        assert_eq!(
            fused.fops[5],
            FOp::LoadBin {
                var: 1,
                sel: BinSel::Add
            }
        );
        assert_eq!(fused.fops[7], FOp::Base(Op::Store(1)));
    }

    #[test]
    fn out_of_range_vars_do_not_fuse() {
        let ops = vec![Op::Push(1.0), Op::Store(200)];
        let fused = fuse(&Program::new(ops));
        assert_eq!(fused.fops[0], FOp::Base(Op::Push(1.0)));
    }
}
