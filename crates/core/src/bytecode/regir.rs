//! Tier 2: the register-based internal IR.
//!
//! [`lower`] translates a stack [`Program`] into basic blocks over a
//! virtual register file, eliminating data-stack traffic: register `i`
//! mirrors stack slot `i` at block entry (slots `0..MAX_STACK`), and
//! temporaries live from [`TEMP_BASE`] up. Stack shuffles (`dup`,
//! `swap`, `over`, `rot`, `drop`) become pure renames of the abstract
//! stack — they still cost one gas ([`Step::Gas`]) but move no data.
//!
//! The lowering is deliberately faithful, 1:1 and unoptimized: every
//! source op becomes exactly one [`Step`] (or the block [`Term`]), each
//! worth one gas, so the compiled tier's step-at-a-time path can meter
//! gas exactly like the oracle interpreter; all optimization happens at
//! closure-emission time in [`super::compile`]. Statically certain
//! traps (bad variable, stack under/overflow, negative jump target)
//! become [`Term::Trap`] with the oracle's exact error-ordering and gas
//! charge.
//!
//! Programs the IR cannot express bail out (`lower` returns `None`) and
//! run on the fused tier instead: anything with `call`/`ext` (dynamic
//! frames) or with inconsistent stack depths at a join point.

use super::fuse::BinSel;
use super::interp::{VmError, MAX_STACK, N_VARS};
use super::isa::{Op, Program};

/// A virtual register index.
pub(crate) type Reg = u16;

/// First register index used for in-block temporaries; indices below
/// mirror stack slots at block boundaries.
pub(crate) const TEMP_BASE: usize = MAX_STACK;

/// Unary-operator selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum UnSel {
    Neg,
    Abs,
    Not,
}

impl UnSel {
    /// Applies the operator exactly as the oracle interpreter does.
    #[inline]
    pub(crate) fn apply(self, a: f64) -> f64 {
        match self {
            UnSel::Neg => -a,
            UnSel::Abs => a.abs(),
            UnSel::Not => f64::from(a == 0.0),
        }
    }
}

/// One lowered instruction. Every step costs exactly one gas.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum Step {
    /// `dst = k` (a `push`).
    Const { dst: Reg, k: f64 },
    /// `dst = a ⊙ b` for a pure binary op.
    Bin {
        sel: BinSel,
        dst: Reg,
        a: Reg,
        b: Reg,
    },
    /// `dst = a / b`, trapping on `b == 0.0`.
    Div { dst: Reg, a: Reg, b: Reg },
    /// `dst = ⊙a` for a pure unary op.
    Un { sel: UnSel, dst: Reg, a: Reg },
    /// `dst = vars[var]`.
    LoadVar { dst: Reg, var: u8 },
    /// `vars[var] = src`.
    StoreVar { var: u8, src: Reg },
    /// `dst = env.read_sensor(port)?`.
    ReadSensor { dst: Reg, port: u8 },
    /// `env.write_actuator(port, src)?`.
    WriteActuator { port: u8, src: Reg },
    /// `env.emit(ch, src)`.
    Emit { ch: u8, src: Reg },
    /// `dst = env.clock_s()`.
    ReadClock { dst: Reg },
    /// `dst = env.battery_fraction()`.
    ReadBattery { dst: Reg },
    /// `dst = env.role_code()`.
    ReadRole { dst: Reg },
    /// A pure stack shuffle or `nop`: charges gas, moves no data.
    Gas,
}

/// How a [`Term::Trap`] interacts with the gas meter, mirroring the
/// oracle's check/charge order at the faulting op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum TrapMode {
    /// An op-level trap: gas is checked (`OutOfGas` wins), then charged,
    /// then the error is raised.
    Op,
    /// A fetch failure (falling off the end): gas is checked but not
    /// charged.
    Fetch,
    /// Immediate: the branching op already checked and charged.
    Now,
}

/// Block terminator. `Goto { charge: true }` and `Jz` cost one gas
/// (they are a `jmp`/`jz`); a fall-through `Goto` is free.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum Term {
    /// Unconditional transfer.
    Goto { block: usize, charge: bool },
    /// `jz`: branch to `z` when `cond == 0.0`, else `nz`.
    Jz { cond: Reg, z: usize, nz: usize },
    /// `halt`/top-level `ret`: result is the top of stack, if any.
    Halt { result: Option<Reg> },
    /// A statically known trap.
    Trap { err: VmError, mode: TrapMode },
}

/// One basic block. On entry, the abstract stack's values sit in
/// registers `0..depth` (canonical slots); the predecessor's exit
/// moves put them there.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Block {
    /// The 1:1 lowered steps.
    pub steps: Vec<Step>,
    /// Sequentialized (cycle-free) copies materializing the abstract
    /// stack into canonical slots for the successor. Zero gas. The
    /// runner must read `Jz`'s `cond` *before* applying these — a move
    /// may overwrite the register `cond` aliases.
    pub exit_moves: Vec<(Reg, Reg)>,
    /// The terminator.
    pub term: Term,
}

/// A lowered program.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct RegProgram {
    /// Basic blocks; entry is block 0, the last two are the off-end and
    /// negative-target trap sinks.
    pub blocks: Vec<Block>,
    /// Register-file size (slots + temporaries + the move scratch).
    pub n_regs: usize,
}

fn trap_block(err: VmError, mode: TrapMode) -> Block {
    Block {
        steps: Vec::new(),
        exit_moves: Vec::new(),
        term: Term::Trap { err, mode },
    }
}

/// Orders a parallel copy (all dsts distinct) into sequential moves,
/// breaking cycles through `scratch`. Returns the move list and whether
/// the scratch register was used.
fn sequentialize(mut pending: Vec<(Reg, Reg)>, scratch: Reg) -> (Vec<(Reg, Reg)>, bool) {
    let mut out = Vec::with_capacity(pending.len());
    let mut used_scratch = false;
    while !pending.is_empty() {
        let free = (0..pending.len()).find(|&i| {
            let d = pending[i].0;
            pending
                .iter()
                .enumerate()
                .all(|(j, &(_, s))| j == i || s != d)
        });
        if let Some(i) = free {
            out.push(pending.swap_remove(i));
        } else {
            // Every pending dst is still read: a cycle. Save one dst,
            // redirect its readers to the scratch, and emit it.
            used_scratch = true;
            let (d, s) = pending.swap_remove(0);
            out.push((scratch, d));
            out.push((d, s));
            for m in &mut pending {
                if m.1 == d {
                    m.1 = scratch;
                }
            }
        }
    }
    (out, used_scratch)
}

/// Lowers a stack program to the register IR; `None` means the program
/// is out of scope (dynamic frames or depth-inconsistent joins) and
/// must run on a lower tier.
#[allow(clippy::too_many_lines)]
pub(crate) fn lower(program: &Program) -> Option<RegProgram> {
    let ops = program.ops();
    let len = ops.len();
    if ops.iter().any(|op| matches!(op, Op::Call(_) | Op::Ext(_))) {
        return None;
    }
    if len == 0 {
        // Immediate fetch failure at pc 0.
        return Some(RegProgram {
            blocks: vec![trap_block(VmError::PcOutOfRange, TrapMode::Fetch)],
            n_regs: TEMP_BASE,
        });
    }

    // Leaders: op 0, every non-negative jump target (clamped to the
    // off-end sink), and the op after any branch or halt.
    let mut leader = vec![false; len + 1];
    leader[0] = true;
    leader[len] = true;
    for (i, op) in ops.iter().enumerate() {
        match *op {
            Op::Jmp(off) | Op::Jz(off) => {
                let t = i as i64 + i64::from(off);
                if t >= 0 {
                    let t = usize::try_from(t).expect("non-negative");
                    leader[t.min(len)] = true;
                }
                leader[i + 1] = true;
            }
            Op::Halt | Op::Ret => leader[i + 1] = true,
            _ => {}
        }
    }
    let starts: Vec<usize> = (0..len).filter(|&i| leader[i]).collect();
    let nb = starts.len();
    let sink_fetch = nb; // falling off the end: gas check, no charge
    let sink_now = nb + 1; // negative jz target: already charged
    let mut block_of = vec![0usize; len + 1];
    for (b, &s) in starts.iter().enumerate() {
        let e = starts.get(b + 1).copied().unwrap_or(len);
        for slot in &mut block_of[s..e] {
            *slot = b;
        }
    }
    block_of[len] = sink_fetch;

    let mut blocks: Vec<Option<Block>> = vec![None; nb];
    let mut entry_depths: Vec<Option<usize>> = vec![None; nb];
    entry_depths[0] = Some(0);
    let mut work = vec![0usize];
    let mut n_regs = TEMP_BASE + 1;

    while let Some(b) = work.pop() {
        if blocks[b].is_some() {
            continue;
        }
        let depth = entry_depths[b].expect("scheduled with a depth");
        let start = starts[b];
        let end = starts.get(b + 1).copied().unwrap_or(len);

        // Abstract stack: which register holds each stack position.
        // Shuffles rename; values are written once per block.
        let mut refs: Vec<Reg> = (0..depth).map(|i| i as Reg).collect();
        let mut next_temp = TEMP_BASE as Reg;
        let mut steps: Vec<Step> = Vec::with_capacity(end - start);
        let mut term: Option<Term> = None;

        macro_rules! trap {
            ($err:expr) => {{
                term = Some(Term::Trap {
                    err: $err,
                    mode: TrapMode::Op,
                });
                break;
            }};
        }
        macro_rules! temp {
            () => {{
                let t = next_temp;
                next_temp += 1;
                t
            }};
        }

        for i in start..end {
            let op = ops[i];
            match op {
                Op::Push(k) => {
                    if refs.len() >= MAX_STACK {
                        trap!(VmError::StackOverflow);
                    }
                    let dst = temp!();
                    steps.push(Step::Const { dst, k });
                    refs.push(dst);
                }
                Op::Dup => {
                    let Some(&top) = refs.last() else {
                        trap!(VmError::StackUnderflow);
                    };
                    if refs.len() >= MAX_STACK {
                        trap!(VmError::StackOverflow);
                    }
                    refs.push(top);
                    steps.push(Step::Gas);
                }
                Op::Drop => {
                    if refs.pop().is_none() {
                        trap!(VmError::StackUnderflow);
                    }
                    steps.push(Step::Gas);
                }
                Op::Swap => {
                    let n = refs.len();
                    if n < 2 {
                        trap!(VmError::StackUnderflow);
                    }
                    refs.swap(n - 1, n - 2);
                    steps.push(Step::Gas);
                }
                Op::Over => {
                    let n = refs.len();
                    if n < 2 {
                        trap!(VmError::StackUnderflow);
                    }
                    if n >= MAX_STACK {
                        trap!(VmError::StackOverflow);
                    }
                    refs.push(refs[n - 2]);
                    steps.push(Step::Gas);
                }
                Op::Rot => {
                    let n = refs.len();
                    if n < 3 {
                        trap!(VmError::StackUnderflow);
                    }
                    refs[n - 3..].rotate_left(1);
                    steps.push(Step::Gas);
                }
                Op::Add
                | Op::Sub
                | Op::Mul
                | Op::Min
                | Op::Max
                | Op::Gt
                | Op::Lt
                | Op::Ge
                | Op::Le
                | Op::Eq => {
                    if refs.len() < 2 {
                        trap!(VmError::StackUnderflow);
                    }
                    let rb = refs.pop().expect("checked");
                    let ra = refs.pop().expect("checked");
                    let dst = temp!();
                    steps.push(Step::Bin {
                        sel: BinSel::of(op).expect("binary op"),
                        dst,
                        a: ra,
                        b: rb,
                    });
                    refs.push(dst);
                }
                Op::Div => {
                    if refs.len() < 2 {
                        trap!(VmError::StackUnderflow);
                    }
                    let rb = refs.pop().expect("checked");
                    let ra = refs.pop().expect("checked");
                    let dst = temp!();
                    steps.push(Step::Div { dst, a: ra, b: rb });
                    refs.push(dst);
                }
                Op::Neg | Op::Abs | Op::Not => {
                    let Some(a) = refs.pop() else {
                        trap!(VmError::StackUnderflow);
                    };
                    let sel = match op {
                        Op::Neg => UnSel::Neg,
                        Op::Abs => UnSel::Abs,
                        _ => UnSel::Not,
                    };
                    let dst = temp!();
                    steps.push(Step::Un { sel, dst, a });
                    refs.push(dst);
                }
                Op::Load(v) => {
                    if v as usize >= N_VARS {
                        trap!(VmError::BadVariable);
                    }
                    if refs.len() >= MAX_STACK {
                        trap!(VmError::StackOverflow);
                    }
                    let dst = temp!();
                    steps.push(Step::LoadVar { dst, var: v });
                    refs.push(dst);
                }
                Op::Store(v) => {
                    if v as usize >= N_VARS {
                        trap!(VmError::BadVariable);
                    }
                    let Some(src) = refs.pop() else {
                        trap!(VmError::StackUnderflow);
                    };
                    steps.push(Step::StoreVar { var: v, src });
                }
                Op::Jmp(off) => {
                    let t = i as i64 + i64::from(off);
                    term = Some(if t < 0 {
                        Term::Trap {
                            err: VmError::PcOutOfRange,
                            mode: TrapMode::Op,
                        }
                    } else {
                        let t = usize::try_from(t).expect("non-negative");
                        Term::Goto {
                            block: block_of[t.min(len)],
                            charge: true,
                        }
                    });
                    break;
                }
                Op::Jz(off) => {
                    let Some(cond) = refs.pop() else {
                        trap!(VmError::StackUnderflow);
                    };
                    let t = i as i64 + i64::from(off);
                    let z = if t < 0 {
                        sink_now
                    } else {
                        let t = usize::try_from(t).expect("non-negative");
                        block_of[t.min(len)]
                    };
                    term = Some(Term::Jz {
                        cond,
                        z,
                        nz: block_of[i + 1],
                    });
                    break;
                }
                Op::Ret | Op::Halt => {
                    // With no dynamic frames `ret` is a halt.
                    term = Some(Term::Halt {
                        result: refs.last().copied(),
                    });
                    break;
                }
                Op::ReadSensor(p) => {
                    if refs.len() >= MAX_STACK {
                        trap!(VmError::StackOverflow);
                    }
                    let dst = temp!();
                    steps.push(Step::ReadSensor { dst, port: p });
                    refs.push(dst);
                }
                Op::WriteActuator(p) => {
                    let Some(src) = refs.pop() else {
                        trap!(VmError::StackUnderflow);
                    };
                    steps.push(Step::WriteActuator { port: p, src });
                }
                Op::Emit(ch) => {
                    let Some(src) = refs.pop() else {
                        trap!(VmError::StackUnderflow);
                    };
                    steps.push(Step::Emit { ch, src });
                }
                Op::ReadClock | Op::ReadBattery | Op::ReadRole => {
                    if refs.len() >= MAX_STACK {
                        trap!(VmError::StackOverflow);
                    }
                    let dst = temp!();
                    steps.push(match op {
                        Op::ReadClock => Step::ReadClock { dst },
                        Op::ReadBattery => Step::ReadBattery { dst },
                        _ => Step::ReadRole { dst },
                    });
                    refs.push(dst);
                }
                Op::Nop => steps.push(Step::Gas),
                Op::Call(_) | Op::Ext(_) => unreachable!("rejected above"),
            }
        }

        let term = term.unwrap_or(Term::Goto {
            block: block_of[end],
            charge: false,
        });

        // Propagate the exit depth to real successors; a depth mismatch
        // at a join means the IR's fixed-slot convention cannot hold.
        let exit_depth = refs.len();
        let mut succs: Vec<usize> = Vec::new();
        match term {
            Term::Goto { block, .. } => succs.push(block),
            Term::Jz { z, nz, .. } => {
                succs.push(z);
                succs.push(nz);
            }
            Term::Halt { .. } | Term::Trap { .. } => {}
        }
        for s in succs {
            if s >= nb {
                continue; // trap sinks carry no stack
            }
            match entry_depths[s] {
                None => {
                    entry_depths[s] = Some(exit_depth);
                    work.push(s);
                }
                Some(d) if d == exit_depth => {}
                Some(_) => return None,
            }
        }

        // Materialize the abstract stack into canonical slots for the
        // successor (skipped for halts/traps: nothing reads it).
        let exit_moves = if matches!(term, Term::Goto { .. } | Term::Jz { .. }) {
            let parallel: Vec<(Reg, Reg)> = refs
                .iter()
                .enumerate()
                .filter(|&(slot, &r)| r != slot as Reg)
                .map(|(slot, &r)| (slot as Reg, r))
                .collect();
            let (seq, used_scratch) = sequentialize(parallel, next_temp);
            if used_scratch {
                next_temp += 1;
            }
            seq
        } else {
            Vec::new()
        };

        n_regs = n_regs.max(next_temp as usize);
        blocks[b] = Some(Block {
            steps,
            exit_moves,
            term,
        });
    }

    let mut blocks: Vec<Block> = blocks
        .into_iter()
        .map(|b| {
            // Unreached blocks are dead; an inert trap keeps indices stable.
            b.unwrap_or_else(|| trap_block(VmError::PcOutOfRange, TrapMode::Fetch))
        })
        .collect();
    blocks.push(trap_block(VmError::PcOutOfRange, TrapMode::Fetch));
    blocks.push(trap_block(VmError::PcOutOfRange, TrapMode::Now));

    Some(RegProgram { blocks, n_regs })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn straight_line_lowers_to_one_block() {
        let p = Program::new(vec![Op::Push(2.0), Op::Push(3.0), Op::Add, Op::Halt]);
        let ir = lower(&p).expect("lowers");
        // One real block + two sinks.
        assert_eq!(ir.blocks.len(), 3);
        assert_eq!(ir.blocks[0].steps.len(), 3);
        assert!(matches!(ir.blocks[0].term, Term::Halt { result: Some(_) }));
    }

    #[test]
    fn call_and_ext_bail_out() {
        assert!(lower(&Program::new(vec![Op::Call(0)])).is_none());
        assert!(lower(&Program::new(vec![Op::Ext(1), Op::Halt])).is_none());
    }

    #[test]
    fn depth_mismatch_at_join_bails_out() {
        // jz 2 ·  push 1 · halt — the fall-through path reaches `halt`
        // at depth 0 via the jz edge... construct a real mismatch:
        //   0: push 0      (depth 1)
        //   1: jz +2       (branches to 3 at depth 0)
        //   2: push 1      (depth 1, falls through to 3)
        //   3: halt        (reached at depths 0 and 1)
        let p = Program::new(vec![Op::Push(0.0), Op::Jz(2), Op::Push(1.0), Op::Halt]);
        assert!(lower(&p).is_none());
    }

    #[test]
    fn loop_lowers_with_consistent_depths() {
        let p = Program::new(vec![
            Op::Push(5.0),
            Op::Store(0),
            Op::Load(0),
            Op::Jz(6),
            Op::Load(0),
            Op::Push(1.0),
            Op::Sub,
            Op::Store(0),
            Op::Jmp(-6),
            Op::Load(0),
            Op::Halt,
        ]);
        assert!(lower(&p).is_some());
    }

    #[test]
    fn static_traps_preserve_error_kind() {
        let ir = lower(&Program::new(vec![Op::Load(200)])).expect("lowers");
        assert!(matches!(
            ir.blocks[0].term,
            Term::Trap {
                err: VmError::BadVariable,
                mode: TrapMode::Op
            }
        ));
    }

    #[test]
    fn sequentialize_breaks_swap_cycle() {
        // Parallel {0←1, 1←0} needs the scratch.
        let (seq, used) = sequentialize(vec![(0, 1), (1, 0)], 99);
        assert!(used);
        // Simulate on a tiny file.
        let mut regs = [10.0, 20.0, 0.0];
        let slot = |r: Reg| if r == 99 { 2 } else { r as usize };
        for (d, s) in seq {
            regs[slot(d)] = regs[slot(s)];
        }
        assert_eq!(regs[0], 20.0);
        assert_eq!(regs[1], 10.0);
    }
}
