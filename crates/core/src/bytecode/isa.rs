//! Instruction set and byte encoding.

use std::fmt;

/// One EVM instruction.
///
/// Cells are `f64`: the paper's controllers compute real-valued control
/// laws, and carrying the arithmetic in floating point keeps the capsule
/// bit-identical to the reference implementation (the fixed-point variant
/// an 8-bit AVR would use differs only in scaling).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Op {
    // --- stack ---------------------------------------------------------
    /// Push a literal.
    Push(f64),
    /// Duplicate the top of stack.
    Dup,
    /// Discard the top of stack.
    Drop,
    /// Swap the top two cells.
    Swap,
    /// Copy the second cell to the top.
    Over,
    /// Rotate the top three cells (3rd to top).
    Rot,

    // --- arithmetic ----------------------------------------------------
    /// `a b -- a+b`
    Add,
    /// `a b -- a-b`
    Sub,
    /// `a b -- a*b`
    Mul,
    /// `a b -- a/b` (division by zero is a trap).
    Div,
    /// `a -- -a`
    Neg,
    /// `a -- |a|`
    Abs,
    /// `a b -- min(a,b)`
    Min,
    /// `a b -- max(a,b)`
    Max,

    // --- comparison (1.0 = true, 0.0 = false) --------------------------
    /// `a b -- (a>b)`
    Gt,
    /// `a b -- (a<b)`
    Lt,
    /// `a b -- (a>=b)`
    Ge,
    /// `a b -- (a<=b)`
    Le,
    /// `a b -- (a==b)`
    Eq,
    /// `a -- !a` (0.0 -> 1.0, else 0.0)
    Not,

    // --- task-local memory ----------------------------------------------
    /// Push variable `n`.
    Load(u8),
    /// Pop into variable `n`.
    Store(u8),

    // --- control flow ----------------------------------------------------
    /// Unconditional relative jump (operand added to pc after fetch).
    Jmp(i16),
    /// Pop; jump if zero.
    Jz(i16),
    /// Call absolute address (pushes return address).
    Call(u16),
    /// Return from call.
    Ret,
    /// Stop execution successfully.
    Halt,

    // --- node and component I/O -----------------------------------------
    /// Push the value of sensor input `port`.
    ReadSensor(u8),
    /// Pop and write to actuator output `port`.
    WriteActuator(u8),
    /// Pop and publish on Virtual-Component data channel `ch` (how
    /// primaries expose outputs to passive observers).
    Emit(u8),
    /// Push the node clock, seconds.
    ReadClock,
    /// Push remaining battery fraction.
    ReadBattery,
    /// Push the node's controller mode as a small integer.
    ReadRole,

    // --- extensibility ----------------------------------------------------
    /// Invoke runtime-registered word `n` (the EVM's "instruction set is
    /// extensible at runtime", §3.1).
    Ext(u8),
    /// No operation.
    Nop,
}

/// A sequence of instructions plus its byte encoding.
///
/// Programs are immutable after construction and carry a
/// construction-unique cache id, so the tiered VM can recognize "same
/// program as last run" in O(1) instead of re-comparing the whole
/// instruction list on every capsule invocation. Equality (and the wire
/// encoding) ignore the id: two programs with the same instructions are
/// equal, and clones share their original's id.
#[derive(Debug, Clone)]
pub struct Program {
    ops: Vec<Op>,
    id: u64,
}

impl PartialEq for Program {
    fn eq(&self, other: &Self) -> bool {
        self.ops == other.ops
    }
}

impl Default for Program {
    fn default() -> Self {
        Program::new(Vec::new())
    }
}

/// Next [`Program::cache_id`]; 0 is never issued, so it can mean
/// "no program cached yet".
static NEXT_PROGRAM_ID: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);

impl Program {
    /// Creates a program from instructions.
    #[must_use]
    pub fn new(ops: Vec<Op>) -> Self {
        let id = NEXT_PROGRAM_ID.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        Program { ops, id }
    }

    /// The construction-unique id: equal ids imply equal instructions
    /// (programs are immutable), but equal instructions built separately
    /// get distinct ids. A cache key, not part of program identity.
    #[must_use]
    pub(crate) fn cache_id(&self) -> u64 {
        self.id
    }

    /// The instructions.
    #[must_use]
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Number of instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `true` if the program has no instructions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Serializes to the wire format (what migration actually moves).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_len());
        for op in &self.ops {
            encode_op(op, &mut out);
        }
        out
    }

    /// Wire-format length in bytes, without building the encoding.
    /// Callers that only need the size (image sizing, per-chunk length
    /// math in the transfer hot loop) must not pay an allocation per
    /// query.
    #[must_use]
    pub fn encoded_len(&self) -> usize {
        self.ops.iter().map(encoded_op_len).sum()
    }

    /// Parses the wire format back into a program.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed instruction.
    pub fn decode(bytes: &[u8]) -> Result<Program, String> {
        let mut ops = Vec::new();
        let mut i = 0usize;
        while i < bytes.len() {
            let (op, used) = decode_op(&bytes[i..]).map_err(|e| format!("at byte {i}: {e}"))?;
            ops.push(op);
            i += used;
        }
        Ok(Program::new(ops))
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Op::Push(v) => write!(f, "push {v}"),
            Op::Dup => write!(f, "dup"),
            Op::Drop => write!(f, "drop"),
            Op::Swap => write!(f, "swap"),
            Op::Over => write!(f, "over"),
            Op::Rot => write!(f, "rot"),
            Op::Add => write!(f, "add"),
            Op::Sub => write!(f, "sub"),
            Op::Mul => write!(f, "mul"),
            Op::Div => write!(f, "div"),
            Op::Neg => write!(f, "neg"),
            Op::Abs => write!(f, "abs"),
            Op::Min => write!(f, "min"),
            Op::Max => write!(f, "max"),
            Op::Gt => write!(f, "gt"),
            Op::Lt => write!(f, "lt"),
            Op::Ge => write!(f, "ge"),
            Op::Le => write!(f, "le"),
            Op::Eq => write!(f, "eq"),
            Op::Not => write!(f, "not"),
            Op::Load(n) => write!(f, "load {n}"),
            Op::Store(n) => write!(f, "store {n}"),
            Op::Jmp(o) => write!(f, "jmp {o}"),
            Op::Jz(o) => write!(f, "jz {o}"),
            Op::Call(a) => write!(f, "call {a}"),
            Op::Ret => write!(f, "ret"),
            Op::Halt => write!(f, "halt"),
            Op::ReadSensor(p) => write!(f, "rdsens {p}"),
            Op::WriteActuator(p) => write!(f, "wract {p}"),
            Op::Emit(c) => write!(f, "emit {c}"),
            Op::ReadClock => write!(f, "rdclk"),
            Op::ReadBattery => write!(f, "rdbat"),
            Op::ReadRole => write!(f, "rdrole"),
            Op::Ext(n) => write!(f, "ext {n}"),
            Op::Nop => write!(f, "nop"),
        }
    }
}

fn encode_op(op: &Op, out: &mut Vec<u8>) {
    match *op {
        Op::Push(v) => {
            out.push(0x01);
            out.extend_from_slice(&v.to_le_bytes());
        }
        Op::Dup => out.push(0x02),
        Op::Drop => out.push(0x03),
        Op::Swap => out.push(0x04),
        Op::Over => out.push(0x05),
        Op::Rot => out.push(0x06),
        Op::Add => out.push(0x10),
        Op::Sub => out.push(0x11),
        Op::Mul => out.push(0x12),
        Op::Div => out.push(0x13),
        Op::Neg => out.push(0x14),
        Op::Abs => out.push(0x15),
        Op::Min => out.push(0x16),
        Op::Max => out.push(0x17),
        Op::Gt => out.push(0x20),
        Op::Lt => out.push(0x21),
        Op::Ge => out.push(0x22),
        Op::Le => out.push(0x23),
        Op::Eq => out.push(0x24),
        Op::Not => out.push(0x25),
        Op::Load(n) => {
            out.push(0x30);
            out.push(n);
        }
        Op::Store(n) => {
            out.push(0x31);
            out.push(n);
        }
        Op::Jmp(o) => {
            out.push(0x40);
            out.extend_from_slice(&o.to_le_bytes());
        }
        Op::Jz(o) => {
            out.push(0x41);
            out.extend_from_slice(&o.to_le_bytes());
        }
        Op::Call(a) => {
            out.push(0x42);
            out.extend_from_slice(&a.to_le_bytes());
        }
        Op::Ret => out.push(0x43),
        Op::Halt => out.push(0x44),
        Op::ReadSensor(p) => {
            out.push(0x50);
            out.push(p);
        }
        Op::WriteActuator(p) => {
            out.push(0x51);
            out.push(p);
        }
        Op::Emit(c) => {
            out.push(0x52);
            out.push(c);
        }
        Op::ReadClock => out.push(0x53),
        Op::ReadBattery => out.push(0x54),
        Op::ReadRole => out.push(0x55),
        Op::Ext(n) => {
            out.push(0x60);
            out.push(n);
        }
        Op::Nop => out.push(0x00),
    }
}

/// Encoded size of one instruction: opcode byte plus its operand, if
/// any. Must stay in lockstep with [`encode_op`] — pinned by the
/// `encoded_len_matches_encoding` test below.
fn encoded_op_len(op: &Op) -> usize {
    match *op {
        Op::Push(_) => 9,
        Op::Jmp(_) | Op::Jz(_) | Op::Call(_) => 3,
        Op::Load(_)
        | Op::Store(_)
        | Op::ReadSensor(_)
        | Op::WriteActuator(_)
        | Op::Emit(_)
        | Op::Ext(_) => 2,
        _ => 1,
    }
}

fn decode_op(bytes: &[u8]) -> Result<(Op, usize), String> {
    let opcode = *bytes.first().ok_or("empty input")?;
    let need = |n: usize| -> Result<&[u8], String> {
        bytes
            .get(1..1 + n)
            .ok_or_else(|| format!("truncated operand for opcode {opcode:#x}"))
    };
    let op = match opcode {
        0x00 => (Op::Nop, 1),
        0x01 => {
            let b = need(8)?;
            (
                Op::Push(f64::from_le_bytes(b.try_into().expect("8 bytes"))),
                9,
            )
        }
        0x02 => (Op::Dup, 1),
        0x03 => (Op::Drop, 1),
        0x04 => (Op::Swap, 1),
        0x05 => (Op::Over, 1),
        0x06 => (Op::Rot, 1),
        0x10 => (Op::Add, 1),
        0x11 => (Op::Sub, 1),
        0x12 => (Op::Mul, 1),
        0x13 => (Op::Div, 1),
        0x14 => (Op::Neg, 1),
        0x15 => (Op::Abs, 1),
        0x16 => (Op::Min, 1),
        0x17 => (Op::Max, 1),
        0x20 => (Op::Gt, 1),
        0x21 => (Op::Lt, 1),
        0x22 => (Op::Ge, 1),
        0x23 => (Op::Le, 1),
        0x24 => (Op::Eq, 1),
        0x25 => (Op::Not, 1),
        0x30 => (Op::Load(need(1)?[0]), 2),
        0x31 => (Op::Store(need(1)?[0]), 2),
        0x40 => {
            let b = need(2)?;
            (
                Op::Jmp(i16::from_le_bytes(b.try_into().expect("2 bytes"))),
                3,
            )
        }
        0x41 => {
            let b = need(2)?;
            (
                Op::Jz(i16::from_le_bytes(b.try_into().expect("2 bytes"))),
                3,
            )
        }
        0x42 => {
            let b = need(2)?;
            (
                Op::Call(u16::from_le_bytes(b.try_into().expect("2 bytes"))),
                3,
            )
        }
        0x43 => (Op::Ret, 1),
        0x44 => (Op::Halt, 1),
        0x50 => (Op::ReadSensor(need(1)?[0]), 2),
        0x51 => (Op::WriteActuator(need(1)?[0]), 2),
        0x52 => (Op::Emit(need(1)?[0]), 2),
        0x53 => (Op::ReadClock, 1),
        0x54 => (Op::ReadBattery, 1),
        0x55 => (Op::ReadRole, 1),
        0x60 => (Op::Ext(need(1)?[0]), 2),
        other => return Err(format!("unknown opcode {other:#x}")),
    };
    Ok(op)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_ops() -> Vec<Op> {
        vec![
            Op::Push(11.48),
            Op::Dup,
            Op::Load(3),
            Op::Add,
            Op::Store(3),
            Op::Jz(-4),
            Op::Call(12),
            Op::ReadSensor(0),
            Op::WriteActuator(1),
            Op::Emit(2),
            Op::Ext(7),
            Op::Halt,
        ]
    }

    #[test]
    fn encoded_len_matches_encoding() {
        let p = Program::new(sample_ops());
        assert_eq!(p.encoded_len(), p.encode().len());
        for op in p.ops() {
            let mut bytes = Vec::new();
            encode_op(op, &mut bytes);
            assert_eq!(encoded_op_len(op), bytes.len(), "op {op}");
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let p = Program::new(sample_ops());
        let bytes = p.encode();
        let q = Program::decode(&bytes).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(Program::decode(&[0xFF]).is_err());
        // Truncated push.
        assert!(Program::decode(&[0x01, 1, 2, 3]).is_err());
    }

    #[test]
    fn display_is_assembly_like() {
        assert_eq!(Op::Push(2.0).to_string(), "push 2");
        assert_eq!(Op::ReadSensor(0).to_string(), "rdsens 0");
        assert_eq!(Op::Jz(-4).to_string(), "jz -4");
    }

    #[test]
    fn roundtrip_random_programs() {
        use evm_sim::SimRng;
        let mut rng = SimRng::seed_from(0x15A);
        for _ in 0..256 {
            let n = rng.index(50);
            let mut ops = Vec::new();
            for i in 0..n {
                ops.push(Op::Push(rng.range(-1e6, 1e6)));
                ops.push(match i % 5 {
                    0 => Op::Add,
                    1 => Op::Store((i % 32) as u8),
                    2 => Op::Jmp(i as i16 - 25),
                    3 => Op::Ext(i as u8),
                    _ => Op::Halt,
                });
            }
            let p = Program::new(ops);
            assert_eq!(Program::decode(&p.encode()).unwrap(), p);
        }
    }
}
