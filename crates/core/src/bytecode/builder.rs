//! Control-law → bytecode compiler.
//!
//! Takes the same loop definition the wired plant uses
//! ([`evm_plant::ControlLoopSpec`]-shaped data) and emits an EVM capsule
//! program computing **exactly** the same arithmetic: second-order filter,
//! then PI with clamping anti-windup. Equivalence against the native
//! implementation is asserted by tests — the paper's premise is that the
//! *same* control law runs on whichever physical node currently hosts the
//! task.

use evm_plant::PidParams;

use super::asm::assemble;
use super::isa::Program;

/// Everything needed to compile one control loop into bytecode.
#[derive(Debug, Clone, PartialEq)]
pub struct ControlLawSpec {
    /// PID tuning (only P and I act; derivative is not used by the plant's
    /// loops).
    pub pid: PidParams,
    /// Second-order filter per-stage time constant, seconds.
    pub filter_tau_s: f64,
    /// Setpoint in PV units.
    pub setpoint: f64,
    /// Control period, seconds (baked into the integral step).
    pub period_s: f64,
    /// Integrator preload for bumpless start.
    pub preload: f64,
}

impl ControlLawSpec {
    /// Builds the spec from a plant loop definition.
    #[must_use]
    pub fn from_loop(spec: &evm_plant::ControlLoopSpec) -> Self {
        ControlLawSpec {
            pid: spec.pid,
            filter_tau_s: spec.filter_tau_s,
            setpoint: spec.setpoint,
            period_s: spec.period_s,
            preload: spec.nominal_output,
        }
    }
}

/// Variable map used by compiled control capsules (documented so migration
/// tooling and tests can interpret snapshots):
///
/// | var | meaning |
/// |-----|------------------------|
/// | 0   | initialized flag       |
/// | 1   | filter stage 1         |
/// | 2   | filter stage 2         |
/// | 3   | PID integrator         |
/// | 28  | last output            |
/// | 29  | proportional term      |
/// | 30  | error                  |
/// | 31  | raw PV                 |
pub const VAR_INTEGRATOR: usize = 3;

/// Reads the integrator state out of a compiled control capsule's VM —
/// what a warm-state handoff inspects before migration.
#[must_use]
pub fn integrator_of(vm: &crate::bytecode::Vm) -> f64 {
    vm.var(VAR_INTEGRATOR)
}

/// Compiles the control law to a capsule program.
///
/// Sensor port 0 is the PV; actuator port 0 receives the output; the
/// output is also emitted on data channel 0 (the health-assessment
/// publication backups observe).
///
/// # Panics
///
/// Panics if the generated assembly fails to assemble (a builder bug, not
/// an input error).
#[must_use]
pub fn compile_control_law(spec: &ControlLawSpec) -> Program {
    let dt = spec.period_s;
    let alpha = if spec.filter_tau_s > 0.0 {
        dt / (spec.filter_tau_s + dt)
    } else {
        1.0
    };
    let ki_step = if spec.pid.ti_s > 0.0 {
        spec.pid.kp * dt / spec.pid.ti_s
    } else {
        0.0
    };
    let sign = if spec.pid.reverse { -1.0 } else { 1.0 };
    let preload = spec.preload.clamp(spec.pid.out_min, spec.pid.out_max);

    let src = format!(
        r"
        ; compiled control law: 2nd-order filter + PI (anti-windup clamp)
            rdsens 0
            store 31        ; raw pv
            load 0
            jz do_init
            jmp filter
        do_init:
            load 31
            store 1         ; s1 = pv
            load 31
            store 2         ; s2 = pv
            push 1
            store 0         ; initialized
            push {preload:?}
            store 3         ; integrator preload
        filter:
            ; s1 += alpha * (pv - s1)
            load 31
            load 1
            sub
            push {alpha:?}
            mul
            load 1
            add
            store 1
            ; s2 += alpha * (s1 - s2)
            load 1
            load 2
            sub
            push {alpha:?}
            mul
            load 2
            add
            store 2
            ; error = sign * (s2 - sp)
            load 2
            push {sp:?}
            sub
            push {sign:?}
            mul
            store 30
            ; p = kp * error
            load 30
            push {kp:?}
            mul
            store 29
            ; integral += ki_step * error
            load 3
            load 30
            push {ki_step:?}
            mul
            add
            store 3
            ; clamp integral to [out_min - p, out_max - p]
            load 3
            push {omin:?}
            load 29
            sub
            max
            push {omax:?}
            load 29
            sub
            min
            store 3
            ; out = clamp(p + integral, out_min, out_max)
            load 29
            load 3
            add
            push {omin:?}
            max
            push {omax:?}
            min
            store 28
            load 28
            wract 0
            load 28
            emit 0
            load 28
            halt
        ",
        preload = preload,
        alpha = alpha,
        sp = spec.setpoint,
        sign = sign,
        kp = spec.pid.kp,
        ki_step = ki_step,
        omin = spec.pid.out_min,
        omax = spec.pid.out_max,
    );
    assemble(&src).expect("builder emits valid assembly")
}

/// A conservative per-invocation gas budget for a compiled control law.
///
/// The budget is **tier-independent**: gas is defined on the stack
/// bytecode (1 unit per fetched op), and the optimized tiers preserve
/// that accounting exactly — fused superinstructions charge the sum of
/// their constituents, and compiled blocks charge their source ops'
/// gas even when dead code was eliminated. A budget that admits the
/// capsule on [`Tier::Interp`](crate::bytecode::Tier) therefore admits
/// it, with identical `gas_used`, on every tier (enforced by
/// `tests/tier_differential.rs::gas_budget_is_tier_independent`).
#[must_use]
pub fn control_law_gas_budget(program: &Program) -> u64 {
    // Straight-line code: every instruction executes at most once, plus
    // slack for the init path.
    program.len() as u64 + 16
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bytecode::{NullEnv, Vm};
    use evm_plant::{lts_level_loop, LocalController};

    fn lts_spec() -> ControlLawSpec {
        ControlLawSpec::from_loop(&lts_level_loop())
    }

    /// The core promise: capsule output == native controller output, for a
    /// long, varied PV trajectory.
    #[test]
    fn capsule_matches_native_controller() {
        let spec = lts_spec();
        let program = compile_control_law(&spec);
        let mut vm = Vm::new(control_law_gas_budget(&program));
        let mut native = LocalController::new(lts_level_loop());

        let dt = spec.period_s;
        for k in 0..5_000 {
            // A PV trajectory with drift, steps and ripple.
            let t = k as f64 * dt;
            let pv = 50.0
                + 10.0 * (t / 120.0).sin()
                + if t > 300.0 { -20.0 } else { 0.0 }
                + 0.3 * (t * 2.1).sin();
            let mut env = NullEnv {
                sensor_value: pv,
                ..NullEnv::default()
            };
            let vm_out = vm.run(&program, &mut env).unwrap();
            let native_out = native.compute(pv, dt);
            assert!(
                (vm_out - native_out).abs() < 1e-9,
                "step {k}: vm {vm_out} native {native_out}"
            );
            assert_eq!(env.writes.len(), 1, "one actuator write per cycle");
            assert_eq!(env.emissions.len(), 1, "one health emission per cycle");
        }
    }

    #[test]
    fn first_invocation_is_bumpless() {
        let spec = lts_spec();
        let program = compile_control_law(&spec);
        let mut vm = Vm::new(control_law_gas_budget(&program));
        let mut env = NullEnv {
            sensor_value: spec.setpoint, // at setpoint
            ..NullEnv::default()
        };
        let out = vm.run(&program, &mut env).unwrap();
        assert!(
            (out - spec.preload).abs() < 1e-9,
            "bumpless start: {out} vs {}",
            spec.preload
        );
    }

    #[test]
    fn integrator_state_is_migratable() {
        // Run one VM for a while, snapshot its vars, restore into a fresh
        // VM, and check the two produce identical future outputs — this is
        // exactly what task migration does with the TCB data section.
        let spec = lts_spec();
        let program = compile_control_law(&spec);
        let mut vm_a = Vm::new(control_law_gas_budget(&program));
        for k in 0..500 {
            let mut env = NullEnv {
                sensor_value: 50.0 + (k as f64 * 0.1).sin() * 5.0,
                ..NullEnv::default()
            };
            vm_a.run(&program, &mut env).unwrap();
        }
        let snapshot = vm_a.snapshot_vars();
        let mut vm_b = Vm::new(control_law_gas_budget(&program));
        vm_b.restore_vars(snapshot);
        for k in 0..200 {
            let pv = 48.0 + (k as f64 * 0.3).cos() * 3.0;
            let mut env_a = NullEnv {
                sensor_value: pv,
                ..NullEnv::default()
            };
            let mut env_b = env_a.clone();
            let a = vm_a.run(&program, &mut env_a).unwrap();
            let b = vm_b.run(&program, &mut env_b).unwrap();
            assert_eq!(a.to_bits(), b.to_bits(), "step {k}");
        }
    }

    #[test]
    fn gas_budget_suffices() {
        let spec = lts_spec();
        let program = compile_control_law(&spec);
        let mut vm = Vm::new(control_law_gas_budget(&program));
        let mut env = NullEnv {
            sensor_value: 42.0,
            ..NullEnv::default()
        };
        vm.run(&program, &mut env).unwrap();
        assert!(vm.gas_used() <= control_law_gas_budget(&program));
        // And the budget is not absurdly loose.
        assert!(vm.gas_used() * 3 > control_law_gas_budget(&program));
    }

    #[test]
    fn reverse_acting_law_flips_sign() {
        let mut spec = lts_spec();
        spec.pid.reverse = true;
        spec.pid.ti_s = 0.0; // pure P for a clean check
        spec.preload = 0.0;
        spec.pid.out_min = -100.0;
        let program = compile_control_law(&spec);
        let mut vm = Vm::new(control_law_gas_budget(&program));
        let mut env = NullEnv {
            sensor_value: spec.setpoint + 10.0,
            ..NullEnv::default()
        };
        let out = vm.run(&program, &mut env).unwrap();
        assert!(out < 0.0, "reverse acting must push down: {out}");
    }
}
