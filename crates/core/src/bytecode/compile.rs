//! Tier 3: the compiled closure-chain fast path.
//!
//! [`compile`] lowers a stack [`Program`] through the register IR
//! ([`super::regir`]) and emits, per basic block, a chain of boxed Rust
//! closures executed back-to-back without a dispatch loop. Emission
//! optimizes within each block — constant folding, load/store
//! forwarding through a per-variable alias map, dead-code elimination,
//! and peepholes that merge an arithmetic op with the store that
//! consumes it into one closure — so the canonical decrement-loop body
//! collapses to a single `vars[v] = vars[v] - k` call.
//!
//! Gas identity with the oracle is kept by a block-granular bargain:
//! the closure chain runs only when the *whole block* (steps + its
//! terminator) is affordable, in which case no per-op gas check can
//! fire and the optimized execution is observationally exact; otherwise
//! the runner falls back to the unoptimized 1:1 [`Step`] list with the
//! oracle's per-op check/charge sequence, reproducing mid-block
//! `OutOfGas` to the gas unit. Dynamic traps (`div` by zero, port
//! faults) carry their in-block gas offset so a fast-path fault reports
//! the same `gas_used` as the oracle.
//!
//! This module also provides [`ModbusCachedEnv`], a [`VmEnv`] over a
//! plant's ModBus register map that inline-caches the tag→register
//! lookups, so steady-state capsule I/O costs one table read instead of
//! a tag scan.

use std::fmt;

use evm_plant::{read_bound, write_bound, BoundRegister, Plant, RegisterMap};

use super::fuse::BinSel;
use super::interp::{VmEnv, VmError, N_VARS};
use super::isa::Program;
use super::regir::{self, Reg, Step, Term, TrapMode, UnSel};

/// An operand resolved at compile time: a register, a task variable
/// read in place, or a folded constant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum Opr {
    /// Read a virtual register.
    Reg(Reg),
    /// Read `vars[v]` directly (forwarded load).
    Var(u8),
    /// A compile-time constant.
    Const(f64),
}

#[inline]
fn rd(o: Opr, regs: &[f64], vars: &[f64; N_VARS]) -> f64 {
    match o {
        Opr::Reg(r) => regs[r as usize],
        Opr::Var(v) => vars[v as usize],
        Opr::Const(k) => k,
    }
}

/// One compiled step: mutates registers/variables/environment, or
/// reports a trap with its gas offset inside the block (source step
/// index + 1, i.e. how much gas the oracle would have charged by the
/// time it faults there).
type StepFn = Box<
    dyn Fn(&mut [f64], &mut [f64; N_VARS], &mut dyn VmEnv) -> Result<(), (VmError, u64)>
        + Send
        + Sync,
>;

/// Block terminator with compile-time-resolved operands.
#[derive(Debug, Clone, Copy, PartialEq)]
enum CTerm {
    Goto { block: usize, charge: bool },
    Jz { cond: Opr, z: usize, nz: usize },
    Halt { result: Option<Opr> },
    Trap { err: VmError, mode: TrapMode },
}

/// A compiled basic block: the optimized closure chain for the fast
/// path and the unoptimized 1:1 steps for the gas-metered path.
struct CBlock {
    /// Raw steps (one gas each) for the metered path.
    steps: Vec<Step>,
    /// The optimized closure chain.
    fast: Vec<StepFn>,
    /// Resolved exit moves (`slot = operand`), applied after the steps
    /// on either path — but after reading `Jz`'s `cond`.
    moves: Vec<(Reg, Opr)>,
    /// Gas charged by the steps (`steps.len()`).
    step_gas: u64,
    /// `step_gas` + the terminator's charge: the affordability bound
    /// that gates the fast path.
    block_gas: u64,
    term: CTerm,
    /// Counted-loop accelerator, present iff this block heads a
    /// self-loop whose body is pure variable arithmetic (see [`Spin`]).
    spin: Option<Spin>,
}

/// The batched counted-loop fast path: when block `h` ends in
/// `Jz { cond: vars[c], nz: b }` with nothing else to do (no surviving
/// closures, no exit moves) and block `b` is pure variable arithmetic
/// that jumps straight back to `h`, the runner executes whole loop
/// rounds in a native loop — one gas add and one condition read per
/// round instead of two block traversals. Exact by the same bargain as
/// the per-block fast path: a round runs only while *fully* affordable
/// (`round_gas` = the oracle's gas for one trip around the loop), so no
/// mid-round check could fire, and the final partial round falls back
/// to the ordinary per-block machinery.
struct Spin {
    /// Oracle gas for one full trip: head block + body block.
    round_gas: u64,
    /// `vars` index the loop continues on (non-zero ⇒ another round).
    cond: usize,
    body: SpinBody,
}

/// The loop body, pre-specialized for the hot shapes.
enum SpinBody {
    /// `vars[d] = vars[a] ⊙ k` — the canonical decrement loop. Keeps
    /// the selector (not a function pointer) so the runner can inline
    /// the hot add/sub cases into a tight native loop.
    BinVK {
        sel: BinSel,
        d: usize,
        a: usize,
        k: f64,
    },
    /// `vars[d] = f(vars[a], vars[b])`.
    BinVV {
        f: fn(f64, f64) -> f64,
        d: usize,
        a: usize,
        b: usize,
    },
    /// Any other pure-variable step list.
    Steps(Vec<VarStep>),
}

/// One var-pure step of a general spin body.
enum VarStep {
    Set {
        d: usize,
        s: VOpr,
    },
    Bin {
        f: fn(f64, f64) -> f64,
        d: usize,
        a: VOpr,
        b: VOpr,
    },
    Un {
        sel: UnSel,
        d: usize,
        a: VOpr,
    },
}

/// A spin operand: a variable or a constant (registers would carry
/// state across blocks, which spin bodies are forbidden to do).
#[derive(Clone, Copy)]
enum VOpr {
    V(usize),
    K(f64),
}

#[inline]
fn vrd(o: VOpr, vars: &[f64; N_VARS]) -> f64 {
    match o {
        VOpr::V(v) => vars[v],
        VOpr::K(k) => k,
    }
}

/// A program compiled to closure chains.
pub(crate) struct CompiledProgram {
    blocks: Vec<CBlock>,
    n_regs: usize,
}

impl fmt::Debug for CompiledProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CompiledProgram")
            .field("blocks", &self.blocks.len())
            .field("n_regs", &self.n_regs)
            .finish()
    }
}

/// Whether `program` lowers to the register IR and closure chain, i.e.
/// runs natively on [`super::Tier::Compiled`] instead of falling back
/// to the fused tier.
#[must_use]
pub fn compiles(program: &Program) -> bool {
    regir::lower(program).is_some()
}

/// Compiles `program`; `None` means the IR lowering bailed out.
pub(crate) fn compile(program: &Program) -> Option<CompiledProgram> {
    let ir = regir::lower(program)?;
    let compiled: Vec<(CBlock, Vec<RStep>)> = ir.blocks.iter().map(compile_block).collect();
    let spins: Vec<Option<Spin>> = (0..compiled.len())
        .map(|h| detect_spin(h, &compiled))
        .collect();
    let mut blocks: Vec<CBlock> = compiled.into_iter().map(|(b, _)| b).collect();
    for (block, spin) in blocks.iter_mut().zip(spins) {
        block.spin = spin;
    }
    Some(CompiledProgram {
        blocks,
        n_regs: ir.n_regs,
    })
}

/// Checks whether block `h` heads a spinnable self-loop (see [`Spin`]).
fn detect_spin(h: usize, blocks: &[(CBlock, Vec<RStep>)]) -> Option<Spin> {
    let (head, _) = &blocks[h];
    let CTerm::Jz {
        cond: Opr::Var(c),
        nz,
        ..
    } = head.term
    else {
        return None;
    };
    // The head must do nothing observable besides the branch: no
    // surviving closures (so no stores, env calls or traps) and no
    // exit moves (so no register state crosses the edge).
    if nz == h || !head.fast.is_empty() || !head.moves.is_empty() {
        return None;
    }
    let (body, body_merged) = blocks.get(nz)?;
    let CTerm::Goto { block: back, .. } = body.term else {
        return None;
    };
    if back != h || !body.moves.is_empty() {
        return None;
    }
    Some(Spin {
        round_gas: head.block_gas + body.block_gas,
        cond: c as usize,
        body: spin_body(body_merged)?,
    })
}

/// Builds the spin body iff every surviving step is pure variable
/// arithmetic: writes go to `vars`, operands are variables or
/// constants, and nothing can trap (`Div` and environment calls
/// survive DCE, so their absence from the merged list proves the raw
/// block is trap-free too).
fn spin_body(merged: &[RStep]) -> Option<SpinBody> {
    let vopr = |o: Opr| match o {
        Opr::Var(v) => Some(VOpr::V(v as usize)),
        Opr::Const(k) => Some(VOpr::K(k)),
        Opr::Reg(_) => None,
    };
    if let [RStep {
        kind:
            RKind::Bin {
                sel,
                dst: Dst::Var(d),
                a,
                b,
            },
        ..
    }] = merged
    {
        match (a, b) {
            (Opr::Var(a), Opr::Const(k)) => {
                return Some(SpinBody::BinVK {
                    sel: *sel,
                    d: *d as usize,
                    a: *a as usize,
                    k: *k,
                })
            }
            (Opr::Var(a), Opr::Var(b)) => {
                return Some(SpinBody::BinVV {
                    f: sel.func(),
                    d: *d as usize,
                    a: *a as usize,
                    b: *b as usize,
                })
            }
            _ => {}
        }
    }
    let mut steps = Vec::with_capacity(merged.len());
    for r in merged {
        steps.push(match r.kind {
            RKind::Set {
                dst: Dst::Var(d),
                src,
            } => VarStep::Set {
                d: d as usize,
                s: vopr(src)?,
            },
            RKind::Bin {
                sel,
                dst: Dst::Var(d),
                a,
                b,
            } => VarStep::Bin {
                f: sel.func(),
                d: d as usize,
                a: vopr(a)?,
                b: vopr(b)?,
            },
            RKind::Un {
                sel,
                dst: Dst::Var(d),
                a,
            } => VarStep::Un {
                sel,
                d: d as usize,
                a: vopr(a)?,
            },
            _ => return None,
        });
    }
    Some(SpinBody::Steps(steps))
}

/// Where a resolved step lands its result.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Dst {
    Reg(Reg),
    Var(u8),
}

/// A resolved, optimizable step retaining its source index for gas
/// offsets.
#[derive(Debug, Clone, Copy, PartialEq)]
struct RStep {
    src_idx: usize,
    kind: RKind,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum RKind {
    Set {
        dst: Dst,
        src: Opr,
    },
    Bin {
        sel: BinSel,
        dst: Dst,
        a: Opr,
        b: Opr,
    },
    Un {
        sel: UnSel,
        dst: Dst,
        a: Opr,
    },
    Div {
        dst: Dst,
        a: Opr,
        b: Opr,
    },
    ReadSensor {
        dst: Dst,
        port: u8,
    },
    WriteActuator {
        port: u8,
        src: Opr,
    },
    Emit {
        ch: u8,
        src: Opr,
    },
    ReadClock {
        dst: Dst,
    },
    ReadBattery {
        dst: Dst,
    },
    ReadRole {
        dst: Dst,
    },
}

impl RKind {
    fn dst_reg(self) -> Option<Reg> {
        let dst = match self {
            RKind::Set { dst, .. }
            | RKind::Bin { dst, .. }
            | RKind::Un { dst, .. }
            | RKind::Div { dst, .. }
            | RKind::ReadSensor { dst, .. }
            | RKind::ReadClock { dst }
            | RKind::ReadBattery { dst }
            | RKind::ReadRole { dst } => dst,
            RKind::WriteActuator { .. } | RKind::Emit { .. } => return None,
        };
        match dst {
            Dst::Reg(r) => Some(r),
            Dst::Var(_) => None,
        }
    }

    /// Steps that must survive DCE regardless of register liveness:
    /// variable stores, environment effects, and trapping ops.
    fn has_effect(self) -> bool {
        match self {
            RKind::Set { dst, .. } | RKind::Bin { dst, .. } | RKind::Un { dst, .. } => {
                matches!(dst, Dst::Var(_))
            }
            RKind::Div { .. }
            | RKind::ReadSensor { .. }
            | RKind::WriteActuator { .. }
            | RKind::Emit { .. }
            | RKind::ReadClock { .. }
            | RKind::ReadBattery { .. }
            | RKind::ReadRole { .. } => true,
        }
    }

    fn operands(self) -> [Option<Opr>; 2] {
        match self {
            RKind::Set { src, .. } | RKind::WriteActuator { src, .. } | RKind::Emit { src, .. } => {
                [Some(src), None]
            }
            RKind::Bin { a, b, .. } | RKind::Div { a, b, .. } => [Some(a), Some(b)],
            RKind::Un { a, .. } => [Some(a), None],
            RKind::ReadSensor { .. }
            | RKind::ReadClock { .. }
            | RKind::ReadBattery { .. }
            | RKind::ReadRole { .. } => [None, None],
        }
    }
}

/// Abstract value of a register during the forward pass.
#[derive(Debug, Clone, Copy, PartialEq)]
enum AVal {
    /// Nothing known: the register's own runtime value.
    Plain,
    /// A folded constant (the defining step was elided).
    Const(f64),
    /// A load of `vars[v]` not yet invalidated by a store to `v`.
    VarAlias(u8),
    /// Same value as another (write-once) register.
    RegAlias(Reg),
}

#[allow(clippy::too_many_lines)]
fn compile_block(block: &regir::Block) -> (CBlock, Vec<RStep>) {
    // ---- forward pass: resolve operands, fold constants, forward
    // variable loads/stores through an alias map ----
    let mut aval: Vec<AVal> = Vec::new();
    let set = |aval: &mut Vec<AVal>, r: Reg, v: AVal| {
        let i = r as usize;
        if aval.len() <= i {
            aval.resize(i + 1, AVal::Plain);
        }
        aval[i] = v;
    };
    let resolve = |aval: &Vec<AVal>, r: Reg| -> Opr {
        match aval.get(r as usize).copied().unwrap_or(AVal::Plain) {
            AVal::Plain => Opr::Reg(r),
            AVal::Const(k) => Opr::Const(k),
            AVal::VarAlias(v) => Opr::Var(v),
            AVal::RegAlias(r2) => Opr::Reg(r2),
        }
    };
    let mut var_known: [Option<Opr>; N_VARS] = [None; N_VARS];
    let mut rsteps: Vec<RStep> = Vec::with_capacity(block.steps.len());

    for (idx, &step) in block.steps.iter().enumerate() {
        let mut push = |kind: RKind| rsteps.push(RStep { src_idx: idx, kind });
        match step {
            Step::Const { dst, k } => set(&mut aval, dst, AVal::Const(k)),
            Step::Bin { sel, dst, a, b } => {
                let (ra, rb) = (resolve(&aval, a), resolve(&aval, b));
                if let (Opr::Const(x), Opr::Const(y)) = (ra, rb) {
                    set(&mut aval, dst, AVal::Const(sel.apply(x, y)));
                } else {
                    push(RKind::Bin {
                        sel,
                        dst: Dst::Reg(dst),
                        a: ra,
                        b: rb,
                    });
                    set(&mut aval, dst, AVal::Plain);
                }
            }
            Step::Un { sel, dst, a } => {
                let ra = resolve(&aval, a);
                if let Opr::Const(x) = ra {
                    set(&mut aval, dst, AVal::Const(sel.apply(x)));
                } else {
                    push(RKind::Un {
                        sel,
                        dst: Dst::Reg(dst),
                        a: ra,
                    });
                    set(&mut aval, dst, AVal::Plain);
                }
            }
            Step::Div { dst, a, b } => {
                // Never folded: `b == 0.0` must trap at runtime.
                push(RKind::Div {
                    dst: Dst::Reg(dst),
                    a: resolve(&aval, a),
                    b: resolve(&aval, b),
                });
                set(&mut aval, dst, AVal::Plain);
            }
            Step::LoadVar { dst, var } => match var_known[var as usize] {
                Some(Opr::Const(k)) => set(&mut aval, dst, AVal::Const(k)),
                Some(Opr::Reg(r)) => set(&mut aval, dst, AVal::RegAlias(r)),
                _ => {
                    set(&mut aval, dst, AVal::VarAlias(var));
                    push(RKind::Set {
                        dst: Dst::Reg(dst),
                        src: Opr::Var(var),
                    });
                }
            },
            Step::StoreVar { var, src } => {
                let o = resolve(&aval, src);
                push(RKind::Set {
                    dst: Dst::Var(var),
                    src: o,
                });
                // Registers aliasing the old value now stand on their
                // own (their defining load stays live if they are used).
                for a in &mut aval {
                    if *a == AVal::VarAlias(var) {
                        *a = AVal::Plain;
                    }
                }
                // Remember the stored value for later loads; a `Var`
                // operand would go stale, so pin it to the register.
                var_known[var as usize] = Some(match o {
                    Opr::Var(_) => Opr::Reg(src),
                    other => other,
                });
            }
            Step::ReadSensor { dst, port } => {
                push(RKind::ReadSensor {
                    dst: Dst::Reg(dst),
                    port,
                });
                set(&mut aval, dst, AVal::Plain);
            }
            Step::WriteActuator { port, src } => push(RKind::WriteActuator {
                port,
                src: resolve(&aval, src),
            }),
            Step::Emit { ch, src } => push(RKind::Emit {
                ch,
                src: resolve(&aval, src),
            }),
            Step::ReadClock { dst } => {
                push(RKind::ReadClock { dst: Dst::Reg(dst) });
                set(&mut aval, dst, AVal::Plain);
            }
            Step::ReadBattery { dst } => {
                push(RKind::ReadBattery { dst: Dst::Reg(dst) });
                set(&mut aval, dst, AVal::Plain);
            }
            Step::ReadRole { dst } => {
                push(RKind::ReadRole { dst: Dst::Reg(dst) });
                set(&mut aval, dst, AVal::Plain);
            }
            Step::Gas => {}
        }
    }

    // ---- resolve the terminator and the exit moves ----
    let term = match block.term {
        Term::Goto { block, charge } => CTerm::Goto { block, charge },
        Term::Jz { cond, z, nz } => CTerm::Jz {
            cond: resolve(&aval, cond),
            z,
            nz,
        },
        Term::Halt { result } => CTerm::Halt {
            result: result.map(|r| resolve(&aval, r)),
        },
        Term::Trap { err, mode } => CTerm::Trap { err, mode },
    };
    // The sequentialized moves may chain through earlier move targets
    // (scratch or slots); only sources untouched so far may resolve.
    let mut moves: Vec<(Reg, Opr)> = Vec::with_capacity(block.exit_moves.len());
    let mut written: Vec<Reg> = Vec::new();
    for &(d, s) in &block.exit_moves {
        let src = if written.contains(&s) {
            Opr::Reg(s)
        } else {
            resolve(&aval, s)
        };
        moves.push((d, src));
        written.push(d);
    }

    // ---- backward DCE over the resolved steps ----
    let mut live: Vec<Reg> = Vec::new();
    let mark = |live: &mut Vec<Reg>, o: Opr| {
        if let Opr::Reg(r) = o {
            if !live.contains(&r) {
                live.push(r);
            }
        }
    };
    match term {
        CTerm::Jz { cond, .. } => mark(&mut live, cond),
        CTerm::Halt {
            result: Some(o), ..
        } => mark(&mut live, o),
        _ => {}
    }
    for &(_, src) in &moves {
        mark(&mut live, src);
    }
    let mut kept: Vec<RStep> = Vec::with_capacity(rsteps.len());
    for r in rsteps.iter().rev() {
        let needed = r.kind.has_effect() || r.kind.dst_reg().is_some_and(|d| live.contains(&d));
        if needed {
            if let Some(d) = r.kind.dst_reg() {
                live.retain(|&x| x != d);
            }
            for o in r.kind.operands().into_iter().flatten() {
                mark(&mut live, o);
            }
            kept.push(*r);
        }
    }
    kept.reverse();

    // ---- peephole: merge an op with the adjacent store consuming it ----
    let mut uses: Vec<u32> = Vec::new();
    let count = |uses: &mut Vec<u32>, o: Opr| {
        if let Opr::Reg(r) = o {
            let i = r as usize;
            if uses.len() <= i {
                uses.resize(i + 1, 0);
            }
            uses[i] += 1;
        }
    };
    for r in &kept {
        for o in r.kind.operands().into_iter().flatten() {
            count(&mut uses, o);
        }
    }
    match term {
        CTerm::Jz { cond, .. } => count(&mut uses, cond),
        CTerm::Halt {
            result: Some(o), ..
        } => count(&mut uses, o),
        _ => {}
    }
    for &(_, src) in &moves {
        count(&mut uses, src);
    }
    let mut merged: Vec<RStep> = Vec::with_capacity(kept.len());
    let mut i = 0;
    while i < kept.len() {
        let cur = kept[i];
        if let Some(r) = cur.kind.dst_reg() {
            if let Some(next) = kept.get(i + 1) {
                if let RKind::Set {
                    dst: Dst::Var(v),
                    src: Opr::Reg(s),
                } = next.kind
                {
                    if s == r && uses.get(r as usize).copied().unwrap_or(0) == 1 {
                        let kind = match cur.kind {
                            RKind::Bin { sel, a, b, .. } => RKind::Bin {
                                sel,
                                dst: Dst::Var(v),
                                a,
                                b,
                            },
                            RKind::Un { sel, a, .. } => RKind::Un {
                                sel,
                                dst: Dst::Var(v),
                                a,
                            },
                            RKind::Div { a, b, .. } => RKind::Div {
                                dst: Dst::Var(v),
                                a,
                                b,
                            },
                            RKind::Set { src, .. } => RKind::Set {
                                dst: Dst::Var(v),
                                src,
                            },
                            RKind::ReadSensor { port, .. } => RKind::ReadSensor {
                                dst: Dst::Var(v),
                                port,
                            },
                            RKind::ReadClock { .. } => RKind::ReadClock { dst: Dst::Var(v) },
                            RKind::ReadBattery { .. } => RKind::ReadBattery { dst: Dst::Var(v) },
                            RKind::ReadRole { .. } => RKind::ReadRole { dst: Dst::Var(v) },
                            other => other,
                        };
                        if kind != cur.kind {
                            merged.push(RStep {
                                src_idx: cur.src_idx,
                                kind,
                            });
                            i += 2;
                            continue;
                        }
                    }
                }
            }
        }
        merged.push(cur);
        i += 1;
    }

    let fast = merged.iter().map(emit).collect();
    let step_gas = block.steps.len() as u64;
    let term_gas = match term {
        CTerm::Goto { charge: true, .. }
        | CTerm::Jz { .. }
        | CTerm::Halt { .. }
        | CTerm::Trap {
            mode: TrapMode::Op, ..
        } => 1,
        _ => 0,
    };
    let cblock = CBlock {
        steps: block.steps.clone(),
        fast,
        moves,
        step_gas,
        block_gas: step_gas + term_gas,
        term,
        spin: None,
    };
    (cblock, merged)
}

/// Emits one closure for a resolved step. The hot shapes (`vars[v] =
/// vars[a] ⊙ k` and friends) get fully captured specializations; the
/// rest read operands through [`rd`].
fn emit(r: &RStep) -> StepFn {
    let off = r.src_idx as u64 + 1;
    match r.kind {
        RKind::Set { dst, src } => match dst {
            Dst::Reg(d) => {
                let d = d as usize;
                Box::new(move |regs, vars, _| {
                    regs[d] = rd(src, regs, vars);
                    Ok(())
                })
            }
            Dst::Var(v) => {
                let v = v as usize;
                Box::new(move |regs, vars, _| {
                    vars[v] = rd(src, regs, vars);
                    Ok(())
                })
            }
        },
        RKind::Bin { sel, dst, a, b } => {
            let f = sel.func();
            match (dst, a, b) {
                (Dst::Var(d), Opr::Var(av), Opr::Const(k)) => {
                    let (d, av) = (d as usize, av as usize);
                    Box::new(move |_, vars, _| {
                        vars[d] = f(vars[av], k);
                        Ok(())
                    })
                }
                (Dst::Var(d), Opr::Var(av), Opr::Var(bv)) => {
                    let (d, av, bv) = (d as usize, av as usize, bv as usize);
                    Box::new(move |_, vars, _| {
                        vars[d] = f(vars[av], vars[bv]);
                        Ok(())
                    })
                }
                (Dst::Var(d), a, b) => {
                    let d = d as usize;
                    Box::new(move |regs, vars, _| {
                        vars[d] = f(rd(a, regs, vars), rd(b, regs, vars));
                        Ok(())
                    })
                }
                (Dst::Reg(d), a, b) => {
                    let d = d as usize;
                    Box::new(move |regs, vars, _| {
                        regs[d] = f(rd(a, regs, vars), rd(b, regs, vars));
                        Ok(())
                    })
                }
            }
        }
        RKind::Un { sel, dst, a } => match dst {
            Dst::Var(d) => {
                let d = d as usize;
                Box::new(move |regs, vars, _| {
                    vars[d] = sel.apply(rd(a, regs, vars));
                    Ok(())
                })
            }
            Dst::Reg(d) => {
                let d = d as usize;
                Box::new(move |regs, vars, _| {
                    regs[d] = sel.apply(rd(a, regs, vars));
                    Ok(())
                })
            }
        },
        RKind::Div { dst, a, b } => match dst {
            Dst::Var(d) => {
                let d = d as usize;
                Box::new(move |regs, vars, _| {
                    let bv = rd(b, regs, vars);
                    if bv == 0.0 {
                        return Err((VmError::DivideByZero, off));
                    }
                    vars[d] = rd(a, regs, vars) / bv;
                    Ok(())
                })
            }
            Dst::Reg(d) => {
                let d = d as usize;
                Box::new(move |regs, vars, _| {
                    let bv = rd(b, regs, vars);
                    if bv == 0.0 {
                        return Err((VmError::DivideByZero, off));
                    }
                    regs[d] = rd(a, regs, vars) / bv;
                    Ok(())
                })
            }
        },
        RKind::ReadSensor { dst, port } => match dst {
            Dst::Var(d) => {
                let d = d as usize;
                Box::new(move |_, vars, env| {
                    vars[d] = env.read_sensor(port).map_err(|e| (e, off))?;
                    Ok(())
                })
            }
            Dst::Reg(d) => {
                let d = d as usize;
                Box::new(move |regs, _, env| {
                    regs[d] = env.read_sensor(port).map_err(|e| (e, off))?;
                    Ok(())
                })
            }
        },
        RKind::WriteActuator { port, src } => Box::new(move |regs, vars, env| {
            env.write_actuator(port, rd(src, regs, vars))
                .map_err(|e| (e, off))
        }),
        RKind::Emit { ch, src } => Box::new(move |regs, vars, env| {
            env.emit(ch, rd(src, regs, vars));
            Ok(())
        }),
        RKind::ReadClock { dst } => match dst {
            Dst::Var(d) => {
                let d = d as usize;
                Box::new(move |_, vars, env| {
                    vars[d] = env.clock_s();
                    Ok(())
                })
            }
            Dst::Reg(d) => {
                let d = d as usize;
                Box::new(move |regs, _, env| {
                    regs[d] = env.clock_s();
                    Ok(())
                })
            }
        },
        RKind::ReadBattery { dst } => match dst {
            Dst::Var(d) => {
                let d = d as usize;
                Box::new(move |_, vars, env| {
                    vars[d] = env.battery_fraction();
                    Ok(())
                })
            }
            Dst::Reg(d) => {
                let d = d as usize;
                Box::new(move |regs, _, env| {
                    regs[d] = env.battery_fraction();
                    Ok(())
                })
            }
        },
        RKind::ReadRole { dst } => match dst {
            Dst::Var(d) => {
                let d = d as usize;
                Box::new(move |_, vars, env| {
                    vars[d] = env.role_code();
                    Ok(())
                })
            }
            Dst::Reg(d) => {
                let d = d as usize;
                Box::new(move |regs, _, env| {
                    regs[d] = env.role_code();
                    Ok(())
                })
            }
        },
    }
}

/// Executes one raw step on the metered path (gas already charged).
fn exec_step(
    s: Step,
    regs: &mut [f64],
    vars: &mut [f64; N_VARS],
    env: &mut dyn VmEnv,
) -> Result<(), VmError> {
    match s {
        Step::Const { dst, k } => regs[dst as usize] = k,
        Step::Bin { sel, dst, a, b } => {
            regs[dst as usize] = sel.apply(regs[a as usize], regs[b as usize]);
        }
        Step::Div { dst, a, b } => {
            let bv = regs[b as usize];
            if bv == 0.0 {
                return Err(VmError::DivideByZero);
            }
            regs[dst as usize] = regs[a as usize] / bv;
        }
        Step::Un { sel, dst, a } => regs[dst as usize] = sel.apply(regs[a as usize]),
        Step::LoadVar { dst, var } => regs[dst as usize] = vars[var as usize],
        Step::StoreVar { var, src } => vars[var as usize] = regs[src as usize],
        Step::ReadSensor { dst, port } => regs[dst as usize] = env.read_sensor(port)?,
        Step::WriteActuator { port, src } => env.write_actuator(port, regs[src as usize])?,
        Step::Emit { ch, src } => env.emit(ch, regs[src as usize]),
        Step::ReadClock { dst } => regs[dst as usize] = env.clock_s(),
        Step::ReadBattery { dst } => regs[dst as usize] = env.battery_fraction(),
        Step::ReadRole { dst } => regs[dst as usize] = env.role_code(),
        Step::Gas => {}
    }
    Ok(())
}

/// Runs a compiled program with oracle-identical observable behavior.
/// `scratch` is the reused register file (grown as needed).
pub(crate) fn run(
    prog: &CompiledProgram,
    scratch: &mut Vec<f64>,
    vars: &mut [f64; N_VARS],
    gas_limit: u64,
    gas_out: &mut u64,
    env: &mut dyn VmEnv,
) -> Result<f64, VmError> {
    if scratch.len() < prog.n_regs {
        scratch.resize(prog.n_regs, 0.0);
    }
    let regs: &mut [f64] = scratch;
    let mut gas: u64 = 0;
    let mut b = 0usize;
    loop {
        let blk = &prog.blocks[b];
        if let Some(spin) = &blk.spin {
            // Batched loop rounds: `rounds` bounds the iteration count
            // by affordability up front, so the hot loop is one
            // condition read and one body step per round.
            let rounds = (gas_limit - gas) / spin.round_gas;
            let c = spin.cond;
            let mut n = 0u64;
            match &spin.body {
                SpinBody::BinVK { sel, d, a, k } => {
                    let (sel, d, a, k) = (*sel, *d, *a, *k);
                    // Inline the hot selectors: a decrement loop's
                    // whole round becomes sub + compare, which the
                    // compiler keeps in registers.
                    match sel {
                        // Canonical countdown (`v op= k; while v`): the
                        // accumulator stays in a register across rounds,
                        // so each round is one FP op plus a compare.
                        BinSel::Sub if d == a && d == c => {
                            let mut v = vars[d];
                            while n < rounds && v != 0.0 {
                                v -= k;
                                n += 1;
                            }
                            vars[d] = v;
                        }
                        BinSel::Add if d == a && d == c => {
                            let mut v = vars[d];
                            while n < rounds && v != 0.0 {
                                v += k;
                                n += 1;
                            }
                            vars[d] = v;
                        }
                        BinSel::Sub => {
                            while n < rounds && vars[c] != 0.0 {
                                vars[d] = vars[a] - k;
                                n += 1;
                            }
                        }
                        BinSel::Add => {
                            while n < rounds && vars[c] != 0.0 {
                                vars[d] = vars[a] + k;
                                n += 1;
                            }
                        }
                        _ => {
                            let f = sel.func();
                            while n < rounds && vars[c] != 0.0 {
                                vars[d] = f(vars[a], k);
                                n += 1;
                            }
                        }
                    }
                }
                SpinBody::BinVV { f, d, a, b } => {
                    let (f, d, a, b) = (*f, *d, *a, *b);
                    while n < rounds && vars[c] != 0.0 {
                        vars[d] = f(vars[a], vars[b]);
                        n += 1;
                    }
                }
                SpinBody::Steps(steps) => {
                    while n < rounds && vars[c] != 0.0 {
                        for s in steps {
                            match *s {
                                VarStep::Set { d, s } => vars[d] = vrd(s, vars),
                                VarStep::Bin { f, d, a, b } => {
                                    vars[d] = f(vrd(a, vars), vrd(b, vars));
                                }
                                VarStep::Un { sel, d, a } => vars[d] = sel.apply(vrd(a, vars)),
                            }
                        }
                        n += 1;
                    }
                }
            }
            gas += n * spin.round_gas;
            // Fall through to the ordinary machinery for the exit (or
            // the final, only partially affordable round).
        }
        if gas_limit - gas >= blk.block_gas {
            // Fast path: the whole block is affordable, so no per-op
            // gas check can fire and the optimized chain is exact.
            for f in &blk.fast {
                if let Err((e, dg)) = f(regs, vars, env) {
                    *gas_out = gas + dg;
                    return Err(e);
                }
            }
            gas += blk.step_gas;
        } else {
            // Metered path: unoptimized 1:1 steps with the oracle's
            // per-op check/charge sequence.
            for &s in &blk.steps {
                if gas >= gas_limit {
                    *gas_out = gas;
                    return Err(VmError::OutOfGas);
                }
                gas += 1;
                if let Err(e) = exec_step(s, regs, vars, env) {
                    *gas_out = gas;
                    return Err(e);
                }
            }
        }
        match blk.term {
            CTerm::Goto { block, charge } => {
                if charge {
                    if gas >= gas_limit {
                        *gas_out = gas;
                        return Err(VmError::OutOfGas);
                    }
                    gas += 1;
                }
                for &(d, o) in &blk.moves {
                    regs[d as usize] = rd(o, regs, vars);
                }
                b = block;
            }
            CTerm::Jz { cond, z, nz } => {
                if gas >= gas_limit {
                    *gas_out = gas;
                    return Err(VmError::OutOfGas);
                }
                gas += 1;
                // Read the condition before the moves: a move may
                // overwrite the slot the condition aliases.
                let c = rd(cond, regs, vars);
                for &(d, o) in &blk.moves {
                    regs[d as usize] = rd(o, regs, vars);
                }
                b = if c == 0.0 { z } else { nz };
            }
            CTerm::Halt { result } => {
                if gas >= gas_limit {
                    *gas_out = gas;
                    return Err(VmError::OutOfGas);
                }
                gas += 1;
                *gas_out = gas;
                return Ok(result.map_or(0.0, |o| rd(o, regs, vars)));
            }
            CTerm::Trap { err, mode } => {
                match mode {
                    TrapMode::Op => {
                        if gas >= gas_limit {
                            *gas_out = gas;
                            return Err(VmError::OutOfGas);
                        }
                        gas += 1;
                    }
                    TrapMode::Fetch => {
                        if gas >= gas_limit {
                            *gas_out = gas;
                            return Err(VmError::OutOfGas);
                        }
                    }
                    TrapMode::Now => {}
                }
                *gas_out = gas;
                return Err(err);
            }
        }
    }
}

/// A [`VmEnv`] over a plant's ModBus register map with **inline
/// caching** of the tag→register lookups: the first access on a port
/// resolves the tag through the map's linear scan and memoizes the
/// register address, so steady-state capsule I/O costs one scaled
/// register transaction.
pub struct ModbusCachedEnv<'a> {
    plant: &'a mut dyn Plant,
    regmap: &'a RegisterMap,
    sensor_tags: Vec<String>,
    actuator_tags: Vec<String>,
    sensor_cache: Vec<Option<u16>>,
    actuator_cache: Vec<Option<u16>>,
    lookups: usize,
    /// Clock served to the program, seconds.
    pub now_s: f64,
    /// Emissions recorded for the caller, `(channel, value)`.
    pub emissions: Vec<(u8, f64)>,
}

impl<'a> ModbusCachedEnv<'a> {
    /// Binds sensor port `i` to `sensor_tags[i]` (an input register
    /// tag) and actuator port `i` to `actuator_tags[i]` (a holding
    /// register tag).
    pub fn new(
        plant: &'a mut dyn Plant,
        regmap: &'a RegisterMap,
        sensor_tags: &[&str],
        actuator_tags: &[&str],
    ) -> Self {
        ModbusCachedEnv {
            plant,
            regmap,
            sensor_tags: sensor_tags.iter().map(ToString::to_string).collect(),
            actuator_tags: actuator_tags.iter().map(ToString::to_string).collect(),
            sensor_cache: vec![None; sensor_tags.len()],
            actuator_cache: vec![None; actuator_tags.len()],
            lookups: 0,
            now_s: 0.0,
            emissions: Vec::new(),
        }
    }

    /// Slow-path tag resolutions performed so far — with the inline
    /// cache this stays at one per bound port, however many runs.
    #[must_use]
    pub fn lookups(&self) -> usize {
        self.lookups
    }
}

impl VmEnv for ModbusCachedEnv<'_> {
    fn read_sensor(&mut self, port: u8) -> Result<f64, VmError> {
        let i = port as usize;
        let slot = self.sensor_cache.get_mut(i).ok_or(VmError::PortFault)?;
        let addr = match *slot {
            Some(addr) => addr,
            None => {
                self.lookups += 1;
                let addr = self
                    .regmap
                    .input_register_of(&self.sensor_tags[i])
                    .ok_or(VmError::PortFault)?;
                *slot = Some(addr);
                addr
            }
        };
        self.regmap
            .read_scaled(&*self.plant, addr)
            .map_err(|_| VmError::PortFault)
    }

    fn write_actuator(&mut self, port: u8, value: f64) -> Result<(), VmError> {
        let i = port as usize;
        let slot = self.actuator_cache.get_mut(i).ok_or(VmError::PortFault)?;
        let addr = match *slot {
            Some(addr) => addr,
            None => {
                self.lookups += 1;
                let addr = self
                    .regmap
                    .holding_register_of(&self.actuator_tags[i])
                    .ok_or(VmError::PortFault)?;
                *slot = Some(addr);
                addr
            }
        };
        self.regmap
            .write_scaled(&mut *self.plant, addr, value)
            .map_err(|_| VmError::PortFault)
    }

    fn emit(&mut self, ch: u8, value: f64) {
        self.emissions.push((ch, value));
    }

    fn clock_s(&self) -> f64 {
        self.now_s
    }
}

/// A [`VmEnv`] that **batches** ModBus traffic: every port is resolved
/// to a [`BoundRegister`] once at construction, and the first sensor
/// read of a capsule run prefetches *all* bound input registers in one
/// pass — the software image of a ModBus read-multiple transaction —
/// serving subsequent reads from the local buffer. Writes go straight
/// through the bound holding registers, so steady state performs zero
/// address lookups: one batched poll plus direct writes per run.
///
/// Call [`ModbusBatchEnv::begin_run`] before each capsule invocation to
/// invalidate the previous run's poll (plant state moves between runs).
pub struct ModbusBatchEnv<'a> {
    plant: &'a mut dyn Plant,
    sensors: Vec<Option<BoundRegister>>,
    actuators: Vec<Option<BoundRegister>>,
    batch: Vec<f64>,
    fresh: bool,
    /// Clock served to the program, seconds.
    pub now_s: f64,
    /// Emissions recorded for the caller, `(channel, value)`.
    pub emissions: Vec<(u8, f64)>,
}

impl<'a> ModbusBatchEnv<'a> {
    /// Binds sensor port `i` to `sensor_tags[i]` (an input register
    /// tag) and actuator port `i` to `actuator_tags[i]` (a holding
    /// register tag), resolving every binding now. Unresolvable tags
    /// leave the port unbound and fault on first access.
    pub fn new(
        plant: &'a mut dyn Plant,
        regmap: &RegisterMap,
        sensor_tags: &[&str],
        actuator_tags: &[&str],
    ) -> Self {
        let sensors: Vec<_> = sensor_tags
            .iter()
            .map(|t| regmap.input_register_of(t).and_then(|a| regmap.bind(a)))
            .collect();
        let actuators = actuator_tags
            .iter()
            .map(|t| regmap.holding_register_of(t).and_then(|a| regmap.bind(a)))
            .collect();
        let batch = vec![0.0; sensors.len()];
        ModbusBatchEnv {
            plant,
            sensors,
            actuators,
            batch,
            fresh: false,
            now_s: 0.0,
            emissions: Vec::new(),
        }
    }

    /// Invalidates the previous run's input poll; the next sensor read
    /// re-polls the whole bound set.
    pub fn begin_run(&mut self) {
        self.fresh = false;
    }
}

impl VmEnv for ModbusBatchEnv<'_> {
    fn read_sensor(&mut self, port: u8) -> Result<f64, VmError> {
        if !self.fresh {
            // One batched poll covering every bound input register.
            for (i, reg) in self.sensors.iter().enumerate() {
                if let Some(reg) = reg {
                    self.batch[i] =
                        read_bound(&*self.plant, reg).map_err(|_| VmError::PortFault)?;
                }
            }
            self.fresh = true;
        }
        let i = port as usize;
        match self.sensors.get(i) {
            Some(Some(_)) => Ok(self.batch[i]),
            _ => Err(VmError::PortFault),
        }
    }

    fn write_actuator(&mut self, port: u8, value: f64) -> Result<(), VmError> {
        let reg = self
            .actuators
            .get(port as usize)
            .and_then(Option::as_ref)
            .ok_or(VmError::PortFault)?;
        write_bound(&mut *self.plant, reg, value).map_err(|_| VmError::PortFault)
    }

    fn emit(&mut self, ch: u8, value: f64) {
        self.emissions.push((ch, value));
    }

    fn clock_s(&self) -> f64 {
        self.now_s
    }
}

#[cfg(test)]
mod tests {
    use super::super::interp::NullEnv;
    use super::super::isa::Op;
    use super::*;

    fn run_compiled(ops: Vec<Op>, gas_limit: u64) -> (Result<f64, VmError>, u64, [f64; N_VARS]) {
        let p = Program::new(ops);
        let c = compile(&p).expect("compiles");
        let mut scratch = Vec::new();
        let mut vars = [0.0; N_VARS];
        let mut gas = 0;
        let mut env = NullEnv::default();
        let r = run(&c, &mut scratch, &mut vars, gas_limit, &mut gas, &mut env);
        (r, gas, vars)
    }

    #[test]
    fn decrement_loop_matches_oracle() {
        let ops = vec![
            Op::Push(5.0),
            Op::Store(0),
            Op::Load(0),
            Op::Jz(6),
            Op::Load(0),
            Op::Push(1.0),
            Op::Sub,
            Op::Store(0),
            Op::Jmp(-6),
            Op::Load(0),
            Op::Halt,
        ];
        let (r, gas, vars) = run_compiled(ops.clone(), 10_000);
        assert_eq!(r, Ok(0.0));
        assert_eq!(vars[0], 0.0);
        let mut vm = super::super::interp::Vm::new(10_000);
        let mut env = NullEnv::default();
        assert_eq!(vm.run(&Program::new(ops), &mut env), Ok(0.0));
        assert_eq!(vm.gas_used(), gas);
    }

    #[test]
    fn loop_body_collapses_to_one_closure() {
        // The decrement-loop body block (load·push·sub·store) must
        // merge into a single vars[0] = vars[0] - 1.0 closure.
        let ops = vec![
            Op::Push(5.0),
            Op::Store(0),
            Op::Load(0),
            Op::Jz(6),
            Op::Load(0),
            Op::Push(1.0),
            Op::Sub,
            Op::Store(0),
            Op::Jmp(-6),
            Op::Load(0),
            Op::Halt,
        ];
        let c = compile(&Program::new(ops)).expect("compiles");
        let min_fast = c.blocks.iter().map(|b| b.fast.len()).min().unwrap();
        assert_eq!(min_fast, 0); // the `load 0 · jz` header needs none
        let body = c
            .blocks
            .iter()
            .find(|b| matches!(b.term, CTerm::Goto { charge: true, .. }))
            .expect("loop body");
        assert_eq!(body.fast.len(), 1);
    }

    #[test]
    fn mid_loop_out_of_gas_is_exact() {
        let ops = vec![
            Op::Push(1000.0),
            Op::Store(0),
            Op::Load(0),
            Op::Jz(6),
            Op::Load(0),
            Op::Push(1.0),
            Op::Sub,
            Op::Store(0),
            Op::Jmp(-6),
            Op::Load(0),
            Op::Halt,
        ];
        for limit in [1, 2, 3, 7, 50, 63, 64, 65, 100] {
            let (r, gas, vars) = run_compiled(ops.clone(), limit);
            let mut vm = super::super::interp::Vm::new(limit);
            let mut env = NullEnv::default();
            let expect = vm.run(&Program::new(ops.clone()), &mut env);
            assert_eq!(r, expect, "limit {limit}");
            assert_eq!(gas, vm.gas_used(), "limit {limit}");
            assert_eq!(vars, vm.snapshot_vars(), "limit {limit}");
        }
    }

    #[test]
    fn modbus_cached_env_resolves_each_port_once() {
        use evm_plant::{GasPlant, PlantConfig};
        let mut plant = GasPlant::new(PlantConfig::default());
        let regmap = RegisterMap::gas_plant_standard();
        let mut env = ModbusCachedEnv::new(
            &mut plant,
            &regmap,
            &["LTS.LiquidPct"],
            &["LTSLiqValve.Cmd"],
        );
        for _ in 0..50 {
            env.read_sensor(0).expect("bound sensor port");
            env.write_actuator(0, 1.0).expect("bound actuator port");
        }
        assert_eq!(env.lookups(), 2);
    }
}
