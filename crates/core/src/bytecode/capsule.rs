//! Capsules: versioned, attestable code units.
//!
//! A capsule is what actually moves between nodes: program bytes plus the
//! metadata the receiving EVM needs to gate activation — version (for the
//! spawn/update protocol), required capabilities, a gas budget (→ WCET for
//! the schedulability test), a CRC for transport integrity, and a keyed
//! digest for attestation (§3.1.1 op 8).

use std::fmt;

use super::isa::Program;

/// Identifier of a capsule (stable across versions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CapsuleId(pub u32);

impl fmt::Display for CapsuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cap{}", self.0)
    }
}

/// A capability a capsule requires of its host node.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Capability {
    /// Bound sensor input `port` must exist.
    SensorPort(u8),
    /// Bound actuator output `port` must exist.
    ActuatorPort(u8),
    /// Node must be allowed to act as a controller.
    ControllerRole,
    /// Node must expose the VC data plane (emit channels).
    DataPlane,
}

impl fmt::Display for Capability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Capability::SensorPort(p) => write!(f, "sensor-port {p}"),
            Capability::ActuatorPort(p) => write!(f, "actuator-port {p}"),
            Capability::ControllerRole => write!(f, "controller-role"),
            Capability::DataPlane => write!(f, "data-plane"),
        }
    }
}

/// A versioned, integrity-protected unit of mobile code.
#[derive(Debug, Clone, PartialEq)]
pub struct Capsule {
    /// Stable identity.
    pub id: CapsuleId,
    /// Monotonic version; receivers only accept upgrades.
    pub version: u16,
    /// The code.
    pub program: Program,
    /// Per-invocation gas budget.
    pub gas_budget: u64,
    /// Host requirements.
    pub capabilities: Vec<Capability>,
    /// CRC-32 of the encoded program (transport integrity).
    crc32: u32,
}

impl Capsule {
    /// Packages a program into a capsule.
    #[must_use]
    pub fn new(
        id: CapsuleId,
        version: u16,
        program: Program,
        gas_budget: u64,
        capabilities: Vec<Capability>,
    ) -> Self {
        let crc32 = crc32(&program.encode());
        Capsule {
            id,
            version,
            program,
            gas_budget,
            capabilities,
            crc32,
        }
    }

    /// The stored CRC-32.
    #[must_use]
    pub fn crc(&self) -> u32 {
        self.crc32
    }

    /// Recomputes the CRC over the current program bytes and compares with
    /// the stored value — the transport-integrity half of attestation.
    #[must_use]
    pub fn integrity_ok(&self) -> bool {
        crc32(&self.program.encode()) == self.crc32
    }

    /// Size of the capsule's code on the wire, bytes.
    #[must_use]
    pub fn code_size_bytes(&self) -> usize {
        self.program.encoded_len()
    }

    /// Simulates transport corruption (tests / fault injection): flips one
    /// bit of the encoded program and re-decodes, leaving the stored CRC
    /// untouched. Returns `None` if the corrupted bytes no longer decode
    /// at all.
    #[must_use]
    pub fn corrupted(&self, byte_index: usize, bit: u8) -> Option<Capsule> {
        let mut bytes = self.program.encode();
        if bytes.is_empty() {
            return None;
        }
        let idx = byte_index % bytes.len();
        bytes[idx] ^= 1 << (bit % 8);
        let program = Program::decode(&bytes).ok()?;
        Some(Capsule {
            program,
            ..self.clone()
        })
    }
}

/// Bitwise CRC-32 (IEEE 802.3 polynomial, reflected).
#[must_use]
pub(crate) fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bytecode::Op;

    fn capsule() -> Capsule {
        let program = Program::new(vec![
            Op::ReadSensor(0),
            Op::Push(2.0),
            Op::Mul,
            Op::WriteActuator(0),
            Op::Halt,
        ]);
        Capsule::new(
            CapsuleId(7),
            3,
            program,
            64,
            vec![Capability::SensorPort(0), Capability::ActuatorPort(0)],
        )
    }

    #[test]
    fn crc32_known_vector() {
        // Standard test vector: CRC-32("123456789") = 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn fresh_capsule_passes_integrity() {
        assert!(capsule().integrity_ok());
    }

    #[test]
    fn corruption_is_detected() {
        let c = capsule();
        let mut detected = 0;
        let mut total = 0;
        for byte in 0..c.code_size_bytes() {
            for bit in 0..8 {
                if let Some(bad) = c.corrupted(byte, bit) {
                    total += 1;
                    if !bad.integrity_ok() {
                        detected += 1;
                    }
                }
            }
        }
        assert!(total > 0);
        assert_eq!(detected, total, "CRC-32 must catch every single-bit flip");
    }

    #[test]
    fn code_size_reflects_encoding() {
        let c = capsule();
        // rdsens(2) + push(9) + mul(1) + wract(2) + halt(1) = 15 bytes.
        assert_eq!(c.code_size_bytes(), 15);
    }

    #[test]
    fn display_formats() {
        assert_eq!(CapsuleId(7).to_string(), "cap7");
        assert_eq!(Capability::SensorPort(1).to_string(), "sensor-port 1");
    }
}
