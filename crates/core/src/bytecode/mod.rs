//! The FORTH-like EVM interpreter.
//!
//! Like Maté, the EVM runs a small stack machine inside the RTOS; unlike
//! Maté, the instruction set is (a) extensible at runtime and (b) aimed at
//! node-to-node control: instructions exist for publishing values into the
//! Virtual Component's data plane, reading role/battery state, and
//! triggering task operations. Execution is **gas-metered**: a capsule
//! declares its worst-case instruction count, the kernel converts that to
//! WCET for the schedulability gate, and the interpreter enforces it.
//!
//! Execution is **tiered** ([`Tier`]): the stack interpreter in
//! [`interp`] is the semantic oracle; [`fuse`] rewrites hot stack
//! idioms into superinstructions; [`regir`] lowers the stack program to
//! a register IR which [`compile`] turns into a chain of boxed
//! closures. All tiers are bit-identical in results, gas, variables and
//! traps — only speed differs.

mod asm;
mod builder;
mod capsule;
mod compile;
mod fuse;
mod interp;
mod isa;
mod regir;

pub use asm::{assemble, disassemble, AsmError};
pub use builder::{
    compile_control_law, control_law_gas_budget, integrator_of, ControlLawSpec, VAR_INTEGRATOR,
};
pub use capsule::{Capability, Capsule, CapsuleId};
pub use compile::{compiles, ModbusBatchEnv, ModbusCachedEnv};
pub use interp::{NullEnv, Tier, Vm, VmEnv, VmError, MAX_STACK, N_VARS};
pub use isa::{Op, Program};
