//! The FORTH-like EVM interpreter.
//!
//! Like Maté, the EVM runs a small stack machine inside the RTOS; unlike
//! Maté, the instruction set is (a) extensible at runtime and (b) aimed at
//! node-to-node control: instructions exist for publishing values into the
//! Virtual Component's data plane, reading role/battery state, and
//! triggering task operations. Execution is **gas-metered**: a capsule
//! declares its worst-case instruction count, the kernel converts that to
//! WCET for the schedulability gate, and the interpreter enforces it.

mod asm;
mod builder;
mod capsule;
mod interp;
mod isa;

pub use asm::{assemble, disassemble, AsmError};
pub use builder::{
    compile_control_law, control_law_gas_budget, integrator_of, ControlLawSpec, VAR_INTEGRATOR,
};
pub use capsule::{Capability, Capsule, CapsuleId};
pub use interp::{NullEnv, Vm, VmEnv, VmError, MAX_STACK, N_VARS};
pub use isa::{Op, Program};
