//! Task migration (§3.1.1 op 1, §4).
//!
//! "This operation includes a capabilities check and the migration of the
//! task control block, stack, data and timing/precedence-related
//! metadata." The image is fragmented into RT-Link frames, sent one per
//! owned slot with per-frame acknowledgment and retransmission, and the
//! task activates on the target only after the final chunk verifies.
//!
//! [`MigrationPlan`] gives the analytic lower bound (no losses);
//! [`execute_migration`] samples an actual lossy run — experiment E8
//! sweeps both against image size and link quality.

use evm_netsim::frame::{frames_needed, max_payload};
use evm_netsim::NodeId;
use evm_rtos::TaskImage;
use evm_sim::{SimDuration, SimRng};

use crate::attest::{attest_capsule, AttestationKey};
use crate::bytecode::{Capability, Capsule};
use crate::error::EvmError;

/// Analytic migration plan over a TDMA schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct MigrationPlan {
    /// Total image bytes (TCB registers + stack + data + metadata).
    pub image_bytes: usize,
    /// Frames required.
    pub frames: usize,
    /// Slots available to the migration per TDMA cycle.
    pub slots_per_cycle: usize,
    /// TDMA cycle length.
    pub cycle: SimDuration,
    /// Loss-free transfer duration (ceil(frames / slots) cycles), plus one
    /// cycle for the capability-check handshake and one for activation.
    pub duration: SimDuration,
}

impl MigrationPlan {
    /// Plans a migration of `image` over `slots_per_cycle` dedicated slots
    /// in a TDMA cycle of length `cycle`.
    ///
    /// # Panics
    ///
    /// Panics if `slots_per_cycle` is zero; the runtime uses
    /// [`MigrationPlan::try_new`] instead.
    #[must_use]
    pub fn new(image: &TaskImage, slots_per_cycle: usize, cycle: SimDuration) -> Self {
        MigrationPlan::try_new(image, slots_per_cycle, cycle)
            .expect("need at least one slot per cycle")
    }

    /// Fallible twin of [`MigrationPlan::new`] for runtime callers, where
    /// a zero slot budget is a configuration error to surface, not a
    /// programming bug to panic on.
    ///
    /// # Errors
    ///
    /// [`EvmError::InvalidMigrationPlan`] if `slots_per_cycle` is zero.
    pub fn try_new(
        image: &TaskImage,
        slots_per_cycle: usize,
        cycle: SimDuration,
    ) -> Result<Self, EvmError> {
        if slots_per_cycle == 0 {
            return Err(EvmError::InvalidMigrationPlan {
                reason: "need at least one slot per cycle".to_string(),
            });
        }
        let image_bytes = image.size_bytes();
        let frames = frames_needed(image_bytes, max_payload());
        let transfer_cycles = frames.div_ceil(slots_per_cycle) as u64;
        // +1 cycle capability-check handshake, +1 cycle activation ack.
        let duration = cycle * (transfer_cycles + 2);
        Ok(MigrationPlan {
            image_bytes,
            frames,
            slots_per_cycle,
            cycle,
            duration,
        })
    }
}

/// Result of a sampled (lossy) migration execution.
#[derive(Debug, Clone, PartialEq)]
pub struct MigrationOutcome {
    /// Total frames transmitted, including retransmissions.
    pub frames_sent: usize,
    /// Retransmissions among those.
    pub retries: usize,
    /// Wall-clock duration from initiation to activation.
    pub duration: SimDuration,
}

/// Executes a migration over a lossy link: each owned slot carries one
/// (re)transmission; a chunk is re-sent until acknowledged. `loss` is the
/// per-frame loss probability (applied independently to data and ack).
///
/// `max_retries` bounds *retransmissions per chunk*: the initial
/// transmission is free, so a chunk is sent at most `max_retries + 1`
/// times. On timeout, `frames_remaining` counts every chunk that never
/// verified — including the one in flight when the budget ran out.
///
/// # Errors
///
/// [`EvmError::MigrationTimeout`] if any chunk exceeds `max_retries`.
pub fn execute_migration(
    plan: &MigrationPlan,
    loss: f64,
    max_retries: usize,
    rng: &mut SimRng,
) -> Result<MigrationOutcome, EvmError> {
    let mut frames_sent = 0usize;
    let mut retries = 0usize;
    let mut slots_elapsed = 0u64;

    for chunk in 0..plan.frames {
        let mut attempts = 0usize;
        loop {
            frames_sent += 1;
            slots_elapsed += 1;
            attempts += 1;
            let data_ok = !rng.chance(loss);
            let ack_ok = !rng.chance(loss);
            if data_ok && ack_ok {
                break;
            }
            // Give up *before* booking another retry: the transmission
            // that just failed was the last one we were allowed to send,
            // and no further retransmission follows it. (Booking first
            // over-counted by one — with `max_retries = 0` a timed-out
            // chunk reported one retry despite none ever being sent.)
            if attempts > max_retries {
                return Err(EvmError::MigrationTimeout {
                    frames_remaining: plan.frames - chunk,
                    retries,
                });
            }
            retries += 1;
        }
    }

    // Convert slots to wall-clock: slots_per_cycle usable slots per cycle.
    let cycles = slots_elapsed.div_ceil(plan.slots_per_cycle as u64);
    // Same +2 cycle overhead as the plan (handshake + activation).
    let duration = plan.cycle * (cycles + 2);
    Ok(MigrationOutcome {
        frames_sent,
        retries,
        duration,
    })
}

/// The serialized form of a live capsule in flight between hosts: the
/// versioned code unit, the interpreter's resumable variable state, and
/// the digest its sender advertised for arrival attestation. This is what
/// the runtime chunks into [`crate::runtime::Message::CapsuleChunk`]
/// frames over the epoch's transfer slots.
#[derive(Debug, Clone, PartialEq)]
pub struct CapsuleImage {
    /// The code unit being shipped.
    pub capsule: Capsule,
    /// Snapshot of the interpreter's variable file (resumable state).
    pub vars: Vec<f64>,
    /// Keyed digest the sender computed under the component key.
    pub advertised_digest: u64,
    /// Extra payload bytes riding along (checkpoint blobs, logs —
    /// the sweepable image-size knob).
    pub pad_bytes: usize,
}

/// Serialized metadata overhead: id, version, gas budget, capability
/// list, CRC, digest.
const IMAGE_METADATA_BYTES: usize = 32;

/// Fragment header riding in every `CapsuleChunk` frame (seq, total,
/// len) — the image bytes per frame are the radio payload minus this.
pub const CHUNK_HEADER_BYTES: usize = 7;

/// Image bytes one transfer-slot frame can carry.
#[must_use]
pub fn chunk_capacity() -> usize {
    max_payload() - CHUNK_HEADER_BYTES
}

impl CapsuleImage {
    /// Total bytes that must cross the network.
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        self.capsule.code_size_bytes() + self.vars.len() * 8 + IMAGE_METADATA_BYTES + self.pad_bytes
    }

    /// Frames required at the radio's chunk capacity (payload minus the
    /// fragment header).
    #[must_use]
    pub fn frames(&self) -> usize {
        frames_needed(self.size_bytes(), chunk_capacity())
    }

    /// The kernel-facing task image: what the receiving node's admission
    /// test sees (registers + stack hold code and padding, the data
    /// section holds the variable file).
    #[must_use]
    pub fn task_image(&self) -> TaskImage {
        TaskImage::with_sizes(
            32,
            self.capsule.code_size_bytes() + self.pad_bytes,
            self.vars.len() * 8,
            IMAGE_METADATA_BYTES,
        )
    }
}

/// The arrival gate (§3.1.1 ops 1+8): every capsule that lands on a host
/// passes, in order, (1) attestation — transport integrity and keyed
/// digest, (2) version monotonicity — receivers only accept upgrades,
/// (3) the capability check against what the host actually provides.
/// Kernel admission (the schedulability test) runs separately after this
/// gate — see `evm_rtos::Kernel::admit`.
///
/// # Errors
///
/// [`EvmError::AttestationFailed`], [`EvmError::StaleCapsule`] or
/// [`EvmError::MissingCapability`] naming the first check that failed.
pub fn admit_arrival(
    capsule: &Capsule,
    advertised_digest: u64,
    resident_version: Option<u16>,
    host_caps: &[Capability],
    host: NodeId,
    key: AttestationKey,
) -> Result<(), EvmError> {
    let report = attest_capsule(capsule, advertised_digest, key);
    if !report.passed() {
        let reason = match (report.integrity_ok, report.digest_ok) {
            (false, _) => "code CRC mismatch (corrupted in transit)",
            (true, false) => "keyed digest mismatch (tampered or wrong key)",
            _ => unreachable!("passed() was false"),
        };
        return Err(EvmError::AttestationFailed {
            reason: reason.to_string(),
        });
    }
    if let Some(resident) = resident_version {
        if capsule.version <= resident {
            return Err(EvmError::StaleCapsule {
                incoming: capsule.version,
                resident,
            });
        }
    }
    for cap in &capsule.capabilities {
        if !host_caps.contains(cap) {
            return Err(EvmError::MissingCapability {
                node: host,
                capability: cap.to_string(),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attest::capsule_digest;
    use crate::bytecode::{CapsuleId, Op, Program};

    fn cycle() -> SimDuration {
        SimDuration::from_millis(250)
    }

    #[test]
    fn plan_for_typical_image() {
        // 384 B image over 116 B payloads = 4 frames; 1 slot/cycle ->
        // 4 cycles transfer + 2 overhead = 6 cycles = 1.5 s.
        let plan = MigrationPlan::new(&TaskImage::typical_control_task(), 1, cycle());
        assert_eq!(plan.image_bytes, 384);
        assert_eq!(plan.frames, 4);
        assert_eq!(plan.duration, SimDuration::from_millis(1_500));
    }

    #[test]
    fn more_slots_speed_up_transfer() {
        let img = TaskImage::with_sizes(32, 2048, 512, 64);
        let slow = MigrationPlan::new(&img, 1, cycle());
        let fast = MigrationPlan::new(&img, 4, cycle());
        assert!(fast.duration < slow.duration);
        assert_eq!(slow.frames, fast.frames, "frames depend only on size");
    }

    #[test]
    fn lossless_execution_matches_plan() {
        let plan = MigrationPlan::new(&TaskImage::typical_control_task(), 1, cycle());
        let mut rng = SimRng::seed_from(1);
        let out = execute_migration(&plan, 0.0, 10, &mut rng).unwrap();
        assert_eq!(out.frames_sent, plan.frames);
        assert_eq!(out.retries, 0);
        assert_eq!(out.duration, plan.duration);
    }

    #[test]
    fn loss_adds_retries_and_latency() {
        let plan = MigrationPlan::new(&TaskImage::with_sizes(64, 1024, 256, 64), 2, cycle());
        let mut rng = SimRng::seed_from(2);
        let clean = execute_migration(&plan, 0.0, 50, &mut rng).unwrap();
        let mut total_lossy = SimDuration::ZERO;
        let runs = 50;
        for _ in 0..runs {
            let lossy = execute_migration(&plan, 0.3, 200, &mut rng).unwrap();
            assert!(lossy.retries > 0 || lossy.frames_sent == plan.frames);
            total_lossy += lossy.duration;
        }
        assert!(
            total_lossy / runs > clean.duration,
            "30% loss must cost time on average"
        );
    }

    #[test]
    fn hopeless_link_times_out() {
        let plan = MigrationPlan::new(&TaskImage::typical_control_task(), 1, cycle());
        let mut rng = SimRng::seed_from(3);
        let err = execute_migration(&plan, 1.0, 5, &mut rng).unwrap_err();
        assert!(
            matches!(err, EvmError::MigrationTimeout { frames_remaining, .. } if frames_remaining > 0)
        );
    }

    /// Regression (retry off-by-one): with `max_retries = 0` the first
    /// chunk's failed *initial* transmission must not be booked as a
    /// retry — the timeout reports zero retries and every frame still
    /// outstanding, including the in-flight chunk.
    #[test]
    fn zero_retry_budget_times_out_with_zero_retries() {
        let plan = MigrationPlan::new(&TaskImage::typical_control_task(), 1, cycle());
        let mut rng = SimRng::seed_from(4);
        let err = execute_migration(&plan, 1.0, 0, &mut rng).unwrap_err();
        assert_eq!(
            err,
            EvmError::MigrationTimeout {
                frames_remaining: plan.frames,
                retries: 0,
            },
            "the failed initial TX is not a retry"
        );
    }

    /// Regression: on timeout, only retransmissions actually sent count —
    /// a chunk sent `max_retries + 1` times reports exactly `max_retries`
    /// retries, and `frames_remaining` includes the in-flight chunk.
    #[test]
    fn timeout_retries_count_only_sent_retransmissions() {
        let plan = MigrationPlan::new(&TaskImage::typical_control_task(), 1, cycle());
        let mut rng = SimRng::seed_from(5);
        let err = execute_migration(&plan, 1.0, 3, &mut rng).unwrap_err();
        assert_eq!(
            err,
            EvmError::MigrationTimeout {
                frames_remaining: plan.frames,
                retries: 3,
            }
        );
    }

    #[test]
    fn try_new_rejects_zero_slot_budget() {
        let err = MigrationPlan::try_new(&TaskImage::typical_control_task(), 0, cycle());
        assert!(matches!(err, Err(EvmError::InvalidMigrationPlan { .. })));
        let ok = MigrationPlan::try_new(&TaskImage::typical_control_task(), 1, cycle()).unwrap();
        assert_eq!(
            ok,
            MigrationPlan::new(&TaskImage::typical_control_task(), 1, cycle())
        );
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn new_still_panics_on_zero_slots() {
        let _ = MigrationPlan::new(&TaskImage::typical_control_task(), 0, cycle());
    }

    #[test]
    fn duration_scales_with_image_size() {
        let small = MigrationPlan::new(&TaskImage::with_sizes(16, 64, 16, 16), 1, cycle());
        let large = MigrationPlan::new(&TaskImage::with_sizes(32, 4096, 1024, 64), 1, cycle());
        assert!(large.duration > small.duration * 2);
    }

    const KEY: AttestationKey = AttestationKey(0x0DD5_EED5);
    const HOST: NodeId = NodeId(3);

    fn host_caps() -> Vec<Capability> {
        vec![Capability::ControllerRole, Capability::DataPlane]
    }

    fn shipped_capsule(version: u16) -> Capsule {
        Capsule::new(
            CapsuleId(1),
            version,
            Program::new(vec![Op::Push(1.0), Op::WriteActuator(0), Op::Halt]),
            64,
            host_caps(),
        )
    }

    #[test]
    fn arrival_gate_accepts_genuine_upgrade() {
        let c = shipped_capsule(2);
        let digest = capsule_digest(&c, KEY);
        assert_eq!(
            admit_arrival(&c, digest, Some(1), &host_caps(), HOST, KEY),
            Ok(())
        );
        // Cold targets (no resident capsule) accept any version.
        assert_eq!(
            admit_arrival(&c, digest, None, &host_caps(), HOST, KEY),
            Ok(())
        );
    }

    #[test]
    fn arrival_gate_rejects_same_or_older_version() {
        let c = shipped_capsule(2);
        let digest = capsule_digest(&c, KEY);
        assert_eq!(
            admit_arrival(&c, digest, Some(2), &host_caps(), HOST, KEY),
            Err(EvmError::StaleCapsule {
                incoming: 2,
                resident: 2
            }),
            "same version is not an upgrade"
        );
        assert_eq!(
            admit_arrival(&c, digest, Some(5), &host_caps(), HOST, KEY),
            Err(EvmError::StaleCapsule {
                incoming: 2,
                resident: 5
            })
        );
    }

    #[test]
    fn arrival_gate_rejects_tampered_gas_budget() {
        let mut c = shipped_capsule(2);
        let digest = capsule_digest(&c, KEY);
        c.gas_budget *= 16; // inflate the WCET budget after digesting
        let err = admit_arrival(&c, digest, None, &host_caps(), HOST, KEY).unwrap_err();
        assert!(matches!(err, EvmError::AttestationFailed { .. }));
    }

    #[test]
    fn arrival_gate_rejects_corrupted_code() {
        let c = shipped_capsule(2);
        let digest = capsule_digest(&c, KEY);
        let bad = c.corrupted(2, 1).expect("still decodes");
        let err = admit_arrival(&bad, digest, None, &host_caps(), HOST, KEY).unwrap_err();
        assert!(matches!(err, EvmError::AttestationFailed { .. }));
    }

    #[test]
    fn arrival_gate_checks_host_capabilities() {
        let c = shipped_capsule(2);
        let digest = capsule_digest(&c, KEY);
        let err = admit_arrival(
            &c,
            digest,
            None,
            &[Capability::DataPlane], // host lacks ControllerRole
            HOST,
            KEY,
        )
        .unwrap_err();
        assert_eq!(
            err,
            EvmError::MissingCapability {
                node: HOST,
                capability: Capability::ControllerRole.to_string(),
            }
        );
    }

    #[test]
    fn capsule_image_sizes_and_frames() {
        let c = shipped_capsule(1);
        let code = c.code_size_bytes();
        let img = CapsuleImage {
            capsule: c,
            vars: vec![0.0; 32],
            advertised_digest: 0,
            pad_bytes: 0,
        };
        assert_eq!(img.size_bytes(), code + 32 * 8 + 32);
        assert_eq!(img.task_image().size_bytes(), img.size_bytes() + 32);
        let padded = CapsuleImage {
            pad_bytes: 4096,
            ..img.clone()
        };
        assert!(padded.frames() > img.frames());
        assert_eq!(
            img.frames(),
            frames_needed(img.size_bytes(), chunk_capacity())
        );
        assert!(chunk_capacity() < max_payload());
    }
}
