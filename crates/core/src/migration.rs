//! Task migration (§3.1.1 op 1, §4).
//!
//! "This operation includes a capabilities check and the migration of the
//! task control block, stack, data and timing/precedence-related
//! metadata." The image is fragmented into RT-Link frames, sent one per
//! owned slot with per-frame acknowledgment and retransmission, and the
//! task activates on the target only after the final chunk verifies.
//!
//! [`MigrationPlan`] gives the analytic lower bound (no losses);
//! [`execute_migration`] samples an actual lossy run — experiment E8
//! sweeps both against image size and link quality.

use evm_netsim::frame::{frames_needed, max_payload};
use evm_rtos::TaskImage;
use evm_sim::{SimDuration, SimRng};

use crate::error::EvmError;

/// Analytic migration plan over a TDMA schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct MigrationPlan {
    /// Total image bytes (TCB registers + stack + data + metadata).
    pub image_bytes: usize,
    /// Frames required.
    pub frames: usize,
    /// Slots available to the migration per TDMA cycle.
    pub slots_per_cycle: usize,
    /// TDMA cycle length.
    pub cycle: SimDuration,
    /// Loss-free transfer duration (ceil(frames / slots) cycles), plus one
    /// cycle for the capability-check handshake and one for activation.
    pub duration: SimDuration,
}

impl MigrationPlan {
    /// Plans a migration of `image` over `slots_per_cycle` dedicated slots
    /// in a TDMA cycle of length `cycle`.
    ///
    /// # Panics
    ///
    /// Panics if `slots_per_cycle` is zero.
    #[must_use]
    pub fn new(image: &TaskImage, slots_per_cycle: usize, cycle: SimDuration) -> Self {
        assert!(slots_per_cycle > 0, "need at least one slot per cycle");
        let image_bytes = image.size_bytes();
        let frames = frames_needed(image_bytes, max_payload());
        let transfer_cycles = frames.div_ceil(slots_per_cycle) as u64;
        // +1 cycle capability-check handshake, +1 cycle activation ack.
        let duration = cycle * (transfer_cycles + 2);
        MigrationPlan {
            image_bytes,
            frames,
            slots_per_cycle,
            cycle,
            duration,
        }
    }
}

/// Result of a sampled (lossy) migration execution.
#[derive(Debug, Clone, PartialEq)]
pub struct MigrationOutcome {
    /// Total frames transmitted, including retransmissions.
    pub frames_sent: usize,
    /// Retransmissions among those.
    pub retries: usize,
    /// Wall-clock duration from initiation to activation.
    pub duration: SimDuration,
}

/// Executes a migration over a lossy link: each owned slot carries one
/// (re)transmission; a chunk is re-sent until acknowledged. `loss` is the
/// per-frame loss probability (applied independently to data and ack).
///
/// # Errors
///
/// [`EvmError::MigrationTimeout`] if any chunk exceeds `max_retries`.
pub fn execute_migration(
    plan: &MigrationPlan,
    loss: f64,
    max_retries: usize,
    rng: &mut SimRng,
) -> Result<MigrationOutcome, EvmError> {
    let mut frames_sent = 0usize;
    let mut retries = 0usize;
    let mut slots_elapsed = 0u64;

    for chunk in 0..plan.frames {
        let mut attempts = 0usize;
        loop {
            frames_sent += 1;
            slots_elapsed += 1;
            attempts += 1;
            let data_ok = !rng.chance(loss);
            let ack_ok = !rng.chance(loss);
            if data_ok && ack_ok {
                break;
            }
            retries += 1;
            if attempts > max_retries {
                return Err(EvmError::MigrationTimeout {
                    frames_remaining: plan.frames - chunk,
                });
            }
        }
    }

    // Convert slots to wall-clock: slots_per_cycle usable slots per cycle.
    let cycles = slots_elapsed.div_ceil(plan.slots_per_cycle as u64);
    // Same +2 cycle overhead as the plan (handshake + activation).
    let duration = plan.cycle * (cycles + 2);
    Ok(MigrationOutcome {
        frames_sent,
        retries,
        duration,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycle() -> SimDuration {
        SimDuration::from_millis(250)
    }

    #[test]
    fn plan_for_typical_image() {
        // 384 B image over 116 B payloads = 4 frames; 1 slot/cycle ->
        // 4 cycles transfer + 2 overhead = 6 cycles = 1.5 s.
        let plan = MigrationPlan::new(&TaskImage::typical_control_task(), 1, cycle());
        assert_eq!(plan.image_bytes, 384);
        assert_eq!(plan.frames, 4);
        assert_eq!(plan.duration, SimDuration::from_millis(1_500));
    }

    #[test]
    fn more_slots_speed_up_transfer() {
        let img = TaskImage::with_sizes(32, 2048, 512, 64);
        let slow = MigrationPlan::new(&img, 1, cycle());
        let fast = MigrationPlan::new(&img, 4, cycle());
        assert!(fast.duration < slow.duration);
        assert_eq!(slow.frames, fast.frames, "frames depend only on size");
    }

    #[test]
    fn lossless_execution_matches_plan() {
        let plan = MigrationPlan::new(&TaskImage::typical_control_task(), 1, cycle());
        let mut rng = SimRng::seed_from(1);
        let out = execute_migration(&plan, 0.0, 10, &mut rng).unwrap();
        assert_eq!(out.frames_sent, plan.frames);
        assert_eq!(out.retries, 0);
        assert_eq!(out.duration, plan.duration);
    }

    #[test]
    fn loss_adds_retries_and_latency() {
        let plan = MigrationPlan::new(&TaskImage::with_sizes(64, 1024, 256, 64), 2, cycle());
        let mut rng = SimRng::seed_from(2);
        let clean = execute_migration(&plan, 0.0, 50, &mut rng).unwrap();
        let mut total_lossy = SimDuration::ZERO;
        let runs = 50;
        for _ in 0..runs {
            let lossy = execute_migration(&plan, 0.3, 200, &mut rng).unwrap();
            assert!(lossy.retries > 0 || lossy.frames_sent == plan.frames);
            total_lossy += lossy.duration;
        }
        assert!(
            total_lossy / runs > clean.duration,
            "30% loss must cost time on average"
        );
    }

    #[test]
    fn hopeless_link_times_out() {
        let plan = MigrationPlan::new(&TaskImage::typical_control_task(), 1, cycle());
        let mut rng = SimRng::seed_from(3);
        let err = execute_migration(&plan, 1.0, 5, &mut rng).unwrap_err();
        assert!(
            matches!(err, EvmError::MigrationTimeout { frames_remaining } if frames_remaining > 0)
        );
    }

    #[test]
    fn duration_scales_with_image_size() {
        let small = MigrationPlan::new(&TaskImage::with_sizes(16, 64, 16, 16), 1, cycle());
        let large = MigrationPlan::new(&TaskImage::with_sizes(32, 4096, 1024, 64), 1, cycle());
        assert!(large.duration > small.duration * 2);
    }
}
