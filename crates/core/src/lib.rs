//! The Embedded Virtual Machine (EVM).
//!
//! This crate is the paper's primary contribution: a distributed runtime
//! abstraction in which control tasks belong to a **Virtual Component** —
//! a logical entity spanning wireless sensor, actuator and controller
//! nodes — rather than to any physical node. The EVM keeps the control law
//! running, within its timeliness and safety envelope, while nodes fail,
//! links drop and the topology changes.
//!
//! Layout:
//!
//! * [`bytecode`] — the FORTH-like interpreter: ISA, stack machine with
//!   gas metering, text assembler, runtime-extensible instruction set,
//!   versioned capsules, and a compiler from PID control-law specs to
//!   bytecode,
//! * [`attest`] — software attestation for received code and data,
//! * [`roles`] / [`transfers`] / [`component`] — controller modes
//!   (Active / Backup / Dormant / Indicator), the five object-transfer
//!   relationship types, and the Virtual Component itself,
//! * [`membership`] — admission, head election and epochs,
//! * [`health`] — output-deviation and heartbeat fault detectors,
//! * [`arbitration`] — new-master selection,
//! * [`migration`] — the TCB + stack + data + metadata transfer protocol,
//! * [`taskops`] — gated task assignment / migration / partition /
//!   replication between kernels (§3.1.1 op 1),
//! * [`synthesis`] — logical-task → physical-node mapping and the binary
//!   quadratic programming runtime optimizer (§3.1.1 op 7),
//! * [`runtime`] — the co-simulation engine tying the plant, ModBus
//!   gateway, RT-Link network and EVM nodes together: a deterministic
//!   slot-pipeline driver over per-role node behaviors, configured by a
//!   topology DSL (the Fig. 5 testbed is one instance),
//! * [`metrics`] — QoS metrics extracted from runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arbitration;
pub mod attest;
pub mod bytecode;
pub mod component;
pub mod error;
pub mod health;
pub mod membership;
pub mod metrics;
pub mod migration;
pub mod roles;
pub mod runtime;
pub mod synthesis;
pub mod taskops;
pub mod transfers;

pub use arbitration::{select_master, Candidate};
pub use attest::{attest_capsule, AttestationKey, AttestationReport};
pub use bytecode::{Capsule, ControlLawSpec, Op, Program, Tier, Vm, VmEnv, VmError};
pub use component::{MemberInfo, VirtualComponent};
pub use error::EvmError;
pub use health::{DeviationDetector, FaultEvidence, HeartbeatMonitor};
pub use membership::{elect_head, HeadCandidate, HeartbeatLedger};
pub use metrics::{MigrationRecord, NodeEnergy, RunAggregate, RunMeta, RunResult, VcRunStats};
pub use migration::{admit_arrival, CapsuleImage, MigrationOutcome, MigrationPlan};
pub use roles::ControllerMode;
pub use runtime::{
    Engine, ReroutePolicy, Scenario, ScenarioBuilder, SlotStepping, TopologyError, TopologySpec,
    VcId, VcMap,
};
pub use synthesis::{Assignment, BqpInstance, SynthesisProblem};
pub use transfers::{FaultResponse, ObjectTransfer};
