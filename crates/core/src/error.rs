//! Crate-wide error type.

use std::fmt;

use evm_netsim::NodeId;

/// Errors surfaced by EVM operations.
#[derive(Debug, Clone, PartialEq)]
pub enum EvmError {
    /// Bytecode execution failed.
    Vm(crate::bytecode::VmError),
    /// Attestation of received code failed.
    AttestationFailed {
        /// What the verifier reported.
        reason: String,
    },
    /// The target node's kernel refused the task set.
    AdmissionRefused {
        /// The refusing node.
        node: NodeId,
        /// Kernel-level reason.
        reason: String,
    },
    /// A required capability is missing on the target node.
    MissingCapability {
        /// The node lacking the capability.
        node: NodeId,
        /// The capability in question.
        capability: String,
    },
    /// No candidate node could take over.
    NoViableMaster,
    /// A migration attempt exhausted its retry budget.
    MigrationTimeout {
        /// Frames that never got through, *including* the chunk that was
        /// in flight when the retry budget ran out.
        frames_remaining: usize,
        /// Retransmissions actually sent before giving up (the initial
        /// transmission of a chunk is not a retry).
        retries: usize,
    },
    /// A received capsule's version is not a strict upgrade over the
    /// resident one ("receivers only accept upgrades").
    StaleCapsule {
        /// Version carried by the arriving capsule.
        incoming: u16,
        /// Version already resident on the host.
        resident: u16,
    },
    /// A migration plan's parameters are unusable (e.g. zero transfer
    /// slots per cycle).
    InvalidMigrationPlan {
        /// What made the plan invalid.
        reason: String,
    },
    /// Referenced an unknown virtual-component member.
    UnknownMember(NodeId),
}

impl fmt::Display for EvmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvmError::Vm(e) => write!(f, "vm error: {e}"),
            EvmError::AttestationFailed { reason } => write!(f, "attestation failed: {reason}"),
            EvmError::AdmissionRefused { node, reason } => {
                write!(f, "admission refused on {node}: {reason}")
            }
            EvmError::MissingCapability { node, capability } => {
                write!(f, "{node} lacks capability {capability}")
            }
            EvmError::NoViableMaster => write!(f, "no viable master candidate"),
            EvmError::MigrationTimeout {
                frames_remaining,
                retries,
            } => {
                write!(
                    f,
                    "migration timed out with {frames_remaining} frames left after {retries} retries"
                )
            }
            EvmError::StaleCapsule { incoming, resident } => {
                write!(
                    f,
                    "capsule v{incoming} rejected: resident v{resident} (receivers only accept upgrades)"
                )
            }
            EvmError::InvalidMigrationPlan { reason } => {
                write!(f, "invalid migration plan: {reason}")
            }
            EvmError::UnknownMember(n) => write!(f, "unknown member {n}"),
        }
    }
}

impl std::error::Error for EvmError {}

impl From<crate::bytecode::VmError> for EvmError {
    fn from(e: crate::bytecode::VmError) -> Self {
        EvmError::Vm(e)
    }
}
