//! Run results and QoS metrics.

use std::collections::HashMap;

use evm_sim::{SimDuration, SimTime, TimeSeries, Trace};

/// Per-node radio energy summary for one run.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeEnergy {
    /// Average current over the run, mA.
    pub avg_current_ma: f64,
    /// Radio duty cycle (TX + RX + listen fraction of the run).
    pub radio_duty: f64,
    /// Projected lifetime on 2×AA at this average current, years.
    pub lifetime_years: f64,
}

/// Everything a co-simulation run produces: time series for the plotted
/// tags, the event trace, and derived QoS metrics.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Sampled plant tags by name (the Fig. 6b series among them).
    pub series: HashMap<String, TimeSeries>,
    /// The structured event log.
    pub trace: Trace,
    /// End-to-end sensor→actuator latencies observed (per actuation).
    pub e2e_latencies: Vec<SimDuration>,
    /// Control-cycle deadline misses (actuation later than the cycle).
    pub deadline_misses: usize,
    /// Total actuations delivered.
    pub actuations: usize,
    /// Radio energy accounting per node label (e.g. `"Ctrl-A"`).
    pub node_energy: HashMap<String, NodeEnergy>,
}

impl RunResult {
    /// A series by name.
    ///
    /// # Panics
    ///
    /// Panics if the tag was not sampled — the scenario must list it.
    #[must_use]
    pub fn series(&self, tag: &str) -> &TimeSeries {
        self.series
            .get(tag)
            .unwrap_or_else(|| panic!("tag {tag} was not sampled"))
    }

    /// Time of the first trace entry containing `needle`.
    #[must_use]
    pub fn event_time(&self, needle: &str) -> Option<SimTime> {
        self.trace.time_of(needle)
    }

    /// Quantile of the end-to-end latency distribution.
    #[must_use]
    pub fn e2e_quantile(&self, q: f64) -> Option<SimDuration> {
        if self.e2e_latencies.is_empty() {
            return None;
        }
        let mut v = self.e2e_latencies.clone();
        v.sort_unstable();
        let idx = ((v.len() - 1) as f64 * q).round() as usize;
        Some(v[idx])
    }

    /// Fraction of actuations that met the cycle deadline.
    #[must_use]
    pub fn deadline_hit_ratio(&self) -> f64 {
        if self.actuations == 0 {
            return 1.0;
        }
        1.0 - self.deadline_misses as f64 / self.actuations as f64
    }

    /// Integral squared error of a tag against a reference over a window —
    /// the control-cost metric of experiment E14.
    #[must_use]
    pub fn control_cost(&self, tag: &str, reference: f64, from: SimTime, to: SimTime) -> f64 {
        self.series(tag)
            .window(from, to)
            .integral_squared_error(reference)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result() -> RunResult {
        let mut series = HashMap::new();
        let mut s = TimeSeries::new("LTS.LiquidPct");
        for i in 0..10 {
            s.push(SimTime::from_secs(i), 50.0 + i as f64);
        }
        series.insert("LTS.LiquidPct".to_string(), s);
        let mut trace = Trace::new();
        trace.log(SimTime::from_secs(300), "fault", "inject stuck-75");
        trace.log(SimTime::from_secs(600), "vc", "promote n3");
        RunResult {
            series,
            trace,
            e2e_latencies: vec![
                SimDuration::from_millis(60),
                SimDuration::from_millis(70),
                SimDuration::from_millis(65),
                SimDuration::from_millis(90),
            ],
            deadline_misses: 1,
            actuations: 4,
            node_energy: HashMap::new(),
        }
    }

    #[test]
    fn event_lookup() {
        let r = result();
        assert_eq!(r.event_time("promote"), Some(SimTime::from_secs(600)));
        assert_eq!(r.event_time("nothing"), None);
    }

    #[test]
    fn latency_quantiles() {
        let r = result();
        assert_eq!(r.e2e_quantile(0.0), Some(SimDuration::from_millis(60)));
        assert_eq!(r.e2e_quantile(1.0), Some(SimDuration::from_millis(90)));
    }

    #[test]
    fn hit_ratio() {
        let r = result();
        assert!((r.deadline_hit_ratio() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn control_cost_windows() {
        let r = result();
        let full = r.control_cost("LTS.LiquidPct", 50.0, SimTime::ZERO, SimTime::from_secs(10));
        let early = r.control_cost("LTS.LiquidPct", 50.0, SimTime::ZERO, SimTime::from_secs(3));
        assert!(full > early);
    }

    #[test]
    #[should_panic(expected = "was not sampled")]
    fn missing_tag_panics() {
        let _ = result().series("nope");
    }
}
