//! Run results and QoS metrics.

use std::collections::HashMap;

use evm_netsim::NodeId;
use evm_sim::{SimDuration, SimTime, TimeSeries, Trace};

/// One completed live capsule migration: what moved, where, and what it
/// cost on the air. `latency` is the shipment clock — transfer start
/// (head re-election) to attested activation on the receiving host —
/// i.e. the measured Fig. 6b failover-latency contribution, a function
/// of image size × transfer-slot budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MigrationRecord {
    /// The migrating Virtual Component.
    pub vc: u16,
    /// Shipping node (the VC's primary replica).
    pub from: NodeId,
    /// Receiving node (the newly elected head).
    pub to: NodeId,
    /// Serialized image size, bytes (code + vars + metadata + padding).
    pub image_bytes: usize,
    /// Fragments the image split into.
    pub frames: usize,
    /// Frames actually put on the air, retransmissions included.
    pub frames_sent: usize,
    /// Retransmissions among those.
    pub retries: usize,
    /// Transfer start → attested activation.
    pub latency: SimDuration,
}

/// Per-node radio energy summary for one run.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeEnergy {
    /// Average current over the run, mA.
    pub avg_current_ma: f64,
    /// Radio duty cycle (TX + RX + listen fraction of the run).
    pub radio_duty: f64,
    /// Projected lifetime on 2×AA at this average current, years.
    pub lifetime_years: f64,
}

/// Identifying metadata of the run that produced a [`RunResult`] — the
/// cell bookkeeping a batch sweep needs to label, compare and merge
/// results without holding onto the full [`crate::runtime::Scenario`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunMeta {
    /// The scenario's RNG seed.
    pub seed: u64,
    /// Simulated horizon.
    pub duration: SimDuration,
    /// Number of nodes in the deployment.
    pub nodes: usize,
    /// Number of controller replicas across all VCs (1 + backups each).
    pub controllers: usize,
    /// Number of Virtual Components hosted on the shared cycle.
    pub vcs: usize,
}

impl RunMeta {
    /// A placeholder for hand-built results (tests, fixtures).
    #[must_use]
    pub fn unspecified() -> Self {
        RunMeta {
            seed: 0,
            duration: SimDuration::ZERO,
            nodes: 0,
            controllers: 0,
            vcs: 0,
        }
    }
}

/// Per-Virtual-Component QoS tallies of one run (index = `VcId`).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct VcRunStats {
    /// The hosted loop's name (e.g. `"LC-LTS"`).
    pub loop_name: String,
    /// Actuations this VC delivered to the plant.
    pub actuations: usize,
    /// This VC's control-cycle deadline misses.
    pub deadline_misses: usize,
    /// This VC's end-to-end sensor→actuator latencies.
    pub e2e_latencies: Vec<SimDuration>,
}

impl VcRunStats {
    /// Fraction of this VC's actuations that met the cycle deadline.
    #[must_use]
    pub fn deadline_hit_ratio(&self) -> f64 {
        if self.actuations == 0 {
            return 1.0;
        }
        1.0 - self.deadline_misses as f64 / self.actuations as f64
    }

    /// Nearest-rank quantile of this VC's end-to-end latencies.
    #[must_use]
    pub fn e2e_quantile(&self, q: f64) -> Option<SimDuration> {
        let mut v = self.e2e_latencies.clone();
        v.sort_unstable();
        quantile_sorted(&v, q)
    }
}

/// Nearest-rank quantile of an ascending-sorted sample — the one
/// convention every latency quantile in this crate (and the sweep
/// reports built on it) uses.
fn quantile_sorted(v: &[SimDuration], q: f64) -> Option<SimDuration> {
    if v.is_empty() {
        return None;
    }
    let idx = ((v.len() - 1) as f64 * q).round() as usize;
    Some(v[idx])
}

/// Linear merge of `src` (ascending) into `dst` (ascending) — O(n + m),
/// versus re-sorting the concatenation.
fn merge_sorted(dst: &mut Vec<SimDuration>, src: &[SimDuration]) {
    debug_assert!(dst.is_sorted() && src.is_sorted());
    let mut out = Vec::with_capacity(dst.len() + src.len());
    let (mut i, mut j) = (0, 0);
    while i < dst.len() && j < src.len() {
        if dst[i] <= src[j] {
            out.push(dst[i]);
            i += 1;
        } else {
            out.push(src[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&dst[i..]);
    out.extend_from_slice(&src[j..]);
    *dst = out;
}

/// Everything a co-simulation run produces: time series for the plotted
/// tags, the event trace, and derived QoS metrics.
///
/// Two results compare equal ([`PartialEq`]) exactly when every sampled
/// series, every trace entry and every derived metric agree — the
/// property the cross-thread reproducibility suite pins down.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// Which run produced this result (cell metadata for sweeps).
    pub meta: RunMeta,
    /// Sampled plant tags by name (the Fig. 6b series among them).
    pub series: HashMap<String, TimeSeries>,
    /// The structured event log.
    pub trace: Trace,
    /// End-to-end sensor→actuator latencies observed (per actuation).
    pub e2e_latencies: Vec<SimDuration>,
    /// Control-cycle deadline misses (actuation later than the cycle).
    pub deadline_misses: usize,
    /// Total actuations delivered.
    pub actuations: usize,
    /// Radio energy accounting per node label (e.g. `"Ctrl-A"`).
    pub node_energy: HashMap<String, NodeEnergy>,
    /// Per-VC QoS tallies, indexed by `VcId` (one entry per hosted VC;
    /// the global counters above are their sums).
    pub vc_stats: Vec<VcRunStats>,
    /// Configuration epochs committed during the run (0 = the static
    /// setup-time program ran unchanged).
    pub epochs: u64,
    /// Detection-to-recovery interval of the first runtime reconfiguration:
    /// from the first node marked down to the first actuation delivered
    /// after the recomputed epoch was committed. `None` when nothing was
    /// marked down (or delivery never resumed).
    pub reroute_latency: Option<SimDuration>,
    /// Live capsule migrations completed during the run, in completion
    /// order (empty unless the scenario reserved transfer slots and a
    /// head re-election shipped a capsule).
    pub migrations: Vec<MigrationRecord>,
}

impl RunResult {
    /// A series by name.
    ///
    /// # Panics
    ///
    /// Panics if the tag was not sampled — the scenario must list it.
    #[must_use]
    pub fn series(&self, tag: &str) -> &TimeSeries {
        self.series
            .get(tag)
            .unwrap_or_else(|| panic!("tag {tag} was not sampled"))
    }

    /// Time of the first trace entry containing `needle`.
    #[must_use]
    pub fn event_time(&self, needle: &str) -> Option<SimTime> {
        self.trace.time_of(needle)
    }

    /// Nearest-rank quantile of the end-to-end latency distribution.
    #[must_use]
    pub fn e2e_quantile(&self, q: f64) -> Option<SimDuration> {
        let mut v = self.e2e_latencies.clone();
        v.sort_unstable();
        quantile_sorted(&v, q)
    }

    /// Fraction of actuations that met the cycle deadline.
    #[must_use]
    pub fn deadline_hit_ratio(&self) -> f64 {
        if self.actuations == 0 {
            return 1.0;
        }
        1.0 - self.deadline_misses as f64 / self.actuations as f64
    }

    /// Integral squared error of a tag against a reference over a window —
    /// the control-cost metric of experiment E14.
    #[must_use]
    pub fn control_cost(&self, tag: &str, reference: f64, from: SimTime, to: SimTime) -> f64 {
        self.series(tag)
            .window(from, to)
            .integral_squared_error(reference)
    }

    /// Mean radio current across nodes in label order (deterministic
    /// regardless of the map's iteration order), mA. `None` for results
    /// without energy accounting.
    #[must_use]
    pub fn mean_node_current_ma(&self) -> Option<f64> {
        if self.node_energy.is_empty() {
            return None;
        }
        let mut labels: Vec<&String> = self.node_energy.keys().collect();
        labels.sort();
        let sum: f64 = labels
            .iter()
            .map(|l| self.node_energy[*l].avg_current_ma)
            .sum();
        Some(sum / labels.len() as f64)
    }

    /// Header matching [`RunResult::csv_row`] (serde-free CSV dumps for
    /// tests and sweep reports).
    #[must_use]
    pub fn csv_header() -> &'static str {
        "seed,nodes,controllers,vcs,actuations,deadline_misses,hit_ratio,e2e_p50_ms,e2e_p99_ms,mean_current_ma"
    }

    /// One fixed-precision CSV row of the derived metrics. Deterministic:
    /// the same result always renders the same bytes.
    #[must_use]
    pub fn csv_row(&self) -> String {
        let q = |p: f64| {
            self.e2e_quantile(p).map_or_else(
                || "nan".to_string(),
                |d| format!("{:.3}", d.as_secs_f64() * 1e3),
            )
        };
        format!(
            "{},{},{},{},{},{},{:.6},{},{},{}",
            self.meta.seed,
            self.meta.nodes,
            self.meta.controllers,
            self.meta.vcs,
            self.actuations,
            self.deadline_misses,
            self.deadline_hit_ratio(),
            q(0.5),
            q(0.99),
            self.mean_node_current_ma()
                .map_or_else(|| "nan".to_string(), |c| format!("{c:.4}")),
        )
    }
}

/// An order-independent, mergeable aggregate over many [`RunResult`]s.
///
/// Counts add; pooled latencies are kept as a multiset and sorted before
/// every quantile query — so `merge(a, b) == merge(b, a)` and absorbing
/// results in any order produces the same aggregate. This is what lets a
/// multi-threaded sweep reduce per-cell results without caring which
/// worker finished first.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunAggregate {
    /// Number of runs absorbed.
    pub runs: usize,
    /// Total actuations across runs.
    pub actuations: usize,
    /// Total deadline misses across runs.
    pub deadline_misses: usize,
    /// Pooled end-to-end latencies (kept sorted).
    pub e2e_pooled: Vec<SimDuration>,
}

impl RunAggregate {
    /// An empty aggregate.
    #[must_use]
    pub fn new() -> Self {
        RunAggregate::default()
    }

    /// Folds one run into the aggregate.
    pub fn absorb(&mut self, r: &RunResult) {
        self.runs += 1;
        self.actuations += r.actuations;
        self.deadline_misses += r.deadline_misses;
        let mut incoming = r.e2e_latencies.clone();
        incoming.sort_unstable();
        merge_sorted(&mut self.e2e_pooled, &incoming);
    }

    /// Merges two aggregates; commutative and associative.
    #[must_use]
    pub fn merge(mut self, other: RunAggregate) -> RunAggregate {
        self.runs += other.runs;
        self.actuations += other.actuations;
        self.deadline_misses += other.deadline_misses;
        merge_sorted(&mut self.e2e_pooled, &other.e2e_pooled);
        self
    }

    /// Pooled deadline hit ratio.
    #[must_use]
    pub fn deadline_hit_ratio(&self) -> f64 {
        if self.actuations == 0 {
            return 1.0;
        }
        1.0 - self.deadline_misses as f64 / self.actuations as f64
    }

    /// Nearest-rank quantile of the pooled end-to-end latencies.
    #[must_use]
    pub fn e2e_quantile(&self, q: f64) -> Option<SimDuration> {
        quantile_sorted(&self.e2e_pooled, q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result() -> RunResult {
        let mut series = HashMap::new();
        let mut s = TimeSeries::new("LTS.LiquidPct");
        for i in 0..10 {
            s.push(SimTime::from_secs(i), 50.0 + i as f64);
        }
        series.insert("LTS.LiquidPct".to_string(), s);
        let mut trace = Trace::new();
        trace.log(SimTime::from_secs(300), "fault", "inject stuck-75");
        trace.log(SimTime::from_secs(600), "vc", "promote n3");
        RunResult {
            meta: RunMeta {
                seed: 9,
                duration: SimDuration::from_secs(10),
                nodes: 7,
                controllers: 2,
                vcs: 1,
            },
            series,
            trace,
            e2e_latencies: vec![
                SimDuration::from_millis(60),
                SimDuration::from_millis(70),
                SimDuration::from_millis(65),
                SimDuration::from_millis(90),
            ],
            deadline_misses: 1,
            actuations: 4,
            node_energy: HashMap::new(),
            epochs: 0,
            reroute_latency: None,
            migrations: Vec::new(),
            vc_stats: vec![VcRunStats {
                loop_name: "LC-LTS".into(),
                actuations: 4,
                deadline_misses: 1,
                e2e_latencies: vec![
                    SimDuration::from_millis(60),
                    SimDuration::from_millis(70),
                    SimDuration::from_millis(65),
                    SimDuration::from_millis(90),
                ],
            }],
        }
    }

    #[test]
    fn event_lookup() {
        let r = result();
        assert_eq!(r.event_time("promote"), Some(SimTime::from_secs(600)));
        assert_eq!(r.event_time("nothing"), None);
    }

    #[test]
    fn latency_quantiles() {
        let r = result();
        assert_eq!(r.e2e_quantile(0.0), Some(SimDuration::from_millis(60)));
        assert_eq!(r.e2e_quantile(1.0), Some(SimDuration::from_millis(90)));
    }

    #[test]
    fn hit_ratio() {
        let r = result();
        assert!((r.deadline_hit_ratio() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn control_cost_windows() {
        let r = result();
        let full = r.control_cost("LTS.LiquidPct", 50.0, SimTime::ZERO, SimTime::from_secs(10));
        let early = r.control_cost("LTS.LiquidPct", 50.0, SimTime::ZERO, SimTime::from_secs(3));
        assert!(full > early);
    }

    #[test]
    #[should_panic(expected = "was not sampled")]
    fn missing_tag_panics() {
        let _ = result().series("nope");
    }

    #[test]
    fn results_compare_equal_only_when_identical() {
        let a = result();
        let b = result();
        assert_eq!(a, b);
        let mut c = result();
        c.actuations += 1;
        assert_ne!(a, c);
        let mut d = result();
        d.trace.log(SimTime::from_secs(700), "vc", "extra entry");
        assert_ne!(a, d);
    }

    #[test]
    fn csv_row_is_deterministic_and_matches_header() {
        let r = result();
        let row = r.csv_row();
        assert_eq!(row, r.clone().csv_row());
        assert_eq!(
            row.split(',').count(),
            RunResult::csv_header().split(',').count()
        );
        assert!(row.starts_with("9,7,2,1,4,1,0.750000,"));
    }

    #[test]
    fn aggregate_merge_is_order_independent() {
        let r1 = result();
        let mut r2 = result();
        r2.e2e_latencies = vec![SimDuration::from_millis(10), SimDuration::from_millis(200)];
        r2.actuations = 2;
        r2.deadline_misses = 0;

        let mut ab = RunAggregate::new();
        ab.absorb(&r1);
        ab.absorb(&r2);
        let mut ba = RunAggregate::new();
        ba.absorb(&r2);
        ba.absorb(&r1);
        assert_eq!(ab, ba);

        let mut a = RunAggregate::new();
        a.absorb(&r1);
        let mut b = RunAggregate::new();
        b.absorb(&r2);
        assert_eq!(a.clone().merge(b.clone()), b.merge(a));

        assert_eq!(ab.runs, 2);
        assert_eq!(ab.actuations, 6);
        assert_eq!(ab.e2e_quantile(0.0), Some(SimDuration::from_millis(10)));
        assert_eq!(ab.e2e_quantile(1.0), Some(SimDuration::from_millis(200)));
        assert!((ab.deadline_hit_ratio() - 5.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn mean_current_uses_label_order() {
        let mut r = result();
        assert_eq!(r.mean_node_current_ma(), None);
        for (label, ma) in [("b", 2.0), ("a", 1.0), ("c", 6.0)] {
            r.node_energy.insert(
                label.to_string(),
                NodeEnergy {
                    avg_current_ma: ma,
                    radio_duty: 0.1,
                    lifetime_years: 1.0,
                },
            );
        }
        assert!((r.mean_node_current_ma().unwrap() - 3.0).abs() < 1e-12);
    }
}
