//! Membership and admission (§3.1.1 op 6), head election and liveness
//! bookkeeping.
//!
//! "The membership of a Virtual Component is not fixed. If new nodes are
//! present they are admitted to the Virtual Component." Admission is the
//! safety gate sequence: attestation of the node's capsules → capability
//! check → kernel admission (reserves + schedulability). A node that
//! fails any step is not admitted, and the component is unchanged.
//!
//! Two further membership primitives back the runtime's reconfiguration
//! plane: [`elect_head`] picks a replacement head deterministically
//! (fittest candidate, lowest id on ties — every observer of the same
//! candidate set elects the same head with no extra messages), and the
//! [`HeartbeatLedger`] tracks per-node transmission liveness in RT-Link
//! cycle counts — never wall-clock — so silence detection is exactly
//! reproducible across runs and thread counts.

use std::collections::{BTreeMap, BTreeSet};

use evm_netsim::{NodeId, NodeKind};
use evm_rtos::Kernel;

use crate::attest::{attest_capsule, AttestationKey};
use crate::bytecode::{Capability, Capsule};
use crate::component::{MemberInfo, VirtualComponent};
use crate::error::EvmError;

/// Capabilities a node advertises when joining.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeProfile {
    /// The joining node.
    pub node: NodeId,
    /// Physical role.
    pub kind: NodeKind,
    /// Sensor ports wired on this node.
    pub sensor_ports: Vec<u8>,
    /// Actuator ports wired on this node.
    pub actuator_ports: Vec<u8>,
    /// Whether the node may host controller tasks.
    pub controller_capable: bool,
}

impl NodeProfile {
    /// `true` if this node satisfies `cap`.
    #[must_use]
    pub fn satisfies(&self, cap: &Capability) -> bool {
        match cap {
            Capability::SensorPort(p) => self.sensor_ports.contains(p),
            Capability::ActuatorPort(p) => self.actuator_ports.contains(p),
            Capability::ControllerRole => self.controller_capable,
            Capability::DataPlane => true,
        }
    }

    /// `true` if all of `caps` are satisfied.
    #[must_use]
    pub fn satisfies_all(&self, caps: &[Capability]) -> bool {
        caps.iter().all(|c| self.satisfies(c))
    }
}

/// Admits `profile` into `vc`, hosting `capsule` on the node's `kernel`.
///
/// Runs the full gate: attestation (against `advertised_digest` under the
/// component `key`), capability check, then kernel admission of the
/// capsule's task (WCET = gas budget × instruction cost at the capsule's
/// period).
///
/// # Errors
///
/// [`EvmError::AttestationFailed`], [`EvmError::MissingCapability`] or
/// [`EvmError::AdmissionRefused`]; the component and kernel are unchanged
/// on error.
pub fn admit_node(
    vc: &mut VirtualComponent,
    kernel: &mut Kernel,
    profile: &NodeProfile,
    capsule: &Capsule,
    advertised_digest: u64,
    key: AttestationKey,
    task_period: evm_sim::SimDuration,
) -> Result<(), EvmError> {
    // 1. Attestation.
    let report = attest_capsule(capsule, advertised_digest, key);
    if !report.passed() {
        return Err(EvmError::AttestationFailed {
            reason: format!(
                "integrity_ok={} digest_ok={}",
                report.integrity_ok, report.digest_ok
            ),
        });
    }
    // 2. Capabilities.
    if let Some(missing) = capsule.capabilities.iter().find(|c| !profile.satisfies(c)) {
        return Err(EvmError::MissingCapability {
            node: profile.node,
            capability: missing.to_string(),
        });
    }
    // 3. Kernel admission (reserves + schedulability).
    let wcet = kernel.instr_cost() * capsule.gas_budget;
    let spec = evm_rtos::TaskSpec::new(format!("{}", capsule.id), wcet, task_period);
    kernel
        .admit(spec, evm_rtos::TaskImage::typical_control_task(), None)
        .map_err(|e| EvmError::AdmissionRefused {
            node: profile.node,
            reason: e.to_string(),
        })?;
    // 4. Commit membership.
    vc.add_member(MemberInfo {
        node: profile.node,
        kind: profile.kind,
        mode: None,
        capsules: vec![capsule.id],
    });
    Ok(())
}

/// One contender for a Virtual Component's head role.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HeadCandidate {
    /// The candidate node.
    pub node: NodeId,
    /// `false` excludes the candidate outright (crashed, suspected, or
    /// carrying the Active task — the head must be free to supervise).
    pub eligible: bool,
    /// Fitness in `[0, 1]` (e.g. remaining battery). Compared first;
    /// non-finite values are treated as zero so a corrupt report can
    /// never win an election.
    pub fitness: f64,
}

/// Deterministic head election over a candidate set: the eligible
/// candidate with the highest fitness wins, and on equal fitness the
/// **lowest node id** wins. Order of the input slice is irrelevant, no
/// randomness, no wall-clock — every replica folding the same candidates
/// elects the same head.
#[must_use]
pub fn elect_head(candidates: &[HeadCandidate]) -> Option<NodeId> {
    let score = |c: &HeadCandidate| {
        if c.fitness.is_finite() {
            c.fitness.max(0.0)
        } else {
            0.0
        }
    };
    candidates
        .iter()
        .filter(|c| c.eligible)
        .fold(None::<&HeadCandidate>, |best, c| match best {
            None => Some(c),
            Some(b) => {
                let (sb, sc) = (score(b), score(c));
                if sc > sb || (sc == sb && c.node < b.node) {
                    Some(c)
                } else {
                    Some(b)
                }
            }
        })
        .map(|c| c.node)
}

/// Per-node transmission liveness in RT-Link cycle counts.
///
/// The runtime stamps the ledger whenever a node actually puts a frame
/// on the air; [`HeartbeatLedger::silent`] then answers "has this node
/// been quiet longer than the timeout?" purely from cycle arithmetic.
/// Staleness hardening: a node never heard from is *not* silent (the
/// same never-heard-≠-dead convention as
/// [`crate::health::HeartbeatMonitor`]), a stamp from a future cycle
/// (clock skew across an epoch swap) saturates instead of underflowing,
/// and marking a node down is sticky until it is explicitly revived.
#[derive(Debug, Clone, Default)]
pub struct HeartbeatLedger {
    last_heard: BTreeMap<NodeId, u64>,
    down: BTreeSet<NodeId>,
}

impl HeartbeatLedger {
    /// An empty ledger.
    #[must_use]
    pub fn new() -> Self {
        HeartbeatLedger::default()
    }

    /// Records a transmission by `node` in `cycle`. Later stamps win;
    /// an out-of-order earlier stamp never rolls liveness back.
    pub fn heard(&mut self, node: NodeId, cycle: u64) {
        let e = self.last_heard.entry(node).or_insert(cycle);
        *e = (*e).max(cycle);
    }

    /// `true` if `node` was heard at least once and has then been silent
    /// for strictly more than `timeout_cycles` cycles at `now_cycle`.
    #[must_use]
    pub fn silent(&self, node: NodeId, now_cycle: u64, timeout_cycles: u64) -> bool {
        match self.last_heard.get(&node) {
            Some(&last) => now_cycle.saturating_sub(last) > timeout_cycles,
            None => false,
        }
    }

    /// Marks `node` down (sticky). Returns `true` if it was newly marked.
    pub fn mark_down(&mut self, node: NodeId) -> bool {
        self.down.insert(node)
    }

    /// `true` if `node` has been marked down.
    #[must_use]
    pub fn is_down(&self, node: NodeId) -> bool {
        self.down.contains(&node)
    }

    /// All nodes marked down, in id order.
    #[must_use]
    pub fn down_nodes(&self) -> Vec<NodeId> {
        self.down.iter().copied().collect()
    }

    /// The cycle `node` was last heard in, if ever.
    #[must_use]
    pub fn last_heard(&self, node: NodeId) -> Option<u64> {
        self.last_heard.get(&node).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attest::capsule_digest;
    use crate::bytecode::{CapsuleId, Op, Program};
    use evm_sim::SimDuration;

    const KEY: AttestationKey = AttestationKey(0x5EED);

    fn capsule() -> Capsule {
        Capsule::new(
            CapsuleId(4),
            1,
            Program::new(vec![Op::ReadSensor(0), Op::WriteActuator(0), Op::Halt]),
            64,
            vec![
                Capability::SensorPort(0),
                Capability::ActuatorPort(0),
                Capability::ControllerRole,
            ],
        )
    }

    fn profile(id: u16) -> NodeProfile {
        NodeProfile {
            node: NodeId(id),
            kind: NodeKind::Controller,
            sensor_ports: vec![0],
            actuator_ports: vec![0],
            controller_capable: true,
        }
    }

    #[test]
    fn full_gate_admits_good_node() {
        let mut vc = VirtualComponent::new("vc");
        let mut kernel = Kernel::new("n5");
        let c = capsule();
        let digest = capsule_digest(&c, KEY);
        admit_node(
            &mut vc,
            &mut kernel,
            &profile(5),
            &c,
            digest,
            KEY,
            SimDuration::from_millis(250),
        )
        .unwrap();
        assert_eq!(vc.len(), 1);
        assert!(vc.member(NodeId(5)).is_some());
        assert_eq!(kernel.tcbs().len(), 1);
    }

    #[test]
    fn bad_digest_rejected_before_any_commit() {
        let mut vc = VirtualComponent::new("vc");
        let mut kernel = Kernel::new("n5");
        let c = capsule();
        let err = admit_node(
            &mut vc,
            &mut kernel,
            &profile(5),
            &c,
            0xBAD,
            KEY,
            SimDuration::from_millis(250),
        )
        .unwrap_err();
        assert!(matches!(err, EvmError::AttestationFailed { .. }));
        assert!(vc.is_empty());
        assert!(kernel.tcbs().is_empty());
    }

    #[test]
    fn missing_capability_rejected() {
        let mut vc = VirtualComponent::new("vc");
        let mut kernel = Kernel::new("n6");
        let c = capsule();
        let digest = capsule_digest(&c, KEY);
        let mut p = profile(6);
        p.actuator_ports.clear();
        let err = admit_node(
            &mut vc,
            &mut kernel,
            &p,
            &c,
            digest,
            KEY,
            SimDuration::from_millis(250),
        )
        .unwrap_err();
        assert!(matches!(err, EvmError::MissingCapability { .. }));
        assert!(vc.is_empty());
    }

    #[test]
    fn overloaded_kernel_refuses() {
        let mut vc = VirtualComponent::new("vc");
        let mut kernel = Kernel::new("n7");
        // Saturate the kernel first.
        kernel
            .admit(
                evm_rtos::TaskSpec::new(
                    "hog",
                    SimDuration::from_millis(240),
                    SimDuration::from_millis(250),
                ),
                evm_rtos::TaskImage::typical_control_task(),
                None,
            )
            .unwrap();
        let mut c = capsule();
        c.gas_budget = 50_000; // 50 ms at 1 us/insn
        let digest = capsule_digest(&c, KEY);
        let err = admit_node(
            &mut vc,
            &mut kernel,
            &profile(7),
            &c,
            digest,
            KEY,
            SimDuration::from_millis(250),
        )
        .unwrap_err();
        assert!(matches!(err, EvmError::AdmissionRefused { .. }));
        assert!(vc.is_empty());
        assert_eq!(kernel.tcbs().len(), 1, "only the hog remains");
    }

    #[test]
    fn profile_capability_logic() {
        let p = profile(1);
        assert!(p.satisfies(&Capability::DataPlane));
        assert!(p.satisfies_all(&capsule().capabilities));
        assert!(!p.satisfies(&Capability::SensorPort(9)));
    }

    fn cand(id: u16, eligible: bool, fitness: f64) -> HeadCandidate {
        HeadCandidate {
            node: NodeId(id),
            eligible,
            fitness,
        }
    }

    #[test]
    fn elect_head_prefers_fitness_then_lowest_id() {
        let got = elect_head(&[cand(5, true, 0.4), cand(3, true, 0.9), cand(7, true, 0.9)]);
        assert_eq!(got, Some(NodeId(3)), "equal fitness: lowest id wins");
        let got = elect_head(&[cand(2, true, 0.1), cand(9, true, 0.8)]);
        assert_eq!(got, Some(NodeId(9)), "fitness dominates id");
    }

    #[test]
    fn elect_head_is_input_order_independent() {
        let a = [cand(4, true, 0.5), cand(2, true, 0.5), cand(6, true, 0.5)];
        let mut b = a;
        b.reverse();
        assert_eq!(elect_head(&a), elect_head(&b));
        assert_eq!(elect_head(&a), Some(NodeId(2)));
    }

    #[test]
    fn elect_head_skips_ineligible_and_handles_empty() {
        assert_eq!(elect_head(&[]), None);
        assert_eq!(elect_head(&[cand(1, false, 1.0)]), None);
        let got = elect_head(&[cand(1, false, 1.0), cand(8, true, 0.2)]);
        assert_eq!(got, Some(NodeId(8)));
    }

    #[test]
    fn elect_head_treats_non_finite_fitness_as_zero() {
        let got = elect_head(&[
            cand(4, true, f64::NAN),
            cand(9, true, 0.1),
            cand(2, true, f64::INFINITY),
        ]);
        assert_eq!(got, Some(NodeId(9)), "corrupt fitness never wins");
        // All-corrupt set still elects deterministically by id.
        let got = elect_head(&[cand(7, true, f64::NAN), cand(3, true, -1.0)]);
        assert_eq!(got, Some(NodeId(3)));
    }

    #[test]
    fn ledger_silence_needs_a_first_stamp() {
        let ledger = HeartbeatLedger::new();
        assert!(
            !ledger.silent(NodeId(4), 1_000, 16),
            "never heard is not dead"
        );
    }

    #[test]
    fn ledger_silence_is_cycle_arithmetic() {
        let mut ledger = HeartbeatLedger::new();
        ledger.heard(NodeId(4), 10);
        assert!(!ledger.silent(NodeId(4), 26, 16), "exactly at timeout");
        assert!(ledger.silent(NodeId(4), 27, 16), "one past timeout");
        ledger.heard(NodeId(4), 27);
        assert!(!ledger.silent(NodeId(4), 40, 16));
    }

    #[test]
    fn ledger_stamps_never_roll_back_and_future_stamps_saturate() {
        let mut ledger = HeartbeatLedger::new();
        ledger.heard(NodeId(4), 50);
        ledger.heard(NodeId(4), 20); // out-of-order replay
        assert_eq!(ledger.last_heard(NodeId(4)), Some(50));
        // A stamp "from the future" (cycle counter ahead of the query)
        // saturates to not-silent instead of underflowing.
        assert!(!ledger.silent(NodeId(4), 40, 16));
    }

    #[test]
    fn ledger_down_marks_are_sticky() {
        let mut ledger = HeartbeatLedger::new();
        assert!(ledger.mark_down(NodeId(6)));
        assert!(!ledger.mark_down(NodeId(6)), "already down");
        assert!(ledger.is_down(NodeId(6)));
        ledger.mark_down(NodeId(2));
        assert_eq!(ledger.down_nodes(), vec![NodeId(2), NodeId(6)]);
        ledger.heard(NodeId(6), 99);
        assert!(ledger.is_down(NodeId(6)), "a stamp does not revive");
    }
}
