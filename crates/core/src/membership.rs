//! Membership and admission (§3.1.1 op 6).
//!
//! "The membership of a Virtual Component is not fixed. If new nodes are
//! present they are admitted to the Virtual Component." Admission is the
//! safety gate sequence: attestation of the node's capsules → capability
//! check → kernel admission (reserves + schedulability). A node that
//! fails any step is not admitted, and the component is unchanged.

use evm_netsim::{NodeId, NodeKind};
use evm_rtos::Kernel;

use crate::attest::{attest_capsule, AttestationKey};
use crate::bytecode::{Capability, Capsule};
use crate::component::{MemberInfo, VirtualComponent};
use crate::error::EvmError;

/// Capabilities a node advertises when joining.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeProfile {
    /// The joining node.
    pub node: NodeId,
    /// Physical role.
    pub kind: NodeKind,
    /// Sensor ports wired on this node.
    pub sensor_ports: Vec<u8>,
    /// Actuator ports wired on this node.
    pub actuator_ports: Vec<u8>,
    /// Whether the node may host controller tasks.
    pub controller_capable: bool,
}

impl NodeProfile {
    /// `true` if this node satisfies `cap`.
    #[must_use]
    pub fn satisfies(&self, cap: &Capability) -> bool {
        match cap {
            Capability::SensorPort(p) => self.sensor_ports.contains(p),
            Capability::ActuatorPort(p) => self.actuator_ports.contains(p),
            Capability::ControllerRole => self.controller_capable,
            Capability::DataPlane => true,
        }
    }

    /// `true` if all of `caps` are satisfied.
    #[must_use]
    pub fn satisfies_all(&self, caps: &[Capability]) -> bool {
        caps.iter().all(|c| self.satisfies(c))
    }
}

/// Admits `profile` into `vc`, hosting `capsule` on the node's `kernel`.
///
/// Runs the full gate: attestation (against `advertised_digest` under the
/// component `key`), capability check, then kernel admission of the
/// capsule's task (WCET = gas budget × instruction cost at the capsule's
/// period).
///
/// # Errors
///
/// [`EvmError::AttestationFailed`], [`EvmError::MissingCapability`] or
/// [`EvmError::AdmissionRefused`]; the component and kernel are unchanged
/// on error.
pub fn admit_node(
    vc: &mut VirtualComponent,
    kernel: &mut Kernel,
    profile: &NodeProfile,
    capsule: &Capsule,
    advertised_digest: u64,
    key: AttestationKey,
    task_period: evm_sim::SimDuration,
) -> Result<(), EvmError> {
    // 1. Attestation.
    let report = attest_capsule(capsule, advertised_digest, key);
    if !report.passed() {
        return Err(EvmError::AttestationFailed {
            reason: format!(
                "integrity_ok={} digest_ok={}",
                report.integrity_ok, report.digest_ok
            ),
        });
    }
    // 2. Capabilities.
    if let Some(missing) = capsule.capabilities.iter().find(|c| !profile.satisfies(c)) {
        return Err(EvmError::MissingCapability {
            node: profile.node,
            capability: missing.to_string(),
        });
    }
    // 3. Kernel admission (reserves + schedulability).
    let wcet = kernel.instr_cost() * capsule.gas_budget;
    let spec = evm_rtos::TaskSpec::new(format!("{}", capsule.id), wcet, task_period);
    kernel
        .admit(spec, evm_rtos::TaskImage::typical_control_task(), None)
        .map_err(|e| EvmError::AdmissionRefused {
            node: profile.node,
            reason: e.to_string(),
        })?;
    // 4. Commit membership.
    vc.add_member(MemberInfo {
        node: profile.node,
        kind: profile.kind,
        mode: None,
        capsules: vec![capsule.id],
    });
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attest::capsule_digest;
    use crate::bytecode::{CapsuleId, Op, Program};
    use evm_sim::SimDuration;

    const KEY: AttestationKey = AttestationKey(0x5EED);

    fn capsule() -> Capsule {
        Capsule::new(
            CapsuleId(4),
            1,
            Program::new(vec![Op::ReadSensor(0), Op::WriteActuator(0), Op::Halt]),
            64,
            vec![
                Capability::SensorPort(0),
                Capability::ActuatorPort(0),
                Capability::ControllerRole,
            ],
        )
    }

    fn profile(id: u16) -> NodeProfile {
        NodeProfile {
            node: NodeId(id),
            kind: NodeKind::Controller,
            sensor_ports: vec![0],
            actuator_ports: vec![0],
            controller_capable: true,
        }
    }

    #[test]
    fn full_gate_admits_good_node() {
        let mut vc = VirtualComponent::new("vc");
        let mut kernel = Kernel::new("n5");
        let c = capsule();
        let digest = capsule_digest(&c, KEY);
        admit_node(
            &mut vc,
            &mut kernel,
            &profile(5),
            &c,
            digest,
            KEY,
            SimDuration::from_millis(250),
        )
        .unwrap();
        assert_eq!(vc.len(), 1);
        assert!(vc.member(NodeId(5)).is_some());
        assert_eq!(kernel.tcbs().len(), 1);
    }

    #[test]
    fn bad_digest_rejected_before_any_commit() {
        let mut vc = VirtualComponent::new("vc");
        let mut kernel = Kernel::new("n5");
        let c = capsule();
        let err = admit_node(
            &mut vc,
            &mut kernel,
            &profile(5),
            &c,
            0xBAD,
            KEY,
            SimDuration::from_millis(250),
        )
        .unwrap_err();
        assert!(matches!(err, EvmError::AttestationFailed { .. }));
        assert!(vc.is_empty());
        assert!(kernel.tcbs().is_empty());
    }

    #[test]
    fn missing_capability_rejected() {
        let mut vc = VirtualComponent::new("vc");
        let mut kernel = Kernel::new("n6");
        let c = capsule();
        let digest = capsule_digest(&c, KEY);
        let mut p = profile(6);
        p.actuator_ports.clear();
        let err = admit_node(
            &mut vc,
            &mut kernel,
            &p,
            &c,
            digest,
            KEY,
            SimDuration::from_millis(250),
        )
        .unwrap_err();
        assert!(matches!(err, EvmError::MissingCapability { .. }));
        assert!(vc.is_empty());
    }

    #[test]
    fn overloaded_kernel_refuses() {
        let mut vc = VirtualComponent::new("vc");
        let mut kernel = Kernel::new("n7");
        // Saturate the kernel first.
        kernel
            .admit(
                evm_rtos::TaskSpec::new(
                    "hog",
                    SimDuration::from_millis(240),
                    SimDuration::from_millis(250),
                ),
                evm_rtos::TaskImage::typical_control_task(),
                None,
            )
            .unwrap();
        let mut c = capsule();
        c.gas_budget = 50_000; // 50 ms at 1 us/insn
        let digest = capsule_digest(&c, KEY);
        let err = admit_node(
            &mut vc,
            &mut kernel,
            &profile(7),
            &c,
            digest,
            KEY,
            SimDuration::from_millis(250),
        )
        .unwrap_err();
        assert!(matches!(err, EvmError::AdmissionRefused { .. }));
        assert!(vc.is_empty());
        assert_eq!(kernel.tcbs().len(), 1, "only the hog remains");
    }

    #[test]
    fn profile_capability_logic() {
        let p = profile(1);
        assert!(p.satisfies(&Capability::DataPlane));
        assert!(p.satisfies_all(&capsule().capabilities));
        assert!(!p.satisfies(&Capability::SensorPort(9)));
    }
}
