//! Software attestation (§3.1.1 op 8).
//!
//! "When new code or data is received by a node from another node, the
//! node executes a basic attestation test to ensure the code/data is not
//! corrupted and passes the schedulability test."
//!
//! Attestation here is two checks and one gate:
//!
//! 1. **integrity** — the capsule CRC matches its code bytes,
//! 2. **authenticity** — a keyed digest over (id, version, code,
//!    gas budget, capabilities) matches, using a pre-shared component key
//!    (64-bit keyed FNV-style mix; a stand-in for the platform's real MAC
//!    primitive with identical protocol behavior),
//! 3. the **schedulability gate** is applied separately by the receiving
//!    kernel (see `evm_rtos::Kernel::admit`) — attestation passing does
//!    not bypass it.

use crate::bytecode::{Capability, Capsule};

/// Pre-shared attestation key of a Virtual Component.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttestationKey(pub u64);

impl AttestationKey {
    /// The deterministic pre-shared key of Virtual Component `vc`
    /// (deployments provision one key per component; the simulation
    /// derives it from the component index).
    #[must_use]
    pub fn for_vc(vc: u16) -> Self {
        AttestationKey(0x0E5B_0C0D_E000_0000 ^ u64::from(vc).wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }
}

/// Stable wire encoding of one capability for digest purposes: a tag
/// byte plus a port byte (0 for portless capabilities).
fn capability_bytes(cap: &Capability) -> [u8; 2] {
    match cap {
        Capability::SensorPort(p) => [1, *p],
        Capability::ActuatorPort(p) => [2, *p],
        Capability::ControllerRole => [3, 0],
        Capability::DataPlane => [4, 0],
    }
}

/// Outcome of attesting a received capsule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttestationReport {
    /// CRC check outcome.
    pub integrity_ok: bool,
    /// Keyed-digest check outcome.
    pub digest_ok: bool,
}

impl AttestationReport {
    /// `true` if the capsule may proceed to the admission gate.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.integrity_ok && self.digest_ok
    }
}

/// Computes the keyed digest of a capsule under `key`.
#[must_use]
pub fn capsule_digest(capsule: &Capsule, key: AttestationKey) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ key.0;
    let mut mix = |byte: u8| {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    };
    for b in capsule.id.0.to_le_bytes() {
        mix(b);
    }
    for b in capsule.version.to_le_bytes() {
        mix(b);
    }
    for b in capsule.program.encode() {
        mix(b);
    }
    // The gas budget is the schedulability-test input and the capability
    // list is the admission-gate input: both must be tamper-evident, or a
    // forged capsule could pass attestation and then inflate its WCET
    // budget or claim ports it was never granted.
    for b in capsule.gas_budget.to_le_bytes() {
        mix(b);
    }
    for cap in &capsule.capabilities {
        for b in capability_bytes(cap) {
            mix(b);
        }
    }
    // Final avalanche.
    h ^= h >> 33;
    h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    h ^= h >> 33;
    h
}

/// Attests a received capsule against the expected digest its sender
/// advertised (computed under the shared key).
#[must_use]
pub fn attest_capsule(
    capsule: &Capsule,
    advertised_digest: u64,
    key: AttestationKey,
) -> AttestationReport {
    AttestationReport {
        integrity_ok: capsule.integrity_ok(),
        digest_ok: capsule_digest(capsule, key) == advertised_digest,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bytecode::{Capability, Capsule, CapsuleId, Op, Program};

    fn capsule() -> Capsule {
        Capsule::new(
            CapsuleId(1),
            1,
            Program::new(vec![Op::Push(1.0), Op::WriteActuator(0), Op::Halt]),
            32,
            vec![Capability::ActuatorPort(0)],
        )
    }

    const KEY: AttestationKey = AttestationKey(0xDEAD_BEEF_0BAD_F00D);

    #[test]
    fn genuine_capsule_attests() {
        let c = capsule();
        let digest = capsule_digest(&c, KEY);
        let report = attest_capsule(&c, digest, KEY);
        assert!(report.passed());
    }

    #[test]
    fn corrupted_code_fails_both_checks() {
        let c = capsule();
        let digest = capsule_digest(&c, KEY);
        let bad = c.corrupted(1, 3).expect("still decodes");
        let report = attest_capsule(&bad, digest, KEY);
        assert!(!report.integrity_ok || !report.digest_ok);
        assert!(!report.passed());
    }

    #[test]
    fn wrong_key_fails_digest() {
        let c = capsule();
        let digest = capsule_digest(&c, KEY);
        let report = attest_capsule(&c, digest, AttestationKey(42));
        assert!(report.integrity_ok, "CRC is keyless");
        assert!(!report.digest_ok);
        assert!(!report.passed());
    }

    #[test]
    fn version_is_covered_by_digest() {
        let c1 = capsule();
        let mut c2 = capsule();
        c2.version = 2;
        assert_ne!(capsule_digest(&c1, KEY), capsule_digest(&c2, KEY));
    }

    /// Regression: the digest must cover *every* field the admission gate
    /// consumes. A tampered gas budget (the schedulability-test input) or
    /// capability list must flip `digest_ok` even though the CRC — which
    /// only covers code — still passes.
    #[test]
    fn gas_budget_is_covered_by_digest() {
        let c = capsule();
        let digest = capsule_digest(&c, KEY);
        let mut tampered = capsule();
        tampered.gas_budget += 1;
        let report = attest_capsule(&tampered, digest, KEY);
        assert!(report.integrity_ok, "CRC covers code only");
        assert!(!report.digest_ok, "gas tampering must fail the digest");
        assert!(!report.passed());
    }

    #[test]
    fn capabilities_are_covered_by_digest() {
        let c = capsule();
        let digest = capsule_digest(&c, KEY);
        let mut widened = capsule();
        widened.capabilities.push(Capability::ControllerRole);
        let report = attest_capsule(&widened, digest, KEY);
        assert!(report.integrity_ok, "CRC covers code only");
        assert!(
            !report.digest_ok,
            "capability tampering must fail the digest"
        );

        let mut swapped = capsule();
        swapped.capabilities = vec![Capability::ActuatorPort(1)];
        assert_ne!(capsule_digest(&c, KEY), capsule_digest(&swapped, KEY));
    }

    #[test]
    fn every_digested_field_mutation_flips_digest_ok() {
        let reference = capsule_digest(&capsule(), KEY);
        let mutations: Vec<Capsule> = vec![
            {
                let mut c = capsule();
                c.id = CapsuleId(2);
                c
            },
            {
                let mut c = capsule();
                c.version += 1;
                c
            },
            capsule().corrupted(1, 3).expect("still decodes"),
            {
                let mut c = capsule();
                c.gas_budget = 33;
                c
            },
            {
                let mut c = capsule();
                c.capabilities.clear();
                c
            },
        ];
        for m in &mutations {
            let report = attest_capsule(m, reference, KEY);
            assert!(!report.digest_ok, "mutation must be digest-visible: {m:?}");
        }
    }

    #[test]
    fn per_vc_keys_differ() {
        assert_ne!(AttestationKey::for_vc(0), AttestationKey::for_vc(1));
        assert_eq!(AttestationKey::for_vc(3), AttestationKey::for_vc(3));
        let c = capsule();
        assert_ne!(
            capsule_digest(&c, AttestationKey::for_vc(0)),
            capsule_digest(&c, AttestationKey::for_vc(1)),
        );
    }

    #[test]
    fn digest_is_deterministic() {
        assert_eq!(
            capsule_digest(&capsule(), KEY),
            capsule_digest(&capsule(), KEY)
        );
    }
}
