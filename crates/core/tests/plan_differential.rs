//! Differential pin: the epoch-compiled cycle plan vs. the direct slot
//! body.
//!
//! The planned path (dense indices, precomputed distances and channel
//! budgets, folded broadcast delivery, the cycle-start hook list, bound
//! plant tags) must be a pure performance change: for any scenario, the
//! whole [`evm_core::RunResult`] — series, traces, QoS metrics, energy,
//! per-VC stats — is **byte-identical** between
//! [`CyclePlanMode::Planned`] and [`CyclePlanMode::Direct`]. Each test
//! runs one scenario family under both modes and compares the results
//! structurally, with a vacuity floor on actuations so a silently-dead
//! run can never pass.

use evm_core::runtime::{CyclePlanMode, Engine, ReroutePolicy, Role, Scenario, ScenarioBuilder};
use evm_core::RunResult;
use evm_netsim::NodeId;
use evm_sim::{SimDuration, SimTime};

/// Runs `make()`'s scenario under both plan modes and returns
/// `(direct, planned)` after asserting the run is non-trivial.
fn run_both(make: impl Fn() -> Scenario) -> (RunResult, RunResult) {
    let run_at = |plan: CyclePlanMode| {
        let mut s = make();
        s.plan = plan;
        Engine::new(s).run()
    };
    let direct = run_at(CyclePlanMode::Direct);
    assert!(direct.actuations > 20, "run must exercise the loop");
    let planned = run_at(CyclePlanMode::Planned);
    (direct, planned)
}

/// The first dedicated relay that carries forwarding jobs in the
/// engine's own epoch-0 routes.
fn loaded_relay(s: &Scenario) -> NodeId {
    let carriers = Engine::new(s.clone()).forwarding_nodes();
    s.topology
        .nodes
        .iter()
        .find(|n| matches!(n.role, Role::Relay(_)) && carriers.contains(&n.id))
        .map(|n| n.id)
        .expect("a dedicated relay carries jobs")
}

/// Fig. 5 baseline: the paper's single-hop testbed with the default
/// fault plan (primary-controller actuator fault at 30 s).
#[test]
fn fig5_identical_across_plan_modes() {
    let (direct, planned) = run_both(|| {
        let mut s = Scenario::baseline();
        s.duration = SimDuration::from_secs(90);
        s
    });
    assert!(planned == direct, "cycle plan changed the Fig. 5 run");
}

/// Multi-hop line: relay flows spanning two hops, serial schedule.
#[test]
fn line_identical_across_plan_modes() {
    let (direct, planned) = run_both(|| {
        ScenarioBuilder::star()
            .line(2)
            .sensors(1)
            .controllers(2)
            .actuators(1)
            .head(true)
            .duration(SimDuration::from_secs(60))
            .build()
    });
    assert!(planned == direct, "cycle plan changed the line run");
}

/// 3x3 grid: lattice routing where the controller itself forwards.
#[test]
fn grid_identical_across_plan_modes() {
    let (direct, planned) = run_both(|| {
        ScenarioBuilder::star()
            .grid(3, 3)
            .sensors(1)
            .controllers(1)
            .actuators(1)
            .head(true)
            .slots_per_cycle(33)
            .duration(SimDuration::from_secs(60))
            .build()
    });
    assert!(planned == direct, "cycle plan changed the grid run");
}

/// Heartbeat reroute: a loaded forwarder dies mid-run and an epoch swap
/// re-routes around it. The plan must be rebuilt at the commit boundary
/// and keepalive fills / liveness stamps must match the direct path.
#[test]
fn heartbeat_reroute_identical_across_plan_modes() {
    let base = || {
        ScenarioBuilder::star()
            .reroute(ReroutePolicy::Heartbeat)
            .line(2)
            .sensors(1)
            .controllers(2)
            .actuators(1)
            .head(true)
            .backup_relays(1)
            .duration(SimDuration::from_secs(90))
            .build()
    };
    let victim = loaded_relay(&base());
    let (direct, planned) = run_both(|| {
        let mut s = base();
        s.fault_plan.add_crash(evm_netsim::NodeCrash::permanent(
            victim,
            SimTime::from_secs(30),
        ));
        s
    });
    assert!(
        planned == direct,
        "cycle plan changed the heartbeat-reroute run"
    );
}

/// Head-kill live migration: the head crashes, re-election ships the
/// capsule over dedicated transfer slots chunk by chunk. Exercises the
/// `CapsuleChunk` leg of folded broadcast delivery and the ack/loss RNG
/// draws across an epoch swap.
#[test]
fn head_kill_migration_identical_across_plan_modes() {
    let make = || {
        ScenarioBuilder::star()
            .reroute(ReroutePolicy::Heartbeat)
            .line(2)
            .sensors(1)
            .controllers(3)
            .actuators(1)
            .head(true)
            .backup_relays(1)
            .transfer_slots(2)
            .capsule_pad_bytes(512)
            .crash_node_at(NodeId(6), SimTime::from_secs(10))
            .duration(SimDuration::from_secs(90))
            .build()
    };
    let (direct, planned) = run_both(make);
    assert_eq!(
        direct.migrations.len(),
        1,
        "the head kill must complete a live migration"
    );
    assert!(
        planned == direct,
        "cycle plan changed the head-kill migration run"
    );
}

/// Two VCs sharing one gateway, with VC 1's primary controller crashing
/// mid-run (failover path + per-VC stats under the dense node tables).
#[test]
fn two_vc_crash_identical_across_plan_modes() {
    let (direct, planned) = run_both(|| {
        ScenarioBuilder::star()
            .vcs(2)
            .crash_vc_primary_at(1, SimTime::from_secs(30))
            .duration(SimDuration::from_secs(90))
            .build()
    });
    assert!(planned == direct, "cycle plan changed the 2-VC crash run");
}
