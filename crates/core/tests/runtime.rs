//! Runtime engine tests (ported from the pre-refactor engine's unit
//! tests): QoS, schedule shape, the Fig. 6b failover machinery, energy
//! accounting and the fail-safe/migration paths — all through the public
//! topology-generic API.

use evm_core::runtime::{nodes, Engine, FlowKind, Scenario};
use evm_core::RunResult;
use evm_sim::{SimDuration, SimTime};

fn short(scenario: Scenario, secs: u64) -> RunResult {
    let mut s = scenario;
    s.duration = SimDuration::from_secs(secs);
    Engine::new(s).run()
}

#[test]
fn baseline_holds_level_and_meets_deadlines() {
    let r = short(Scenario::baseline(), 120);
    let level = r.series("LTS.LiquidPct");
    let last = level.last_value().unwrap();
    assert!((last - 50.0).abs() < 5.0, "level {last}");
    assert!(r.actuations > 200, "actuations {}", r.actuations);
    // Objective 5: latency <= 1/3 of the 250 ms cycle.
    assert!(
        r.deadline_hit_ratio() > 0.99,
        "hit ratio {}",
        r.deadline_hit_ratio()
    );
    let p99 = r.e2e_quantile(0.99).unwrap();
    assert!(p99 <= SimDuration::from_micros(83_333), "p99 latency {p99}");
}

#[test]
fn schedule_is_pipeline_ordered() {
    let e = Engine::new(Scenario::baseline());
    let roles = e.roles().clone();
    let slot = |owner, kind| e.slot_serving(owner, kind).expect("flow scheduled");
    let gw_s1 = slot(roles.gateway, FlowKind::HilDownlink { vc: 0, tag: 0 });
    let s1_bcast = slot(roles.sensors[0], FlowKind::SensorPublish { vc: 0, tag: 0 });
    let a_out = slot(roles.controllers[0], FlowKind::ControlPublish { vc: 0 });
    let b_out = slot(roles.controllers[1], FlowKind::ControlPublish { vc: 0 });
    let act_fwd = slot(roles.actuators[0], FlowKind::ActuateForward { vc: 0 });
    let head_bcast = slot(roles.head.unwrap(), FlowKind::ControlPlane { vc: 0 });
    assert!(gw_s1 < s1_bcast);
    assert!(s1_bcast < a_out);
    assert!(a_out < b_out);
    assert!(b_out < act_fwd);
    assert!(act_fwd < head_bcast);
    assert!(e.schedule().is_interference_free(e.topology()));
    // The resolved Fig. 5 roles are the documented well-known ids.
    assert_eq!(roles.gateway, nodes::GW);
    assert_eq!(roles.primary(), nodes::CTRL_A);
    assert_eq!(roles.head, Some(nodes::HEAD));
}

#[test]
fn fig6b_failover_sequence() {
    let r = Engine::new(Scenario::fig6b()).run();
    // Detection happens quickly after the 300 s injection...
    let detected = r.event_time("confirmed deviation").expect("detected");
    assert!(detected >= SimTime::from_secs(300));
    assert!(
        detected < SimTime::from_secs(310),
        "detection was slow: {detected}"
    );
    // ...but the head commits at the next 300 s epoch: T2 = 600 s.
    let promoted = r.event_time("Ctrl-B -> Active").expect("promoted");
    assert!(
        promoted >= SimTime::from_secs(600) && promoted < SimTime::from_secs(602),
        "T2 was {promoted}"
    );
    // T3 = 800 s: Ctrl-A Dormant.
    let dormant = r.event_time("Ctrl-A -> Dormant").expect("dormant");
    assert!(
        dormant >= SimTime::from_secs(800) && dormant < SimTime::from_secs(802),
        "T3 was {dormant}"
    );
    // Level collapses under the fault, then recovers after failover.
    let level = r.series("LTS.LiquidPct");
    let during = level.window(SimTime::from_secs(550), SimTime::from_secs(600));
    assert!(during.stats().unwrap().max < 20.0, "level must collapse");
    let late = level.window(SimTime::from_secs(900), SimTime::from_secs(1000));
    let recovering = late.stats().unwrap().mean;
    assert!(
        recovering > during.stats().unwrap().mean + 5.0,
        "level must recover: {recovering}"
    );
}

#[test]
fn fast_reconfig_recovers_sooner() {
    let slow = Engine::new(Scenario::fig6b()).run();
    let fast = Engine::new(Scenario::fig6b_fast()).run();
    let t_slow = slow.event_time("Ctrl-B -> Active").unwrap();
    let t_fast = fast.event_time("Ctrl-B -> Active").unwrap();
    assert!(
        t_fast < t_slow - SimDuration::from_secs(250),
        "fast {t_fast} vs slow {t_slow}"
    );
    // Lower control cost with fast failover.
    let cost = |r: &RunResult| {
        r.control_cost(
            "LTS.LiquidPct",
            50.0,
            SimTime::from_secs(300),
            SimTime::from_secs(1000),
        )
    };
    assert!(cost(&fast) < cost(&slow));
}

#[test]
fn determinism_same_seed_same_trace() {
    let a = Engine::new(Scenario::fig6b()).run();
    let b = Engine::new(Scenario::fig6b()).run();
    assert_eq!(a.trace.render(), b.trace.render());
    assert_eq!(
        a.series("LTS.LiquidPct").samples(),
        b.series("LTS.LiquidPct").samples()
    );
}

#[test]
fn crash_failover_via_heartbeat() {
    let scenario = Scenario::builder()
        .crash_primary_at(SimTime::from_secs(100))
        .reconfig_epoch(SimDuration::ZERO)
        .duration(SimDuration::from_secs(300))
        .build();
    let r = Engine::new(scenario).run();
    assert!(r.event_time("heartbeat timeout").is_some());
    let promoted = r.event_time("Ctrl-B -> Active").expect("failover");
    assert!(
        promoted < SimTime::from_secs(110),
        "crash failover took until {promoted}"
    );
    // After failover the loop keeps running.
    let level = r.series("LTS.LiquidPct");
    let last = level.last_value().unwrap();
    assert!((last - 50.0).abs() < 10.0, "level {last}");
}

#[test]
fn energy_accounting_is_plausible() {
    let r = short(Scenario::baseline(), 300);
    let e = |label: &str| r.node_energy.get(label).expect("metered");
    for label in ["GW", "S1", "Ctrl-A", "Ctrl-B", "A1", "S2", "Head"] {
        let ne = e(label);
        assert!(
            ne.avg_current_ma > 0.05 && ne.avg_current_ma < 5.0,
            "{label}: {:.3} mA",
            ne.avg_current_ma
        );
        assert!(ne.radio_duty < 0.10, "{label}: duty {:.3}", ne.radio_duty);
        assert!(
            ne.lifetime_years > 0.05,
            "{label}: {:.2} y",
            ne.lifetime_years
        );
    }
    // The gateway owns two uplink slots and receives actuations: it
    // must work the radio at least as hard as the idle spare sensor.
    assert!(e("GW").radio_duty >= e("S2").radio_duty);
}

/// Design property the broadcast-PV architecture buys: because every
/// replica computes on the *same published sample*, measurement noise
/// cannot diverge primary and backup — so it can never cause a false
/// failover, no matter how large.
#[test]
fn sensor_noise_cannot_cause_false_failover() {
    let scenario = Scenario::builder()
        .sensor_noise(5.0) // same magnitude as the detection threshold
        .reconfig_epoch(SimDuration::ZERO)
        .duration(SimDuration::from_secs(300))
        .build();
    let r = Engine::new(scenario).run();
    assert!(r.event_time("confirmed deviation").is_none());
    assert!(r.event_time("Ctrl-B -> Active").is_none());
    // The loop still regulates (the 2nd-order filter earns its keep).
    let level = r.series("LTS.LiquidPct");
    assert!((level.last_value().unwrap() - 50.0).abs() < 6.0);
}

#[test]
fn double_fault_engages_fail_safe() {
    use evm_plant::ActuatorFault;
    let scenario = Scenario::builder()
        .fault_at(SimTime::from_secs(100), ActuatorFault::paper_fault())
        .backup_fault_at(SimTime::from_secs(200), ActuatorFault::StuckOutput(90.0))
        .reconfig_epoch(SimDuration::ZERO)
        .duration(SimDuration::from_secs(400))
        .build();
    let r = Engine::new(scenario).run();
    // First failover: B takes over.
    let first = r.event_time("Ctrl-B -> Active").expect("first failover");
    assert!(first < SimTime::from_secs(102));
    // Second fault: A is already suspected, so no viable master.
    let fs = r.event_time("fail-safe").expect("fail-safe engaged");
    assert!(fs > SimTime::from_secs(200) && fs < SimTime::from_secs(205));
    // The valve lands at the fail-safe position and stays there.
    let valve = r.series("LTSLiqValve.OpeningPct");
    let late = valve.value_at(SimTime::from_secs(300)).unwrap();
    assert!(late < 1.0, "valve fail-closed, got {late}");
    // And the faulty backup was demoted to Indicator mode.
    let b_mode = r.series("Mode.Ctrl-B");
    assert_eq!(b_mode.value_at(SimTime::from_secs(300)), Some(3.0));
}

#[test]
fn cold_backup_requires_migration() {
    let scenario = Scenario::builder()
        .fault_at(
            SimTime::from_secs(100),
            evm_plant::ActuatorFault::paper_fault(),
        )
        .reconfig_epoch(SimDuration::ZERO)
        .cold_backup()
        .duration(SimDuration::from_secs(400))
        .build();
    let r = Engine::new(scenario).run();
    let migrated = r.event_time("task activated on").expect("migration ran");
    let promoted = r.event_time("Ctrl-B -> Active").expect("promotion");
    assert!(migrated <= promoted);
    assert!(r.event_time("image 384 B").is_some(), "plan logged");
}
