//! Differential property suite for tiered capsule execution.
//!
//! The stack interpreter ([`Tier::Interp`]) is the semantic oracle; the
//! fused and compiled tiers are optimizations that must be **bit
//! identical** to it in every observable: run result (value or typed
//! trap), gas consumed, the variable file, and every actuator write and
//! emission — under any gas limit, including budgets that starve a
//! program mid-loop. This suite drives hundreds of seeded random
//! programs (well-formed or not), the real compiled control laws, and a
//! full Fig. 5 engine run through all three tiers and asserts exact
//! agreement, comparing floats by bit pattern so NaN payloads and
//! signed zeros cannot hide a divergence.

use evm_core::bytecode::{
    compile_control_law, compiles, control_law_gas_budget, ControlLawSpec, NullEnv, N_VARS,
};
use evm_core::runtime::Engine;
use evm_core::{Op, Program, Scenario, Tier, Vm, VmError};
use evm_plant::lts_level_loop;
use evm_sim::{SimDuration, SimRng};

/// Everything a capsule run can observe, floats as raw bits.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Outcome {
    result: Result<u64, VmError>,
    gas_used: u64,
    vars: [u64; N_VARS],
    writes: Vec<(u8, u64)>,
    emissions: Vec<(u8, u64)>,
}

/// Runs `program` on a fresh VM at `tier` and captures every observable.
fn observe(program: &Program, tier: Tier, gas_limit: u64, exts: &[(u8, Program)]) -> Outcome {
    let mut vm = Vm::with_tier(gas_limit, tier);
    for (n, body) in exts {
        vm.register_extension(*n, body.clone());
    }
    let mut env = NullEnv {
        sensor_value: 1.5,
        now_s: 42.25,
        ..NullEnv::default()
    };
    let result = vm.run(program, &mut env).map(f64::to_bits);
    Outcome {
        result,
        gas_used: vm.gas_used(),
        vars: vm.snapshot_vars().map(f64::to_bits),
        writes: env.writes.iter().map(|&(p, v)| (p, v.to_bits())).collect(),
        emissions: env
            .emissions
            .iter()
            .map(|&(c, v)| (c, v.to_bits()))
            .collect(),
    }
}

/// Asserts the fused and compiled tiers agree with the oracle on every
/// observable, for each gas limit.
fn assert_tiers_agree(program: &Program, gas_limits: &[u64], exts: &[(u8, Program)]) {
    for &gas in gas_limits {
        let oracle = observe(program, Tier::Interp, gas, exts);
        for tier in [Tier::Fused, Tier::Compiled] {
            let got = observe(program, tier, gas, exts);
            assert_eq!(
                got,
                oracle,
                "tier {tier} diverged from the oracle at gas limit {gas} \
                 on program {:?}",
                program.ops()
            );
        }
    }
}

/// Draws one random (not necessarily well-formed) instruction —
/// deliberately including out-of-range variables, wild jump offsets,
/// unknown extensions and deep calls, so trap behavior is covered.
fn random_op(rng: &mut SimRng) -> Op {
    match rng.index(32) {
        0 => Op::Push(rng.range(-100.0, 100.0)),
        1 => Op::Dup,
        2 => Op::Drop,
        3 => Op::Swap,
        4 => Op::Over,
        5 => Op::Rot,
        6 => Op::Add,
        7 => Op::Sub,
        8 => Op::Mul,
        9 => Op::Div,
        10 => Op::Neg,
        11 => Op::Abs,
        12 => Op::Min,
        13 => Op::Max,
        14 => Op::Gt,
        15 => Op::Lt,
        16 => Op::Eq,
        17 => Op::Not,
        18 => Op::Load(rng.index(256) as u8),
        19 => Op::Store(rng.index(256) as u8),
        20 => Op::Jmp(rng.int_range(-20, 19) as i16),
        21 => Op::Jz(rng.int_range(-20, 19) as i16),
        22 => Op::Call(rng.index(32) as u16),
        23 => Op::Ret,
        24 => Op::Halt,
        25 => Op::ReadSensor(rng.index(256) as u8),
        26 => Op::WriteActuator(rng.index(256) as u8),
        27 => Op::Emit(rng.index(256) as u8),
        28 => Op::ReadClock,
        29 => Op::ReadBattery,
        30 => Op::ReadRole,
        _ => Op::Ext(rng.index(256) as u8),
    }
}

/// A random straight-line instruction: no control flow, in-range
/// variables. Programs built from these always lower to the register IR
/// (a single basic block), so they exercise the compiled tier's
/// optimizer rather than its fallback.
fn random_straightline_op(rng: &mut SimRng) -> Op {
    match rng.index(22) {
        0..=2 => Op::Push(rng.range(-8.0, 8.0)),
        3 => Op::Dup,
        4 => Op::Drop,
        5 => Op::Swap,
        6 => Op::Over,
        7 => Op::Rot,
        8 => Op::Add,
        9 => Op::Sub,
        10 => Op::Mul,
        11 => Op::Div,
        12 => Op::Neg,
        13 => Op::Abs,
        14 => Op::Min,
        15 => Op::Max,
        16 => Op::Gt,
        17 => Op::Not,
        18 => Op::Load(rng.index(N_VARS) as u8),
        19 => Op::Store(rng.index(N_VARS) as u8),
        20 => Op::ReadSensor(rng.index(4) as u8),
        _ => Op::Emit(rng.index(4) as u8),
    }
}

/// ~600 fully random programs (including malformed ones, wild jumps,
/// unknown extensions and recursive calls) agree across all three tiers
/// under four gas budgets, from starvation to comfortable.
#[test]
fn random_programs_agree_across_tiers() {
    let mut rng = SimRng::seed_from(0x7137_D1FF);
    let exts = [
        (0u8, Program::new(vec![Op::Dup, Op::Mul, Op::Ret])),
        (7u8, Program::new(vec![Op::Push(1.0), Op::Add])),
        (255u8, Program::new(vec![Op::Call(0)])),
    ];
    for _ in 0..600 {
        let len = rng.index(64);
        let ops: Vec<Op> = (0..len).map(|_| random_op(&mut rng)).collect();
        let program = Program::new(ops);
        assert_tiers_agree(&program, &[1, 7, 64, 256], &exts);
    }
}

/// Straight-line random programs always lower to the register IR and
/// still agree bit-for-bit — this is the corpus that stresses the
/// compiled tier's constant folding, alias propagation, dead-store
/// elimination and peephole fusion.
#[test]
fn straightline_programs_compile_and_agree() {
    let mut rng = SimRng::seed_from(0xC0DE_CAFE);
    for _ in 0..500 {
        let len = rng.index(48);
        let mut ops: Vec<Op> = (0..len).map(|_| random_straightline_op(&mut rng)).collect();
        ops.push(Op::Halt);
        let program = Program::new(ops);
        assert!(
            compiles(&program),
            "straight-line program must lower: {:?}",
            program.ops()
        );
        assert_tiers_agree(&program, &[1, 7, 64, 256], &[]);
    }
}

/// A counted decrement loop (the superinstruction showcase) agrees at
/// every gas limit that could interrupt it — before the loop, exactly
/// at a fused boundary, one op into a fused sequence, and after
/// completion. This pins the deopt path: a fused tier must trap with
/// the same error, the same gas and the same variable file as the
/// oracle stepping op by op.
#[test]
fn decrement_loop_agrees_at_every_starvation_point() {
    // var0 = 10; while (var0 != 0) { var0 -= 1 } ; halt
    let ops = vec![
        Op::Push(10.0),
        Op::Store(0),
        Op::Load(0),
        Op::Jz(6),
        Op::Load(0),
        Op::Push(1.0),
        Op::Sub,
        Op::Store(0),
        Op::Jmp(-6),
        Op::Halt,
    ];
    let program = Program::new(ops);
    assert!(compiles(&program));
    let every_limit: Vec<u64> = (1..=80).collect();
    assert_tiers_agree(&program, &every_limit, &[]);
}

/// The real compiled control law produces bit-identical outputs and
/// integrator state across tiers over a long, varied PV trajectory with
/// **persistent** VM state (the variable file survives invocations, as
/// it does on a controller node).
#[test]
fn pid_control_law_is_bit_identical_across_tiers() {
    let spec = ControlLawSpec::from_loop(&lts_level_loop());
    let program = compile_control_law(&spec);
    assert!(
        compiles(&program),
        "the builder's control law must lower to the register IR"
    );
    let budget = control_law_gas_budget(&program);
    let mut vms: Vec<Vm> = Tier::ALL
        .iter()
        .map(|&t| Vm::with_tier(budget, t))
        .collect();
    let dt = spec.period_s;
    for k in 0..2_000u32 {
        let t = f64::from(k) * dt;
        let pv = 50.0 + 9.0 * (t / 90.0).sin() + 0.4 * (t * 2.3).sin();
        let mut outs = Vec::new();
        for vm in &mut vms {
            let mut env = NullEnv {
                sensor_value: pv,
                ..NullEnv::default()
            };
            let out = vm.run(&program, &mut env).expect("control law runs");
            outs.push((out.to_bits(), env.writes, env.emissions));
        }
        assert_eq!(outs[0], outs[1], "fused diverged at step {k}");
        assert_eq!(outs[0], outs[2], "compiled diverged at step {k}");
        let oracle_vars = vms[0].snapshot_vars().map(f64::to_bits);
        assert_eq!(vms[1].snapshot_vars().map(f64::to_bits), oracle_vars);
        assert_eq!(vms[2].snapshot_vars().map(f64::to_bits), oracle_vars);
    }
}

/// `control_law_gas_budget` is tier-independent: every tier charges
/// exactly the oracle's gas (fused superinstructions charge the sum of
/// their constituents), so a budget admitted by the schedulability gate
/// admits the capsule on any tier — and starving any tier below its
/// per-invocation cost traps identically.
#[test]
fn gas_budget_is_tier_independent() {
    let spec = ControlLawSpec::from_loop(&lts_level_loop());
    let program = compile_control_law(&spec);
    let budget = control_law_gas_budget(&program);
    let mut per_tier_gas = Vec::new();
    for &tier in &Tier::ALL {
        let mut vm = Vm::with_tier(budget, tier);
        let mut env = NullEnv {
            sensor_value: 48.0,
            ..NullEnv::default()
        };
        vm.run(&program, &mut env).expect("within budget");
        let first = vm.gas_used();
        vm.run(&program, &mut env).expect("within budget");
        per_tier_gas.push((first, vm.gas_used()));
    }
    assert_eq!(per_tier_gas[0], per_tier_gas[1], "fused gas differs");
    assert_eq!(per_tier_gas[0], per_tier_gas[2], "compiled gas differs");
    // The documented budget actually covers both the init and steady
    // paths, on every tier.
    assert!(per_tier_gas[0].0 <= budget && per_tier_gas[0].1 <= budget);
    // A starved budget traps identically everywhere.
    let starved = per_tier_gas[0].0 - 1;
    assert_tiers_agree(&program, &[starved], &[]);
}

/// Runtime extension words (the dictionary): boundary indices, runtime
/// replacement, and fused-tier execution of extension bodies all agree
/// with the oracle.
#[test]
fn extension_dictionary_agrees_across_tiers() {
    let square = Program::new(vec![Op::Dup, Op::Mul, Op::Ret]);
    let cube = Program::new(vec![Op::Dup, Op::Dup, Op::Mul, Op::Mul, Op::Ret]);
    for ext_n in [0u8, 1, 254, 255] {
        let p = Program::new(vec![Op::Push(3.0), Op::Ext(ext_n), Op::Halt]);
        assert_tiers_agree(&p, &[2, 64], &[(ext_n, square.clone())]);
        // Replacement: the last registration wins, on every tier.
        for &tier in &Tier::ALL {
            let mut vm = Vm::with_tier(64, tier);
            vm.register_extension(ext_n, square.clone());
            let old = vm.register_extension(ext_n, cube.clone());
            assert_eq!(old, Some(square.clone()));
            let mut env = NullEnv::default();
            assert_eq!(vm.run(&p, &mut env), Ok(27.0), "tier {tier}");
        }
    }
}

/// The tentpole end-to-end guarantee: a full Fig. 5 engine run —
/// scheduler, channel, plant, detectors, every capsule invocation on
/// every controller replica — is **byte-identical** across tiers. The
/// entire [`evm_core::RunResult`] (series, traces, QoS metrics, energy)
/// is compared structurally.
#[test]
fn fig5_run_is_byte_identical_across_tiers() {
    let run_at = |tier: Tier| {
        let mut s = Scenario::baseline();
        s.duration = SimDuration::from_secs(90);
        s.tier = tier;
        Engine::new(s).run()
    };
    let oracle = run_at(Tier::Interp);
    assert!(oracle.actuations > 100, "run must exercise the capsules");
    let fused = run_at(Tier::Fused);
    let compiled = run_at(Tier::Compiled);
    assert!(fused == oracle, "fused tier changed the Fig. 5 run");
    assert!(compiled == oracle, "compiled tier changed the Fig. 5 run");
}
