//! Differential pin: event-driven slot advancement vs. the legacy
//! per-slot event stream.
//!
//! The fleet-scale hot loop (occupancy-table cursor, dense node state,
//! scratch-buffer dispatch) must be a pure performance change: for any
//! scenario, the whole [`evm_core::RunResult`] — series, traces, QoS
//! metrics, energy, per-VC stats — is **byte-identical** between
//! [`SlotStepping::Legacy`] and [`SlotStepping::EventDriven`]. Each
//! test here runs one scenario family under both steppings and compares
//! the results structurally, with a vacuity floor on actuations so a
//! silently-dead run can never pass.

use evm_core::runtime::{Engine, ReroutePolicy, Role, Scenario, ScenarioBuilder, SlotStepping};
use evm_core::RunResult;
use evm_netsim::NodeId;
use evm_sim::{SimDuration, SimTime};

/// Runs `make()`'s scenario under both steppings and returns
/// `(legacy, event_driven)` after asserting the run is non-trivial.
fn run_both(make: impl Fn() -> Scenario) -> (RunResult, RunResult) {
    let run_at = |stepping: SlotStepping| {
        let mut s = make();
        s.stepping = stepping;
        Engine::new(s).run()
    };
    let legacy = run_at(SlotStepping::Legacy);
    assert!(legacy.actuations > 20, "run must exercise the loop");
    let event = run_at(SlotStepping::EventDriven);
    (legacy, event)
}

/// The first dedicated relay that carries forwarding jobs in the
/// engine's own epoch-0 routes — the only kind of victim whose crash
/// forces a heartbeat reroute.
fn loaded_relay(s: &Scenario) -> NodeId {
    let carriers = Engine::new(s.clone()).forwarding_nodes();
    s.topology
        .nodes
        .iter()
        .find(|n| matches!(n.role, Role::Relay(_)) && carriers.contains(&n.id))
        .map(|n| n.id)
        .expect("a dedicated relay carries jobs")
}

/// Fig. 5 baseline: the paper's single-hop testbed with the default
/// fault plan (primary-controller actuator fault at 30 s).
#[test]
fn fig5_identical_across_steppings() {
    let (legacy, event) = run_both(|| {
        let mut s = Scenario::baseline();
        s.duration = SimDuration::from_secs(90);
        s
    });
    assert!(
        event == legacy,
        "event-driven stepping changed the Fig. 5 run"
    );
}

/// Multi-hop line: relay flows spanning two hops, serial schedule.
#[test]
fn line_identical_across_steppings() {
    let (legacy, event) = run_both(|| {
        ScenarioBuilder::star()
            .line(2)
            .sensors(1)
            .controllers(2)
            .actuators(1)
            .head(true)
            .duration(SimDuration::from_secs(60))
            .build()
    });
    assert!(
        event == legacy,
        "event-driven stepping changed the line run"
    );
}

/// 3x3 grid: lattice routing where the controller itself forwards.
#[test]
fn grid_identical_across_steppings() {
    let (legacy, event) = run_both(|| {
        ScenarioBuilder::star()
            .grid(3, 3)
            .sensors(1)
            .controllers(1)
            .actuators(1)
            .head(true)
            .slots_per_cycle(33)
            .duration(SimDuration::from_secs(60))
            .build()
    });
    assert!(
        event == legacy,
        "event-driven stepping changed the grid run"
    );
}

/// Heartbeat reroute: a loaded forwarder dies mid-run, the heartbeat
/// scan marks it down, and an epoch swap re-routes around it. The
/// cursor must replicate the legacy run through the epoch-table
/// rebuild and the post-swap occupancy change.
#[test]
fn heartbeat_reroute_identical_across_steppings() {
    let base = || {
        ScenarioBuilder::star()
            .reroute(ReroutePolicy::Heartbeat)
            .line(2)
            .sensors(1)
            .controllers(2)
            .actuators(1)
            .head(true)
            .backup_relays(1)
            .duration(SimDuration::from_secs(90))
            .build()
    };
    let victim = loaded_relay(&base());
    let (legacy, event) = run_both(|| {
        let mut s = base();
        s.fault_plan.add_crash(evm_netsim::NodeCrash::permanent(
            victim,
            SimTime::from_secs(30),
        ));
        s
    });
    assert!(
        event == legacy,
        "event-driven stepping changed the heartbeat-reroute run"
    );
}

/// Two VCs sharing one gateway, with VC 1's primary controller crashing
/// mid-run (failover path + per-VC stats under the dense node tables).
#[test]
fn two_vc_crash_identical_across_steppings() {
    let (legacy, event) = run_both(|| {
        ScenarioBuilder::star()
            .vcs(2)
            .crash_vc_primary_at(1, SimTime::from_secs(30))
            .duration(SimDuration::from_secs(90))
            .build()
    });
    assert!(
        event == legacy,
        "event-driven stepping changed the 2-VC crash run"
    );
}
