//! Zero-alloc contract for the fleet hot loop.
//!
//! Once an engine is warmed — every capsule prepared on its tier, every
//! series/queue reservation made at setup, the cycle plan compiled —
//! the steady-state slot loop must not touch the heap at all: no
//! per-slot clones, no label `String`s, no dispatch scratch growth, no
//! per-listener message copies. This test installs a counting global
//! allocator, warms a compiled-tier run, then steps several more
//! seconds of simulated time and asserts that **zero** allocations and
//! **zero** deallocations happened in the window.
//!
//! Covered windows: both steppings on the planned path, the direct
//! oracle, and a planned run with a live capsule migration in flight —
//! multi-listener folded broadcasts with a `CapsuleChunk` crossing the
//! window every cycle (the image is padded so the stop-and-wait
//! shipment spans the whole measured window; its start and completion
//! both land outside it).
//!
//! A single `#[test]` covers all windows sequentially: the counters
//! are process-global, so concurrent tests would pollute each other's
//! windows.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

use evm_core::runtime::{
    CyclePlanMode, Engine, ReroutePolicy, Scenario, ScenarioBuilder, SlotStepping,
};
use evm_core::Tier;
use evm_netsim::NodeId;
use evm_sim::{SimDuration, SimTime};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static DEALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        DEALLOCS.fetch_add(1, Relaxed);
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// A fault-free single-VC star on the compiled tier: the steady state
/// is pure slot traffic — samples, capsule runs, actuations,
/// keepalives — with no failover or reconfiguration churn.
fn scenario(stepping: SlotStepping, plan: CyclePlanMode) -> Scenario {
    ScenarioBuilder::star()
        .tier(Tier::Compiled)
        .stepping(stepping)
        .plan(plan)
        .duration(SimDuration::from_secs(30))
        .build()
}

/// The same star with the head killed early and a padded capsule
/// migration crawling over one transfer slot per cycle: the crash,
/// silence detection, re-election and epoch commit (plan rebuild) all
/// land before the measured window opens at 10 s, and the 16 KiB image
/// at ~4 cycles/s keeps `CapsuleChunk` folded broadcasts in flight well
/// past its close at 20 s — loss-free, so no retransmit/corruption
/// trace lines allocate inside the window.
fn migration_scenario() -> Scenario {
    ScenarioBuilder::star()
        .tier(Tier::Compiled)
        .reroute(ReroutePolicy::Heartbeat)
        .transfer_slots(1)
        .capsule_pad_bytes(16384)
        .crash_node_at(NodeId(6), SimTime::from_secs(2))
        .duration(SimDuration::from_secs(30))
        .build()
}

fn assert_zero_alloc_steady_state(label: &str, s: Scenario) {
    let mut engine = Engine::new(s);
    // Warm: ~40 RT-Link cycles — every capsule compiled and cached,
    // every lazily-grown structure at its steady footprint.
    engine.run_until(SimTime::from_secs(10));

    let allocs_before = ALLOCS.load(Relaxed);
    let deallocs_before = DEALLOCS.load(Relaxed);
    engine.run_until(SimTime::from_secs(20));
    let allocs = ALLOCS.load(Relaxed) - allocs_before;
    let deallocs = DEALLOCS.load(Relaxed) - deallocs_before;

    let result = engine.finalize();
    assert!(
        result.actuations > 50,
        "{label}: run must exercise the loop"
    );
    assert_eq!(allocs, 0, "{label}: warmed steady state must not allocate");
    assert_eq!(deallocs, 0, "{label}: warmed steady state must not free");
}

#[test]
fn warmed_hot_loop_never_touches_the_heap() {
    assert_zero_alloc_steady_state(
        "event+planned",
        scenario(SlotStepping::EventDriven, CyclePlanMode::Planned),
    );
    assert_zero_alloc_steady_state(
        "legacy+planned",
        scenario(SlotStepping::Legacy, CyclePlanMode::Planned),
    );
    assert_zero_alloc_steady_state(
        "event+direct",
        scenario(SlotStepping::EventDriven, CyclePlanMode::Direct),
    );
    let migration = migration_scenario();
    {
        // The shipment must actually span the window, or the chunk leg
        // was never measured: pin that it is still unfinished at 30 s.
        let r = Engine::new(migration.clone()).run();
        assert!(
            r.migrations.is_empty(),
            "padded transfer must outlast the run (else shrink the pad)"
        );
        assert!(
            r.trace
                .entries()
                .iter()
                .any(|e| e.message.contains("transfer started")),
            "the head kill must start a live migration"
        );
    }
    assert_zero_alloc_steady_state("migration-in-flight planned", migration);
}
