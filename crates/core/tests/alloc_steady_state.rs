//! Zero-alloc contract for the fleet hot loop.
//!
//! Once an engine is warmed — every capsule prepared on its tier, every
//! series/queue reservation made at setup — the steady-state slot loop
//! must not touch the heap at all: no per-slot clones, no label
//! `String`s, no dispatch scratch growth. This test installs a counting
//! global allocator, warms a fault-free compiled-tier run, then steps
//! several more seconds of simulated time and asserts that **zero**
//! allocations and **zero** deallocations happened in the window.
//!
//! A single `#[test]` covers both steppings sequentially: the counters
//! are process-global, so concurrent tests would pollute each other's
//! windows.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

use evm_core::runtime::{Engine, Scenario, ScenarioBuilder, SlotStepping};
use evm_core::Tier;
use evm_sim::{SimDuration, SimTime};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static DEALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        DEALLOCS.fetch_add(1, Relaxed);
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// A fault-free single-VC star on the compiled tier: the steady state
/// is pure slot traffic — samples, capsule runs, actuations,
/// keepalives — with no failover or reconfiguration churn.
fn scenario(stepping: SlotStepping) -> Scenario {
    ScenarioBuilder::star()
        .tier(Tier::Compiled)
        .stepping(stepping)
        .duration(SimDuration::from_secs(30))
        .build()
}

fn assert_zero_alloc_steady_state(stepping: SlotStepping) {
    let mut engine = Engine::new(scenario(stepping));
    // Warm: ~40 RT-Link cycles — every capsule compiled and cached,
    // every lazily-grown structure at its steady footprint.
    engine.run_until(SimTime::from_secs(10));

    let allocs_before = ALLOCS.load(Relaxed);
    let deallocs_before = DEALLOCS.load(Relaxed);
    engine.run_until(SimTime::from_secs(20));
    let allocs = ALLOCS.load(Relaxed) - allocs_before;
    let deallocs = DEALLOCS.load(Relaxed) - deallocs_before;

    let result = engine.finalize();
    assert!(result.actuations > 50, "run must exercise the loop");
    assert_eq!(
        allocs, 0,
        "{stepping:?}: warmed steady state must not allocate"
    );
    assert_eq!(
        deallocs, 0,
        "{stepping:?}: warmed steady state must not free"
    );
}

#[test]
fn warmed_hot_loop_never_touches_the_heap() {
    assert_zero_alloc_steady_state(SlotStepping::EventDriven);
    assert_zero_alloc_steady_state(SlotStepping::Legacy);
}
