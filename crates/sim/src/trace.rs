//! Structured event trace.
//!
//! Every layer of the simulator appends [`TraceEntry`]s to a shared
//! [`Trace`]: mode transitions, fault reports, migrations, packet drops.
//! Experiments then query the trace to locate e.g. "the instant the backup
//! went Active" without having to thread ad-hoc channels through the stack.

use std::fmt;

use crate::SimTime;

/// One recorded simulation event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEntry {
    /// When the event happened.
    pub at: SimTime,
    /// Category tag, e.g. `"vc"`, `"mac"`, `"fault"`, `"migration"`.
    pub category: String,
    /// Human-readable (and grep-able) description.
    pub message: String,
}

impl fmt::Display for TraceEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:>12}] {:<10} {}",
            self.at, self.category, self.message
        )
    }
}

/// An append-only, time-ordered log of simulation events.
///
/// # Example
///
/// ```
/// use evm_sim::{SimTime, Trace};
/// let mut trace = Trace::new();
/// trace.log(SimTime::from_secs(300), "fault", "Ctrl-A stuck at 75%");
/// assert_eq!(trace.of_category("fault").count(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    entries: Vec<TraceEntry>,
}

impl Trace {
    /// Creates an empty trace.
    #[must_use]
    pub fn new() -> Self {
        Trace::default()
    }

    /// Appends an entry.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `at` is earlier than the last entry;
    /// traces are recorded in simulation order by construction.
    pub fn log(&mut self, at: SimTime, category: impl Into<String>, message: impl Into<String>) {
        if let Some(last) = self.entries.last() {
            debug_assert!(at >= last.at, "trace must be appended in time order");
        }
        self.entries.push(TraceEntry {
            at,
            category: category.into(),
            message: message.into(),
        });
    }

    /// All entries in time order.
    #[must_use]
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Iterator over entries with the given category.
    pub fn of_category<'a>(&'a self, category: &'a str) -> impl Iterator<Item = &'a TraceEntry> {
        self.entries.iter().filter(move |e| e.category == category)
    }

    /// First entry whose message contains `needle`, if any.
    #[must_use]
    pub fn find(&self, needle: &str) -> Option<&TraceEntry> {
        self.entries.iter().find(|e| e.message.contains(needle))
    }

    /// Time of the first entry whose message contains `needle`.
    #[must_use]
    pub fn time_of(&self, needle: &str) -> Option<SimTime> {
        self.find(needle).map(|e| e.at)
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Renders the whole trace, one entry per line.
    #[must_use]
    pub fn render(&self) -> String {
        let mut s = String::new();
        for e in &self.entries {
            s.push_str(&e.to_string());
            s.push('\n');
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_and_query() {
        let mut t = Trace::new();
        t.log(SimTime::from_secs(1), "vc", "Ctrl-A -> Active");
        t.log(SimTime::from_secs(300), "fault", "Ctrl-A output anomaly");
        t.log(SimTime::from_secs(600), "vc", "Ctrl-B -> Active");
        assert_eq!(t.len(), 3);
        assert_eq!(t.of_category("vc").count(), 2);
        assert_eq!(t.time_of("Ctrl-B -> Active"), Some(SimTime::from_secs(600)));
        assert!(t.find("nonexistent").is_none());
    }

    #[test]
    fn render_contains_all_messages() {
        let mut t = Trace::new();
        t.log(SimTime::ZERO, "a", "first");
        t.log(SimTime::from_millis(1), "b", "second");
        let s = t.render();
        assert!(s.contains("first") && s.contains("second"));
        assert_eq!(s.lines().count(), 2);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "time order")]
    fn out_of_order_panics_in_debug() {
        let mut t = Trace::new();
        t.log(SimTime::from_secs(2), "a", "later");
        t.log(SimTime::from_secs(1), "a", "earlier");
    }
}
