//! Simulation time.
//!
//! Time is kept as an integer number of microseconds since simulation start.
//! Microsecond resolution matches the granularity the paper cares about
//! (sub-150 µs sync jitter) while keeping arithmetic exact: there is no
//! floating-point drift in the event timeline.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Rem, Sub, SubAssign};

/// An instant on the simulation timeline, in microseconds since start.
///
/// `SimTime` is an absolute point; use [`SimDuration`] for spans. The two are
/// distinct types so that e.g. adding two instants is a compile error
/// (C-NEWTYPE).
///
/// # Example
///
/// ```
/// use evm_sim::{SimDuration, SimTime};
/// let t = SimTime::ZERO + SimDuration::from_secs_f64(1.5);
/// assert_eq!(t.as_micros(), 1_500_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulation time, in microseconds.
///
/// # Example
///
/// ```
/// use evm_sim::SimDuration;
/// let d = SimDuration::from_millis(250);
/// assert_eq!(d.as_secs_f64(), 0.25);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// The largest representable instant (used as an "infinite" horizon).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from raw microseconds since simulation start.
    #[must_use]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Creates an instant from milliseconds since simulation start.
    #[must_use]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Creates an instant from whole seconds since simulation start.
    #[must_use]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Creates an instant from fractional seconds since simulation start.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative or not finite.
    #[must_use]
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid time {s}");
        SimTime((s * 1e6).round() as u64)
    }

    /// Microseconds since simulation start.
    #[must_use]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Milliseconds since simulation start (truncating).
    #[must_use]
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds since simulation start as a float.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The span from `earlier` to `self`, saturating to zero if `earlier`
    /// is actually later.
    #[must_use]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration; `None` on overflow.
    #[must_use]
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }

    /// Rounds this instant **down** to a multiple of `step`.
    ///
    /// # Panics
    ///
    /// Panics if `step` is zero.
    #[must_use]
    pub fn floor_to(self, step: SimDuration) -> SimTime {
        assert!(step.0 > 0, "step must be positive");
        SimTime(self.0 - self.0 % step.0)
    }

    /// Rounds this instant **up** to a multiple of `step`.
    ///
    /// # Panics
    ///
    /// Panics if `step` is zero.
    #[must_use]
    pub fn ceil_to(self, step: SimDuration) -> SimTime {
        assert!(step.0 > 0, "step must be positive");
        match self.0 % step.0 {
            0 => self,
            rem => SimTime(self.0 + (step.0 - rem)),
        }
    }
}

impl SimDuration {
    /// The zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a span from raw microseconds.
    #[must_use]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Creates a span from milliseconds.
    #[must_use]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Creates a span from whole seconds.
    #[must_use]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Creates a span from fractional seconds.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative or not finite.
    #[must_use]
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid duration {s}");
        SimDuration((s * 1e6).round() as u64)
    }

    /// The span in microseconds.
    #[must_use]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// The span in milliseconds (truncating).
    #[must_use]
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// The span in seconds as a float.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// `true` if this span is zero.
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction of spans.
    #[must_use]
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Multiplies the span by a non-negative float, rounding to the nearest
    /// microsecond.
    ///
    /// # Panics
    ///
    /// Panics if `k` is negative or not finite.
    #[must_use]
    pub fn mul_f64(self, k: f64) -> SimDuration {
        assert!(k.is_finite() && k >= 0.0, "invalid factor {k}");
        SimDuration((self.0 as f64 * k).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Div<SimDuration> for SimDuration {
    type Output = u64;
    fn div(self, rhs: SimDuration) -> u64 {
        self.0 / rhs.0
    }
}

impl Rem<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn rem(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 % rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000 {
            write!(f, "{}us", self.0)
        } else if self.0 < 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e3)
        } else {
            write!(f, "{:.6}s", self.as_secs_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(SimTime::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimTime::from_secs(2).as_millis(), 2_000);
        assert_eq!(SimDuration::from_secs_f64(0.001).as_micros(), 1_000);
        assert_eq!(SimTime::from_secs_f64(1.25).as_secs_f64(), 1.25);
    }

    #[test]
    fn arithmetic_behaves() {
        let t = SimTime::from_secs(1);
        let d = SimDuration::from_millis(500);
        assert_eq!((t + d).as_millis(), 1_500);
        assert_eq!((t + d) - t, d);
        assert_eq!(d * 3, SimDuration::from_millis(1_500));
        assert_eq!(d / 2, SimDuration::from_millis(250));
        assert_eq!(SimDuration::from_secs(1) / d, 2);
        assert_eq!(
            SimDuration::from_millis(700) % d,
            SimDuration::from_millis(200)
        );
    }

    #[test]
    fn saturating_ops() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
        assert_eq!(b.saturating_since(a), SimDuration::from_secs(1));
        assert_eq!(
            SimDuration::from_millis(1).saturating_sub(SimDuration::from_millis(2)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn rounding() {
        let step = SimDuration::from_millis(10);
        assert_eq!(
            SimTime::from_micros(12_345).floor_to(step).as_micros(),
            10_000
        );
        assert_eq!(
            SimTime::from_micros(12_345).ceil_to(step).as_micros(),
            20_000
        );
        assert_eq!(
            SimTime::from_micros(20_000).ceil_to(step).as_micros(),
            20_000
        );
    }

    #[test]
    #[should_panic(expected = "invalid duration")]
    fn negative_duration_panics() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimDuration::from_micros(42).to_string(), "42us");
        assert_eq!(SimDuration::from_micros(1_500).to_string(), "1.500ms");
        assert_eq!(SimDuration::from_secs(2).to_string(), "2.000000s");
        assert_eq!(SimTime::from_secs(1).to_string(), "1.000000s");
    }

    #[test]
    fn checked_add_overflow() {
        assert!(SimTime::MAX
            .checked_add(SimDuration::from_micros(1))
            .is_none());
        assert_eq!(
            SimTime::ZERO.checked_add(SimDuration::from_secs(1)),
            Some(SimTime::from_secs(1))
        );
    }

    #[test]
    fn mul_f64_rounds() {
        assert_eq!(
            SimDuration::from_micros(100).mul_f64(0.5),
            SimDuration::from_micros(50)
        );
        assert_eq!(
            SimDuration::from_micros(3).mul_f64(0.5),
            SimDuration::from_micros(2) // 1.5 rounds to 2
        );
    }
}
