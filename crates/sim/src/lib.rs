//! Deterministic discrete-event simulation kernel.
//!
//! This crate is the foundation of the EVM reproduction. It provides:
//!
//! * [`SimTime`] / [`SimDuration`] — microsecond-resolution simulation time,
//! * [`EventQueue`] — a deterministic future-event list with FIFO tie-break,
//! * [`SimRng`] — a seedable random source with the distributions the upper
//!   layers need (uniform, Bernoulli, normal, exponential),
//! * [`Trace`] — a structured event recorder used by every experiment,
//! * [`TimeSeries`] — sampled signals plus the statistics the paper's figures
//!   are built from.
//!
//! Everything in this crate is deliberately free of interior mutability and
//! threads: the whole simulator is single-threaded and reproducible. Two runs
//! with the same seed produce byte-identical traces (see the determinism
//! integration tests at the workspace root).
//!
//! # Example
//!
//! ```
//! use evm_sim::{EventQueue, SimDuration, SimTime};
//!
//! #[derive(Debug, PartialEq)]
//! enum Ev { Tick }
//!
//! let mut q = EventQueue::new();
//! q.push(SimTime::ZERO + SimDuration::from_millis(10), Ev::Tick);
//! let (t, ev) = q.pop().unwrap();
//! assert_eq!(t.as_millis(), 10);
//! assert_eq!(ev, Ev::Tick);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod queue;
mod rng;
mod series;
mod time;
mod trace;

pub use queue::EventQueue;
pub use rng::{derive_seed, SimRng};
pub use series::{merged_csv, SeriesStats, TimeSeries};
pub use time::{SimDuration, SimTime};
pub use trace::{Trace, TraceEntry};
