//! Deterministic random source.
//!
//! All stochastic elements of the simulation (channel loss, clock jitter,
//! workload generation) draw from a [`SimRng`] seeded per scenario, so that a
//! seed fully determines a run. The generator is an inlined xoshiro256++
//! (the algorithm behind `rand`'s `SmallRng` on 64-bit targets), carried in
//! this crate so the workspace has no external dependencies: it is
//! seed-portable across platforms, `Clone`, and fast.

/// The xoshiro256++ core: 256 bits of state, period 2^256 − 1.
#[derive(Debug, Clone)]
struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

impl Xoshiro256PlusPlus {
    /// Expands a 64-bit seed into the full state with `SplitMix64`, the
    /// initialization recommended by the xoshiro authors (and used by
    /// `rand`'s `seed_from_u64`).
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Xoshiro256PlusPlus {
            s: [next(), next(), next(), next()],
        }
    }

    fn next_u64(&mut self) -> u64 {
        let out = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    /// An unbiased draw in `[0, n)` by Lemire's multiply-shift rejection.
    fn next_below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        let mut m = u128::from(self.next_u64()) * u128::from(n);
        let mut lo = m as u64;
        if lo < n {
            let threshold = n.wrapping_neg() % n;
            while lo < threshold {
                m = u128::from(self.next_u64()) * u128::from(n);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }
}

/// Derives a stable per-cell seed from a base seed and a cell index.
///
/// This is a pure function (a SplitMix64 finalizer over the mixed
/// inputs), so a batch sweep can hand every grid cell its seed up front:
/// the seed depends only on `(base, stream)`, never on which worker
/// thread picks the cell up or in what order cells complete. Distinct
/// streams of the same base diverge immediately.
///
/// # Example
///
/// ```
/// use evm_sim::derive_seed;
/// assert_eq!(derive_seed(42, 7), derive_seed(42, 7));
/// assert_ne!(derive_seed(42, 7), derive_seed(42, 8));
/// ```
#[must_use]
pub fn derive_seed(base: u64, stream: u64) -> u64 {
    let mut z = base
        .rotate_left(17)
        .wrapping_add(stream.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seedable, deterministic random source for simulations.
///
/// # Example
///
/// ```
/// use evm_sim::SimRng;
/// let mut a = SimRng::seed_from(42);
/// let mut b = SimRng::seed_from(42);
/// assert_eq!(a.uniform(), b.uniform());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: Xoshiro256PlusPlus,
    /// Cached second value from the Box–Muller transform.
    gauss_spare: Option<f64>,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    #[must_use]
    pub fn seed_from(seed: u64) -> Self {
        SimRng {
            inner: Xoshiro256PlusPlus::seed_from_u64(seed),
            gauss_spare: None,
        }
    }

    /// Derives an independent child generator; useful for giving each node
    /// its own stream so that adding a node does not perturb the draws made
    /// by existing nodes.
    #[must_use]
    pub fn fork(&mut self, stream: u64) -> SimRng {
        let base: u64 = self.inner.next_u64();
        SimRng::seed_from(base ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// A uniform draw in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        // 53 high bits → the standard dyadic-rational mapping onto [0, 1).
        (self.inner.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform draw in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or either bound is not finite.
    pub fn range(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(
            lo.is_finite() && hi.is_finite() && lo < hi,
            "bad range [{lo}, {hi})"
        );
        lo + (hi - lo) * self.uniform()
    }

    /// A uniform integer draw in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "empty range");
        self.inner.next_below(n as u64) as usize
    }

    /// A uniform integer draw in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    #[allow(clippy::cast_possible_wrap)] // two's-complement wrap is the intent
    pub fn int_range(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "bad range [{lo}, {hi}]");
        let width = hi.wrapping_sub(lo) as u64;
        if width == u64::MAX {
            return self.inner.next_u64() as i64;
        }
        lo.wrapping_add(self.inner.next_below(width + 1) as i64)
    }

    /// A Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.uniform() < p
        }
    }

    /// A normal (Gaussian) draw with the given mean and standard deviation,
    /// via the Box–Muller transform.
    ///
    /// # Panics
    ///
    /// Panics if `std_dev` is negative or not finite.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        assert!(
            std_dev.is_finite() && std_dev >= 0.0,
            "bad std dev {std_dev}"
        );
        if let Some(z) = self.gauss_spare.take() {
            return mean + std_dev * z;
        }
        // Box–Muller: two uniforms -> two independent standard normals.
        let u1 = loop {
            let u = self.uniform();
            if u > 0.0 {
                break u;
            }
        };
        let u2 = self.uniform();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        let z0 = r * theta.cos();
        let z1 = r * theta.sin();
        self.gauss_spare = Some(z1);
        mean + std_dev * z0
    }

    /// A normal draw truncated to `[lo, hi]` by resampling (falls back to
    /// clamping after 64 rejections, which only matters for pathological
    /// bounds).
    pub fn normal_clamped(&mut self, mean: f64, std_dev: f64, lo: f64, hi: f64) -> f64 {
        for _ in 0..64 {
            let x = self.normal(mean, std_dev);
            if (lo..=hi).contains(&x) {
                return x;
            }
        }
        self.normal(mean, std_dev).clamp(lo, hi)
    }

    /// An exponential draw with the given rate `lambda` (mean `1/lambda`).
    ///
    /// # Panics
    ///
    /// Panics if `lambda` is not strictly positive.
    pub fn exponential(&mut self, lambda: f64) -> f64 {
        assert!(lambda > 0.0, "rate must be positive");
        let u = loop {
            let u = self.uniform();
            if u > 0.0 {
                break u;
            }
        };
        -u.ln() / lambda
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.index(i + 1);
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_seeds_are_stable_and_spread() {
        // Stability: pure function of (base, stream).
        assert_eq!(derive_seed(1, 0), derive_seed(1, 0));
        // Spread: no collisions over a grid-sized block of streams, and
        // neighboring bases/streams land far apart.
        let mut seen: Vec<u64> = (0..4096).map(|i| derive_seed(99, i)).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 4096, "stream collisions");
        assert_ne!(derive_seed(0, 0), derive_seed(1, 0));
        // A derived seed feeds SimRng like any other seed.
        let mut a = SimRng::seed_from(derive_seed(7, 3));
        let mut b = SimRng::seed_from(derive_seed(7, 3));
        assert_eq!(a.uniform().to_bits(), b.uniform().to_bits());
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.uniform().to_bits(), b.uniform().to_bits());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(2);
        let same = (0..32).filter(|_| a.uniform() == b.uniform()).count();
        assert!(same < 4);
    }

    #[test]
    fn forked_streams_are_independent_of_later_parent_use() {
        let mut parent1 = SimRng::seed_from(9);
        let mut child1 = parent1.fork(1);
        let mut parent2 = SimRng::seed_from(9);
        let mut child2 = parent2.fork(1);
        // Parent 2 keeps drawing; child streams must not change.
        let _ = parent2.uniform();
        for _ in 0..16 {
            assert_eq!(child1.uniform().to_bits(), child2.uniform().to_bits());
        }
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = SimRng::seed_from(1234);
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.normal(5.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn exponential_mean_is_plausible() {
        let mut rng = SimRng::seed_from(99);
        let n = 50_000;
        let mean = (0..n).map(|_| rng.exponential(0.5)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.06, "mean {mean}");
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed_from(5);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(!rng.chance(-0.5));
        assert!(rng.chance(1.5));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SimRng::seed_from(11);
        let mut xs: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn uniform_is_in_unit_interval() {
        let mut rng = SimRng::seed_from(3);
        for _ in 0..10_000 {
            let x = rng.uniform();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_in_bounds_across_seeds() {
        for seed in 0..200u64 {
            let mut rng = SimRng::seed_from(seed);
            let lo = rng.range(-100.0, 100.0);
            let hi = lo + rng.range(0.001, 50.0);
            for _ in 0..32 {
                let x = rng.range(lo, hi);
                assert!(x >= lo && x < hi, "seed {seed}: {x} outside [{lo}, {hi})");
            }
        }
    }

    #[test]
    fn normal_clamped_in_bounds_across_seeds() {
        for seed in 0..200u64 {
            let mut rng = SimRng::seed_from(seed);
            for _ in 0..32 {
                let x = rng.normal_clamped(0.0, 10.0, -1.0, 1.0);
                assert!((-1.0..=1.0).contains(&x), "seed {seed}: {x}");
            }
        }
    }

    #[test]
    fn index_in_bounds_and_covers_range() {
        for seed in 0..200u64 {
            let mut rng = SimRng::seed_from(seed);
            let n = 1 + rng.index(99);
            for _ in 0..16 {
                assert!(rng.index(n) < n);
            }
        }
        // Small ranges are hit exhaustively (unbiasedness smoke check).
        let mut rng = SimRng::seed_from(17);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            seen[rng.index(7)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn int_range_covers_inclusive_bounds() {
        let mut rng = SimRng::seed_from(23);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..10_000 {
            let x = rng.int_range(-3, 3);
            assert!((-3..=3).contains(&x));
            lo_seen |= x == -3;
            hi_seen |= x == 3;
        }
        assert!(lo_seen && hi_seen);
    }
}
